PYTHON ?= python
# Run against the in-tree sources whether or not the package is installed.
RUN = PYTHONPATH=src $(PYTHON)
# Content-addressed result cache used by the CLI (see repro.exec).
CACHE_DIR ?= .repro-cache

.PHONY: install test smoke report-smoke faults-smoke bench-engine-smoke \
        bench-sweep-smoke serve-smoke bench-serve-smoke verify bench \
        bench-full bench-faults examples calibrate cache-clean clean

install:
	$(PYTHON) -m pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test:
	$(RUN) -m pytest tests/

# Parallel smoke run: exercises the multiprocessing pool end-to-end
# (--no-cache so it always simulates rather than replaying the cache).
smoke:
	$(RUN) -m repro run --jobs 2 --no-cache --cores 8 --accesses 2000

# Observability smoke: a tiny metrics+trace run rendered through
# `repro report` (exercises the sink, the obs JSONL, and the renderer).
report-smoke:
	$(RUN) -m repro run --workload olio --cores 4 --accesses 800 \
		--configs nocstar --no-cache --metrics \
		--trace-out .obs-smoke.jsonl
	$(RUN) -m repro report .obs-smoke.jsonl --top 4
	rm -f .obs-smoke.jsonl

# Fault-injection smoke: a tiny degradation sweep rendered through
# `repro report` (exercises the faults subsystem, the resilience
# fallbacks, and the fault counters end-to-end).
faults-smoke:
	$(RUN) -m repro faults --workload olio --cores 8 --accesses 1000 \
		--rates 0,0.1 --no-cache --metrics \
		--trace-out .faults-smoke.jsonl
	$(RUN) -m repro report .faults-smoke.jsonl --top 4
	rm -f .faults-smoke.jsonl

# Engine fast-path smoke: the perf guard (batched engine must beat the
# REPRO_REFERENCE_ENGINE=1 reference loop by >= 1.5x on the 64-core
# scenario, bit-identically) plus the BENCH_engine.json artefact.
bench-engine-smoke:
	$(RUN) benchmarks/bench_engine.py

# Sweep data-plane smoke: the perf guard (warm TraceStore fan-out must
# beat store-less jobs=4 dispatch by >= 2x on the 4-config x 3-workload
# sweep, bit-identically) plus the BENCH_sweep.json artefact.
bench-sweep-smoke:
	$(RUN) benchmarks/bench_sweep.py

# Serving smoke: spawn the real `repro serve` daemon, submit over
# HTTP, assert the result and the coalescing counters, shut it down
# cleanly (tools/serve_smoke.py parses the `serving on` line).
serve-smoke:
	$(RUN) tools/serve_smoke.py

# Serving load smoke: hundreds of concurrent synthetic clients against
# the daemon; guards that coalesced duplicates execute exactly once and
# writes the BENCH_serve.json latency-percentile artefact.
bench-serve-smoke:
	$(RUN) benchmarks/bench_serve.py

# The full local gate: tests plus the parallel, observability,
# fault-injection, engine fast-path, sweep data-plane, and serving
# smokes.
verify: test smoke report-smoke faults-smoke bench-engine-smoke \
        bench-sweep-smoke serve-smoke bench-serve-smoke

bench:
	$(RUN) -m pytest benchmarks/ --benchmark-only

bench-full:
	REPRO_BENCH_FULL=1 $(RUN) -m pytest benchmarks/ --benchmark-only

bench-faults:
	$(RUN) benchmarks/bench_faults.py

examples:
	for script in examples/*.py; do \
		echo "=== $$script ==="; \
		$(RUN) $$script || exit 1; \
	done

calibrate:
	$(RUN) tools/calibrate.py 16 10000
	$(RUN) tools/calibrate.py 32 8000

cache-clean:
	rm -rf $(CACHE_DIR)

clean: cache-clean
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
