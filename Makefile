PYTHON ?= python

.PHONY: install test bench bench-full examples calibrate clean

install:
	$(PYTHON) -m pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-full:
	REPRO_BENCH_FULL=1 $(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	for script in examples/*.py; do \
		echo "=== $$script ==="; \
		$(PYTHON) $$script || exit 1; \
	done

calibrate:
	$(PYTHON) tools/calibrate.py 16 10000
	$(PYTHON) tools/calibrate.py 32 8000

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
