"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run``        — simulate one workload across configurations and
  print the speedup table (the quickstart, parameterised);
* ``sweep``      — the paper's standard per-workload sweep at one core
  count (a Fig 12/13-style table);
* ``workloads``  — list the calibrated workload suite;
* ``traffic``    — cycle-accurate synthetic-traffic sweep (Fig 11c);
* ``configs``    — show the Table II configuration lineup;
* ``export-trace`` — write a synthetic workload to a portable ``.npz``
  trace that ``run --trace`` (or external tools) can consume;
* ``report``     — render latency percentiles, per-link NoC
  utilization, and hottest-slice tables from obs/telemetry JSONL files
  (produce them with ``run``/``sweep`` ``--metrics --trace-out``);
* ``faults``     — fault-injection degradation sweep: simulate one
  configuration under increasing fault rates (failed links, transient
  arbiter drops, dead slices) and print the speedup-vs-fault-rate
  curve with drop/fallback/degradation counters;
* ``cache``      — inspect (``stats``), wipe (``clear``), or shrink
  (``evict --max-bytes N`` / ``--max-age-s N``) the content-addressed
  result cache and the materialized trace-artifact store;
* ``experiments`` — declarative paper-figure campaigns
  (:mod:`repro.experiments`): ``list`` the registry, ``run`` campaigns
  into ``campaigns/<name>/`` CSV (+ optional matplotlib plot)
  artifacts with ``--check`` gating the summary metrics against pinned
  references, ``check`` previously written artifacts without
  re-simulating, and ``pin`` to refresh the reference numbers after an
  intentional model change;
* ``serve``      — run the persistent asyncio HTTP/JSON daemon
  (:mod:`repro.serve`): scenario submissions, in-flight request
  coalescing, per-client quotas, TTL result retention;
* ``submit``     — submit a scenario to a running daemon and (by
  default) wait for and print its speedup table;
* ``status``     — job status / daemon health+metrics of a running
  daemon (``--watch N`` polls until the job finishes);
* ``trace``      — render a span-tree JSONL sidecar (``--span-out``)
  as an indented tree with per-layer latency attribution and a
  critical-path table.

Note on flag names: ``run --trace-in PATH`` (alias ``--trace``) *loads*
an ``.npz`` input trace; the event-trace *output* flag is
``--trace-out`` on every command that can observe a run.

Shared flag groups are defined once as argparse *parent parsers*
(:func:`_runner_parent`, :func:`_fault_parent`, :func:`_obs_parent`,
:func:`_scenario_parent`) so ``run``/``sweep``/``faults``/``serve``/
``submit`` cannot drift apart in spelling, defaults, or help text.

``run`` and ``sweep`` execute through :class:`repro.exec.Runner`:
``--jobs N`` fans independent simulations out over a process pool, and
results are memoised in a content-addressed cache under ``--cache-dir``
(default ``.repro-cache``; ``--no-cache`` disables it) so warm re-runs
skip simulation entirely.  Trace builds are likewise memoised: each
build signature's records are materialized once as a packed artifact
under ``--trace-store`` (default ``<cache-dir>/traces``) and attached
zero-copy by workers; ``--no-trace-store`` reverts to per-run builds.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional, Sequence

from repro.analysis.tables import render_table
from repro.exec.runner import Runner
from repro.faults.models import (
    ArbiterDrop,
    FaultSpec,
    LinkFailure,
    SliceFailure,
    WalkerSlowdown,
)
from repro.obs import load_obs_records, render_report, write_obs_jsonl
from repro.obs.spans import Tracer, load_spans, render_tree
from repro.noc.synthetic import run_mesh_traffic, run_nocstar_traffic
from repro.noc.topology import MeshTopology
from repro.sim import configs as cfg
from repro.sim.scenario import Scenario
from repro.workloads.generators import build_multithreaded
from repro.workloads.io import load_workload, save_workload
from repro.workloads.registry import WORKLOAD_NAMES, WORKLOADS, get_workload

#: Default content-addressed cache location (overridable per-invocation
#: with --cache-dir and globally with $REPRO_CACHE_DIR).
DEFAULT_CACHE_DIR = os.environ.get("REPRO_CACHE_DIR", ".repro-cache")


def _build_configs(
    names: Sequence[str], cores: int, policy: Optional[str] = None
) -> List[cfg.SystemConfig]:
    overrides = {} if policy is None else {"policy": policy}
    configs = []
    for name in names:
        try:
            configs.append(cfg.build_config(name, cores, **overrides))
        except KeyError:
            known = ", ".join(cfg.available_configs())
            raise SystemExit(f"unknown config {name!r}; known: {known}")
    return configs


def _policy_overrides(args: argparse.Namespace) -> dict:
    """Lineup-wide overrides implied by ``--policy`` (empty = default)."""
    policy = getattr(args, "policy", None)
    return {} if policy is None else {"policy": policy}


def _trace_store_from(args: argparse.Namespace) -> Optional[str]:
    """The trace-store directory implied by the runner flags.

    An explicit ``--trace-store PATH`` always wins (even under
    ``--no-cache``: trace artifacts are inputs, not memoised results).
    Otherwise the store lives at ``<cache-dir>/traces`` and follows the
    cache switches; ``--no-trace-store`` disables it outright.
    """
    if getattr(args, "no_trace_store", False):
        return None
    explicit = getattr(args, "trace_store", "")
    if explicit:
        return explicit
    if args.no_cache:
        return None
    return os.path.join(args.cache_dir, "traces")


def _tracer_from(args: argparse.Namespace) -> Optional[Tracer]:
    """A Tracer when --span-out asks for a span sidecar, else None."""
    return Tracer() if getattr(args, "span_out", "") else None


def _export_spans(args: argparse.Namespace, tracer: Optional[Tracer]) -> None:
    if tracer is None or not getattr(args, "span_out", ""):
        return
    count = tracer.export_jsonl(args.span_out)
    print(
        f"[spans] wrote {count} span(s) to {args.span_out}",
        file=sys.stderr,
    )


def _runner_from(
    args: argparse.Namespace, tracer: Optional[Tracer] = None
) -> Runner:
    if args.jobs < 1:
        raise SystemExit(f"--jobs must be >= 1 (got {args.jobs})")
    return Runner(
        jobs=args.jobs,
        cache_dir=None if args.no_cache else args.cache_dir,
        use_cache=not args.no_cache,
        trace_store=_trace_store_from(args),
        tracer=tracer,
    )


def _report_cache(runner: Runner) -> None:
    if runner.cache is not None:
        print(
            f"[cache] {runner.stats['hits']} hit(s), "
            f"{runner.stats['misses']} miss(es) in {runner.cache.root}",
            file=sys.stderr,
        )


def _obs_flags(args: argparse.Namespace) -> tuple:
    """(metrics, trace) from the obs options; --trace-out implies both."""
    trace = bool(args.trace_out)
    return (args.metrics or trace, trace)


def _emit_obs(args: argparse.Namespace, comparisons) -> None:
    """Write --trace-out and/or print the --metrics report."""
    metrics, _ = _obs_flags(args)
    if not metrics:
        return
    labelled = [
        (config_name, comparison.workload_name, result)
        for comparison in comparisons
        for config_name, result in comparison.results.items()
    ]
    if args.trace_out:
        lines = write_obs_jsonl(args.trace_out, labelled)
        print(
            f"[obs] wrote {lines} record(s) to {args.trace_out}",
            file=sys.stderr,
        )
    from repro.obs.report import event_records_from, run_records_from

    print()
    print(render_report(run_records_from(labelled),
                        event_records_from(labelled)))


def _faults_from(args: argparse.Namespace) -> Optional[FaultSpec]:
    """A FaultSpec from the --fault-* flags, or None when all are off."""
    rate = getattr(args, "fault_rate", 0.0)
    drop = getattr(args, "fault_drop_prob", 0.0)
    if rate <= 0.0 and drop <= 0.0:
        return None
    return FaultSpec(
        links=LinkFailure(rate=rate), arbiter=ArbiterDrop(probability=drop)
    )


def _print_speedup_table(comparison) -> None:
    """The per-config cycles/speedup table (run, submit --wait)."""
    rows = []
    for name, result in comparison.results.items():
        rows.append(
            [
                name,
                result.cycles,
                result.speedup_over(comparison.baseline),
                result.stats.l2_misses,
                result.stats.walks,
            ]
        )
    print(
        render_table(
            ["config", "cycles", "speedup", "L2 misses", "walks"], rows
        )
    )


def _print_fault_summaries(comparisons) -> None:
    """Per-config degradation counters, printed only for faulty runs."""
    rows = []
    for comparison in comparisons:
        for name, summary in comparison.fault_summaries().items():
            rows.append(
                [
                    f"{name}/{comparison.workload_name}",
                    summary.get("arbiter_drops", 0),
                    summary.get("shootdown_retries", 0),
                    summary.get("fallback_messages", 0),
                    summary.get("fallback_hops", 0),
                    summary.get("degraded_walks", 0),
                ]
            )
    if rows:
        print()
        print(
            render_table(
                ["run", "drops", "sd retries", "fallbacks", "fb hops",
                 "degraded"],
                rows,
                title="== fault summary ==",
            )
        )


def cmd_run(args: argparse.Namespace) -> int:
    names = args.configs.split(",")
    if "private" not in names:
        names = ["private"] + names
    tracer = _tracer_from(args)
    runner = _runner_from(args, tracer)
    metrics, trace = _obs_flags(args)
    faults = _faults_from(args)
    if args.trace:
        if faults is not None:
            raise SystemExit(
                "--fault-rate/--fault-drop-prob need a synthetic workload; "
                "they are not supported with --trace inputs"
            )
        workload = load_workload(args.trace)
        if workload.num_cores != args.cores:
            args.cores = workload.num_cores
        lineup = runner.run_prebuilt(
            workload, _build_configs(names, args.cores, args.policy),
            metrics=metrics, trace=trace,
        )
    else:
        scenario = Scenario(
            configurations=_build_configs(names, args.cores, args.policy),
            workloads=args.workload,
            accesses_per_core=args.accesses,
            seed=args.seed,
            superpages=not args.no_superpages,
            metrics=metrics,
            trace=trace,
            faults=faults,
        )
        lineup = runner.run_one(scenario)
    _print_speedup_table(lineup)
    _print_fault_summaries([lineup])
    _emit_obs(args, [lineup])
    _export_spans(args, tracer)
    _report_cache(runner)
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    names = (
        args.workloads.split(",") if args.workloads else list(WORKLOAD_NAMES)
    )
    tracer = _tracer_from(args)
    runner = _runner_from(args, tracer)
    metrics, trace = _obs_flags(args)
    comparisons = runner.run(
        Scenario(
            configurations=cfg.paper_lineup(
                args.cores, **_policy_overrides(args)
            ),
            workloads=tuple(names),
            accesses_per_core=args.accesses,
            seed=args.seed,
            superpages=not args.no_superpages,
            metrics=metrics,
            trace=trace,
            faults=_faults_from(args),
        )
    )
    config_names = ["monolithic-mesh", "distributed", "nocstar", "ideal"]
    rows = [
        [name] + [comparisons[name].speedup(c) for c in config_names]
        for name in names
    ]
    rows.append(
        ["average"]
        + [
            sum(comparisons[n].speedup(c) for n in names) / len(names)
            for c in config_names
        ]
    )
    print(render_table(["workload"] + config_names, rows))
    _print_fault_summaries([comparisons[name] for name in names])
    _emit_obs(args, [comparisons[name] for name in names])
    _export_spans(args, tracer)
    _report_cache(runner)
    return 0


def _parse_window(value: str) -> tuple:
    """Parse ``START:END`` (either side optional) into an int pair."""
    if ":" not in value:
        raise SystemExit(f"--window needs START:END (got {value!r})")
    lo, hi = value.split(":", 1)
    try:
        return (int(lo) if lo else None, int(hi) if hi else None)
    except ValueError:
        raise SystemExit(f"--window bounds must be integers (got {value!r})")


def cmd_report(args: argparse.Namespace) -> int:
    # Absent files are warned about and skipped by load_obs_records —
    # a sweep whose trace step failed should not kill the report of
    # the files that do exist.
    runs, events = load_obs_records(args.paths)
    window = _parse_window(args.window) if args.window else None
    print(render_report(runs, events, top=args.top, window=window))
    return 0


def cmd_faults(args: argparse.Namespace) -> int:
    """Degradation sweep: one config, increasing fault rates."""
    import json

    try:
        rates = sorted(
            {float(token) for token in args.rates.split(",") if token.strip()}
        )
    except ValueError:
        raise SystemExit(f"--rates must be comma-separated floats "
                         f"(got {args.rates!r})")
    if not rates:
        raise SystemExit("--rates needs at least one value")
    if any(not 0.0 <= rate <= 1.0 for rate in rates):
        raise SystemExit("fault rates must be in [0, 1]")
    if rates[0] != 0.0:
        rates.insert(0, 0.0)  # the fault-free anchor of the curve
    config = _build_configs([args.config], args.cores, args.policy)[0]
    tracer = _tracer_from(args)
    runner = _runner_from(args, tracer)
    metrics, trace = _obs_flags(args)

    rows = []
    points = []
    labelled = []
    baseline_cycles = None
    cache_totals = {"hits": 0, "misses": 0}
    for rate in rates:
        faults = None
        if rate > 0.0:
            faults = FaultSpec(
                links=LinkFailure(rate=rate),
                arbiter=ArbiterDrop(
                    probability=min(1.0, rate * args.drop_factor)
                ),
                slices=SliceFailure(rate=rate * args.slice_factor),
                walker=WalkerSlowdown(factor=1.0 + rate * args.walker_factor),
            )
        scenario = Scenario(
            configurations=config,
            workloads=args.workload,
            accesses_per_core=args.accesses,
            seed=args.seed,
            superpages=not args.no_superpages,
            baseline_name=config.name,
            metrics=metrics,
            trace=trace,
            faults=faults,
        )
        result = runner.run_one(scenario).results[config.name]
        # Runner.stats resets per run_one(); total them over the sweep.
        cache_totals["hits"] += runner.stats["hits"]
        cache_totals["misses"] += runner.stats["misses"]
        if baseline_cycles is None:
            baseline_cycles = result.cycles  # rate 0 runs first
        speedup = baseline_cycles / result.cycles if result.cycles else 0.0
        summary = result.faults or {}
        rows.append(
            [
                f"{rate:g}",
                result.cycles,
                speedup,
                summary.get("arbiter_drops", 0),
                summary.get("fallback_messages", 0),
                summary.get("fallback_hops", 0),
                summary.get("degraded_walks", 0),
            ]
        )
        points.append(
            {
                "rate": rate,
                "cycles": result.cycles,
                "speedup": speedup,
                "faults": summary,
            }
        )
        labelled.append((f"{config.name}@{rate:g}", args.workload, result))
    print(
        render_table(
            ["fault rate", "cycles", "speedup", "drops", "fallbacks",
             "fb hops", "degraded"],
            rows,
            precision=3,
        )
    )
    if args.out:
        payload = {
            "config": config.name,
            "workload": args.workload,
            "cores": args.cores,
            "seed": args.seed,
            "accesses_per_core": args.accesses,
            "drop_factor": args.drop_factor,
            "slice_factor": args.slice_factor,
            "walker_factor": args.walker_factor,
            "points": points,
        }
        directory = os.path.dirname(args.out)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"[faults] wrote {len(points)} point(s) to {args.out}",
              file=sys.stderr)
    if metrics:
        from repro.obs.report import event_records_from, run_records_from

        if args.trace_out:
            lines = write_obs_jsonl(args.trace_out, labelled)
            print(
                f"[obs] wrote {lines} record(s) to {args.trace_out}",
                file=sys.stderr,
            )
        print()
        print(render_report(run_records_from(labelled),
                            event_records_from(labelled)))
    _export_spans(args, tracer)
    runner.stats = cache_totals
    _report_cache(runner)
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    """Inspect or shrink the result cache and trace-artifact store."""
    from repro.exec.cache import ResultCache
    from repro.exec.trace_store import TraceStore

    cache = ResultCache(args.cache_dir)
    store = TraceStore(args.trace_store or os.path.join(args.cache_dir, "traces"))
    if args.action == "stats":
        results = cache.stats()
        traces = store.stats()
        rows = [
            ["results", results["entries"], results["bytes"], cache.root],
            ["traces", traces["artifacts"], traces["bytes"], store.root],
        ]
        print(render_table(["store", "entries", "bytes", "path"], rows))
        return 0
    if args.action == "clear":
        removed = cache.clear()
        artifacts = store.clear()
        print(f"removed {removed} result(s) from {cache.root}")
        print(f"removed {artifacts} trace artifact(s) from {store.root}")
        return 0
    # evict: --max-bytes shrinks the trace store (artifacts are the
    # bulk); --max-age-s applies the serving tier's TTL rule to the
    # result cache.  At least one is required.
    if args.max_bytes is None and args.max_age_s is None:
        raise SystemExit("cache evict needs --max-bytes and/or --max-age-s")
    if args.max_bytes is not None:
        if args.max_bytes < 0:
            raise SystemExit("cache evict needs --max-bytes >= 0")
        before = store.stats()
        removed = store.evict(args.max_bytes)
        after = store.stats()
        print(
            f"evicted {removed} trace artifact(s) from {store.root} "
            f"({before['bytes']} -> {after['bytes']} bytes)"
        )
    if args.max_age_s is not None:
        if args.max_age_s < 0:
            raise SystemExit("cache evict needs --max-age-s >= 0")
        removed = cache.evict_older_than(args.max_age_s)
        print(
            f"evicted {removed} result(s) older than {args.max_age_s:g}s "
            f"from {cache.root}"
        )
    return 0


def _campaign_specs(names):
    """Expand campaign names (metas included) or exit with the registry."""
    from repro.experiments import available_campaigns, expand_campaigns

    try:
        return expand_campaigns(names)
    except KeyError:
        known = ", ".join(available_campaigns())
        raise SystemExit(
            f"unknown campaign in {names!r}; known: {known}"
        )


def cmd_experiments(args: argparse.Namespace) -> int:
    """Paper-figure campaigns: list / run / check / pin."""
    from repro import experiments as xp

    if args.action == "list":
        rows = []
        for name in xp.available_campaigns():
            spec = xp.get_campaign(name)
            if spec.kind == xp.META:
                grids = "-> " + ",".join(spec.members)
            else:
                grids = " ".join(
                    f"{s}:{spec.grid_size(s)}" for s in spec.scale_names
                )
            pins = xp.load_pins(name)
            pinned = ",".join(sorted((pins or {}).get("scales", {}))) or "-"
            rows.append([name, spec.figure, spec.kind, grids, pinned, spec.title])
        print(
            render_table(
                ["campaign", "figure", "kind", "grid (sims/scale)",
                 "pinned", "title"],
                rows,
            )
        )
        return 0

    specs = _campaign_specs(args.campaigns or ["headline"])

    if args.action == "check":
        # Gate previously written artifacts; nothing is simulated.
        failed = False
        for spec in specs:
            try:
                payload = xp.read_summary(args.out, spec.name)
            except OSError:
                raise SystemExit(
                    f"no summary for campaign {spec.name!r} under "
                    f"{args.out!r} — run `repro experiments run "
                    f"{spec.name}` first"
                )
            if payload.get("scale") != args.scale:
                raise SystemExit(
                    f"artifacts for {spec.name!r} were written at scale "
                    f"{payload.get('scale')!r}, not {args.scale!r}; "
                    "re-run or pass the matching --scale"
                )
            report = xp.check_drift(spec.name, args.scale, payload["summary"])
            print(report.render())
            print()
            failed = failed or not report.ok
        return 1 if failed else 0

    # run / pin both execute the campaigns.
    tracer = _tracer_from(args)
    runner = _runner_from(args, tracer)
    failed = False
    for spec in specs:
        run = xp.run_campaign(spec, scale=args.scale, runner=runner,
                              tracer=tracer)
        print(
            f"[experiments] {spec.name} [{args.scale}]: "
            f"{run.stats['scenarios']} scenario(s), "
            f"{run.stats['units']} unit(s) "
            f"({run.stats['cache_hits']} cached)",
            file=sys.stderr,
        )
        if args.action == "pin":
            path = xp.update_pins(
                spec.name, args.scale, run.summary, rtol=args.rtol
            )
            print(f"[experiments] pinned {len(run.summary)} metric(s) "
                  f"of {spec.name} [{args.scale}] in {path}",
                  file=sys.stderr)
            continue
        written = run.write(args.out, plot=not args.no_plot)
        rows = [[metric, run.summary[metric]] for metric in sorted(run.summary)]
        print(
            render_table(
                ["metric", "value"],
                rows,
                title=f"== {spec.figure} — {spec.title} ==",
            )
        )
        print(f"[experiments] wrote {len(written)} artifact(s) under "
              f"{os.path.join(args.out, spec.name)}", file=sys.stderr)
        if args.check:
            report = xp.check_drift(spec.name, args.scale, run.summary)
            print(report.render())
            failed = failed or not report.ok
        print()
    _export_spans(args, tracer)
    _report_cache(runner)
    if failed:
        print("[experiments] drift gate FAILED — see reports above",
              file=sys.stderr)
        return 1
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the persistent HTTP/JSON simulation daemon."""
    from repro.serve.daemon import run_daemon
    from repro.serve.jobs import ServeConfig

    if args.jobs < 0:
        raise SystemExit(f"--jobs must be >= 0 for serve (got {args.jobs})")
    config = ServeConfig(
        workers=args.jobs,
        quota=args.quota,
        result_ttl_s=None if args.ttl <= 0 else args.ttl,
        cache_dir=None if args.no_cache else args.cache_dir,
        trace_store=_trace_store_from(args),
    )
    return run_daemon(config, host=args.host, port=args.port)


def cmd_submit(args: argparse.Namespace) -> int:
    """Submit a scenario to a running daemon; wait unless --no-wait."""
    from repro.serve.client import ServeClient, ServeError
    from repro.serve.schema import SchemaError, SubmitRequest
    from repro.sim.run import Comparison

    names = args.configs.split(",")
    if "private" not in names:
        names = ["private"] + names
    metrics, trace = _obs_flags(args)
    try:
        request = SubmitRequest(
            workload=args.workload,
            configs=tuple(names),
            cores=args.cores,
            accesses_per_core=args.accesses,
            seed=args.seed,
            superpages=not args.no_superpages,
            metrics=metrics,
            trace=trace,
            fault_rate=args.fault_rate,
            fault_drop_prob=args.fault_drop_prob,
            client_id=args.client,
            service_class=args.service_class,
        )
    except SchemaError as exc:
        raise SystemExit(str(exc))
    tracer = _tracer_from(args)
    client = ServeClient(args.url, timeout=args.timeout, tracer=tracer)
    try:
        with client.request_span(workload=args.workload):
            info = client.submit(request)
            job_id = info["job_id"]
            print(
                f"[serve] job {job_id} "
                + ("coalesced onto an in-flight submission"
                   if info.get("coalesced")
                   else f"accepted ({info.get('units_cached', 0)} unit(s) "
                        f"cached)"),
                file=sys.stderr,
            )
            if args.no_wait:
                print(job_id)
                _export_spans(args, tracer)
                return 0
            status = client.wait(job_id, timeout=args.timeout)
            if status.state == "failed":
                raise SystemExit(f"job {job_id} failed: {status.error}")
            result = client.result(job_id)
    except (ServeError, TimeoutError) as exc:
        raise SystemExit(str(exc))
    _export_spans(args, tracer)
    comparison = Comparison(result.workload, result.results, result.baseline)
    _print_speedup_table(comparison)
    _print_fault_summaries([comparison])
    _emit_obs(args, [comparison])
    print(
        f"[serve] job {job_id}: queued {status.queued_s:.3f}s, "
        f"ran {status.run_s:.3f}s, {status.units_cached}/"
        f"{status.units_total} unit(s) from cache",
        file=sys.stderr,
    )
    return 0


def _fmt_seconds(value) -> str:
    """``1.234`` → ``"1.234"``; missing/None (pre-schema-3 rows) → ``-``."""
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return f"{value:.3f}"
    return "-"


def _print_job_status(status) -> None:
    rows = [
        [unit.get("config", "?"), unit.get("state", "?"),
         unit.get("cache", "-"), _fmt_seconds(unit.get("build_s")),
         _fmt_seconds(unit.get("sim_s"))]
        for unit in status.telemetry.get("units", [])
    ]
    print(
        f"job {status.job_id}: {status.state} "
        f"({status.units_done}/{status.units_total} unit(s), "
        f"{status.units_cached} cached) workload={status.workload} "
        f"class={status.service_class} "
        f"clients={','.join(status.clients)}"
    )
    if status.error:
        print(f"error: {status.error}")
    if rows:
        print(
            render_table(
                ["config", "state", "cache", "build s", "sim s"],
                rows,
            )
        )


def cmd_status(args: argparse.Namespace) -> int:
    """One job's status — or daemon health+metrics without a job id."""
    from repro.serve.client import ServeClient, ServeError

    client = ServeClient(args.url)
    try:
        if args.job_id:
            if args.watch > 0:
                final = None
                for status in client.watch(
                    args.job_id, interval_s=args.watch
                ):
                    final = status
                    if not status.done:
                        print(
                            f"job {status.job_id}: {status.state} "
                            f"({status.units_done}/{status.units_total} "
                            f"unit(s) done)",
                            file=sys.stderr,
                        )
                _print_job_status(final)
                return 0
            _print_job_status(client.status(args.job_id))
            return 0
        health = client.health()
        counters = client.metrics().get("counters", {})
        print(
            f"daemon ok (engine {health.get('engine')}, schema "
            f"{health.get('schema')}, {health.get('workers')} worker(s))"
        )
        storage = health.get("storage") or {}
        for label, stats in (
            ("results", storage.get("results")),
            ("traces", storage.get("traces")),
        ):
            if stats:
                entries = stats.get("entries", stats.get("artifacts", 0))
                print(
                    f"[storage] {label}: {entries} entr(ies), "
                    f"{stats.get('bytes', 0)} byte(s)"
                )
        if counters:
            print(
                render_table(
                    ["metric", "value"],
                    [[name, counters[name]] for name in sorted(counters)],
                )
            )
        return 0
    except ServeError as exc:
        raise SystemExit(str(exc))


def cmd_trace(args: argparse.Namespace) -> int:
    """Render a span-tree sidecar (tree + critical-path table)."""
    try:
        records = load_spans(args.path)
    except OSError as exc:
        raise SystemExit(f"cannot read {args.path!r}: {exc}")
    print(render_tree(records, top=args.top))
    return 0


def cmd_workloads(_args: argparse.Namespace) -> int:
    rows = [
        [
            spec.name,
            spec.footprint_pages,
            f"{spec.cold_alpha:.2f}",
            f"{spec.cold_fraction:.3f}",
            f"{spec.seq_fraction:.2f}",
            f"{spec.superpage_fraction:.2f}",
            f"{spec.mean_gap:.1f}",
        ]
        for spec in WORKLOADS.values()
    ]
    print(
        render_table(
            ["workload", "cold pages", "zipf a", "cold frac", "seq",
             "superpage", "gap"],
            rows,
        )
    )
    return 0


def cmd_traffic(args: argparse.Namespace) -> int:
    topology = MeshTopology(args.tiles)
    rows = []
    for rate in (0.01, 0.05, 0.1, 0.15, 0.2):
        nocstar = run_nocstar_traffic(
            topology, rate, cycles=args.cycles, hpc_max=args.hpc_max
        )
        mesh = run_mesh_traffic(topology, rate, cycles=args.cycles)
        rows.append(
            [
                rate,
                nocstar.mean_latency,
                mesh.mean_latency,
                nocstar.no_contention_fraction,
            ]
        )
    print(
        render_table(
            ["inj rate", "nocstar (cyc)", "mesh (cyc)", "no-contention"],
            rows,
            precision=2,
        )
    )
    return 0


def cmd_export_trace(args: argparse.Namespace) -> int:
    workload = build_multithreaded(
        get_workload(args.workload),
        args.cores,
        accesses_per_core=args.accesses,
        seed=args.seed,
        superpages=not args.no_superpages,
    )
    path = save_workload(workload, args.out)
    print(f"wrote {workload.total_accesses} records to {path}")
    return 0


def cmd_configs(args: argparse.Namespace) -> int:
    rows = []
    for config in cfg.paper_lineup(args.cores):
        rows.append(
            [
                config.name,
                config.scheme,
                config.interconnect or "-",
                config.entries_per_core,
                config.monolithic_banks or "-",
            ]
        )
    print(
        render_table(
            ["name", "scheme", "interconnect", "entries/core", "banks"], rows
        )
    )
    print("registered: " + ", ".join(cfg.available_configs()))
    return 0


def _obs_parent() -> argparse.ArgumentParser:
    """The observability flag group (--metrics / --trace-out).

    Defined exactly once: every command that can observe a run shares
    this parent parser, so the flags cannot drift in name, default, or
    help text between commands.
    """
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--metrics", action="store_true",
        help="collect a metrics snapshot per run and print a report",
    )
    parent.add_argument(
        "--trace-out", default="",
        help="write runs + event traces to this JSONL file for "
             "`repro report` (implies --metrics)",
    )
    parent.add_argument(
        "--span-out", default="",
        help="write a span-tree JSONL sidecar for `repro trace` "
             "(wall-clock telemetry only; never affects results or "
             "cache keys)",
    )
    return parent


def _fault_parent() -> argparse.ArgumentParser:
    """The fault-injection flag group (--fault-rate / --fault-drop-prob)."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--fault-rate", type=float, default=0.0,
        help="fail this fraction of directed mesh links (default 0)",
    )
    parent.add_argument(
        "--fault-drop-prob", type=float, default=0.0,
        help="transient arbiter drop probability per setup attempt "
             "(default 0)",
    )
    return parent


def _runner_parent() -> argparse.ArgumentParser:
    """The execution flag group (--jobs/--cache-dir/--trace-store...)."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for independent simulations (default 1)",
    )
    parent.add_argument(
        "--cache-dir", default=DEFAULT_CACHE_DIR,
        help="content-addressed result cache directory "
             f"(default {DEFAULT_CACHE_DIR!r})",
    )
    parent.add_argument(
        "--no-cache", action="store_true",
        help="always simulate; neither read nor write the result cache",
    )
    parent.add_argument(
        "--trace-store", default="",
        help="materialized trace artifact directory (default "
             "<cache-dir>/traces; used even with --no-cache when given "
             "explicitly)",
    )
    parent.add_argument(
        "--no-trace-store", action="store_true",
        help="rebuild traces per run instead of materializing artifacts",
    )
    return parent


def _policy_parent() -> argparse.ArgumentParser:
    """The replacement-policy flag group (--policy)."""
    from repro.tlb.policies import POLICY_NAMES

    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--policy", choices=POLICY_NAMES, default=None,
        help="override the L2 replacement policy of every configuration "
             "(default: each configuration's own, normally lru)",
    )
    return parent


def _scenario_parent(accesses: int = 8_000) -> argparse.ArgumentParser:
    """The scenario-shape flag group (--cores/--accesses/--seed/...).

    Commands with a different natural ``--accesses`` default (sweeps
    run lighter per point) get their own parent instance from this
    factory — the flag definitions still live here, once.  (A child
    ``set_defaults`` would not work: argparse parents share action
    objects, so overriding a default on one command would leak into
    every other.)
    """
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--cores", type=int, default=16)
    parent.add_argument("--accesses", type=int, default=accesses)
    parent.add_argument("--seed", type=int, default=1)
    parent.add_argument("--no-superpages", action="store_true")
    return parent


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="NOCSTAR (MICRO 2018) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # Shared flag groups, defined once (see the module docstring):
    # commands compose them via argparse `parents` so they cannot drift.
    scenario = _scenario_parent()
    # Sweeps run many points, so they default to a lighter workload; a
    # separate parent instance keeps that default from leaking into the
    # other commands (parents share action objects).
    scenario_sweep = _scenario_parent(accesses=6_000)
    runner = _runner_parent()
    fault = _fault_parent()
    obs = _obs_parent()
    policy = _policy_parent()

    run_p = sub.add_parser(
        "run", help="simulate one workload",
        parents=[scenario, policy, fault, runner, obs],
    )
    run_p.add_argument("--workload", default="graph500")
    run_p.add_argument(
        "--configs",
        default="monolithic,distributed,nocstar,ideal",
        help="comma-separated configuration names "
             "(see `repro configs` for the registry)",
    )
    run_p.add_argument(
        "--trace-in", "--trace", dest="trace", default="",
        help="run a saved .npz trace instead of a synthetic workload "
             "(--trace is the historical alias; the event-trace output "
             "flag is --trace-out)",
    )
    run_p.set_defaults(func=cmd_run)

    export_p = sub.add_parser(
        "export-trace", help="write a synthetic workload to a .npz trace",
        parents=[scenario],
    )
    export_p.add_argument("--workload", default="graph500")
    export_p.add_argument("--out", required=True)
    export_p.set_defaults(func=cmd_export_trace)

    sweep_p = sub.add_parser(
        "sweep", help="per-workload speedup sweep",
        parents=[scenario_sweep, policy, fault, runner, obs],
    )
    sweep_p.add_argument("--workloads", default="",
                         help="comma-separated subset (default: all)")
    sweep_p.set_defaults(func=cmd_sweep)

    faults_p = sub.add_parser(
        "faults", help="fault-injection degradation sweep",
        parents=[scenario_sweep, policy, runner, obs],
    )
    faults_p.add_argument("--workload", default="graph500")
    faults_p.add_argument(
        "--config", default="nocstar",
        help="configuration to degrade (default nocstar)",
    )
    faults_p.add_argument(
        "--rates", default="0,0.02,0.05,0.1",
        help="comma-separated link-failure rates; 0 is always included "
             "as the fault-free anchor (default 0,0.02,0.05,0.1)",
    )
    faults_p.add_argument(
        "--drop-factor", type=float, default=0.5,
        help="arbiter drop probability = rate * this factor (default 0.5)",
    )
    faults_p.add_argument(
        "--slice-factor", type=float, default=0.0,
        help="slice failure rate = rate * this factor (default 0: "
             "links and arbiters only)",
    )
    faults_p.add_argument(
        "--walker-factor", type=float, default=0.0,
        help="walker slowdown = 1 + rate * this factor (default 0)",
    )
    faults_p.add_argument(
        "--out", default="",
        help="also write the degradation curve to this JSON file",
    )
    faults_p.set_defaults(func=cmd_faults)

    cache_p = sub.add_parser(
        "cache", help="inspect/clear the result cache and trace store"
    )
    cache_p.add_argument(
        "action", choices=("stats", "clear", "evict"),
        help="stats: entry/byte counts; clear: delete everything; "
             "evict: shrink trace artifacts to --max-bytes (oldest first)",
    )
    cache_p.add_argument(
        "--cache-dir", default=DEFAULT_CACHE_DIR,
        help=f"result cache directory (default {DEFAULT_CACHE_DIR!r})",
    )
    cache_p.add_argument(
        "--trace-store", default="",
        help="trace artifact directory (default <cache-dir>/traces)",
    )
    cache_p.add_argument(
        "--max-bytes", type=int, default=None,
        help="evict: target size for the trace store",
    )
    cache_p.add_argument(
        "--max-age-s", type=float, default=None,
        help="evict: drop cached results older than this many seconds "
             "(the serving tier's TTL rule, applied by hand)",
    )
    cache_p.set_defaults(func=cmd_cache)

    exp_p = sub.add_parser(
        "experiments",
        help="declarative paper-figure campaigns (list/run/check/pin)",
        parents=[runner],
    )
    exp_p.add_argument(
        "action", choices=("list", "run", "check", "pin"),
        help="list: show the campaign registry; run: execute campaigns "
             "and write campaigns/<name>/ artifacts; check: drift-gate "
             "previously written artifacts without re-simulating; pin: "
             "re-run and refresh the pinned reference numbers",
    )
    exp_p.add_argument(
        "campaigns", nargs="*",
        help="campaign names (metas like 'headline' expand; default: "
             "headline)",
    )
    exp_p.add_argument(
        "--scale", choices=("smoke", "reduced", "full"), default="reduced",
        help="operating point: smoke (CI-fast), reduced (bench scale, "
             "the pinned default), full (paper scale)",
    )
    exp_p.add_argument(
        "--out", default="campaigns",
        help="artifact root; CSV/JSON (and plots when matplotlib is "
             "installed) land under <out>/<campaign>/ (default "
             "'campaigns')",
    )
    exp_p.add_argument(
        "--check", action="store_true",
        help="after running, gate summary metrics against the pinned "
             "references; exit non-zero on drift",
    )
    exp_p.add_argument(
        "--no-plot", action="store_true",
        help="skip plot rendering even when matplotlib is available",
    )
    exp_p.add_argument(
        "--rtol", type=float, default=0.05,
        help="relative tolerance written for newly pinned metrics "
             "(pin action only; existing tolerances are kept; "
             "default 0.05)",
    )
    exp_p.add_argument(
        "--span-out", default="",
        help="write a span-tree JSONL sidecar for `repro trace`",
    )
    exp_p.set_defaults(func=cmd_experiments)

    serve_p = sub.add_parser(
        "serve", help="run the persistent HTTP/JSON simulation daemon",
        parents=[runner],
    )
    serve_p.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default 127.0.0.1)",
    )
    serve_p.add_argument(
        "--port", type=int, default=8787,
        help="bind port; 0 picks an ephemeral port and prints it "
             "(default 8787)",
    )
    serve_p.add_argument(
        "--quota", type=int, default=8,
        help="max active jobs per client; 0 disables quotas (default 8)",
    )
    serve_p.add_argument(
        "--ttl", type=float, default=3600.0,
        help="retention of finished jobs and cached results in seconds; "
             "<= 0 disables the TTL sweep (default 3600)",
    )
    serve_p.set_defaults(func=cmd_serve)

    submit_p = sub.add_parser(
        "submit", help="submit a scenario to a running daemon",
        parents=[scenario, fault, obs],
    )
    submit_p.add_argument("--workload", default="graph500")
    submit_p.add_argument(
        "--configs",
        default="monolithic,distributed,nocstar,ideal",
        help="comma-separated configuration names "
             "(see `repro configs` for the registry)",
    )
    submit_p.add_argument(
        "--url", default="http://127.0.0.1:8787",
        help="daemon base URL (default http://127.0.0.1:8787)",
    )
    submit_p.add_argument(
        "--client", default="cli",
        help="client id for quota accounting (default 'cli')",
    )
    submit_p.add_argument(
        "--service-class", choices=("interactive", "batch"),
        default="interactive",
        help="admission priority class (default interactive)",
    )
    submit_p.add_argument(
        "--no-wait", action="store_true",
        help="print the job id and return instead of waiting for the "
             "result (poll with `repro status JOB_ID`)",
    )
    submit_p.add_argument(
        "--timeout", type=float, default=300.0,
        help="seconds to wait for the result (default 300)",
    )
    submit_p.set_defaults(func=cmd_submit)

    status_p = sub.add_parser(
        "status", help="job status / daemon health of a running daemon"
    )
    status_p.add_argument(
        "job_id", nargs="?", default="",
        help="job id from `repro submit`; omit for daemon health+metrics",
    )
    status_p.add_argument(
        "--url", default="http://127.0.0.1:8787",
        help="daemon base URL (default http://127.0.0.1:8787)",
    )
    status_p.add_argument(
        "--watch", type=float, default=0.0, metavar="N",
        help="poll every N seconds until the job reaches a terminal "
             "state (needs a job id; default off)",
    )
    status_p.set_defaults(func=cmd_status)

    trace_p = sub.add_parser(
        "trace", help="render a span-tree JSONL sidecar (--span-out)"
    )
    trace_p.add_argument(
        "path",
        help="span sidecar written by --span-out (run/sweep/faults/"
             "submit)",
    )
    trace_p.add_argument(
        "--top", type=int, default=5,
        help="rows in the critical-path table (default 5)",
    )
    trace_p.set_defaults(func=cmd_trace)

    wl_p = sub.add_parser("workloads", help="list the workload suite")
    wl_p.set_defaults(func=cmd_workloads)

    traffic_p = sub.add_parser("traffic", help="synthetic NoC traffic sweep")
    traffic_p.add_argument("--tiles", type=int, default=64)
    traffic_p.add_argument("--cycles", type=int, default=2_000)
    traffic_p.add_argument("--hpc-max", type=int, default=16)
    traffic_p.set_defaults(func=cmd_traffic)

    cfg_p = sub.add_parser("configs", help="show the Table II lineup")
    cfg_p.add_argument("--cores", type=int, default=16)
    cfg_p.set_defaults(func=cmd_configs)

    report_p = sub.add_parser(
        "report", help="render metrics/events from obs or telemetry JSONL"
    )
    report_p.add_argument(
        "paths", nargs="+",
        help="obs files (--trace-out) and/or Runner telemetry.jsonl files",
    )
    report_p.add_argument(
        "--top", type=int, default=8,
        help="rows per heatmap/slice table (default 8)",
    )
    report_p.add_argument(
        "--window", default="",
        help="only count events with START <= cycle < END, e.g. 0:50000",
    )
    report_p.set_defaults(func=cmd_report)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early — not an error.
        return 0


if __name__ == "__main__":
    sys.exit(main())
