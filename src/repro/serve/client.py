"""Blocking HTTP client for the ``repro serve`` daemon.

Stdlib-only (``urllib``), one request per call, schema-checked at every
boundary: payloads are built by / decoded into the dataclasses of
:mod:`repro.serve.schema`, so a version mismatch with the server is a
:class:`~repro.serve.schema.SchemaError` rather than a misparsed field.

Used by the ``repro submit`` / ``repro status`` CLI commands, the
serve-smoke tooling, the load benchmark, and the test suite — i.e. it
is *the* supported way to talk to the daemon from Python.
"""

from __future__ import annotations

import errno
import json
import time
import urllib.error
import urllib.request
from contextlib import contextmanager
from dataclasses import replace
from typing import Dict, Iterator, Optional, Tuple

from repro.obs.spans import Span, Tracer
from repro.serve.schema import (
    JobResult,
    JobStatus,
    SubmitRequest,
)


class ServeError(RuntimeError):
    """A non-2xx daemon response (or an unreachable daemon)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServeClient:
    """A thin, schema-aware client bound to one daemon base URL.

    With a :class:`~repro.obs.spans.Tracer`, every endpoint call is
    recorded as a span, ``submit`` propagates the trace context over
    the wire, and terminal ``wait``/``watch`` statuses merge the
    daemon's spans back into the tracer — one sidecar, one tree.
    Without one, behaviour (and every byte on the wire except the
    absent ``trace_context`` field) is unchanged.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 60.0,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.tracer = tracer
        #: Current root span; endpoint spans parent under it when set.
        self._root: Optional[Span] = None

    # ------------------------------------------------------------------
    # transport

    # Connection-burst errnos worth one more try: a reset/aborted
    # handshake means the daemon's accept queue momentarily overflowed,
    # not that it is down (refused/timeout errors still fail fast).
    # Retrying is safe at every endpoint — submission is idempotent by
    # design (identical requests coalesce onto the same job_id).
    _TRANSIENT_ERRNOS = frozenset({errno.ECONNRESET, errno.ECONNABORTED})
    _TRANSIENT_RETRIES = 3

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict] = None,
        accept: str = "application/json",
    ) -> Tuple[int, Dict]:
        body = None
        headers = {"Accept": accept}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=body, headers=headers, method=method
        )
        for attempt in range(self._TRANSIENT_RETRIES + 1):
            try:
                with urllib.request.urlopen(
                    request, timeout=self.timeout
                ) as response:
                    data = response.read()
                    if accept != "application/json":
                        # Non-JSON negotiation (Prometheus text): hand
                        # the body back verbatim.
                        return response.status, {
                            "text": data.decode("utf-8")
                        }
                    return response.status, json.loads(data or b"{}")
            except urllib.error.HTTPError as exc:
                try:
                    decoded = json.loads(exc.read() or b"{}")
                except (json.JSONDecodeError, OSError):
                    decoded = {}
                return exc.code, decoded
            except (urllib.error.URLError, OSError) as exc:
                cause = getattr(exc, "reason", exc)
                transient = (
                    getattr(cause, "errno", None) in self._TRANSIENT_ERRNOS
                )
                if transient and attempt < self._TRANSIENT_RETRIES:
                    time.sleep(0.05 * (attempt + 1))
                    continue
                raise ServeError(
                    0,
                    f"daemon unreachable at {self.base_url}: {exc}",
                ) from None
        raise AssertionError("unreachable")  # pragma: no cover

    def _ok(self, status: int, payload: Dict) -> Dict:
        if status != 200:
            raise ServeError(status, str(payload.get("error", payload)))
        return payload

    # ------------------------------------------------------------------
    # endpoints

    def health(self) -> Dict:
        return self._ok(*self._request("GET", "/v1/healthz"))

    def metrics(self) -> Dict:
        """The daemon's ``serve.*`` metrics snapshot."""
        return self._ok(*self._request("GET", "/v1/metrics"))["metrics"]

    def metrics_text(self) -> str:
        """The same metrics in Prometheus text exposition format.

        Content-negotiated: ``GET /v1/metrics`` with
        ``Accept: text/plain`` (what a Prometheus scraper sends).
        """
        payload = self._ok(
            *self._request("GET", "/v1/metrics", accept="text/plain")
        )
        return payload["text"]

    def submit(self, request: SubmitRequest) -> Dict:
        """Submit; returns ``{job_id, coalesced, units_cached, ...}``."""
        if self.tracer is None:
            return self._ok(
                *self._request("POST", "/v1/submit", request.to_dict())
            )
        with self.tracer.span(
            "client.submit", parent=self._root, workload=request.workload
        ) as span:
            traced = replace(request, trace_context=span.context())
            info = self._ok(
                *self._request("POST", "/v1/submit", traced.to_dict())
            )
            span.attrs["job_id"] = info.get("job_id")
            span.attrs["coalesced"] = bool(info.get("coalesced"))
            return info

    def status(self, job_id: str) -> JobStatus:
        payload = self._ok(*self._request("GET", f"/v1/jobs/{job_id}"))
        return JobStatus.from_dict(payload)

    def result(self, job_id: str) -> JobResult:
        if self.tracer is None:
            payload = self._ok(
                *self._request("GET", f"/v1/jobs/{job_id}/result")
            )
            return JobResult.from_dict(payload)
        with self.tracer.span(
            "client.result", parent=self._root, job_id=job_id
        ):
            payload = self._ok(
                *self._request("GET", f"/v1/jobs/{job_id}/result")
            )
            return JobResult.from_dict(payload)

    def shutdown(self) -> Dict:
        return self._ok(*self._request("POST", "/v1/shutdown"))

    # ------------------------------------------------------------------
    # conveniences

    def wait(
        self,
        job_id: str,
        timeout: float = 300.0,
        poll_s: float = 0.05,
    ) -> JobStatus:
        """Poll until the job reaches a terminal state.

        Polling backs off geometrically from ``poll_s`` to 1 s — kind
        to the daemon under thousands of concurrent clients while
        staying snappy for interactive use.
        """
        span = (
            self.tracer.start("client.wait", parent=self._root, job_id=job_id)
            if self.tracer is not None
            else None
        )
        polls = 0
        try:
            deadline = time.monotonic() + timeout
            delay = poll_s
            while True:
                status = self.status(job_id)
                polls += 1
                if status.done:
                    self._absorb_spans(status)
                    return status
                if time.monotonic() >= deadline:
                    raise TimeoutError(
                        f"job {job_id} still {status.state!r} "
                        f"after {timeout}s"
                    )
                time.sleep(delay)
                delay = min(delay * 1.5, 1.0)
        except BaseException as exc:
            if span is not None:
                span.status = f"error: {type(exc).__name__}"
            raise
        finally:
            if span is not None:
                span.attrs["polls"] = polls
                self.tracer.finish(span)

    def watch(
        self,
        job_id: str,
        interval_s: float = 2.0,
        timeout: Optional[float] = None,
    ) -> Iterator[JobStatus]:
        """Yield status snapshots every ``interval_s`` until terminal.

        The generator form of :meth:`wait` — ``repro status --watch``
        renders each snapshot instead of callers shelling out in a
        loop.  The terminal snapshot is yielded too, then the
        generator returns; with a ``timeout``, :class:`TimeoutError`
        is raised once it elapses.
        """
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        while True:
            status = self.status(job_id)
            yield status
            if status.done:
                self._absorb_spans(status)
                return
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {status.state!r} after {timeout}s"
                )
            time.sleep(interval_s)

    def _absorb_spans(self, status: JobStatus) -> None:
        """Merge daemon-side spans from a terminal status telemetry."""
        if self.tracer is not None and status.done:
            self.tracer.extend(status.telemetry.get("spans") or ())

    @contextmanager
    def request_span(self, **attrs):
        """A ``client.request`` root span parenting endpoint calls.

        Yields the open :class:`~repro.obs.spans.Span` (or ``None``
        without a tracer), so multi-call flows — submit, then wait,
        then result — land under one root the way :meth:`run` does.
        """
        if self.tracer is None:
            yield None
            return
        with self.tracer.span("client.request", **attrs) as root:
            self._root = root
            try:
                yield root
            finally:
                self._root = None

    def run(
        self,
        request: SubmitRequest,
        timeout: float = 300.0,
        poll_s: float = 0.05,
    ) -> JobResult:
        """Submit, wait, and fetch the result in one call."""
        with self.request_span(workload=request.workload) as root:
            job_id = self.submit(request)["job_id"]
            if root is not None:
                root.attrs["job_id"] = job_id
            status = self.wait(job_id, timeout=timeout, poll_s=poll_s)
            if status.state == "failed":
                raise ServeError(500, f"job failed: {status.error}")
            return self.result(job_id)
