"""Blocking HTTP client for the ``repro serve`` daemon.

Stdlib-only (``urllib``), one request per call, schema-checked at every
boundary: payloads are built by / decoded into the dataclasses of
:mod:`repro.serve.schema`, so a version mismatch with the server is a
:class:`~repro.serve.schema.SchemaError` rather than a misparsed field.

Used by the ``repro submit`` / ``repro status`` CLI commands, the
serve-smoke tooling, the load benchmark, and the test suite — i.e. it
is *the* supported way to talk to the daemon from Python.
"""

from __future__ import annotations

import errno
import json
import time
import urllib.error
import urllib.request
from typing import Dict, Optional, Tuple

from repro.serve.schema import (
    JobResult,
    JobStatus,
    SubmitRequest,
)


class ServeError(RuntimeError):
    """A non-2xx daemon response (or an unreachable daemon)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServeClient:
    """A thin, schema-aware client bound to one daemon base URL."""

    def __init__(self, base_url: str, timeout: float = 60.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    # transport

    # Connection-burst errnos worth one more try: a reset/aborted
    # handshake means the daemon's accept queue momentarily overflowed,
    # not that it is down (refused/timeout errors still fail fast).
    # Retrying is safe at every endpoint — submission is idempotent by
    # design (identical requests coalesce onto the same job_id).
    _TRANSIENT_ERRNOS = frozenset({errno.ECONNRESET, errno.ECONNABORTED})
    _TRANSIENT_RETRIES = 3

    def _request(
        self, method: str, path: str, payload: Optional[Dict] = None
    ) -> Tuple[int, Dict]:
        body = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=body, headers=headers, method=method
        )
        for attempt in range(self._TRANSIENT_RETRIES + 1):
            try:
                with urllib.request.urlopen(
                    request, timeout=self.timeout
                ) as response:
                    return response.status, json.loads(
                        response.read() or b"{}"
                    )
            except urllib.error.HTTPError as exc:
                try:
                    decoded = json.loads(exc.read() or b"{}")
                except (json.JSONDecodeError, OSError):
                    decoded = {}
                return exc.code, decoded
            except (urllib.error.URLError, OSError) as exc:
                cause = getattr(exc, "reason", exc)
                transient = (
                    getattr(cause, "errno", None) in self._TRANSIENT_ERRNOS
                )
                if transient and attempt < self._TRANSIENT_RETRIES:
                    time.sleep(0.05 * (attempt + 1))
                    continue
                raise ServeError(
                    0,
                    f"daemon unreachable at {self.base_url}: {exc}",
                ) from None
        raise AssertionError("unreachable")  # pragma: no cover

    def _ok(self, status: int, payload: Dict) -> Dict:
        if status != 200:
            raise ServeError(status, str(payload.get("error", payload)))
        return payload

    # ------------------------------------------------------------------
    # endpoints

    def health(self) -> Dict:
        return self._ok(*self._request("GET", "/v1/healthz"))

    def metrics(self) -> Dict:
        """The daemon's ``serve.*`` metrics snapshot."""
        return self._ok(*self._request("GET", "/v1/metrics"))["metrics"]

    def submit(self, request: SubmitRequest) -> Dict:
        """Submit; returns ``{job_id, coalesced, units_cached, ...}``."""
        return self._ok(
            *self._request("POST", "/v1/submit", request.to_dict())
        )

    def status(self, job_id: str) -> JobStatus:
        payload = self._ok(*self._request("GET", f"/v1/jobs/{job_id}"))
        return JobStatus.from_dict(payload)

    def result(self, job_id: str) -> JobResult:
        payload = self._ok(
            *self._request("GET", f"/v1/jobs/{job_id}/result")
        )
        return JobResult.from_dict(payload)

    def shutdown(self) -> Dict:
        return self._ok(*self._request("POST", "/v1/shutdown"))

    # ------------------------------------------------------------------
    # conveniences

    def wait(
        self,
        job_id: str,
        timeout: float = 300.0,
        poll_s: float = 0.05,
    ) -> JobStatus:
        """Poll until the job reaches a terminal state.

        Polling backs off geometrically from ``poll_s`` to 1 s — kind
        to the daemon under thousands of concurrent clients while
        staying snappy for interactive use.
        """
        deadline = time.monotonic() + timeout
        delay = poll_s
        while True:
            status = self.status(job_id)
            if status.done:
                return status
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {status.state!r} after {timeout}s"
                )
            time.sleep(delay)
            delay = min(delay * 1.5, 1.0)

    def run(
        self,
        request: SubmitRequest,
        timeout: float = 300.0,
        poll_s: float = 0.05,
    ) -> JobResult:
        """Submit, wait, and fetch the result in one call."""
        job_id = self.submit(request)["job_id"]
        status = self.wait(job_id, timeout=timeout, poll_s=poll_s)
        if status.state == "failed":
            raise ServeError(500, f"job failed: {status.error}")
        return self.result(job_id)
