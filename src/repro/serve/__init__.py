"""``repro.serve`` — simulation-as-a-service over the Runner substrate.

The serving tier wraps the execution machinery grown by the runner PRs
into a persistent request/response service:

* :mod:`repro.serve.schema` — the versioned wire contract
  (:class:`SubmitRequest` / :class:`JobStatus` / :class:`JobResult`,
  :data:`SCHEMA_VERSION`);
* :mod:`repro.serve.jobs` — the async :class:`JobManager`: request
  coalescing keyed on the result-cache unit key, (service class,
  longest-first) admission over a long-lived worker pool, per-client
  quotas, TTL retention, ``serve.*`` metrics;
* :mod:`repro.serve.daemon` — the asyncio HTTP/JSON daemon
  (``repro serve``) and the in-process :class:`BackgroundDaemon`
  embedding harness;
* :mod:`repro.serve.client` — the blocking :class:`ServeClient` behind
  ``repro submit`` / ``repro status``.

Invariant: a scenario submitted over HTTP returns the byte-identical
:class:`~repro.sim.results.RunResult` a direct
:class:`~repro.exec.runner.Runner` call produces (proven against the
differential corpus in ``tests/serve/test_http.py``).
"""

from repro.serve.client import ServeClient, ServeError
from repro.serve.daemon import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    BackgroundDaemon,
    ServeDaemon,
    run_daemon,
)
from repro.serve.jobs import (
    DEFAULT_TTL_S,
    JobFailedError,
    JobManager,
    JobNotDoneError,
    QuotaExceededError,
    ServeConfig,
    UnknownJobError,
)
from repro.serve.schema import (
    JOB_STATES,
    SCHEMA_VERSION,
    SERVICE_CLASSES,
    JobResult,
    JobStatus,
    SchemaError,
    SubmitRequest,
    decode_result,
    encode_result,
)

__all__ = [
    "SCHEMA_VERSION",
    "SERVICE_CLASSES",
    "JOB_STATES",
    "SchemaError",
    "SubmitRequest",
    "JobStatus",
    "JobResult",
    "encode_result",
    "decode_result",
    "ServeConfig",
    "JobManager",
    "QuotaExceededError",
    "UnknownJobError",
    "JobNotDoneError",
    "JobFailedError",
    "DEFAULT_TTL_S",
    "ServeDaemon",
    "BackgroundDaemon",
    "run_daemon",
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "ServeClient",
    "ServeError",
]
