"""Async job manager: the execution core of the serving tier.

The :class:`JobManager` turns submissions into exactly-once executions:

* **coalescing** — a job's identity is the canonical form of its
  :class:`~repro.serve.schema.SubmitRequest`; identical submissions
  (from any client, at any moment while the job is retained) attach to
  the same job.  Below the job, each
  :class:`~repro.sim.scenario.RunUnit` grain is keyed by the *existing*
  result-cache key (:func:`repro.exec.cache.unit_key`), so two
  different jobs that overlap in units — e.g. lineups sharing a
  baseline — share those executions too, and everything dedups against
  CLI runs pointed at the same cache directory;
* **admission & scheduling** — queued executions are dispatched over a
  long-lived worker pool (processes; ``workers=0`` is an in-process
  thread mode for embedding and tests) in (service class,
  longest-first) order: interactive jobs always leave the queue before
  batch jobs, and within a class the PR 5 cost model
  (:func:`repro.exec.runner.unit_cost`) orders work longest-first so
  stragglers start early;
* **quotas** — each client may participate in at most ``quota`` active
  jobs; excess submissions are rejected with
  :class:`QuotaExceededError` (HTTP 429 at the daemon);
* **TTL retention** — finished job records and result-cache entries
  older than ``result_ttl_s`` are evicted by a periodic sweep
  (:meth:`JobManager.sweep`, also callable directly).  Eviction is
  safe by construction: results are content-addressed, so the worst
  case is one re-simulation;
* **observability** — a :class:`~repro.obs.MetricsRegistry` under the
  ``serve.*`` namespace (submission/coalescing/cache counters,
  queue/exec/job latency histograms, depth gauges) plus per-job
  telemetry snapshots embedded in every
  :class:`~repro.serve.schema.JobStatus`.

Determinism: workers run :func:`repro.exec.runner.execute_unit` — the
same body Runner pool workers execute — so an HTTP-submitted scenario
returns the byte-identical RunResult the CLI produces.
"""

from __future__ import annotations

import asyncio
import heapq
import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Set, Tuple

from repro.exec.cache import ResultCache, unit_key
from repro.exec.runner import execute_unit, unit_cost
from repro.exec.trace_store import TraceStore
from repro.obs import MetricsRegistry
from repro.obs.spans import new_id, span_record
from repro.serve.schema import (
    SERVICE_CLASSES,
    JobResult,
    JobStatus,
    SubmitRequest,
)
from repro.sim.engine import ENGINE_VERSION
from repro.sim.results import RunResult
from repro.sim.scenario import RunUnit

#: Default retention of finished jobs and their cached results.
DEFAULT_TTL_S = 3600.0


class QuotaExceededError(RuntimeError):
    """A client tried to exceed its active-job quota."""

    def __init__(self, client_id: str, active: int, quota: int) -> None:
        super().__init__(
            f"client {client_id!r} has {active} active job(s); quota is "
            f"{quota}"
        )
        self.client_id = client_id
        self.active = active
        self.quota = quota


class UnknownJobError(KeyError):
    """No such job id (never created, or TTL-evicted)."""


class JobNotDoneError(RuntimeError):
    """Result requested before the job finished."""


class JobFailedError(RuntimeError):
    """Result requested for a job whose execution failed."""


@dataclass(frozen=True)
class ServeConfig:
    """Daemon-side knobs, all orthogonal to simulated outcomes."""

    #: Worker processes.  ``0`` runs executions in a single in-process
    #: thread (embedding/tests); ``>= 1`` uses a long-lived process pool.
    workers: int = 2
    #: Max active jobs a single client may participate in (0 = no limit).
    quota: int = 8
    #: Retention of finished jobs + result-cache entries; None disables
    #: the sweep entirely.
    result_ttl_s: Optional[float] = DEFAULT_TTL_S
    #: Content-addressed result cache directory (None = in-flight
    #: coalescing only, no cross-run dedup).
    cache_dir: Optional[str] = None
    #: Materialized trace-artifact store (None = build in workers).
    trace_store: Optional[str] = None
    #: Seconds between TTL sweeps (None = derived from the TTL).
    sweep_interval_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ValueError(f"workers must be >= 0 (got {self.workers})")
        if self.quota < 0:
            raise ValueError(f"quota must be >= 0 (got {self.quota})")
        if self.result_ttl_s is not None and self.result_ttl_s < 0:
            raise ValueError("result_ttl_s must be >= 0 or None")


class _Execution:
    """One in-flight or finished unit execution, shared across jobs."""

    __slots__ = (
        "key", "unit", "cost", "rank", "artifact", "state", "result",
        "error", "build_s", "sim_s", "created", "started", "finished",
        "created_ts", "started_ts", "finished_ts",
        "done_event", "job_ids", "cached",
    )

    def __init__(
        self, key: str, unit: RunUnit, rank: int, artifact: Optional[str]
    ) -> None:
        self.key = key
        self.unit = unit
        self.cost = unit_cost(unit)
        self.rank = rank
        self.artifact = artifact
        self.state = "queued"  # queued | running | done | failed
        self.result: Optional[RunResult] = None
        self.error: Optional[str] = None
        self.build_s = 0.0
        self.sim_s = 0.0
        self.created = time.monotonic()
        self.started: Optional[float] = None
        self.finished: Optional[float] = None
        # Wall-clock twins of the monotonic fields, for span records
        # only (durations keep using the monotonic clock).
        self.created_ts = time.time()
        self.started_ts: Optional[float] = None
        self.finished_ts: Optional[float] = None
        self.done_event = asyncio.Event()
        self.job_ids: Set[str] = set()
        self.cached = False

    @classmethod
    def resolved(cls, key: str, unit: RunUnit, result: RunResult) -> "_Execution":
        """An execution satisfied instantly from the result cache."""
        execution = cls(key, unit, rank=0, artifact=None)
        execution.state = "done"
        execution.result = result
        execution.cached = True
        execution.started = execution.created
        execution.finished = execution.created
        execution.started_ts = execution.created_ts
        execution.finished_ts = execution.created_ts
        execution.done_event.set()
        return execution


class _Job:
    """One coalesced submission: a lineup of executions plus clients."""

    __slots__ = (
        "job_id", "request", "clients", "executions", "created", "finished",
        "created_ts", "finished_ts", "trace", "span_id", "extra_spans",
    )

    #: Cap on coalesce/reject side-spans retained per job — repeat
    #: coalesced submissions must not grow a job record without bound.
    MAX_EXTRA_SPANS = 64

    def __init__(self, job_id: str, request: SubmitRequest) -> None:
        self.job_id = job_id
        self.request = request
        self.clients: Set[str] = {request.client_id}
        self.executions: List[_Execution] = []
        self.created = time.monotonic()
        self.finished: Optional[float] = None
        self.created_ts = time.time()
        self.finished_ts: Optional[float] = None
        #: First trace context seen for this job (creator's, or the
        #: first traced coalescer's) — parents the server span tree.
        self.trace: Optional[Dict[str, str]] = (
            dict(request.trace_context) if request.trace_context else None
        )
        #: span_id of the synthesized ``server.submit`` root.
        self.span_id = new_id()
        #: Point-event span records (job/unit coalesce hits).
        self.extra_spans: List[Dict[str, object]] = []

    def note_span(self, record: Dict[str, object]) -> None:
        if len(self.extra_spans) < self.MAX_EXTRA_SPANS:
            self.extra_spans.append(record)

    @property
    def state(self) -> str:
        if any(e.state == "failed" for e in self.executions):
            return "failed"
        if all(e.state == "done" for e in self.executions):
            return "done"
        if any(e.state != "queued" for e in self.executions):
            return "running"
        return "queued"

    @property
    def active(self) -> bool:
        return self.state in ("queued", "running")


class JobManager:
    """Owns the queue, the pool, the jobs, and the serve metrics."""

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig()
        self.registry = MetricsRegistry()
        self.cache: Optional[ResultCache] = (
            ResultCache(self.config.cache_dir)
            if self.config.cache_dir
            else None
        )
        self.trace_store: Optional[TraceStore] = (
            TraceStore(self.config.trace_store)
            if self.config.trace_store
            else None
        )
        self._jobs: Dict[str, _Job] = {}
        #: Span records with no job to live on (quota rejections),
        #: bounded so a reject storm cannot grow the manager.
        self.span_log: Deque[Dict[str, object]] = deque(maxlen=256)
        #: key -> queued/running execution (the coalescing map).
        self._inflight: Dict[str, _Execution] = {}
        self._heap: List[Tuple[int, float, int, _Execution]] = []
        self._seq = 0
        self._cond: Optional[asyncio.Condition] = None
        self._consumers: List[asyncio.Task] = []
        self._sweeper: Optional[asyncio.Task] = None
        self._pool = None
        self._started = False

    # ------------------------------------------------------------------
    # lifecycle

    async def start(self) -> None:
        """Create the pool and the consumer/sweeper tasks."""
        if self._started:
            return
        self._cond = asyncio.Condition()
        if self.config.workers >= 1:
            self._pool = ProcessPoolExecutor(max_workers=self.config.workers)
        else:
            self._pool = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-serve-inline"
            )
        slots = max(1, self.config.workers)
        self._consumers = [
            asyncio.ensure_future(self._consume()) for _ in range(slots)
        ]
        if self.config.result_ttl_s is not None:
            self._sweeper = asyncio.ensure_future(self._sweep_loop())
        self._started = True

    async def close(self) -> None:
        """Cancel tasks and shut the pool down; idempotent."""
        if not self._started:
            return
        self._started = False
        tasks = list(self._consumers)
        if self._sweeper is not None:
            tasks.append(self._sweeper)
        for task in tasks:
            task.cancel()
        for task in tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._consumers = []
        self._sweeper = None
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    # ------------------------------------------------------------------
    # submission

    async def submit(self, request: SubmitRequest) -> Tuple[str, Dict]:
        """Admit one request; returns ``(job_id, info)``.

        ``info`` reports what admission did: ``coalesced`` (attached to
        an existing job), ``units_cached`` (grains satisfied from the
        result cache), ``units_coalesced`` (grains attached to another
        job's in-flight executions), ``state``.
        """
        if not self._started:
            raise RuntimeError("JobManager.start() has not been awaited")
        self._count("serve.submissions")
        job_id = request.job_id()
        job = self._jobs.get(job_id)
        if job is not None:
            if request.client_id not in job.clients and job.active:
                self._check_quota(request)
            job.clients.add(request.client_id)
            self._count("serve.jobs_coalesced")
            if request.trace_context:
                now_ts = time.time()
                job.note_span(
                    span_record(
                        name="server.coalesced",
                        trace_id=request.trace_context["trace_id"],
                        parent_id=request.trace_context.get("parent_id"),
                        start_s=now_ts,
                        end_s=now_ts,
                        attrs={
                            "job_id": job_id,
                            "client_id": request.client_id,
                        },
                    )
                )
                if job.trace is None:
                    job.trace = dict(request.trace_context)
            return job_id, {
                "coalesced": True,
                "units_cached": sum(1 for e in job.executions if e.cached),
                "units_coalesced": 0,
                "state": job.state,
            }

        self._check_quota(request)
        # Scenario construction validates workload/config names and
        # raises SchemaError -> HTTP 400 before anything is enqueued.
        scenario = request.scenario()
        units = scenario.units()
        rank = SERVICE_CLASSES.index(request.service_class)
        job = _Job(job_id, request)
        cached = coalesced = 0
        fresh: List[_Execution] = []
        for unit in units:
            key = unit_key(unit, ENGINE_VERSION)
            execution = self._inflight.get(key)
            if execution is not None:
                coalesced += 1
                self._count("serve.units_coalesced")
                if job.trace is not None:
                    now_ts = time.time()
                    job.note_span(
                        span_record(
                            name="unit.coalesced",
                            trace_id=job.trace["trace_id"],
                            parent_id=job.span_id,
                            start_s=now_ts,
                            end_s=now_ts,
                            attrs={"config": unit.config.name},
                        )
                    )
                if rank < execution.rank and execution.state == "queued":
                    # A higher-priority class wants this unit: lazily
                    # re-push; stale heap entries are skipped on pop.
                    execution.rank = rank
                    await self._push(execution)
            else:
                hit = self.cache.get(key) if self.cache is not None else None
                if hit is not None:
                    cached += 1
                    self._count("serve.units_cache_hits")
                    execution = _Execution.resolved(key, unit, hit)
                else:
                    execution = _Execution(
                        key, unit, rank, await self._stage(unit)
                    )
                    fresh.append(execution)
            execution.job_ids.add(job_id)
            job.executions.append(execution)
        self._jobs[job_id] = job
        for execution in fresh:
            self._inflight[execution.key] = execution
            await self._push(execution)
        if job.state == "done":
            job.finished = time.monotonic()
            job.finished_ts = time.time()
            self._count("serve.completed_jobs")
        self._refresh_gauges()
        return job_id, {
            "coalesced": False,
            "units_cached": cached,
            "units_coalesced": coalesced,
            "state": job.state,
        }

    def _check_quota(self, request: SubmitRequest) -> None:
        if self.config.quota <= 0:
            return
        client_id = request.client_id
        active = sum(
            1
            for job in self._jobs.values()
            if job.active and client_id in job.clients
        )
        if active >= self.config.quota:
            self._count("serve.quota_rejections")
            if request.trace_context:
                # No job record to live on — the rejection span lands
                # in the bounded manager-level log instead.
                now_ts = time.time()
                self.span_log.append(
                    span_record(
                        name="server.quota_reject",
                        trace_id=request.trace_context["trace_id"],
                        parent_id=request.trace_context.get("parent_id"),
                        start_s=now_ts,
                        end_s=now_ts,
                        status="error: QuotaExceededError",
                        attrs={
                            "client_id": client_id,
                            "active": active,
                            "quota": self.config.quota,
                        },
                    )
                )
            raise QuotaExceededError(client_id, active, self.config.quota)

    async def _stage(self, unit: RunUnit) -> Optional[str]:
        """Materialize the unit's trace artifact (build-once), if any."""
        if self.trace_store is None:
            return None
        loop = asyncio.get_running_loop()
        start = time.monotonic()
        path, built = await loop.run_in_executor(
            None, self.trace_store.ensure, unit.build_signature()
        )
        if built:
            self._count("serve.trace_builds")
            self.registry.histogram("serve.trace_build_ms").observe(
                (time.monotonic() - start) * 1000.0
            )
        return path

    # ------------------------------------------------------------------
    # queue & dispatch

    async def _push(self, execution: _Execution) -> None:
        async with self._cond:
            self._seq += 1
            heapq.heappush(
                self._heap,
                (execution.rank, -execution.cost, self._seq, execution),
            )
            self._cond.notify()

    async def _pop(self) -> _Execution:
        async with self._cond:
            while True:
                while self._heap:
                    _, _, _, execution = heapq.heappop(self._heap)
                    if execution.state == "queued":
                        execution.state = "running"
                        execution.started = time.monotonic()
                        execution.started_ts = time.time()
                        return execution
                await self._cond.wait()

    async def _consume(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            execution = await self._pop()
            self._count("serve.executions")
            self.registry.histogram("serve.queue_ms").observe(
                (execution.started - execution.created) * 1000.0
            )
            self._refresh_gauges()
            try:
                result, build_s, sim_s = await loop.run_in_executor(
                    self._pool, execute_unit, execution.unit,
                    execution.artifact,
                )
            except asyncio.CancelledError:
                execution.state = "queued"
                execution.started = None
                execution.started_ts = None
                await self._push(execution)
                raise
            except Exception as exc:  # worker death, engine error
                execution.state = "failed"
                execution.error = f"{type(exc).__name__}: {exc}"
                self._count("serve.failed_executions")
            else:
                execution.state = "done"
                execution.result = result
                execution.build_s = build_s
                execution.sim_s = sim_s
                if self.cache is not None:
                    self.cache.put(execution.key, result)
                self.registry.histogram("serve.exec_ms").observe(
                    (build_s + sim_s) * 1000.0
                )
            execution.finished = time.monotonic()
            execution.finished_ts = time.time()
            execution.done_event.set()
            self._inflight.pop(execution.key, None)
            self._settle_jobs(execution)
            self._refresh_gauges()

    def _settle_jobs(self, execution: _Execution) -> None:
        for job_id in execution.job_ids:
            job = self._jobs.get(job_id)
            if job is None or job.finished is not None:
                continue
            state = job.state
            if state in ("done", "failed"):
                job.finished = time.monotonic()
                job.finished_ts = time.time()
                self._count(
                    "serve.completed_jobs"
                    if state == "done"
                    else "serve.failed_jobs"
                )
                self.registry.histogram("serve.job_ms").observe(
                    (job.finished - job.created) * 1000.0
                )

    def _count(self, name: str, n: int = 1) -> None:
        self.registry.counter(name).inc(n)

    def _refresh_gauges(self) -> None:
        self.registry.gauge("serve.queue_depth").set(
            sum(1 for e in self._inflight.values() if e.state == "queued")
        )
        self.registry.gauge("serve.inflight_executions").set(
            len(self._inflight)
        )
        self.registry.gauge("serve.active_jobs").set(
            sum(1 for job in self._jobs.values() if job.active)
        )
        self.registry.gauge("serve.retained_jobs").set(len(self._jobs))

    # ------------------------------------------------------------------
    # inspection

    def _job(self, job_id: str) -> _Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise UnknownJobError(job_id)
        return job

    def status(self, job_id: str) -> JobStatus:
        """The current :class:`JobStatus` snapshot of one job."""
        job = self._job(job_id)
        now = time.monotonic()
        started = [e.started for e in job.executions if e.started is not None]
        first_start = min(started) if started else None
        if first_start is None:
            queued_s = now - job.created
            run_s = 0.0
        else:
            queued_s = max(0.0, first_start - job.created)
            run_s = (job.finished or now) - first_start
        error = next(
            (e.error for e in job.executions if e.state == "failed"), None
        )
        telemetry = {
            "engine": ENGINE_VERSION,
            "units": [
                {
                    "config": e.unit.config.name,
                    "state": e.state,
                    "cache": "hit" if e.cached else "miss",
                    "cost": e.cost,
                    "build_s": round(e.build_s, 6),
                    "sim_s": round(e.sim_s, 6),
                }
                for e in job.executions
            ],
        }
        spans = self._job_spans(job)
        if spans is not None:
            telemetry["spans"] = spans
        return JobStatus(
            job_id=job.job_id,
            state=job.state,
            workload=job.request.workload,
            configs=job.request.configs,
            service_class=job.request.service_class,
            clients=tuple(sorted(job.clients)),
            units_total=len(job.executions),
            units_done=sum(1 for e in job.executions if e.state == "done"),
            units_cached=sum(1 for e in job.executions if e.cached),
            queued_s=round(queued_s, 6),
            run_s=round(run_s, 6),
            error=error,
            telemetry=telemetry,
        )

    def _job_spans(self, job: _Job) -> Optional[List[Dict[str, object]]]:
        """The server-side span tree of one traced job (else ``None``).

        Synthesized on demand from the wall-clock twins of the
        monotonic lifecycle timestamps — nothing here runs unless the
        submission carried a ``trace_context``, and nothing here is
        ever read back by the manager, so tracing stays a pure
        observer.  The ``unit.build``/``unit.sim`` children are
        anchored at the tail of ``unit.exec`` using the worker's
        schema-3 ``build_s``/``sim_s`` split (the executor hand-off
        before them is real queue/pickle time, rendered as the exec
        span's gap).
        """
        if job.trace is None:
            return None
        trace_id = job.trace["trace_id"]
        now_ts = time.time()
        end_ts = job.finished_ts if job.finished_ts is not None else now_ts
        records = [
            span_record(
                name="server.submit",
                trace_id=trace_id,
                span_id=job.span_id,
                parent_id=job.trace.get("parent_id"),
                start_s=job.created_ts,
                end_s=end_ts,
                attrs={"job_id": job.job_id, "state": job.state},
            )
        ]
        for e in job.executions:
            config = e.unit.config.name
            if e.cached:
                records.append(
                    span_record(
                        name="unit.cache_hit",
                        trace_id=trace_id,
                        parent_id=job.span_id,
                        start_s=e.created_ts,
                        end_s=e.created_ts,
                        attrs={"config": config},
                    )
                )
                continue
            queue_end = e.started_ts if e.started_ts is not None else end_ts
            records.append(
                span_record(
                    name="unit.queue",
                    trace_id=trace_id,
                    parent_id=job.span_id,
                    start_s=e.created_ts,
                    end_s=queue_end,
                    attrs={"config": config, "cost": e.cost},
                )
            )
            if e.started_ts is None:
                continue
            exec_end = (
                e.finished_ts if e.finished_ts is not None else now_ts
            )
            exec_id = new_id()
            records.append(
                span_record(
                    name="unit.exec",
                    trace_id=trace_id,
                    span_id=exec_id,
                    parent_id=job.span_id,
                    start_s=e.started_ts,
                    end_s=exec_end,
                    status=(
                        f"error: {e.error}" if e.state == "failed" else "ok"
                    ),
                    attrs={"config": config, "state": e.state},
                )
            )
            if e.state == "done" and (e.build_s > 0.0 or e.sim_s > 0.0):
                sim_start = max(e.started_ts, exec_end - e.sim_s)
                build_start = max(
                    e.started_ts, sim_start - e.build_s
                )
                records.append(
                    span_record(
                        name="unit.build",
                        trace_id=trace_id,
                        parent_id=exec_id,
                        start_s=build_start,
                        end_s=sim_start,
                        attrs={"config": config},
                    )
                )
                records.append(
                    span_record(
                        name="unit.sim",
                        trace_id=trace_id,
                        parent_id=exec_id,
                        start_s=sim_start,
                        end_s=exec_end,
                        attrs={"config": config},
                    )
                )
        records.extend(job.extra_spans)
        return records

    def storage_stats(self) -> Dict[str, object]:
        """Cache-pressure stats for ``/v1/healthz``.

        ``results`` mirrors :meth:`ResultCache.stats` and ``traces``
        :meth:`TraceStore.stats`; a disabled store reports ``None`` so
        operators can tell "empty" from "not configured".
        """
        return {
            "results": (
                self.cache.stats() if self.cache is not None else None
            ),
            "traces": (
                self.trace_store.stats()
                if self.trace_store is not None
                else None
            ),
        }

    def result(self, job_id: str) -> JobResult:
        """The completed :class:`JobResult`; raises until it exists."""
        job = self._job(job_id)
        state = job.state
        if state == "failed":
            error = next(
                (e.error for e in job.executions if e.state == "failed"),
                "unknown failure",
            )
            raise JobFailedError(error)
        if state != "done":
            raise JobNotDoneError(f"job {job_id} is {state}")
        results = {
            e.unit.config.name: e.result for e in job.executions
        }
        # Results are keyed by built-config names, which can differ
        # from the request's registry keys ("monolithic" builds
        # "monolithic-mesh") — the baseline must use the same keyspace.
        return JobResult(
            job_id=job.job_id,
            workload=job.request.workload,
            baseline=job.executions[0].unit.config.name,
            results=results,
        )

    async def wait(self, job_id: str, timeout: Optional[float] = None) -> JobStatus:
        """Block until the job finishes (or ``timeout`` elapses)."""
        job = self._job(job_id)
        waiters = [
            e.done_event.wait()
            for e in job.executions
            if not e.done_event.is_set()
        ]
        if waiters:
            await asyncio.wait_for(asyncio.gather(*waiters), timeout)
        return self.status(job_id)

    def metrics_snapshot(self) -> Dict[str, object]:
        """The ``serve.*`` registry snapshot (gauges refreshed first)."""
        self._refresh_gauges()
        return self.registry.snapshot()

    # ------------------------------------------------------------------
    # retention

    def sweep(self, now: Optional[float] = None) -> Dict[str, int]:
        """Evict finished jobs and cache entries older than the TTL.

        Exposed (and ``now``-injectable) so tests and operators can
        trigger retention deterministically; the background sweeper
        calls this on an interval.
        """
        ttl = self.config.result_ttl_s
        evicted = {"jobs": 0, "cache_entries": 0}
        if ttl is None:
            return evicted
        if now is None:
            now = time.monotonic()
        for job_id, job in list(self._jobs.items()):
            if job.finished is not None and now - job.finished > ttl:
                del self._jobs[job_id]
                evicted["jobs"] += 1
        if self.cache is not None:
            evicted["cache_entries"] = self.cache.evict_older_than(ttl)
        if evicted["jobs"]:
            self._count("serve.jobs_evicted", evicted["jobs"])
        if evicted["cache_entries"]:
            self._count("serve.cache_evictions", evicted["cache_entries"])
        self._refresh_gauges()
        return evicted

    async def _sweep_loop(self) -> None:
        ttl = self.config.result_ttl_s
        interval = self.config.sweep_interval_s
        if interval is None:
            interval = max(1.0, (ttl or DEFAULT_TTL_S) / 4.0)
        while True:
            await asyncio.sleep(interval)
            self.sweep()
