"""``repro serve`` — the asyncio HTTP/JSON daemon over the Runner.

A deliberately small, dependency-free HTTP/1.0 server (stdlib asyncio
only; one request per connection, ``Connection: close``) exposing the
versioned API of :mod:`repro.serve.schema`:

====== ============================ ========================================
Method Path                         Meaning
====== ============================ ========================================
GET    ``/v1/healthz``              liveness + schema/engine versions
POST   ``/v1/submit``               submit a :class:`SubmitRequest`;
                                    returns ``{job_id, coalesced, ...}``
GET    ``/v1/jobs/<id>``            :class:`JobStatus` snapshot
GET    ``/v1/jobs/<id>/result``     :class:`JobResult` (409 until done)
GET    ``/v1/metrics``              the ``serve.*`` metrics snapshot
POST   ``/v1/shutdown``             drain and stop the daemon
====== ============================ ========================================

``/v1/metrics`` content-negotiates: the JSON snapshot is the default,
and ``Accept: text/plain`` (what a Prometheus scraper sends) switches
to the text exposition format of :mod:`repro.obs.prometheus`.
``/v1/healthz`` also reports :meth:`JobManager.storage_stats` — result
cache and trace-store pressure — so operators need no shell access to
the cache directory.

Error mapping: schema violations are 400, unknown jobs 404, quota
rejections 429, results-not-ready 409, failed jobs 500 — always with a
JSON body ``{"error": ..., "schema": SCHEMA_VERSION}``.

Two entry points:

* :func:`run_daemon` — the blocking CLI body (``repro serve``): binds,
  prints the ``serving on http://host:port`` line, runs until a
  ``/v1/shutdown`` POST or KeyboardInterrupt;
* :class:`BackgroundDaemon` — the embedding harness: runs the same
  daemon on a private event loop in a thread, for tests, benchmarks,
  and applications that want a serving tier in-process.
"""

from __future__ import annotations

import asyncio
import json
import re
import threading
from typing import Dict, Optional, Tuple

from repro.obs.prometheus import CONTENT_TYPE, render_prometheus
from repro.serve.jobs import (
    JobFailedError,
    JobManager,
    JobNotDoneError,
    QuotaExceededError,
    ServeConfig,
    UnknownJobError,
)
from repro.serve.schema import (
    SCHEMA_VERSION,
    SchemaError,
    SubmitRequest,
)
from repro.sim.engine import ENGINE_VERSION

#: Default bind address of ``repro serve``.
DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8787

#: Submission bodies beyond this are rejected (a scenario description
#: is a few hundred bytes; anything larger is a client bug).
MAX_BODY_BYTES = 1 << 20

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}

_JOB_PATH = re.compile(r"^/v1/jobs/([0-9a-f]{1,64})(/result)?$")


class _PlainText(str):
    """A route result that is already rendered text, not a JSON dict."""

    content_type = CONTENT_TYPE


class ServeDaemon:
    """One bound server around one :class:`JobManager`."""

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
    ) -> None:
        self.manager = JobManager(config)
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._shutdown = asyncio.Event()

    # ------------------------------------------------------------------
    # lifecycle

    async def start(self) -> Tuple[str, int]:
        """Start the manager and bind; returns the bound (host, port).

        ``port=0`` binds an ephemeral port — the return value (and the
        ``serving on`` line of :func:`run_daemon`) is how callers learn
        the real one.
        """
        await self.manager.start()
        # A deep accept backlog: load tests (and real bursts) open
        # hundreds of connections in the same instant, and the default
        # backlog (~100) answers the overflow with RST.
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port, backlog=1024
        )
        sockname = self._server.sockets[0].getsockname()
        self.port = sockname[1]
        return sockname[0], sockname[1]

    async def serve_until_shutdown(self) -> None:
        """Serve until a ``/v1/shutdown`` POST flips the event."""
        await self._shutdown.wait()
        await self.stop()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.manager.close()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    # HTTP plumbing

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            status, payload = await self._respond_to(reader)
        except Exception as exc:  # a handler bug must not kill the loop
            status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
        if isinstance(payload, _PlainText):
            content_type = payload.content_type
            body = str(payload).encode("utf-8")
        else:
            content_type = "application/json"
            payload.setdefault("schema", SCHEMA_VERSION)
            body = json.dumps(payload).encode("utf-8")
        head = (
            f"HTTP/1.0 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("ascii")
        try:
            writer.write(head + body)
            await writer.drain()
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, asyncio.CancelledError):
            pass

    async def _respond_to(
        self, reader: asyncio.StreamReader
    ) -> Tuple[int, Dict]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        parts = request_line.split()
        if len(parts) < 2:
            return 400, {"error": f"malformed request line {request_line!r}"}
        method, path = parts[0].upper(), parts[1]
        content_length = 0
        accept = "application/json"
        while True:
            line = (await reader.readline()).decode("latin-1").strip()
            if not line:
                break
            name, _, value = line.partition(":")
            header = name.strip().lower()
            if header == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    return 400, {"error": "bad Content-Length"}
            elif header == "accept":
                accept = value.strip().lower()
        if content_length > MAX_BODY_BYTES:
            return 413, {"error": f"body exceeds {MAX_BODY_BYTES} bytes"}
        body = (
            await reader.readexactly(content_length)
            if content_length
            else b""
        )
        return await self._route(method, path, body, accept)

    async def _route(
        self, method: str, path: str, body: bytes,
        accept: str = "application/json",
    ) -> Tuple[int, Dict]:
        if path == "/v1/healthz":
            if method != "GET":
                return 405, {"error": "healthz is GET"}
            return 200, {
                "ok": True,
                "engine": ENGINE_VERSION,
                "workers": self.manager.config.workers,
                "storage": self.manager.storage_stats(),
            }
        if path == "/v1/metrics":
            if method != "GET":
                return 405, {"error": "metrics is GET"}
            snapshot = self.manager.metrics_snapshot()
            if "text/plain" in accept:
                return 200, _PlainText(render_prometheus(snapshot))
            return 200, {"metrics": snapshot}
        if path == "/v1/submit":
            if method != "POST":
                return 405, {"error": "submit is POST"}
            return await self._submit(body)
        match = _JOB_PATH.match(path)
        if match is not None:
            if method != "GET":
                return 405, {"error": "job endpoints are GET"}
            job_id, want_result = match.group(1), bool(match.group(2))
            return self._job(job_id, want_result)
        if path == "/v1/shutdown":
            if method != "POST":
                return 405, {"error": "shutdown is POST"}
            self._shutdown.set()
            return 200, {"ok": True, "stopping": True}
        return 404, {"error": f"no route {method} {path}"}

    # ------------------------------------------------------------------
    # handlers

    async def _submit(self, body: bytes) -> Tuple[int, Dict]:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return 400, {"error": f"body is not JSON: {exc}"}
        try:
            request = SubmitRequest.from_dict(payload)
        except SchemaError as exc:
            return 400, {"error": str(exc)}
        try:
            job_id, info = await self.manager.submit(request)
        except QuotaExceededError as exc:
            return 429, {"error": str(exc), "quota": exc.quota}
        except SchemaError as exc:  # unknown workload/config names
            return 400, {"error": str(exc)}
        response = {"job_id": job_id}
        response.update(info)
        return 200, response

    def _job(self, job_id: str, want_result: bool) -> Tuple[int, Dict]:
        try:
            if want_result:
                return 200, self.manager.result(job_id).to_dict()
            return 200, self.manager.status(job_id).to_dict()
        except UnknownJobError:
            return 404, {"error": f"unknown job {job_id!r}"}
        except JobNotDoneError as exc:
            return 409, {"error": str(exc)}
        except JobFailedError as exc:
            return 500, {"error": f"job failed: {exc}"}


def run_daemon(
    config: Optional[ServeConfig] = None,
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
) -> int:
    """Blocking daemon body of the ``repro serve`` CLI command."""

    async def _main() -> None:
        daemon = ServeDaemon(config, host, port)
        bound_host, bound_port = await daemon.start()
        # The contract line tooling parses (tools/serve_smoke.py does).
        print(f"serving on http://{bound_host}:{bound_port}", flush=True)
        try:
            await daemon.serve_until_shutdown()
        finally:
            await daemon.stop()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
    return 0


class BackgroundDaemon:
    """The daemon on a private event loop in a thread (embedding).

    Usage::

        with BackgroundDaemon(ServeConfig(workers=0)) as url:
            client = ServeClient(url)
            ...

    The context manager guarantees a clean stop (pool drained, loop
    closed) even when the body raises.
    """

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        host: str = DEFAULT_HOST,
        port: int = 0,
    ) -> None:
        self._config = config
        self._host = host
        self._port = port
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._daemon: Optional[ServeDaemon] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self.url: Optional[str] = None

    def start(self) -> str:
        """Start the loop thread; returns the daemon's base URL."""
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            raise RuntimeError(
                f"daemon failed to start: {self._startup_error}"
            ) from self._startup_error
        return self.url

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)

        async def _serve() -> None:
            self._daemon = ServeDaemon(self._config, self._host, self._port)
            try:
                host, bound = await self._daemon.start()
            except BaseException as exc:
                self._startup_error = exc
                self._ready.set()
                return
            self.url = f"http://{host}:{bound}"
            self._ready.set()
            await self._daemon.serve_until_shutdown()

        try:
            self._loop.run_until_complete(_serve())
        finally:
            self._loop.close()

    @property
    def manager(self) -> JobManager:
        """The live manager (for white-box assertions in tests)."""
        if self._daemon is None:
            raise RuntimeError("daemon is not running")
        return self._daemon.manager

    def stop(self) -> None:
        """Request shutdown and join the loop thread; idempotent."""
        if self._loop is None or self._thread is None:
            return
        if self._thread.is_alive() and self._daemon is not None:
            self._loop.call_soon_threadsafe(self._daemon._shutdown.set)
        self._thread.join(timeout=30.0)
        self._thread = None
        self._loop = None
        self._daemon = None

    def __enter__(self) -> str:
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
