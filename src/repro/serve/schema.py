"""Versioned wire schema of the serving tier (``repro serve``).

Every request and response that crosses the HTTP boundary is one of the
dataclasses below, serialised to JSON with an explicit
:data:`SCHEMA_VERSION` field.  The schema is the *compatibility
contract* of the service: clients and servers negotiate nothing — a
version mismatch is a hard :class:`SchemaError`, never a silent
reinterpretation, so a stale client can only fail loudly.

Three shapes cross the wire:

* :class:`SubmitRequest` — a synthetic-workload scenario submission
  (workload name, configuration lineup, cores/accesses/seed knobs,
  fault-injection rates, observability flags) plus the two serving
  fields that never reach the simulator: ``client_id`` (quota
  accounting) and ``service_class`` (admission priority: interactive
  requests are dispatched before batch).
* :class:`JobStatus` — the lifecycle snapshot of one job: state, unit
  progress, coalesced participants, queue/run timings, and a per-job
  telemetry dict derived from :mod:`repro.obs`-style accounting.
* :class:`JobResult` — the completed payload: one
  :class:`~repro.sim.results.RunResult` per configuration, carried both
  as a JSON summary (``as_dict``) for casual consumers and as an exact
  pickled payload so HTTP round-trips stay *byte-identical* to direct
  :class:`~repro.exec.runner.Runner` execution (the repo's enforced
  determinism invariant — see ``tests/serve/test_http.py``).

Coalescing identity: :meth:`SubmitRequest.canonical` is everything that
determines the simulated outcome and nothing that does not — two
requests with equal canonical forms share a job, and each of the job's
:class:`~repro.sim.scenario.RunUnit` grains is keyed by the *existing*
result-cache key (:func:`repro.exec.cache.unit_key`), so the serving
tier dedups against CLI runs that share a cache directory.
"""

from __future__ import annotations

import base64
import hashlib
import pickle
from dataclasses import dataclass, field, fields
from typing import Dict, Optional, Tuple

from repro.exec.cache import canonical_json
from repro.obs.spans import validate_context
from repro.sim.results import RunResult

#: Version of the request/response JSON layout.  Bump on any change to
#: the field set or meaning of the dataclasses below; the daemon and
#: client reject mismatched payloads outright.
#: 2: ``SubmitRequest.trace_context`` — the optional span-propagation
#: context (``trace_id``/``parent_id``).  A serving-only telemetry
#: field like ``client_id``: excluded from the coalescing identity, so
#: traced and untraced submissions share jobs, caches, and bytes.
SCHEMA_VERSION = 2

#: Admission-priority classes, best first.  Interactive jobs are always
#: dispatched before batch jobs of any cost (the priority-traffic-class
#: split of the analytical-model literature, applied at admission).
SERVICE_CLASSES: Tuple[str, ...] = ("interactive", "batch")

#: Job states, in lifecycle order.
JOB_STATES: Tuple[str, ...] = ("queued", "running", "done", "failed")


class SchemaError(ValueError):
    """A payload that does not conform to :data:`SCHEMA_VERSION`."""


def _check_schema(payload: Dict, what: str) -> None:
    if not isinstance(payload, dict):
        raise SchemaError(f"{what}: payload must be a JSON object")
    version = payload.get("schema")
    if version != SCHEMA_VERSION:
        raise SchemaError(
            f"{what}: schema version {version!r} != {SCHEMA_VERSION} "
            f"(client and server must agree)"
        )


@dataclass(frozen=True)
class SubmitRequest:
    """One scenario submission: a synthetic workload through a lineup."""

    workload: str
    configs: Tuple[str, ...] = ("private", "nocstar")
    cores: int = 16
    accesses_per_core: int = 8_000
    seed: int = 1
    superpages: bool = True
    smt: int = 1
    metrics: bool = False
    trace: bool = False
    fault_rate: float = 0.0
    fault_drop_prob: float = 0.0
    #: Serving-tier fields — they never reach the simulator and are
    #: excluded from the coalescing identity.
    client_id: str = "anonymous"
    service_class: str = "interactive"
    #: Optional span-propagation context (:mod:`repro.obs.spans`):
    #: ``{"trace_id": ..., "parent_id": ...}``.  Pure telemetry — it is
    #: excluded from :meth:`canonical` (and therefore :meth:`job_id`),
    #: never reaches the simulator, and never touches ``unit_key``.
    trace_context: Optional[Dict[str, str]] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "configs", tuple(self.configs))
        if not self.workload:
            raise SchemaError("workload must be a non-empty name")
        if not self.configs:
            raise SchemaError("configs must name at least one configuration")
        if self.cores < 1:
            raise SchemaError(f"cores must be >= 1 (got {self.cores})")
        if self.accesses_per_core < 1:
            raise SchemaError(
                f"accesses_per_core must be >= 1 (got {self.accesses_per_core})"
            )
        if self.smt < 1:
            raise SchemaError(f"smt must be >= 1 (got {self.smt})")
        if not 0.0 <= self.fault_rate <= 1.0:
            raise SchemaError("fault_rate must be in [0, 1]")
        if not 0.0 <= self.fault_drop_prob <= 1.0:
            raise SchemaError("fault_drop_prob must be in [0, 1]")
        if self.service_class not in SERVICE_CLASSES:
            raise SchemaError(
                f"service_class {self.service_class!r} not in "
                f"{SERVICE_CLASSES}"
            )
        if not self.client_id:
            raise SchemaError("client_id must be non-empty")
        try:
            object.__setattr__(
                self, "trace_context", validate_context(self.trace_context)
            )
        except ValueError as exc:
            raise SchemaError(str(exc)) from None

    # -- identity ------------------------------------------------------

    def canonical(self) -> Dict[str, object]:
        """The outcome-determining fields (coalescing identity)."""
        return {
            "workload": self.workload,
            "configs": list(self.configs),
            "cores": self.cores,
            "accesses_per_core": self.accesses_per_core,
            "seed": self.seed,
            "superpages": self.superpages,
            "smt": self.smt,
            "metrics": self.metrics,
            "trace": self.trace,
            "fault_rate": self.fault_rate,
            "fault_drop_prob": self.fault_drop_prob,
        }

    def job_id(self) -> str:
        """Deterministic job identity: hash of the canonical form.

        Identical submissions — from any client — share a job id, which
        is what makes coalescing an address-lookup rather than a scan.
        """
        blob = canonical_json(self.canonical())
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]

    # -- simulator hand-off --------------------------------------------

    def scenario(self):
        """The :class:`~repro.sim.scenario.Scenario` this request names.

        Raises :class:`SchemaError` for unknown workload/config names so
        the daemon can reject bad submissions with a 400 instead of
        crashing a worker.
        """
        from repro.faults.models import ArbiterDrop, FaultSpec, LinkFailure
        from repro.sim import configs as cfg
        from repro.sim.scenario import Scenario
        from repro.workloads.registry import get_workload

        try:
            lineup = tuple(
                cfg.build_config(name, self.cores) for name in self.configs
            )
        except KeyError as exc:
            known = ", ".join(cfg.available_configs())
            raise SchemaError(
                f"unknown config {exc.args[0]!r}; known: {known}"
            ) from None
        try:
            spec = get_workload(self.workload)
        except KeyError:
            raise SchemaError(f"unknown workload {self.workload!r}") from None
        faults = None
        if self.fault_rate > 0.0 or self.fault_drop_prob > 0.0:
            faults = FaultSpec(
                links=LinkFailure(rate=self.fault_rate),
                arbiter=ArbiterDrop(probability=self.fault_drop_prob),
            )
        try:
            return Scenario(
                configurations=lineup,
                workloads=(spec,),
                accesses_per_core=self.accesses_per_core,
                seed=self.seed,
                superpages=self.superpages,
                smt=self.smt,
                # The registry key and the built config's name can
                # differ ("monolithic" builds "monolithic-mesh"); the
                # scenario speaks config names.
                baseline_name=lineup[0].name,
                metrics=self.metrics,
                trace=self.trace,
                faults=faults,
            )
        except ValueError as exc:
            raise SchemaError(str(exc)) from None

    # -- wire form -----------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        out = {"schema": SCHEMA_VERSION}
        out.update(self.canonical())
        out["client_id"] = self.client_id
        out["service_class"] = self.service_class
        if self.trace_context is not None:
            out["trace_context"] = dict(self.trace_context)
        return out

    @classmethod
    def from_dict(cls, payload: Dict) -> "SubmitRequest":
        _check_schema(payload, "SubmitRequest")
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known - {"schema"}
        if unknown:
            raise SchemaError(
                f"SubmitRequest: unknown field(s) {sorted(unknown)} — "
                f"bump SCHEMA_VERSION to extend the wire format"
            )
        kwargs = {}
        for f in fields(cls):
            if f.name in payload:
                value = payload[f.name]
                if f.name == "configs":
                    if not isinstance(value, (list, tuple)) or not all(
                        isinstance(item, str) for item in value
                    ):
                        raise SchemaError("configs must be a list of names")
                    value = tuple(value)
                kwargs[f.name] = value
        try:
            return cls(**kwargs)
        except TypeError as exc:
            raise SchemaError(f"SubmitRequest: {exc}") from None


@dataclass(frozen=True)
class JobStatus:
    """Lifecycle snapshot of one job, as reported over the wire."""

    job_id: str
    state: str
    workload: str
    configs: Tuple[str, ...]
    service_class: str
    #: Sorted distinct client ids coalesced onto this job.
    clients: Tuple[str, ...]
    units_total: int
    units_done: int
    units_cached: int
    queued_s: float
    run_s: float
    error: Optional[str] = None
    #: Per-job telemetry (repro.obs-style accounting): per-unit
    #: build/sim wall seconds, scheduling cost estimates, cache states.
    telemetry: Dict[str, object] = field(default_factory=dict)

    @property
    def done(self) -> bool:
        return self.state in ("done", "failed")

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": SCHEMA_VERSION,
            "job_id": self.job_id,
            "state": self.state,
            "workload": self.workload,
            "configs": list(self.configs),
            "service_class": self.service_class,
            "clients": list(self.clients),
            "units_total": self.units_total,
            "units_done": self.units_done,
            "units_cached": self.units_cached,
            "queued_s": self.queued_s,
            "run_s": self.run_s,
            "error": self.error,
            "telemetry": self.telemetry,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "JobStatus":
        _check_schema(payload, "JobStatus")
        try:
            return cls(
                job_id=payload["job_id"],
                state=payload["state"],
                workload=payload["workload"],
                configs=tuple(payload["configs"]),
                service_class=payload["service_class"],
                clients=tuple(payload["clients"]),
                units_total=payload["units_total"],
                units_done=payload["units_done"],
                units_cached=payload["units_cached"],
                queued_s=payload["queued_s"],
                run_s=payload["run_s"],
                error=payload.get("error"),
                telemetry=payload.get("telemetry", {}),
            )
        except KeyError as exc:
            raise SchemaError(f"JobStatus: missing field {exc}") from None


def encode_result(result: RunResult) -> Dict[str, object]:
    """Wire form of one RunResult: JSON summary + exact pickle payload.

    The summary (``as_dict``) serves dashboards and non-Python clients;
    the base64 pickle is the byte-exact artifact (results are trusted
    local values, stored with pickle by the result cache already) that
    lets :func:`decode_result` reconstruct the *identical* RunResult the
    Runner would have returned.
    """
    return {
        "summary": result.as_dict(),
        "payload": base64.b64encode(
            pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        ).decode("ascii"),
    }


def decode_result(encoded: Dict) -> RunResult:
    """Inverse of :func:`encode_result`."""
    try:
        payload = base64.b64decode(encoded["payload"])
        result = pickle.loads(payload)
    except (KeyError, TypeError, ValueError, pickle.UnpicklingError) as exc:
        raise SchemaError(f"undecodable result payload: {exc}") from None
    if not isinstance(result, RunResult):
        raise SchemaError(
            f"result payload decoded to {type(result).__name__}, "
            f"not RunResult"
        )
    return result


@dataclass(frozen=True)
class JobResult:
    """The completed payload of one job: per-config RunResults."""

    job_id: str
    workload: str
    baseline: str
    #: Configuration name -> exact RunResult, in lineup order.
    results: Dict[str, RunResult]

    def speedup(self, config_name: str) -> float:
        return self.results[config_name].speedup_over(
            self.results[self.baseline]
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": SCHEMA_VERSION,
            "job_id": self.job_id,
            "workload": self.workload,
            "baseline": self.baseline,
            "results": {
                name: encode_result(result)
                for name, result in self.results.items()
            },
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "JobResult":
        _check_schema(payload, "JobResult")
        try:
            return cls(
                job_id=payload["job_id"],
                workload=payload["workload"],
                baseline=payload["baseline"],
                results={
                    name: decode_result(encoded)
                    for name, encoded in payload["results"].items()
                },
            )
        except KeyError as exc:
            raise SchemaError(f"JobResult: missing field {exc}") from None
