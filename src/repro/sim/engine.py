"""Quantum-bounded discrete-event engine.

Cores are actors on a time-ordered heap.  A popped core executes trace
records inline — the L1-TLB-hit fast path never touches the heap —
until it suffers an L1 miss or exhausts a run-ahead quantum, then
resolves the miss against the system's shared resource state and
re-enters the heap at its resume time.  The quantum bounds how far a
core's resource reservations can run ahead of the global frontier (see
DESIGN.md, simulator notes).

Two drive loops produce bit-identical results:

* the **batched fast path** (default): absent storms and shootdowns,
  nothing outside a core ever touches its L1 TLBs, so each core's
  L1 hit/miss sequence is a pure function of its merged trace stream.
  A pre-pass replays every stream through the real L1 arrays once,
  compiling it into cycle prefix sums plus the exact miss positions;
  the drive loop then advances whole guaranteed-hit segments per heap
  pop with one bisect instead of one Python iteration per record.
* the **reference loop** (``REPRO_REFERENCE_ENGINE=1``, and any run
  with storms or shootdowns — they invalidate L1 entries externally):
  the original record-at-a-time loop, kept verbatim.  The differential
  test harness proves both paths byte-identical, which is why
  ``ENGINE_VERSION`` did not change for the fast path.

Optional pathological traffic (§V) is injected at the global frontier:
*storms* (context-switch flushes plus superpage-promotion invalidation
bursts) and steady *shootdown* traffic for the invalidation-policy
study.
"""

from __future__ import annotations

import gc
import heapq
import weakref
from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.faults.models import FaultPlan, FaultSpec, derive_seed
from repro.noc.route_cache import reference_mode
from repro.obs import NULL_SINK, EventTrace, MetricsSink
from repro.sim import configs as cfg
from repro.sim.engine_vec import (
    VECTORIZED_ENV,
    bulk_fill_compile_cache,
    make_lean_transaction,
    vectorized_wanted,
)
from repro.sim.results import RunResult
from repro.sim.system import System
from repro.vm.address import PAGE_4K
from repro.workloads.trace import Workload

DEFAULT_QUANTUM = 256

#: Version tag of the simulation's observable behaviour.  The result
#: cache (repro.exec) embeds this in every content address, so stale
#: entries are invalidated by construction.  Bump it on ANY change that
#: can alter a RunResult: engine scheduling, system/TLB/walker models,
#: workload generation, energy accounting.  Observability (the metrics
#: sink / event trace) is pure: it records sim-cycle timestamps that
#: the model already computed and never feeds back into timing, so
#: enabling or extending it does NOT bump this version.  Fault
#: injection likewise does not bump it: with ``faults=None`` (or an
#: empty plan) the engine follows the exact pre-fault code path, and a
#: non-empty plan is itself a cache-key field of the RunUnit, so
#: key => result determinism still holds.
ENGINE_VERSION = "1"


class WatchdogExpired(RuntimeError):
    """Raised when simulated time exceeds ``watchdog_cycles``.

    A liveness backstop for fault experiments: resilience bugs must
    surface as this exception, never as a silent hang."""


@dataclass(frozen=True)
class StormConfig:
    """TLB-storm microbenchmark knobs (§V, Fig 19).

    Every ``period`` cycles: a context switch flushes all TLBs, and a
    superpage promotion invalidates ``burst_entries`` distinct 4KB
    translations homed across the slices.
    """

    period: int
    burst_entries: int = 512
    flush: bool = True
    asid: int = 1

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError("storm period must be positive")


@dataclass(frozen=True)
class ShootdownTraffic:
    """Steady page-remapping traffic (Fig 16R's invalidation study).

    ``initiators`` > 1 fires that many shootdowns from different cores
    at each event — the concurrent-invalidation scenario where a single
    chip-wide leader serialises and the paper's "middle ground" leader
    granularity wins (§III-G).
    """

    period: int
    entries_per_event: int = 1
    asid: int = 1
    initiators: int = 1

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError("shootdown period must be positive")
        if self.initiators < 1:
            raise ValueError("need at least one initiator")


class _CoreState:
    __slots__ = ("streams", "positions", "rr", "time", "finish")

    def __init__(self, streams) -> None:
        self.streams = streams
        self.positions = [0] * len(streams)
        self.rr = 0
        self.time = 0
        self.finish: Optional[int] = None

    def next_record(self):
        """Round-robin across SMT streams; None when all are drained."""
        n = len(self.streams)
        for _ in range(n):
            s = self.rr % n
            self.rr += 1
            pos = self.positions[s]
            if pos < len(self.streams[s]):
                self.positions[s] = pos + 1
                return self.streams[s][pos]
        return None


def simulate(
    config: cfg.SystemConfig,
    workload: Optional[Workload] = None,
    quantum: int = DEFAULT_QUANTUM,
    storm: Optional[StormConfig] = None,
    shootdown: Optional[ShootdownTraffic] = None,
    record_intervals: bool = False,
    metrics: bool = False,
    trace: bool = False,
    faults: Optional[FaultPlan] = None,
    watchdog_cycles: Optional[int] = None,
) -> RunResult:
    """Run ``workload`` on a machine built from ``config``.

    Also accepts a single-config, single-workload
    :class:`~repro.sim.scenario.Scenario` as the only argument; the
    scenario's own storm/shootdown/quantum fields then apply.  The
    ``(config, workload)`` form is the low-level primitive operating on
    an already-built trace.

    ``metrics`` attaches a :class:`~repro.obs.MetricsSink` and returns
    a snapshot in ``RunResult.metrics``; ``trace`` (implies metrics)
    additionally ring-buffers typed events into ``RunResult.trace``.
    Both are pure observation — timing is identical either way.

    ``faults`` injects a :class:`~repro.faults.models.FaultPlan` (or a
    :class:`~repro.faults.models.FaultSpec`, compiled here against the
    workload's seed).  An empty plan is normalised to ``None``, which
    keeps rate-0 sweep points bit-identical to plain runs.
    ``watchdog_cycles`` raises :class:`WatchdogExpired` if simulated
    time ever exceeds it — the no-hang backstop for fault experiments.
    """
    if not isinstance(config, cfg.SystemConfig):
        from dataclasses import replace

        from repro.sim.scenario import Scenario

        if isinstance(config, Scenario):
            if workload is not None:
                raise TypeError(
                    "pass either a Scenario or (config, workload), not both"
                )
            if faults is not None:
                raise TypeError(
                    "set faults on the Scenario itself, not on simulate()"
                )
            units = config.units()
            if len(units) != 1:
                raise ValueError(
                    "simulate() takes a single-config, single-workload "
                    "Scenario; use compare()/run_suite() for lineups"
                )
            unit = units[0]
            if metrics or trace:
                unit = replace(
                    unit,
                    metrics=unit.metrics or metrics,
                    trace=unit.trace or trace,
                )
            if watchdog_cycles is None:
                return unit.execute()
            return simulate(
                unit.config,
                unit.build_workload(),
                quantum=unit.quantum,
                storm=unit.storm,
                shootdown=unit.shootdown,
                record_intervals=unit.record_intervals,
                metrics=unit.metrics,
                trace=unit.trace,
                faults=unit.fault_plan(),
                watchdog_cycles=watchdog_cycles,
            )
        raise TypeError(
            f"expected SystemConfig or Scenario, got {type(config).__name__}"
        )
    if workload is None:
        raise TypeError("simulate(config, workload) needs a workload")
    if workload.num_cores != config.num_cores:
        raise ValueError(
            f"workload has {workload.num_cores} cores, config expects "
            f"{config.num_cores}"
        )
    if faults is not None:
        if isinstance(faults, FaultSpec):
            faults = faults.compile(
                config.num_cores, derive_seed(workload.seed, "faults")
            )
        if faults.num_tiles != config.num_cores:
            raise ValueError(
                f"fault plan compiled for {faults.num_tiles} tiles, "
                f"config has {config.num_cores} cores"
            )
        if faults.is_empty:
            faults = None  # exact fault-free code path
    event_trace = EventTrace() if trace else None
    sink = MetricsSink(trace=event_trace) if (metrics or trace) else NULL_SINK
    system = System(
        config, record_intervals=record_intervals, sink=sink, faults=faults
    )
    if storm is None and shootdown is None and not reference_mode():
        # Batched fast path: with no external L1 invalidations the hit/
        # miss sequence is stream-determined, so hit runs advance in one
        # bisect per heap pop.  Bit-identical to the reference loop (the
        # differential harness is the proof), so ENGINE_VERSION stays.
        # At mega-mesh scale (or when forced via REPRO_VECTORIZED_ENGINE)
        # the vectorized variant applies — same results, numpy compile
        # and expiry-free scheduling (see repro.sim.engine_vec).
        if vectorized_wanted(config, watchdog_cycles):
            finishes = _drive_vectorized(system, workload, quantum, sink)
        else:
            finishes = _drive_batched(
                system, workload, quantum, sink, watchdog_cycles
            )
    else:
        finishes = _drive_reference(
            system, workload, quantum, storm, shootdown, sink,
            watchdog_cycles,
        )
    cycles = max(finishes)
    system.finalize_stats()
    system.finalize_metrics(cycles)
    app_cycles = {}
    for app, cores in workload.info.get("apps", {}).items():
        app_cycles[app] = sum(finishes[c] for c in cores) / len(cores)
    return RunResult(
        config_name=config.name,
        workload_name=workload.name,
        cycles=cycles,
        per_core_cycles=finishes,
        stats=system.stats,
        energy=system.energy_summary(cycles),
        network=system.network_summary(),
        walk_levels=system.walk_level_summary(),
        intervals=system.intervals if record_intervals else None,
        app_cycles=app_cycles,
        metrics=sink.registry.snapshot() if sink.enabled else None,
        trace=event_trace.to_records() if event_trace is not None else None,
        faults=system.fault_summary(),
    )


def _drive_reference(
    system: System,
    workload: Workload,
    quantum: int,
    storm: Optional[StormConfig],
    shootdown: Optional[ShootdownTraffic],
    sink,
    watchdog_cycles: Optional[int],
) -> List[int]:
    """The original record-at-a-time drive loop (kept verbatim).

    Always used for storm/shootdown runs (external L1 invalidations
    break the fast path's precompiled hit/miss sequence) and forced via
    ``REPRO_REFERENCE_ENGINE=1`` as the differential-testing baseline.
    """
    num_cores = system.config.num_cores
    states = [_CoreState(workload.core_streams(c)) for c in range(num_cores)]
    heap: List[Tuple[int, int]] = [(0, core) for core in range(num_cores)]
    heapq.heapify(heap)

    next_storm = storm.period if storm else None
    next_shoot = shootdown.period if shootdown else None
    storm_seq = 0
    shoot_seq = 0
    l1_arrays = [
        {size: l1.array(size) for size in l1._arrays} for l1 in system.l1s
    ]
    pending = system.pending_penalty

    while heap:
        t, core = heapq.heappop(heap)
        if watchdog_cycles is not None and t > watchdog_cycles:
            raise WatchdogExpired(
                f"core {core} resumed at cycle {t}, past the "
                f"{watchdog_cycles}-cycle watchdog"
            )
        state = states[core]
        if pending[core]:
            t += pending[core]
            pending[core] = 0
        # Pathological traffic fires at the global frontier (t is minimal).
        if next_storm is not None and t >= next_storm:
            _apply_storm(system, storm, next_storm, storm_seq)
            storm_seq += 1
            next_storm += storm.period
        if next_shoot is not None and t >= next_shoot:
            _apply_shootdown_traffic(system, shootdown, next_shoot, shoot_seq)
            shoot_seq += 1
            next_shoot += shootdown.period
        deadline = t + quantum
        arrays = l1_arrays[core]
        resumed = False
        while t < deadline:
            record = state.next_record()
            if record is None:
                state.finish = t
                resumed = True  # drained: do not re-enter the heap
                break
            gap, asid, size, page_number = record
            t += gap + 1
            array = arrays[size]
            if array.lookup(asid, size, page_number):
                continue
            # Instrumentation rides the (rare) miss path only; the
            # L1-hit loop above stays sink-free.
            sink.event(t, "l1_lookup", core=core, hit=False)
            stall = system.l2_transaction(core, asid, size, page_number, t)
            sink.observe("translation.stall_cycles", stall)
            t += stall
            array.insert(asid, size, page_number)
            heapq.heappush(heap, (t, core))
            resumed = True
            break
        if not resumed:
            heapq.heappush(heap, (t, core))

    return [state.finish or 0 for state in states]


class _CompiledCore:
    """One core's trace compiled into hit-run segments.

    ``prefix[i]`` is the cycle cost of the first ``i`` records (each
    record costs ``gap + 1``), so advancing from record ``a`` to ``b``
    costs ``prefix[b] - prefix[a]``.  ``miss_pos``/``miss_rec`` hold the
    positions and payloads of the records that miss the L1 — everything
    between consecutive misses is a guaranteed-hit run.
    """

    __slots__ = ("prefix", "miss_pos", "miss_rec", "count", "pos", "mi",
                 "finish")

    def __init__(self, prefix, miss_pos, miss_rec) -> None:
        self.prefix = prefix
        self.miss_pos = miss_pos
        self.miss_rec = miss_rec
        self.count = len(prefix) - 1
        self.pos = 0  # next record index
        self.mi = 0  # next miss index
        self.finish: Optional[int] = None


def _merged_stream(streams):
    """The core's SMT streams merged in ``_CoreState.next_record`` order.

    The round-robin interleave is statically deterministic (it depends
    only on stream lengths, never on timing), so it can be materialised
    up front.
    """
    if len(streams) == 1:
        return streams[0]
    merged = []
    positions = [0] * len(streams)
    n = len(streams)
    rr = 0
    remaining = sum(len(s) for s in streams)
    append = merged.append
    while remaining:
        s = rr % n
        rr += 1
        pos = positions[s]
        if pos < len(streams[s]):
            positions[s] = pos + 1
            append(streams[s][pos])
            remaining -= 1
    return merged


def _compile_core(streams, arrays) -> _CompiledCore:
    """Replay one core's merged stream through its real L1 arrays.

    The replay performs exactly the lookup/insert sequence the
    reference loop would (one lookup per record, insert on miss), so
    the arrays end the pre-pass in the same state — same hit/miss/
    eviction counters, same LRU order — as after an unbatched run.
    Valid only while nothing else touches the L1s mid-run, which is the
    batched mode's gate (no storms, no shootdowns).
    """
    merged = _merged_stream(streams)
    prefix = [0] * (len(merged) + 1)
    miss_pos: List[int] = []
    miss_rec: List[Tuple[int, int, int]] = []
    add_pos = miss_pos.append
    add_rec = miss_rec.append
    # The probe below is SetAssociativeTLB.lookup inlined (this is the
    # hottest loop of a batched run: one probe per trace record), with
    # the hit/miss counters accumulated locally and folded back in bulk
    # — nothing reads them mid-run.  Misses are rare, so insert() stays
    # a method call.  Must mirror lookup() exactly.
    per_size = {
        size: (array._sets, array.index_shift, array.num_sets, [0, 0])
        for size, array in arrays.items()
    }
    acc = 0
    i = 0
    # Streams are long runs of one page size, so the per-size bindings
    # are re-fetched only on a size switch.
    last_size = None
    sets = shift = num_sets = counts = None
    for gap, asid, size, page_number in merged:
        acc += gap + 1
        i += 1
        prefix[i] = acc
        if size != last_size:
            sets, shift, num_sets, counts = per_size[size]
            last_size = size
        cache_set = sets[(page_number >> shift) % num_sets]
        key = (asid, size, page_number)
        # A lazily-constructed set (None) is empty: always a miss, and
        # insert() below materialises it through _set_for.
        if cache_set is not None and key in cache_set:
            cache_set.move_to_end(key)
            counts[0] += 1
            continue
        counts[1] += 1
        add_pos(i - 1)
        add_rec(key)
        arrays[size].insert(asid, size, page_number)
    for size, (_, _, _, counts) in per_size.items():
        arrays[size].hits += counts[0]
        arrays[size].misses += counts[1]
    return _CompiledCore(prefix, miss_pos, miss_rec)


#: Compiled cores memoised per live Workload object (keyed by id, with
#: a weakref guard against id reuse).  The compile pre-pass is a pure
#: function of (streams, L1 geometry), so lineups and repeat runs that
#: share one workload build pay it once per core instead of once per
#: System.
_COMPILE_CACHE: Dict[int, Tuple[object, Dict]] = {}

_COUNTERS = ("hits", "misses", "insertions", "evictions")


def _compile_cache_for(workload) -> Dict:
    wid = id(workload)
    entry = _COMPILE_CACHE.get(wid)
    if entry is None or entry[0]() is not workload:
        ref = weakref.ref(
            workload, lambda _, wid=wid: _COMPILE_CACHE.pop(wid, None)
        )
        entry = (ref, {})
        _COMPILE_CACHE[wid] = entry
    return entry[1]


def _compile_core_cached(workload, core: int, arrays) -> _CompiledCore:
    """Memoising wrapper around :func:`_compile_core`.

    A cache hit replays only the counter deltas (hits/misses/
    insertions/evictions); the array *contents* are left empty, which
    is sound because nothing downstream of the drive loop reads L1
    entries — only counters (and batched mode guarantees no storms or
    shootdowns ever probe them mid-run).
    """
    cache = _compile_cache_for(workload)
    key = (core,) + tuple(
        sorted(
            (size, a.entries, a.ways, a.index_shift)
            for size, a in arrays.items()
        )
    )
    hit = cache.get(key)
    if hit is not None:
        prefix, miss_pos, miss_rec, deltas = hit
        for size, delta in deltas:
            array = arrays[size]
            for name, value in zip(_COUNTERS, delta):
                setattr(array, name, getattr(array, name) + value)
        return _CompiledCore(prefix, miss_pos, miss_rec)
    before = {
        size: [getattr(a, name) for name in _COUNTERS]
        for size, a in arrays.items()
    }
    cc = _compile_core(workload.core_streams(core), arrays)
    deltas = tuple(
        (
            size,
            tuple(
                getattr(a, name) - old
                for name, old in zip(_COUNTERS, before[size])
            ),
        )
        for size, a in arrays.items()
    )
    cache[key] = (cc.prefix, cc.miss_pos, cc.miss_rec, deltas)
    return cc


def _drive_batched(
    system: System,
    workload: Workload,
    quantum: int,
    sink,
    watchdog_cycles: Optional[int],
) -> List[int]:
    """Segment-batched drive loop; bit-identical to the reference loop.

    Per heap pop, one ``bisect_left`` finds how far the core runs
    before its quantum expires (``cut``); comparing that against the
    next precompiled miss position decides the outcome.  The loop-top
    guard of the reference loop (``while t < deadline``) admits record
    ``q`` iff ``prefix[q] < prefix[pos] + quantum``, so the three cases
    below reproduce its push/finish times — and therefore its heap-pop
    order, its ``l2_transaction`` times, and its pending-penalty
    application points — exactly.
    """
    num_cores = system.config.num_cores
    compiled = [
        _compile_core_cached(
            workload, core, {size: l1.array(size) for size in l1._arrays}
        )
        for core, l1 in enumerate(system.l1s)
    ]
    heap: List[Tuple[int, int]] = [(0, core) for core in range(num_cores)]
    heapq.heapify(heap)
    pending = system.pending_penalty
    l2_transaction = system.l2_transaction
    observed = sink.enabled

    while heap:
        t, core = heapq.heappop(heap)
        if watchdog_cycles is not None and t > watchdog_cycles:
            raise WatchdogExpired(
                f"core {core} resumed at cycle {t}, past the "
                f"{watchdog_cycles}-cycle watchdog"
            )
        cc = compiled[core]
        if pending[core]:
            t += pending[core]
            pending[core] = 0
        prefix = cc.prefix
        pos = cc.pos
        base = prefix[pos]
        limit = base + quantum
        count = cc.count
        mi = cc.mi
        miss = cc.miss_pos[mi] if mi < len(cc.miss_pos) else None
        # First record position whose loop-top check would fail.
        cut = bisect_left(prefix, limit, pos, count + 1)
        if miss is not None and miss < cut:
            # The quantum reaches the next L1 miss: resolve it at the
            # exact cycle the reference loop would (hit run + the miss
            # record's own gap+1).
            t_miss = t + prefix[miss + 1] - base
            asid, size, page_number = cc.miss_rec[mi]
            if observed:
                sink.event(t_miss, "l1_lookup", core=core, hit=False)
            stall = l2_transaction(core, asid, size, page_number, t_miss)
            if observed:
                sink.observe("translation.stall_cycles", stall)
            cc.pos = miss + 1
            cc.mi = mi + 1
            heapq.heappush(heap, (t_miss + stall, core))
        elif cut == count + 1:
            # Stream drained inside the quantum: all remaining records
            # are hits; the core finishes and leaves the heap.
            cc.pos = count
            cc.finish = t + prefix[count] - base
        else:
            # Quantum expiry mid-run: advance the whole admitted hit
            # segment and re-enter the heap at the expiry time.
            cc.pos = cut
            heapq.heappush(heap, (t + prefix[cut] - base, core))

    return [cc.finish or 0 for cc in compiled]


def _drive_vectorized(
    system: System,
    workload: Workload,
    quantum: int,
    sink,
) -> List[int]:
    """Mega-mesh drive loop; bit-identical to the batched loop.

    Three scalar hot spots of ``_drive_batched`` are restructured for
    256-1024 tile meshes (see :mod:`repro.sim.engine_vec`):

    * the compile pre-pass runs once over column-stacked ``(core,
      record)`` arrays, stepping every core's L1 LRU state in lockstep,
      and fills the ordinary compile cache — a later batched run on the
      same workload replays it for free, and vice versa;
    * quantum-expiry heap traffic disappears: with ``pending_penalty``
      pinned at zero (no storms/shootdowns/remote-PTW — the dispatch
      gate) expiry pops are pure bookkeeping, so each core's next
      transaction call time is computed directly with the batched
      loop's own windowed bisect, and a numpy argmin/cohort scan over
      the call-time vector reproduces the heap's ``(t, core)`` order;
    * eligible mesh-distributed configs resolve each transaction
      through an inlined flat-table path over the live slice/port/
      walker state (``make_lean_transaction``); everything else uses
      ``System.l2_transaction`` unchanged.
    """
    num_cores = system.config.num_cores
    bulk_fill_compile_cache(
        workload, system.l1s, _compile_cache_for(workload)
    )  # best-effort: on False the per-core scalar compile below applies
    compiled = [
        _compile_core_cached(
            workload, core, {size: l1.array(size) for size in l1._arrays}
        )
        for core, l1 in enumerate(system.l1s)
    ]
    l2_transaction = system.l2_transaction
    finalize = None
    lean = make_lean_transaction(system, sink)
    if lean is not None:
        l2_transaction, finalize = lean
    observed = sink.enabled
    observe = sink.observe
    event = sink.event

    idle = 1 << 62  # sentinel call time for finished cores
    call_times = np.full(num_cores, idle, dtype=np.int64)
    pending_miss: List[Optional[Tuple[int, int, int]]] = [None] * num_cores
    pending_time = [0] * num_cores

    def schedule(core: int, cc: _CompiledCore, t: int) -> bool:
        """Advance ``core`` from resume time ``t`` to its next call.

        Replays the batched loop's quantum windows (expiry hops) until
        the window containing the next miss — or the end of the stream
        — is reached; expiry pops touch nothing observable, so only the
        resulting transaction call time matters.  Returns False when
        the core finished.
        """
        prefix = cc.prefix
        count = cc.count
        pos = cc.pos
        mi = cc.mi
        miss_pos = cc.miss_pos
        miss = miss_pos[mi] if mi < len(miss_pos) else None
        base = prefix[pos]
        while True:
            cut = bisect_left(prefix, base + quantum, pos, count + 1)
            if miss is not None and miss < cut:
                cc.pos = miss + 1
                cc.mi = mi + 1
                pending_miss[core] = cc.miss_rec[mi]
                pending_time[core] = t + prefix[miss + 1] - base
                call_times[core] = t
                return True
            if cut == count + 1:
                cc.pos = count
                cc.finish = t + prefix[count] - base
                call_times[core] = idle
                return False
            t += prefix[cut] - base
            pos = cut
            base = prefix[cut]

    active = 0
    for core in range(num_cores):
        if schedule(core, compiled[core], 0):
            active += 1

    # The drive loop allocates heavily (keys, port dicts, walk tuples)
    # but creates no reference cycles, so generational collections scan
    # hundreds of thousands of live simulator objects to reclaim almost
    # nothing.  Pause collection for the loop; allocations are still
    # freed by refcounting, and cycles (if any) collect on re-enable.
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        while active:
            frontier = call_times.min()
            # All transactions called at the frontier cycle, in core
            # order — exactly the heap's (t, core) tie-break.
            for core in np.flatnonzero(call_times == frontier).tolist():
                cc = compiled[core]
                t_miss = pending_time[core]
                asid, size, page_number = pending_miss[core]
                if observed:
                    event(t_miss, "l1_lookup", core=core, hit=False)
                stall = l2_transaction(core, asid, size, page_number, t_miss)
                if observed:
                    observe("translation.stall_cycles", stall)
                if not schedule(core, cc, t_miss + stall):
                    active -= 1
    finally:
        if gc_was_enabled:
            gc.enable()

    if finalize is not None:
        finalize()
    return [cc.finish or 0 for cc in compiled]


def _apply_storm(
    system: System, storm: StormConfig, now: int, seq: int
) -> None:
    """Context-switch flush plus a 512-entry promotion invalidation."""
    if storm.flush:
        system.flush_all_tlbs()
    system.sink.event(
        now, "storm_flush",
        seq=seq, entries=storm.burst_entries, flush=storm.flush,
    )
    base = (seq + 1) * storm.burst_entries
    entries = [
        (storm.asid, PAGE_4K, base + i) for i in range(storm.burst_entries)
    ]
    initiator = seq % system.config.num_cores
    system.apply_shootdown(initiator, entries, now)


def _apply_shootdown_traffic(
    system: System, traffic: ShootdownTraffic, now: int, seq: int
) -> None:
    cores = system.config.num_cores
    for k in range(traffic.initiators):
        base = ((seq * traffic.initiators) + k + 1) * 131
        entries = [
            (traffic.asid, PAGE_4K, base + i)
            for i in range(traffic.entries_per_event)
        ]
        initiator = (seq + k * (cores // traffic.initiators)) % cores
        system.apply_shootdown(initiator, entries, now)
