"""Quantum-bounded discrete-event engine.

Cores are actors on a time-ordered heap.  A popped core executes trace
records inline — the L1-TLB-hit fast path never touches the heap —
until it suffers an L1 miss or exhausts a run-ahead quantum, then
resolves the miss against the system's shared resource state and
re-enters the heap at its resume time.  The quantum bounds how far a
core's resource reservations can run ahead of the global frontier (see
DESIGN.md, simulator notes).

Optional pathological traffic (§V) is injected at the global frontier:
*storms* (context-switch flushes plus superpage-promotion invalidation
bursts) and steady *shootdown* traffic for the invalidation-policy
study.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.faults.models import FaultPlan, FaultSpec, derive_seed
from repro.obs import NULL_SINK, EventTrace, MetricsSink
from repro.sim import configs as cfg
from repro.sim.results import RunResult
from repro.sim.system import System
from repro.vm.address import PAGE_4K
from repro.workloads.trace import Workload

DEFAULT_QUANTUM = 256

#: Version tag of the simulation's observable behaviour.  The result
#: cache (repro.exec) embeds this in every content address, so stale
#: entries are invalidated by construction.  Bump it on ANY change that
#: can alter a RunResult: engine scheduling, system/TLB/walker models,
#: workload generation, energy accounting.  Observability (the metrics
#: sink / event trace) is pure: it records sim-cycle timestamps that
#: the model already computed and never feeds back into timing, so
#: enabling or extending it does NOT bump this version.  Fault
#: injection likewise does not bump it: with ``faults=None`` (or an
#: empty plan) the engine follows the exact pre-fault code path, and a
#: non-empty plan is itself a cache-key field of the RunUnit, so
#: key => result determinism still holds.
ENGINE_VERSION = "1"


class WatchdogExpired(RuntimeError):
    """Raised when simulated time exceeds ``watchdog_cycles``.

    A liveness backstop for fault experiments: resilience bugs must
    surface as this exception, never as a silent hang."""


@dataclass(frozen=True)
class StormConfig:
    """TLB-storm microbenchmark knobs (§V, Fig 19).

    Every ``period`` cycles: a context switch flushes all TLBs, and a
    superpage promotion invalidates ``burst_entries`` distinct 4KB
    translations homed across the slices.
    """

    period: int
    burst_entries: int = 512
    flush: bool = True
    asid: int = 1

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError("storm period must be positive")


@dataclass(frozen=True)
class ShootdownTraffic:
    """Steady page-remapping traffic (Fig 16R's invalidation study).

    ``initiators`` > 1 fires that many shootdowns from different cores
    at each event — the concurrent-invalidation scenario where a single
    chip-wide leader serialises and the paper's "middle ground" leader
    granularity wins (§III-G).
    """

    period: int
    entries_per_event: int = 1
    asid: int = 1
    initiators: int = 1

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError("shootdown period must be positive")
        if self.initiators < 1:
            raise ValueError("need at least one initiator")


class _CoreState:
    __slots__ = ("streams", "positions", "rr", "time", "finish")

    def __init__(self, streams) -> None:
        self.streams = streams
        self.positions = [0] * len(streams)
        self.rr = 0
        self.time = 0
        self.finish: Optional[int] = None

    def next_record(self):
        """Round-robin across SMT streams; None when all are drained."""
        n = len(self.streams)
        for _ in range(n):
            s = self.rr % n
            self.rr += 1
            pos = self.positions[s]
            if pos < len(self.streams[s]):
                self.positions[s] = pos + 1
                return self.streams[s][pos]
        return None


def simulate(
    config: cfg.SystemConfig,
    workload: Optional[Workload] = None,
    quantum: int = DEFAULT_QUANTUM,
    storm: Optional[StormConfig] = None,
    shootdown: Optional[ShootdownTraffic] = None,
    record_intervals: bool = False,
    metrics: bool = False,
    trace: bool = False,
    faults: Optional[FaultPlan] = None,
    watchdog_cycles: Optional[int] = None,
) -> RunResult:
    """Run ``workload`` on a machine built from ``config``.

    Also accepts a single-config, single-workload
    :class:`~repro.sim.scenario.Scenario` as the only argument; the
    scenario's own storm/shootdown/quantum fields then apply.  The
    ``(config, workload)`` form is the low-level primitive operating on
    an already-built trace.

    ``metrics`` attaches a :class:`~repro.obs.MetricsSink` and returns
    a snapshot in ``RunResult.metrics``; ``trace`` (implies metrics)
    additionally ring-buffers typed events into ``RunResult.trace``.
    Both are pure observation — timing is identical either way.

    ``faults`` injects a :class:`~repro.faults.models.FaultPlan` (or a
    :class:`~repro.faults.models.FaultSpec`, compiled here against the
    workload's seed).  An empty plan is normalised to ``None``, which
    keeps rate-0 sweep points bit-identical to plain runs.
    ``watchdog_cycles`` raises :class:`WatchdogExpired` if simulated
    time ever exceeds it — the no-hang backstop for fault experiments.
    """
    if not isinstance(config, cfg.SystemConfig):
        from dataclasses import replace

        from repro.sim.scenario import Scenario

        if isinstance(config, Scenario):
            if workload is not None:
                raise TypeError(
                    "pass either a Scenario or (config, workload), not both"
                )
            if faults is not None:
                raise TypeError(
                    "set faults on the Scenario itself, not on simulate()"
                )
            units = config.units()
            if len(units) != 1:
                raise ValueError(
                    "simulate() takes a single-config, single-workload "
                    "Scenario; use compare()/run_suite() for lineups"
                )
            unit = units[0]
            if metrics or trace:
                unit = replace(
                    unit,
                    metrics=unit.metrics or metrics,
                    trace=unit.trace or trace,
                )
            if watchdog_cycles is None:
                return unit.execute()
            return simulate(
                unit.config,
                unit.build_workload(),
                quantum=unit.quantum,
                storm=unit.storm,
                shootdown=unit.shootdown,
                record_intervals=unit.record_intervals,
                metrics=unit.metrics,
                trace=unit.trace,
                faults=unit.fault_plan(),
                watchdog_cycles=watchdog_cycles,
            )
        raise TypeError(
            f"expected SystemConfig or Scenario, got {type(config).__name__}"
        )
    if workload is None:
        raise TypeError("simulate(config, workload) needs a workload")
    if workload.num_cores != config.num_cores:
        raise ValueError(
            f"workload has {workload.num_cores} cores, config expects "
            f"{config.num_cores}"
        )
    if faults is not None:
        if isinstance(faults, FaultSpec):
            faults = faults.compile(
                config.num_cores, derive_seed(workload.seed, "faults")
            )
        if faults.num_tiles != config.num_cores:
            raise ValueError(
                f"fault plan compiled for {faults.num_tiles} tiles, "
                f"config has {config.num_cores} cores"
            )
        if faults.is_empty:
            faults = None  # exact fault-free code path
    event_trace = EventTrace() if trace else None
    sink = MetricsSink(trace=event_trace) if (metrics or trace) else NULL_SINK
    system = System(
        config, record_intervals=record_intervals, sink=sink, faults=faults
    )
    states = [_CoreState(workload.core_streams(c)) for c in range(config.num_cores)]
    heap: List[Tuple[int, int]] = [(0, core) for core in range(config.num_cores)]
    heapq.heapify(heap)

    next_storm = storm.period if storm else None
    next_shoot = shootdown.period if shootdown else None
    storm_seq = 0
    shoot_seq = 0
    l1_arrays = [
        {size: l1.array(size) for size in l1._arrays} for l1 in system.l1s
    ]
    pending = system.pending_penalty

    while heap:
        t, core = heapq.heappop(heap)
        if watchdog_cycles is not None and t > watchdog_cycles:
            raise WatchdogExpired(
                f"core {core} resumed at cycle {t}, past the "
                f"{watchdog_cycles}-cycle watchdog"
            )
        state = states[core]
        if pending[core]:
            t += pending[core]
            pending[core] = 0
        # Pathological traffic fires at the global frontier (t is minimal).
        if next_storm is not None and t >= next_storm:
            _apply_storm(system, storm, next_storm, storm_seq)
            storm_seq += 1
            next_storm += storm.period
        if next_shoot is not None and t >= next_shoot:
            _apply_shootdown_traffic(system, shootdown, next_shoot, shoot_seq)
            shoot_seq += 1
            next_shoot += shootdown.period
        deadline = t + quantum
        arrays = l1_arrays[core]
        resumed = False
        while t < deadline:
            record = state.next_record()
            if record is None:
                state.finish = t
                resumed = True  # drained: do not re-enter the heap
                break
            gap, asid, size, page_number = record
            t += gap + 1
            array = arrays[size]
            if array.lookup(asid, size, page_number):
                continue
            # Instrumentation rides the (rare) miss path only; the
            # L1-hit loop above stays sink-free.
            sink.event(t, "l1_lookup", core=core, hit=False)
            stall = system.l2_transaction(core, asid, size, page_number, t)
            sink.observe("translation.stall_cycles", stall)
            t += stall
            array.insert(asid, size, page_number)
            heapq.heappush(heap, (t, core))
            resumed = True
            break
        if not resumed:
            heapq.heappush(heap, (t, core))

    finishes = [state.finish or 0 for state in states]
    cycles = max(finishes)
    system.finalize_stats()
    system.finalize_metrics(cycles)
    app_cycles = {}
    for app, cores in workload.info.get("apps", {}).items():
        app_cycles[app] = sum(finishes[c] for c in cores) / len(cores)
    return RunResult(
        config_name=config.name,
        workload_name=workload.name,
        cycles=cycles,
        per_core_cycles=finishes,
        stats=system.stats,
        energy=system.energy_summary(cycles),
        network=system.network_summary(),
        walk_levels=system.walk_level_summary(),
        intervals=system.intervals if record_intervals else None,
        app_cycles=app_cycles,
        metrics=sink.registry.snapshot() if sink.enabled else None,
        trace=event_trace.to_records() if event_trace is not None else None,
        faults=system.fault_summary(),
    )


def _apply_storm(
    system: System, storm: StormConfig, now: int, seq: int
) -> None:
    """Context-switch flush plus a 512-entry promotion invalidation."""
    if storm.flush:
        system.flush_all_tlbs()
    system.sink.event(
        now, "storm_flush",
        seq=seq, entries=storm.burst_entries, flush=storm.flush,
    )
    base = (seq + 1) * storm.burst_entries
    entries = [
        (storm.asid, PAGE_4K, base + i) for i in range(storm.burst_entries)
    ]
    initiator = seq % system.config.num_cores
    system.apply_shootdown(initiator, entries, now)


def _apply_shootdown_traffic(
    system: System, traffic: ShootdownTraffic, now: int, seq: int
) -> None:
    cores = system.config.num_cores
    for k in range(traffic.initiators):
        base = ((seq * traffic.initiators) + k + 1) * 131
        entries = [
            (traffic.asid, PAGE_4K, base + i)
            for i in range(traffic.entries_per_event)
        ]
        initiator = (seq + k * (cores // traffic.initiators)) % cores
        system.apply_shootdown(initiator, entries, now)
