"""System configurations — Table II plus the ablation variants.

Factory functions build :class:`SystemConfig` values for every target
the paper evaluates:

* ``private``       — per-core 1024-entry L2 TLBs (the baseline);
* ``monolithic``    — 1024 x N entries in one banked structure at the
  chip edge, reached over a multi-hop mesh or a SMART NoC;
* ``distributed``   — one 1024-entry slice per core over a multi-hop
  mesh ("enough buffers and links to prevent link contention", §IV);
* ``nocstar``       — one 920-entry slice per core (area-normalised)
  over the NOCSTAR interconnect;
* ``nocstar_ideal`` — NOCSTAR with a contention-free network (Fig 15);
* ``ideal``         — shared slices with a zero-latency interconnect
  (Fig 12/13/15's "Ideal"; not an infinite TLB).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Optional, Tuple

from repro.core.config import NocstarConfig
from repro.tlb.l2_shared import FIFO, PRIORITY, MonolithicSharedTlb
from repro.tlb.policies import POLICY_NAMES

#: A factory takes a core count (plus overrides) and returns a config.
ConfigFactory = Callable[..., "SystemConfig"]

_CONFIG_REGISTRY: Dict[str, ConfigFactory] = {}


def register_config(name: str, factory: Optional[ConfigFactory] = None):
    """Register a named configuration factory.

    Usable as a decorator (``@register_config("private")``) or a plain
    call (``register_config("monolithic-smart", lambda n, **o: ...)``).
    Names must be unique — duplicates raise ``ValueError`` so two
    modules cannot silently fight over one name.
    """

    def _register(fn: ConfigFactory) -> ConfigFactory:
        if name in _CONFIG_REGISTRY:
            raise ValueError(f"configuration {name!r} is already registered")
        _CONFIG_REGISTRY[name] = fn
        return fn

    if factory is not None:
        return _register(factory)
    return _register


def available_configs() -> Tuple[str, ...]:
    """Every registered configuration name, sorted."""
    return tuple(sorted(_CONFIG_REGISTRY))


def build_config(name: str, num_cores: int, **overrides) -> "SystemConfig":
    """Build a registered configuration by name."""
    try:
        factory = _CONFIG_REGISTRY[name]
    except KeyError:
        known = ", ".join(available_configs())
        raise KeyError(f"unknown config {name!r}; known: {known}") from None
    return factory(num_cores, **overrides)

#: Schemes and interconnect kinds.
PRIVATE = "private"
MONOLITHIC = "monolithic"
DISTRIBUTED = "distributed"
NOCSTAR = "nocstar"
IDEAL = "ideal"

MESH = "mesh"
SMART = "smart"
BUS = "bus"
FBFLY_WIDE = "fbfly-wide"
FBFLY_NARROW = "fbfly-narrow"
ZERO = "zero"

#: Page-table-walk placement (§III-F, Fig 17).
PTW_REQUESTER = "requester"
PTW_REMOTE = "remote"


@dataclass(frozen=True)
class SystemConfig:
    """Full description of one simulated machine."""

    name: str
    num_cores: int
    scheme: str
    interconnect: str = ZERO
    entries_per_core: int = 1024
    l2_ways: int = 8
    monolithic_banks: Optional[int] = None
    #: Fig 4: override the *total* shared access latency (9/11/16/25cc),
    #: replacing SRAM+network modelling with a fixed cost.
    fixed_shared_latency: Optional[int] = None
    nocstar: NocstarConfig = field(default_factory=NocstarConfig)
    #: NOCSTAR with guaranteed-free links (Fig 15's NOCSTAR(ideal)).
    nocstar_ideal: bool = False
    ptw_policy: str = PTW_REQUESTER
    #: None = variable walks through the cache hierarchy (Table III).
    ptw_fixed: Optional[int] = None
    prefetch_distances: Tuple[int, ...] = ()
    l1_scale: float = 1.0
    #: Invalidation-leader group size (§III-G); 1 = every core relays.
    leader_granularity: int = 8
    smart_hpc: int = 8
    #: Fraction of the L2 *access* latency (SRAM + interconnect) hidden
    #: by out-of-order execution; page-walk latency is never hidden.
    #: Haswell's OoO window overlaps part of a translation stall with
    #: independent work, which is why the paper's mesh-based shared
    #: TLBs degrade less than a fully-blocking model would predict.
    translation_overlap: float = 0.45
    #: How translations map to slices/banks (§III-A: "optimized indexing
    #: mechanisms can be adopted"): "modulo" (the paper), "xor-fold",
    #: or "asid-mix".  Ablation: benchmarks/test_ablation_indexing.py.
    slice_indexing: str = "modulo"
    #: QoS extension (the paper's future work for multiprogrammed
    #: interference): cap the ways any single ASID may occupy per shared
    #: set.  None disables partitioning.
    qos_way_quota: Optional[int] = None
    #: L2 replacement policy (repro.tlb.policies registry name).  Applies
    #: to the private/shared L2 level only; L1 arrays stay LRU because
    #: the batched engine inlines their OrderedDict operations.
    policy: str = "lru"
    #: Shared-TLB port arbitration: "fifo" (historical, default) or
    #: "priority" (shootdown > walk > prefetch service classes).
    arbitration: str = FIFO

    def __post_init__(self) -> None:
        if self.num_cores < 1:
            raise ValueError("need at least one core")
        if self.scheme not in (PRIVATE, MONOLITHIC, DISTRIBUTED, NOCSTAR, IDEAL):
            raise ValueError(f"unknown scheme: {self.scheme}")
        if self.ptw_policy not in (PTW_REQUESTER, PTW_REMOTE):
            raise ValueError(f"unknown PTW policy: {self.ptw_policy}")
        if not 0.0 <= self.translation_overlap < 1.0:
            raise ValueError("translation_overlap must be in [0, 1)")
        if self.qos_way_quota is not None and self.qos_way_quota < 1:
            raise ValueError("QoS way quota must be at least one way")
        if self.policy not in POLICY_NAMES:
            known = ", ".join(POLICY_NAMES)
            raise ValueError(
                f"unknown replacement policy {self.policy!r}; known: {known}"
            )
        if self.arbitration not in (FIFO, PRIORITY):
            raise ValueError(f"unknown arbitration mode: {self.arbitration!r}")

    def renamed(self, name: str) -> "SystemConfig":
        return replace(self, name=name)


@register_config("private")
def private(num_cores: int, **overrides) -> SystemConfig:
    return SystemConfig(
        name="private", num_cores=num_cores, scheme=PRIVATE, **overrides
    )


@register_config("monolithic")
def monolithic(
    num_cores: int,
    noc: str = MESH,
    fixed_latency: Optional[int] = None,
    **overrides,
) -> SystemConfig:
    if noc not in (MESH, SMART):
        raise ValueError("monolithic supports mesh or smart NoCs")
    suffix = f"-{noc}" if fixed_latency is None else f"-{fixed_latency}cc"
    return SystemConfig(
        name=f"monolithic{suffix}",
        num_cores=num_cores,
        scheme=MONOLITHIC,
        interconnect=noc if fixed_latency is None else ZERO,
        monolithic_banks=MonolithicSharedTlb.banks_for(num_cores),
        fixed_shared_latency=fixed_latency,
        **overrides,
    )


@register_config("distributed")
def distributed(num_cores: int, noc: str = MESH, **overrides) -> SystemConfig:
    """Distributed shared slices over a conventional fabric.

    ``noc`` selects the interconnect: the paper's contention-free mesh
    (default), or — for the Table-I-in-vivo ablation — a shared bus or
    a flattened butterfly (wide/narrow).
    """
    if noc not in (MESH, BUS, FBFLY_WIDE, FBFLY_NARROW):
        raise ValueError(f"distributed does not support the {noc!r} NoC")
    suffix = "" if noc == MESH else f"-{noc}"
    return SystemConfig(
        name=f"distributed{suffix}",
        num_cores=num_cores,
        scheme=DISTRIBUTED,
        interconnect=noc,
        **overrides,
    )


@register_config("nocstar")
def nocstar(
    num_cores: int, config: NocstarConfig = NocstarConfig(), **overrides
) -> SystemConfig:
    return SystemConfig(
        name="nocstar",
        num_cores=num_cores,
        scheme=NOCSTAR,
        interconnect=NOCSTAR,
        entries_per_core=config.slice_entries,
        nocstar=config,
        **overrides,
    )


@register_config("nocstar-ideal")
def nocstar_ideal(num_cores: int, **overrides) -> SystemConfig:
    return SystemConfig(
        name="nocstar-ideal",
        num_cores=num_cores,
        scheme=NOCSTAR,
        interconnect=NOCSTAR,
        entries_per_core=NocstarConfig().slice_entries,
        nocstar_ideal=True,
        **overrides,
    )


@register_config("ideal")
def ideal(num_cores: int, **overrides) -> SystemConfig:
    return SystemConfig(
        name="ideal", num_cores=num_cores, scheme=IDEAL, **overrides
    )


#: Named interconnect variants of the base schemes, registered so the
#: CLI and benches can build every lineup member from one namespace.
register_config(
    "monolithic-smart",
    lambda num_cores, **overrides: monolithic(num_cores, noc=SMART, **overrides),
)
register_config(
    "distributed-bus",
    lambda num_cores, **overrides: distributed(num_cores, noc=BUS, **overrides),
)
register_config(
    "distributed-fbfly-wide",
    lambda num_cores, **overrides: distributed(
        num_cores, noc=FBFLY_WIDE, **overrides
    ),
)
register_config(
    "distributed-fbfly-narrow",
    lambda num_cores, **overrides: distributed(
        num_cores, noc=FBFLY_NARROW, **overrides
    ),
)


#: Replacement-policy and arbitration variants of the shared schemes
#: (ROADMAP item 3: the policy zoo).  Each pins the override, then
#: renames so sweeps and campaigns can address the variant directly;
#: explicit overrides still win over the pinned default.
register_config(
    "distributed-arc",
    lambda num_cores, **overrides: distributed(
        num_cores, **{"policy": "arc", **overrides}
    ).renamed("distributed-arc"),
)
register_config(
    "distributed-twoq",
    lambda num_cores, **overrides: distributed(
        num_cores, **{"policy": "twoq", **overrides}
    ).renamed("distributed-twoq"),
)
register_config(
    "nocstar-arc",
    lambda num_cores, **overrides: nocstar(
        num_cores, **{"policy": "arc", **overrides}
    ).renamed("nocstar-arc"),
)
register_config(
    "nocstar-twoq",
    lambda num_cores, **overrides: nocstar(
        num_cores, **{"policy": "twoq", **overrides}
    ).renamed("nocstar-twoq"),
)
register_config(
    "distributed-prio",
    lambda num_cores, **overrides: distributed(
        num_cores, **{"arbitration": PRIORITY, **overrides}
    ).renamed("distributed-prio"),
)
register_config(
    "nocstar-prio",
    lambda num_cores, **overrides: nocstar(
        num_cores, **{"arbitration": PRIORITY, **overrides}
    ).renamed("nocstar-prio"),
)


#: Mega-mesh lineup (ROADMAP item 1): the paper's schemes scaled to
#: 256-1024 tiles, the regime the vectorized engine exists for.  Each
#: name pins its core count — "distributed-1024" with 64 cores would
#: silently bench the wrong machine, so a mismatch raises instead.
MEGA_CORE_COUNTS = (256, 512, 1024)


def _register_mega(base: str, cores: int, factory: ConfigFactory) -> None:
    name = f"{base}-{cores}"

    def mega(num_cores: int = cores, **overrides) -> SystemConfig:
        if num_cores != cores:
            raise ValueError(
                f"{name} pins num_cores={cores}, got {num_cores}"
            )
        _validate_mesh_geometry(name, cores)
        return factory(cores, **overrides).renamed(name)

    register_config(name, mega)


def _validate_mesh_geometry(name: str, num_tiles: int) -> None:
    """Reject degenerate mega meshes before a System is built.

    The topology folds any tile count into the most-square rows x cols
    grid; a mega configuration additionally requires an aspect ratio of
    at most 2 (256=16x16, 512=16x32, 1024=32x32) so hop counts stay in
    the regime the paper's latency model was fitted for.
    """
    from repro.noc.topology import MeshTopology

    topo = MeshTopology(num_tiles)
    if topo.cols > 2 * topo.rows:
        raise ValueError(
            f"{name}: {num_tiles} tiles folds to a degenerate "
            f"{topo.cols}x{topo.rows} mesh (aspect ratio > 2)"
        )


for _cores in MEGA_CORE_COUNTS:
    _register_mega("distributed", _cores, distributed)
    _register_mega("nocstar", _cores, nocstar)
    _register_mega(
        "monolithic-smart",
        _cores,
        lambda n, **o: monolithic(n, noc=SMART, **o),
    )


def paper_lineup(num_cores: int, **overrides) -> Tuple[SystemConfig, ...]:
    """The four-way comparison of Figs 12-14: Mon/Dist/NOCSTAR/Ideal.

    ``overrides`` (e.g. ``policy="arc"``) apply to every member, so
    sweeps can rerun the whole lineup under a different replacement
    policy or arbitration mode.
    """
    return (
        private(num_cores, **overrides),
        monolithic(num_cores, **overrides),
        distributed(num_cores, **overrides),
        nocstar(num_cores, **overrides),
        ideal(num_cores, **overrides),
    )
