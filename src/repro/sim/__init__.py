"""System simulator: configs, engine, machine model, run harness."""

from repro.sim.configs import (
    SystemConfig,
    distributed,
    ideal,
    monolithic,
    nocstar,
    nocstar_ideal,
    paper_lineup,
    private,
)
from repro.sim.engine import ShootdownTraffic, StormConfig, simulate
from repro.sim.results import RunResult, geometric_mean
from repro.sim.run import (
    Comparison,
    SpeedupSummary,
    compare,
    run_suite,
    summarize_speedups,
)
from repro.sim.system import System

__all__ = [
    "SystemConfig",
    "distributed",
    "ideal",
    "monolithic",
    "nocstar",
    "nocstar_ideal",
    "paper_lineup",
    "private",
    "ShootdownTraffic",
    "StormConfig",
    "simulate",
    "RunResult",
    "geometric_mean",
    "Comparison",
    "SpeedupSummary",
    "compare",
    "run_suite",
    "summarize_speedups",
    "System",
]
