"""System simulator: configs, engine, machine model, run harness."""

from repro.sim.configs import (
    SystemConfig,
    available_configs,
    build_config,
    distributed,
    ideal,
    monolithic,
    nocstar,
    nocstar_ideal,
    paper_lineup,
    private,
    register_config,
)
from repro.sim.engine import (
    ENGINE_VERSION,
    ShootdownTraffic,
    StormConfig,
    simulate,
)
from repro.sim.results import RunResult, geometric_mean
from repro.sim.run import (
    Comparison,
    SpeedupSummary,
    compare,
    run_suite,
    summarize_speedups,
)
from repro.sim.scenario import RunUnit, Scenario
from repro.sim.system import System

__all__ = [
    "SystemConfig",
    "available_configs",
    "build_config",
    "distributed",
    "ideal",
    "monolithic",
    "nocstar",
    "nocstar_ideal",
    "paper_lineup",
    "private",
    "register_config",
    "ENGINE_VERSION",
    "ShootdownTraffic",
    "StormConfig",
    "simulate",
    "RunResult",
    "geometric_mean",
    "Comparison",
    "SpeedupSummary",
    "compare",
    "run_suite",
    "summarize_speedups",
    "RunUnit",
    "Scenario",
    "System",
]
