"""System simulator: configs, engine, machine model, run harness.

The run-harness entry points historically re-exported here
(``simulate`` / ``compare`` / ``run_suite``) are deprecated at this
package level: :mod:`repro.api` is their supported home.  They remain
importable — via a lazy module ``__getattr__`` that emits a
:class:`DeprecationWarning` — so existing scripts keep working through
a deprecation cycle, but new code should write::

    from repro import api

    api.compare(...)          # not: from repro.sim import compare
"""

import importlib
import warnings

from repro.sim.configs import (
    SystemConfig,
    available_configs,
    build_config,
    distributed,
    ideal,
    monolithic,
    nocstar,
    nocstar_ideal,
    paper_lineup,
    private,
    register_config,
)
from repro.sim.engine import (
    ENGINE_VERSION,
    ShootdownTraffic,
    StormConfig,
)
from repro.sim.results import RunResult, geometric_mean
from repro.sim.run import (
    Comparison,
    SpeedupSummary,
    summarize_speedups,
)
from repro.sim.scenario import RunUnit, Scenario
from repro.sim.system import System

#: Harness names kept importable for backward compatibility but no
#: longer eagerly bound: attribute access goes through ``__getattr__``
#: below, which warns and forwards to the defining module.  The deep
#: modules themselves (``repro.sim.engine.simulate``,
#: ``repro.sim.run.compare``) stay warning-free — the deprecation is
#: about the *package-level* alias, whose supported home is
#: ``repro.api``.
_DEPRECATED_HARNESS = {
    "simulate": "repro.sim.engine",
    "compare": "repro.sim.run",
    "run_suite": "repro.sim.run",
}


def __getattr__(name):
    home = _DEPRECATED_HARNESS.get(name)
    if home is not None:
        warnings.warn(
            f"importing {name!r} from 'repro.sim' is deprecated; "
            f"use 'repro.api.{name}' (the stable facade) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return getattr(importlib.import_module(home), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "SystemConfig",
    "available_configs",
    "build_config",
    "distributed",
    "ideal",
    "monolithic",
    "nocstar",
    "nocstar_ideal",
    "paper_lineup",
    "private",
    "register_config",
    "ENGINE_VERSION",
    "ShootdownTraffic",
    "StormConfig",
    "simulate",
    "RunResult",
    "geometric_mean",
    "Comparison",
    "SpeedupSummary",
    "compare",
    "run_suite",
    "summarize_speedups",
    "RunUnit",
    "Scenario",
    "System",
]
