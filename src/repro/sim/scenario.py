"""The :class:`Scenario` — one immutable description of an experiment.

Historically ``simulate`` / ``compare`` / ``run_suite`` each grew their
own drifting keyword-argument lists (cores, accesses, seed, superpages,
smt, storm, shootdown, ...).  A ``Scenario`` collapses all of them into
one frozen, hashable value: a configuration lineup, one or more workload
specs, and every knob that influences the simulated outcome.  Because a
Scenario is pure data it can be decomposed into independent
:class:`RunUnit`\\ s — the (config, workload, seed) grains that
``repro.exec.Runner`` fans out over worker processes and keys its
content-addressed result cache on.

Determinism contract: a ``RunUnit`` fully determines its
:class:`~repro.sim.results.RunResult`.  Workload generation is seeded,
the engine is deterministic, and no unit depends on any other — which is
what makes both parallel execution and caching bit-identical to the
serial path.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import lru_cache
from typing import Iterable, Optional, Tuple, Union

from repro.faults.models import FaultPlan, FaultSpec, derive_seed
from repro.sim import configs as cfg
from repro.sim.engine import (
    DEFAULT_QUANTUM,
    ShootdownTraffic,
    StormConfig,
)
from repro.workloads.registry import get_workload
from repro.workloads.spec import WorkloadSpec
from repro.workloads.trace import Workload

ConfigsLike = Union[cfg.SystemConfig, Iterable[cfg.SystemConfig]]
WorkloadsLike = Union[str, WorkloadSpec, Iterable[Union[str, WorkloadSpec]]]


def _coerce_configs(value: ConfigsLike) -> Tuple[cfg.SystemConfig, ...]:
    if isinstance(value, cfg.SystemConfig):
        return (value,)
    return tuple(value)


def _coerce_workloads(value: WorkloadsLike) -> Tuple[WorkloadSpec, ...]:
    if isinstance(value, (str, WorkloadSpec)):
        value = (value,)
    out = []
    for item in value:
        out.append(get_workload(item) if isinstance(item, str) else item)
    return tuple(out)


@dataclass(frozen=True)
class RunUnit:
    """One independent simulation: a single (config, workload, seed).

    The atomic grain of execution and caching.  Everything that can
    change the simulated outcome is a field here; nothing else is.
    """

    config: cfg.SystemConfig
    workload: WorkloadSpec
    accesses_per_core: int
    seed: int
    superpages: bool = True
    smt: int = 1
    storm: Optional[StormConfig] = None
    shootdown: Optional[ShootdownTraffic] = None
    record_intervals: bool = False
    quantum: int = DEFAULT_QUANTUM
    #: Observability flags (appended last: positional compatibility).
    #: Pure observation — they change what a RunResult *carries*, not
    #: what it measures — but they are cache-key fields so observed and
    #: unobserved results never alias in the result cache.
    metrics: bool = False
    trace: bool = False
    #: Fault injection (appended after the observability flags, same
    #: positional-compatibility discipline).  A FaultSpec is compiled
    #: against a "faults"-labelled sub-seed of this unit's seed at
    #: execute() time; a FaultPlan is injected as-is.  Either way the
    #: field is frozen data, so faulty and fault-free results never
    #: alias in the result cache.
    faults: Optional[Union[FaultSpec, FaultPlan]] = None

    def fault_plan(self) -> Optional[FaultPlan]:
        """The concrete plan this unit injects (compiling a spec)."""
        if isinstance(self.faults, FaultSpec):
            return self.faults.compile(
                self.config.num_cores, derive_seed(self.seed, "faults")
            )
        return self.faults

    def build_signature(self) -> Tuple:
        """The fields that fully determine this unit's built workload.

        Strictly narrower than the cache key: configurations that differ
        only in scheme/interconnect share a signature, which is what
        lets the trace store dedupe a whole lineup into one build.
        """
        return (
            self.workload,
            self.config.num_cores,
            self.accesses_per_core,
            self.seed,
            self.superpages,
            self.smt,
        )

    def build_workload(self) -> Workload:
        return _build_workload(*self.build_signature())

    def execute(self):
        """Build the workload and simulate it.  Deterministic."""
        from repro.sim.engine import simulate

        return simulate(
            self.config,
            self.build_workload(),
            quantum=self.quantum,
            storm=self.storm,
            shootdown=self.shootdown,
            record_intervals=self.record_intervals,
            metrics=self.metrics,
            trace=self.trace,
            faults=self.fault_plan(),
        )


@lru_cache(maxsize=8)
def _build_workload(
    spec: WorkloadSpec,
    num_cores: int,
    accesses_per_core: int,
    seed: int,
    superpages: bool,
    smt: int,
) -> Workload:
    """Memoised deterministic workload build.

    The lineup of one scenario replays the same trace through many
    configurations; the cache keeps the serial path from regenerating
    it per configuration (and keeps each pool worker from regenerating
    it per unit it is handed).
    """
    from repro.workloads.generators import build_multithreaded

    return build_multithreaded(
        spec,
        num_cores,
        accesses_per_core=accesses_per_core,
        seed=seed,
        superpages=superpages,
        smt=smt,
    )


@dataclass(frozen=True)
class Scenario:
    """Immutable description of one experiment (lineup x workloads).

    ``configurations`` accepts a single :class:`SystemConfig` or an
    iterable; ``workloads`` accepts registry names, specs, or an
    iterable of either.  The core count is derived from the lineup —
    every configuration must agree on it.
    """

    configurations: Tuple[cfg.SystemConfig, ...]
    workloads: Tuple[WorkloadSpec, ...]
    accesses_per_core: int = 12_000
    seed: int = 1
    superpages: bool = True
    smt: int = 1
    baseline_name: str = "private"
    storm: Optional[StormConfig] = None
    shootdown: Optional[ShootdownTraffic] = None
    record_intervals: bool = False
    quantum: int = DEFAULT_QUANTUM
    #: Observability flags, mirrored onto every RunUnit.
    metrics: bool = False
    trace: bool = False
    #: Fault injection, mirrored onto every RunUnit (spec or plan).
    faults: Optional[Union[FaultSpec, FaultPlan]] = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "configurations", _coerce_configs(self.configurations)
        )
        object.__setattr__(self, "workloads", _coerce_workloads(self.workloads))
        if not self.configurations:
            raise ValueError("a scenario needs at least one configuration")
        if not self.workloads:
            raise ValueError("a scenario needs at least one workload")
        cores = {c.num_cores for c in self.configurations}
        if len(cores) != 1:
            raise ValueError(
                f"configurations disagree on core count: {sorted(cores)}"
            )
        names = [c.name for c in self.configurations]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate configuration names in lineup: {names}")
        if self.accesses_per_core <= 0:
            raise ValueError("accesses_per_core must be positive")
        if self.smt < 1:
            raise ValueError("smt must be >= 1")

    @property
    def num_cores(self) -> int:
        return self.configurations[0].num_cores

    @property
    def workload_names(self) -> Tuple[str, ...]:
        return tuple(spec.name for spec in self.workloads)

    def unit(
        self, config: cfg.SystemConfig, workload: WorkloadSpec
    ) -> RunUnit:
        return RunUnit(
            config=config,
            workload=workload,
            accesses_per_core=self.accesses_per_core,
            seed=self.seed,
            superpages=self.superpages,
            smt=self.smt,
            storm=self.storm,
            shootdown=self.shootdown,
            record_intervals=self.record_intervals,
            quantum=self.quantum,
            metrics=self.metrics,
            trace=self.trace,
            faults=self.faults,
        )

    def units(self) -> Tuple[RunUnit, ...]:
        """Workload-major decomposition into independent run units."""
        return tuple(
            self.unit(config, workload)
            for workload in self.workloads
            for config in self.configurations
        )

    def for_workload(self, workload: Union[str, WorkloadSpec]) -> "Scenario":
        """Narrow to a single workload (e.g. for ``compare``)."""
        return replace(self, workloads=_coerce_workloads(workload))
