"""The simulated machine: TLB hierarchy + interconnect + walkers.

One :class:`System` instance models a whole chip for one configuration.
The engine drives it with trace records; everything below the L1 TLB
probe — shared-slice lookups, network traversals, port and walker
queueing, page-table walks, shootdowns — happens in
:meth:`System.l2_transaction` and friends, against explicit
per-cycle reservation state (link/port occupancy maps, walker queues),
which is how contention becomes latency.

Timing of a remote NOCSTAR access follows Fig 10: path setup (1 cycle),
single-cycle traversal, slice port + SRAM lookup, speculative response
path setup overlapped with the lookup, single-cycle response traversal.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.config import ROUND_TRIP
from repro.core.indexing import get_indexer
from repro.core.nocstar import NocstarInterconnect
from repro.energy.components import (
    ARBITERS_POWER_MW,
    SWITCH_POWER_MW,
)
from repro.energy.model import EnergyModel
from repro.faults.inject import FaultInjector
from repro.faults.models import FaultPlan
from repro.mem import sram
from repro.mem.cache import CacheHierarchy
from repro.noc.bus import BusNetwork
from repro.noc.fbfly import FlattenedButterfly
from repro.noc.mesh import ContentionFreeMesh
from repro.noc.route_cache import reference_mode, shared_route_cache
from repro.noc.smart import SmartNetwork
from repro.noc.topology import MeshTopology
from repro.obs import NULL_SINK
from repro.sim import configs as cfg
from repro.tlb.l1 import L1Tlb, L1TlbConfig
from repro.tlb.l2_private import L2TlbConfig, PrivateL2Tlb
from repro.tlb.l2_shared import (
    PREFETCH_CLASS,
    PRIORITY,
    WALK_CLASS,
    DistributedSharedTlb,
    MonolithicSharedTlb,
)
from repro.tlb.prefetch import SequentialPrefetcher
from repro.tlb.shootdown import InvalidationController
from repro.tlb.stats import TlbStats
from repro.vm.address import PAGE_1G, PAGE_2M, PAGE_4K
from repro.vm.page_table import PageTable
from repro.vm.walker import FixedLatencyWalker, PageTableWalker, WalkerQueue

#: Leakage of one buffered mesh router / SMART router, mW (documented
#: modelling constants; see DESIGN.md energy substitution).
MESH_ROUTER_MW = 3.0
SMART_ROUTER_MW = 3.4
#: Fixed cost of taking a shootdown IPI on a core (handler entry/exit).
IPI_CYCLES = 30
#: Cache-disruption penalty charged to a core per walk another core's
#: request executed on it (remote-PTW pollution, §V Fig 17).
POLLUTION_CYCLES_PER_FILL = 6

_SHIFT = {PAGE_4K: 0, PAGE_2M: 9, PAGE_1G: 18}


class System:
    """One simulated chip."""

    def __init__(
        self,
        config: cfg.SystemConfig,
        record_intervals: bool = False,
        timeline: Optional[List[Tuple[str, int, int]]] = None,
        sink=NULL_SINK,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        self.config = config
        n = config.num_cores
        self.topology = MeshTopology(n)
        #: Precomputed fault-free route/latency tables, shared across
        #: systems of the same size.  None under the reference engine
        #: (REPRO_REFERENCE_ENGINE=1), which recomputes routes live —
        #: the differential harness proves both modes bit-identical.
        self.routes = None if reference_mode() else shared_route_cache(n)
        #: Runtime fault state; None keeps every component on its exact
        #: fault-free code path (an empty plan is normalised to None by
        #: the engine, so rate-0 runs are bit-identical to plain runs).
        self.faults: Optional[FaultInjector] = None
        if faults is not None and not faults.is_empty:
            self.faults = FaultInjector(faults, self.topology, sink=sink)
        #: True when the active network routes around failed links (so
        #: an unreachable pair must be degraded before issuing).
        self._network_fault_aware = False
        l1_config = L1TlbConfig()
        if config.l1_scale != 1.0:
            l1_config = l1_config.scaled(config.l1_scale)
        self.l1s = [L1Tlb(l1_config) for _ in range(n)]
        self.record_intervals = record_intervals
        self.intervals: List[Tuple[int, int, int]] = []
        self.timeline = timeline
        self.sink = sink
        #: Bound event emitter, or None when unobserved — hot paths
        #: then skip building kwargs for a no-op sink call.
        self._event = sink.event if sink.enabled else None
        self.stats = TlbStats()

        # --- L2 organisation -------------------------------------------
        self.private_l2: List[PrivateL2Tlb] = []
        self.shared_l2 = None
        self.network = None
        self.mono_tile = self.topology.edge_tile
        scheme = config.scheme
        if scheme == cfg.PRIVATE:
            l2cfg = L2TlbConfig(
                config.entries_per_core, config.l2_ways, policy=config.policy
            )
            self.private_l2 = [PrivateL2Tlb(l2cfg) for _ in range(n)]
            self.l2_lookup_cycles = self.private_l2[0].lookup_cycles
        elif scheme == cfg.MONOLITHIC:
            banks = config.monolithic_banks or MonolithicSharedTlb.banks_for(n)
            self.shared_l2 = MonolithicSharedTlb(
                config.entries_per_core * n, banks, config.l2_ways,
                indexer=get_indexer(config.slice_indexing),
                policy=config.policy, arbitration=config.arbitration,
            )
            if config.fixed_shared_latency is not None:
                self.l2_lookup_cycles = config.fixed_shared_latency
            else:
                self.l2_lookup_cycles = self.shared_l2.lookup_cycles
            if config.interconnect == cfg.MESH:
                self.network = ContentionFreeMesh(
                    self.topology, sink=sink, faults=self.faults,
                    routes=self.routes,
                )
                self._network_fault_aware = True
            elif config.interconnect == cfg.SMART:
                self.network = SmartNetwork(
                    self.topology, config.smart_hpc, sink=sink,
                    faults=self.faults, routes=self.routes,
                )
                self._network_fault_aware = True
        else:  # distributed / nocstar / ideal
            self.shared_l2 = DistributedSharedTlb(
                n, config.entries_per_core, config.l2_ways,
                indexer=get_indexer(config.slice_indexing),
                policy=config.policy, arbitration=config.arbitration,
            )
            self.l2_lookup_cycles = self.shared_l2.lookup_cycles
            if scheme == cfg.DISTRIBUTED:
                if config.interconnect == cfg.BUS:
                    self.network = BusNetwork(self.topology)
                elif config.interconnect == cfg.FBFLY_WIDE:
                    self.network = FlattenedButterfly(self.topology)
                elif config.interconnect == cfg.FBFLY_NARROW:
                    self.network = FlattenedButterfly(
                        self.topology, narrow=True
                    )
                else:
                    self.network = ContentionFreeMesh(
                        self.topology, sink=sink, faults=self.faults,
                        routes=self.routes,
                    )
                    self._network_fault_aware = True
            elif scheme == cfg.NOCSTAR:
                # The idealised fabric abstracts links away entirely, so
                # link faults have nothing physical to act on there.
                net_faults = None if config.nocstar_ideal else self.faults
                self.network = NocstarInterconnect(
                    self.topology, config.nocstar, sink=sink,
                    faults=net_faults, routes=self.routes,
                )
                self._network_fault_aware = not config.nocstar_ideal

        # Scheme predicates, precomputed: the transaction hot paths
        # test them per message.
        self._is_monolithic = scheme == cfg.MONOLITHIC
        self._is_nocstar = isinstance(self.network, NocstarInterconnect)

        # Cached tables used by System itself (ideal-NOCSTAR timing and
        # shootdown delivery both reduce to pure hop-count formulas).
        self._hops_table = self.routes.hops if self.routes is not None else None
        self._ideal_cycles = None
        if (
            scheme == cfg.NOCSTAR
            and config.nocstar_ideal
            and self.routes is not None
        ):
            self._ideal_cycles = self.routes.nocstar_cycles(
                config.nocstar.hpc_max
            )

        # --- Walkers ------------------------------------------------------
        self.page_table = PageTable()
        if config.ptw_fixed is not None:
            self.walker = FixedLatencyWalker(
                self.page_table, config.ptw_fixed, sink=sink
            )
        else:
            self.caches = CacheHierarchy(n)
            self.walker = PageTableWalker(
                self.page_table, self.caches, n, sink=sink
            )
        self.walker_queues = [WalkerQueue() for _ in range(n)]

        if config.qos_way_quota is not None and self.shared_l2 is not None:
            for shard in self.shared_l2.shards:
                shard.way_quota = config.qos_way_quota

        # --- Prefetch / shootdown -----------------------------------------
        self.prefetcher = SequentialPrefetcher(config.prefetch_distances)
        self.invalidation = InvalidationController(
            n, min(config.leader_granularity, n)
        )
        #: Stall cycles to apply to each core at its next resume.
        self.pending_penalty = [0] * n
        #: Fraction of access latency the OoO core hides (see configs).
        self._visible = 1.0 - config.translation_overlap
        #: Service classes the shared-port reservations tag their
        #: traffic with; all zero under FIFO arbitration, so the FIFO
        #: reservation arithmetic is untouched (shootdown sweeps stay
        #: class 0 — the highest — in both modes).
        prio = config.arbitration == PRIORITY
        self._klass_walk = WALK_CLASS if prio else 0
        self._klass_prefetch = PREFETCH_CLASS if prio else 0

    # ------------------------------------------------------------------
    # Translation path below the L1 probe

    def l2_transaction(
        self, core: int, asid: int, size: int, page_number: int, now: int
    ) -> int:
        """Resolve an L1 TLB miss; returns the stall in cycles.

        The caller (engine fast path) has already probed the L1 and
        inserts the translation into it afterwards.
        """
        if self.config.scheme == cfg.PRIVATE:
            return self._private_transaction(core, asid, size, page_number, now)
        return self._shared_transaction(core, asid, size, page_number, now)

    def _charge(self, access_cycles: int, walk_cycles: int) -> int:
        """Stall visible to the core: OoO hides part of the *access*
        latency (SRAM + interconnect), never the walk."""
        visible = self._visible
        if visible == 1.0:
            # int(x * 1.0) == x exactly for any cycle count below 2**53,
            # so the fast path is bit-identical, not an approximation.
            return access_cycles + walk_cycles
        return int(access_cycles * visible) + walk_cycles

    def _private_transaction(
        self, core: int, asid: int, size: int, page_number: int, now: int
    ) -> int:
        l2 = self.private_l2[core]
        lookup_done = now + self.l2_lookup_cycles
        hit = l2.lookup_page_number(asid, size, page_number)
        if self._event is not None:
            self._event(
                lookup_done, "l2_lookup", core=core, slice=core, hit=hit
            )
        if hit:
            self.stats.l2_hits += 1
            return self._charge(self.l2_lookup_cycles, 0)
        self.stats.l2_misses += 1
        done = self._walk_at(core, asid, size, page_number, lookup_done)
        l2.insert_page_number(asid, size, page_number)
        if self.prefetcher.enabled:
            for pa, ps, pp in self.prefetcher.candidates(asid, size, page_number):
                if l2.lookup_page_number(pa, ps, pp):
                    continue
                self._async_prefetch_walk(core, pa, ps, pp, done)
                l2.insert_page_number(pa, ps, pp)
                self.stats.prefetches += 1
        return self._charge(self.l2_lookup_cycles, done - lookup_done)

    def _shared_transaction(
        self, core: int, asid: int, size: int, page_number: int, now: int
    ) -> int:
        shared = self.shared_l2
        home = shared.home(page_number, asid)
        dst_tile = self.mono_tile if self._is_monolithic else home
        inj = self.faults
        if inj is not None:
            # Degrade rather than hang: a dead home slice cannot serve
            # the lookup, and a partitioned pair cannot complete the
            # round trip — either way the request walks locally (no
            # shared fill: the slice would never receive it).
            dead_slice = not self._is_monolithic and inj.slice_dead(home)
            unreachable = (
                core != dst_tile
                and self._network_fault_aware
                and not inj.router.reachable_round_trip(core, dst_tile)
            )
            if dead_slice or unreachable:
                self.stats.l2_misses += 1
                inj.record_degraded_walk(now, core, dst_tile)
                walk_done = self._walk_at(core, asid, size, page_number, now)
                if self.timeline is not None:
                    self.timeline.append(("walk", now, walk_done))
                return self._charge(0, walk_done - now)
        held_links = ()

        # Request leg.
        if self._is_nocstar:
            if self.config.nocstar_ideal:
                if self._ideal_cycles is not None:
                    hops = self._hops_table[core][dst_tile]
                    dur = self._ideal_cycles[core][dst_tile]
                else:
                    hops = self.topology.hops(core, dst_tile)
                    dur = self.network.traversal_cycles(hops)
                arrival = now + (1 + dur if hops else 0)
                self.network.messages += 1
                self.network.total_hops += hops
                self.network.uncontended_messages += 1 if hops else 0
            elif self.config.nocstar.acquire == ROUND_TRIP:
                traversal = self.network.send(core, dst_tile, now, hold=True)
                arrival = traversal.ready
                held_links = traversal.links
            else:
                traversal = self.network.send(core, dst_tile, now)
                arrival = traversal.ready
        elif self.network is not None:
            arrival = self.network.send(core, dst_tile, now).arrival
            if self._is_monolithic:
                arrival += MonolithicSharedTlb.INGRESS_CYCLES
        else:
            arrival = now  # ideal zero-latency interconnect / fixed-latency

        # Slice/bank port + SRAM lookup.
        start = shared.reserve_read(home, arrival, self._klass_walk)
        lookup_done = start + self.l2_lookup_cycles
        if self.record_intervals:
            self.intervals.append((arrival, lookup_done, home))
        if self.timeline is not None:
            self.timeline.append(("request-network", now, arrival))
            self.timeline.append(("slice-lookup", start, lookup_done))

        hit = shared.lookup_page_number(asid, size, page_number, home)
        if self._event is not None:
            self._event(
                lookup_done, "l2_lookup", core=core, slice=home, hit=hit
            )
        walk_cycles = 0
        if hit:
            self.stats.l2_hits += 1
            response_from = lookup_done
        else:
            self.stats.l2_misses += 1
            if self.config.ptw_policy == cfg.PTW_REMOTE and not self._is_monolithic:
                walk_core = dst_tile
                walk_done = self._walk_at(
                    walk_core, asid, size, page_number, lookup_done
                )
                if walk_core != core and self.config.ptw_fixed is None:
                    self.pending_penalty[walk_core] += (
                        self._last_pollution * POLLUTION_CYCLES_PER_FILL
                    )
                shared.insert_page_number(asid, size, page_number)
                shared.reserve_write(home, walk_done, self._klass_walk)
                walk_cycles = walk_done - lookup_done
                response_from = walk_done
            else:
                # Miss message returns to the requester, which walks and
                # then sends the fill back to the home slice.
                miss_reply = self._response(core, dst_tile, lookup_done, held_links)
                walk_done = self._walk_at(core, asid, size, page_number, miss_reply)
                held_links = ()  # released by the miss reply
                self._async_fill(core, dst_tile, home, walk_done)
                shared.insert_page_number(asid, size, page_number)
                if self.prefetcher.enabled:
                    self._prefetch_fill(core, asid, size, page_number, walk_done)
                if self.timeline is not None:
                    self.timeline.append(("walk", miss_reply, walk_done))
                return self._charge(miss_reply - now, walk_done - miss_reply)

        response_ready = self._response(core, dst_tile, response_from, held_links)
        if self.timeline is not None:
            self.timeline.append(("response-network", response_from, response_ready))
        if not hit and self.prefetcher.enabled:
            self._prefetch_fill(core, asid, size, page_number, response_ready)
        return self._charge(response_ready - now - walk_cycles, walk_cycles)

    def _response(
        self, core: int, dst_tile: int, ready_at: int, held_links
    ) -> int:
        """Send the response (or miss message) back to the requester."""
        if self._is_nocstar:
            if self.config.nocstar_ideal:
                if self._ideal_cycles is not None:
                    hops = self._hops_table[dst_tile][core]
                    dur = self._ideal_cycles[dst_tile][core]
                else:
                    hops = self.topology.hops(dst_tile, core)
                    dur = self.network.traversal_cycles(hops)
                self.network.messages += 1
                self.network.total_hops += hops
                self.network.uncontended_messages += 1 if hops else 0
                return ready_at + dur
            if held_links:
                # Round-trip acquisition: path still ours, no arbitration.
                dur = self.network.traversal_cycles(len(held_links))
                ready = ready_at + dur
                self.network.release(held_links, ready)
                self.network.messages += 1
                self.network.total_hops += len(held_links)
                return ready
            return self.network.send(
                dst_tile, core, ready_at, speculative_setup=True
            ).ready
        if self.network is not None:
            egress = (
                MonolithicSharedTlb.INGRESS_CYCLES if self._is_monolithic else 0
            )
            return self.network.send(dst_tile, core, ready_at).arrival + egress
        return ready_at

    def _async_fill(self, core: int, dst_tile: int, home: int, when: int) -> None:
        """Fire-and-forget insert message from requester back to the slice."""
        if self._is_nocstar and not self.config.nocstar_ideal:
            self.network.send(core, dst_tile, when)
        elif self.network is not None:
            self.network.send(core, dst_tile, when)
        self.shared_l2.reserve_write(home, when, self._klass_walk)

    def _prefetch_fill(
        self, core: int, asid: int, size: int, page_number: int, when: int
    ) -> None:
        """Prefetch neighbour translations into their home slices.

        Each prefetched translation requires its own page walk, which
        occupies (but does not stall on) the requesting core's walkers
        — this is what makes over-aggressive distances (+/-3) pollute,
        as the paper observed."""
        for pa, ps, pp in self.prefetcher.candidates(asid, size, page_number):
            if self.shared_l2.probe_page_number(pa, ps, pp):
                continue
            self._async_prefetch_walk(core, pa, ps, pp, when)
            self.shared_l2.insert_page_number(pa, ps, pp)
            self.shared_l2.reserve_write(
                self.shared_l2.home(pp, pa), when, self._klass_prefetch
            )
            self.stats.prefetches += 1

    def _async_prefetch_walk(
        self, core: int, asid: int, size: int, page_number: int, when: int
    ) -> None:
        result = self.walker.walk(core, asid, page_number << _SHIFT[size], size, when)
        latency = result.latency
        if self.faults is not None:
            latency = self.faults.walk_latency(latency)
        self.walker_queues[core].admit(when, latency)

    _last_pollution = 0

    def _walk_at(
        self, core: int, asid: int, size: int, page_number: int, now: int
    ) -> int:
        """Queue and perform a page walk at ``core``'s hardware walker."""
        vpn = page_number << _SHIFT[size]
        result = self.walker.walk(core, asid, vpn, size, now)
        self._last_pollution = getattr(result, "pollution", 0)
        self.stats.walks += 1
        latency = result.latency
        if self.faults is not None:
            latency = self.faults.walk_latency(latency)
        return self.walker_queues[core].admit(now, latency)

    # ------------------------------------------------------------------
    # Shootdowns and storms

    def apply_shootdown(
        self, initiator: int, entries: List[Tuple[int, int, int]], now: int
    ) -> None:
        """One remapping event: IPI all cores, invalidate L1s and L2.

        Charges every core the IPI handler cost; the initiator
        additionally waits for the L2 invalidations to complete, which
        is where leader policy and slice-port congestion matter.
        """
        n = self.config.num_cores
        self.sink.event(
            now, "shootdown", initiator=initiator, entries=len(entries)
        )
        for core in range(n):
            for asid, size, page_number in entries:
                self.l1s[core].invalidate(asid, size, page_number)
            self.pending_penalty[core] += IPI_CYCLES
        if self.config.scheme == cfg.PRIVATE:
            for core in range(n):
                for asid, size, page_number in entries:
                    self.private_l2[core].invalidate(asid, size, page_number)
                self.pending_penalty[core] += len(entries)
            return
        homes = sorted({self.shared_l2.home(pn, a) for a, _, pn in entries})
        plan = self.invalidation.plan(initiator, homes)
        self.stats.shootdown_messages += len(plan.messages)
        completion = now
        sender_done: Dict[int, int] = {}
        for message in plan.messages:
            dst_tile = self.mono_tile if self._is_monolithic else message.dst
            if message.kind == "relay":
                dst_tile = message.dst
            arrival = self._plain_send(message.src, dst_tile, now)
            if message.kind == "invalidate":
                per_slice = [e for e in entries
                             if self.shared_l2.home(e[2], e[0]) == message.dst]
                finish = self.shared_l2.write_ports[message.dst].reserve_many(
                    arrival, max(1, len(per_slice))
                )
            else:
                finish = arrival
            # The IPI handler issues all its invalidates, then spins
            # until the last one is acknowledged — the congestion that
            # penalises the naive every-core-relays policy (Fig 16R).
            sender_done[message.src] = max(
                sender_done.get(message.src, now), finish
            )
            completion = max(completion, finish)
        for sender, done in sender_done.items():
            if sender != initiator:
                self.pending_penalty[sender] += done - now
        for asid, size, page_number in entries:
            self.shared_l2.invalidate(asid, size, page_number)
        self.pending_penalty[initiator] += completion - now

    def _plain_send(self, src: int, dst: int, now: int) -> int:
        """Deliver a shootdown relay/invalidate message.

        IPI and invalidation traffic rides the chip's primary coherence
        NoC (a buffered mesh), not the latency-tuned TLB sideband — a
        flood of simultaneous invalidates would otherwise jam the
        circuit-switched fabric's all-or-nothing arbitration.  Their
        congestion shows up where it belongs: at the slice write ports
        and in the senders' IPI-handler stalls.

        Under fault injection delivery is delegated to the injector:
        the message is routed around dead links, retried with backoff
        on transient drops, and skipped (zero cost, counted) when the
        target is partitioned away.  With no dead links and no drop
        probability the injector's cost formula reduces to exactly the
        expression below."""
        if self.faults is not None:
            arrival = self.faults.shootdown_send(src, dst, now)
            return now if arrival is None else arrival
        if self._hops_table is not None:
            return now + 2 * self._hops_table[src][dst] + 1
        return now + 2 * self.topology.hops(src, dst) + 1

    def flush_all_tlbs(self) -> None:
        """Full TLB flush (context-switch storms, §V)."""
        for l1 in self.l1s:
            l1.flush()
        if self.private_l2:
            for l2 in self.private_l2:
                l2.flush()
        if self.shared_l2 is not None:
            self.shared_l2.flush()
        self.stats.flushes += 1

    # ------------------------------------------------------------------
    # Bookkeeping

    def static_power_mw(self) -> float:
        config = self.config
        n = config.num_cores
        if config.scheme == cfg.PRIVATE:
            return n * sram.budget(config.entries_per_core).power_mw
        if config.scheme == cfg.MONOLITHIC:
            power = sram.budget(config.entries_per_core * n).power_mw
            if config.interconnect == cfg.SMART:
                power += n * SMART_ROUTER_MW
            elif config.interconnect == cfg.MESH:
                power += n * MESH_ROUTER_MW
            return power
        power = n * sram.budget(config.entries_per_core).power_mw
        if config.scheme == cfg.NOCSTAR:
            power += n * (SWITCH_POWER_MW + ARBITERS_POWER_MW)
        elif config.scheme == cfg.DISTRIBUTED:
            if config.interconnect == cfg.BUS:
                power += n * 0.5  # wire drivers only
            elif config.interconnect in (cfg.FBFLY_WIDE, cfg.FBFLY_NARROW):
                power += n * 2 * MESH_ROUTER_MW  # high-radix crossbars
            else:
                power += n * MESH_ROUTER_MW
        return power

    def finalize_stats(self) -> None:
        """Fold structure counters into the run-level stats."""
        self.stats.l1_hits = sum(l1.hits for l1 in self.l1s)
        self.stats.l1_misses = sum(l1.misses for l1 in self.l1s)

    def finalize_metrics(self, cycles: int) -> None:
        """Publish end-of-run gauges/counters into the metrics sink.

        Called once after :meth:`finalize_stats`; a no-op sink makes
        this free.  Everything here is *derived* from simulation state,
        so publishing it can never perturb timing.
        """
        sink = self.sink
        if not sink.enabled:
            return
        sink.gauge("run.cycles", cycles)
        sink.count("tlb.l1.hits", self.stats.l1_hits)
        sink.count("tlb.l1.misses", self.stats.l1_misses)
        sink.count("tlb.l2.hits", self.stats.l2_hits)
        sink.count("tlb.l2.misses", self.stats.l2_misses)
        sink.count("walk.count", self.stats.walks)
        sink.count("tlb.prefetches", self.stats.prefetches)
        sink.count("shootdown.messages", self.stats.shootdown_messages)
        if self.shared_l2 is not None:
            slices = self.shared_l2.shards
        else:
            slices = [l2.array for l2 in self.private_l2]
        for i, arr in enumerate(slices):
            sink.gauge(f"tlb.slice.{i}.hits", arr.hits)
            sink.gauge(f"tlb.slice.{i}.misses", arr.misses)
            sink.gauge(f"tlb.slice.{i}.occupancy", arr.occupancy)
            sink.gauge(f"tlb.slice.{i}.evictions", arr.evictions)
        sink.count(
            "walk.queued", sum(q.queued_walks for q in self.walker_queues)
        )
        sink.count(
            "walk.queue_cycles",
            sum(q.total_queue_cycles for q in self.walker_queues),
        )
        network = self.network
        if network is not None:
            for name in (
                "messages",
                "total_hops",
                "total_setup_retries",
                "premature_stops",
                "total_queue_cycles",
                "control_requests",
                "uncontended_messages",
                "local_messages",
            ):
                value = getattr(network, name, None)
                if value is not None:
                    sink.count(f"noc.{name}", value)
            busy_fn = getattr(network, "link_busy_cycles", None)
            if busy_fn is not None:
                for (src, dst), busy in busy_fn().items():
                    sink.gauge(f"noc.link.{src}>{dst}.busy_cycles", busy)
                    sink.gauge(
                        f"noc.link.{src}>{dst}.util",
                        busy / cycles if cycles else 0.0,
                    )
        if self.faults is not None:
            self.faults.publish_metrics()
        trace = sink.trace
        if trace is not None:
            sink.gauge("trace.emitted", trace.emitted)
            sink.gauge("trace.dropped", trace.dropped)

    def energy_summary(self, cycles: int) -> Dict[str, float]:
        model = EnergyModel(static_power_mw=self.static_power_mw())
        model.l1_lookup(self.stats.l1_accesses)
        if self.config.scheme == cfg.PRIVATE:
            entries = self.config.entries_per_core
            accesses = sum(l2.accesses for l2 in self.private_l2)
            model.l2_lookup(entries, accesses)
        else:
            if self._is_monolithic:
                entries = self.config.entries_per_core * self.config.num_cores
            else:
                entries = self.config.entries_per_core
            model.l2_lookup(entries, self.shared_l2.accesses)
        if self._is_nocstar:
            hops = self.network.total_hops
            if self.faults is not None:
                # Fallback hops traversed the buffered mesh, not the
                # latchless switches: charge them at the mesh rate.
                fallback = self.faults.fallback_hops
                model.nocstar_hops(hops - fallback)
                model.mesh_hops(fallback)
            else:
                model.nocstar_hops(hops)
            model.control(self.network.control_requests)
        elif self.network is not None:
            model.mesh_hops(self.network.total_hops)
        # Run-level walk energy is charged at the paper's 2TB-footprint
        # rate (the multi-GB page table keeps leaf PTEs effectively
        # uncached), so walk *elimination* carries the energy weight the
        # paper reports in Fig 14 — see EnergyParams.big_footprint_walk_pj.
        total_walks = self.stats.walks + self.stats.prefetches
        model.breakdown.walk_pj += (
            model.params.big_footprint_walk_pj * total_walks
        )
        model.finalize(cycles)
        return model.breakdown.as_dict()

    def network_summary(self) -> Dict[str, float]:
        if self._is_nocstar:
            return {
                "messages": self.network.messages,
                "mean_setup_retries": self.network.mean_setup_retries,
                "no_contention_fraction": self.network.no_contention_fraction,
                "mean_hops": (
                    self.network.total_hops / self.network.messages
                    if self.network.messages
                    else 0.0
                ),
            }
        if self.network is not None:
            messages = self.network.messages
            return {
                "messages": messages,
                "mean_hops": (
                    self.network.total_hops / messages
                    if messages and hasattr(self.network, "total_hops")
                    else 0.0
                ),
            }
        return {}

    def fault_summary(self) -> Optional[Dict[str, int]]:
        """Degradation counters of this run, or None when fault-free."""
        return self.faults.summary() if self.faults is not None else None

    def walk_level_summary(self) -> Dict[str, int]:
        if isinstance(self.walker, PageTableWalker):
            return dict(self.walker.level_hits)
        return {"fixed": self.walker.walks}
