"""High-level run harness: suites, comparisons, speedups.

Everything the benches need: build a workload once, run it through a
lineup of configurations, and report speedups versus the private-L2
baseline — the paper's metric throughout §V.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.sim import configs as cfg
from repro.sim.engine import ShootdownTraffic, StormConfig, simulate
from repro.sim.results import RunResult, geometric_mean
from repro.workloads.generators import build_multithreaded
from repro.workloads.registry import WORKLOAD_NAMES, get_workload
from repro.workloads.trace import Workload


@dataclass
class Comparison:
    """Results of one workload across several configurations."""

    workload_name: str
    results: Dict[str, RunResult]
    baseline_name: str = "private"

    @property
    def baseline(self) -> RunResult:
        return self.results[self.baseline_name]

    def speedup(self, config_name: str) -> float:
        return self.results[config_name].speedup_over(self.baseline)

    def speedups(self) -> Dict[str, float]:
        return {
            name: result.speedup_over(self.baseline)
            for name, result in self.results.items()
            if name != self.baseline_name
        }

    def misses_eliminated_pct(self, config_name: str) -> float:
        """Fig 2's metric: % of private L2 misses the shared TLB removes."""
        private_misses = self.baseline.stats.l2_misses
        shared_misses = self.results[config_name].stats.l2_misses
        if private_misses == 0:
            return 0.0
        return 100.0 * (1.0 - shared_misses / private_misses)


def compare(
    workload: Workload,
    configurations: Sequence[cfg.SystemConfig],
    baseline_name: str = "private",
    storm: Optional[StormConfig] = None,
    shootdown: Optional[ShootdownTraffic] = None,
    record_intervals: bool = False,
) -> Comparison:
    """Run one workload on every configuration."""
    results = {}
    for configuration in configurations:
        results[configuration.name] = simulate(
            configuration,
            workload,
            storm=storm,
            shootdown=shootdown,
            record_intervals=record_intervals,
        )
    if baseline_name not in results:
        raise ValueError(f"no baseline {baseline_name!r} in the lineup")
    return Comparison(workload.name, results, baseline_name)


def run_suite(
    configurations: Sequence[cfg.SystemConfig],
    num_cores: int,
    workload_names: Optional[Iterable[str]] = None,
    accesses_per_core: int = 12_000,
    seed: int = 1,
    superpages: bool = True,
    smt: int = 1,
    baseline_name: str = "private",
) -> Dict[str, Comparison]:
    """The paper's standard sweep: every workload through a lineup."""
    names = list(workload_names or WORKLOAD_NAMES)
    out = {}
    for name in names:
        workload = build_multithreaded(
            get_workload(name),
            num_cores,
            accesses_per_core=accesses_per_core,
            seed=seed,
            superpages=superpages,
            smt=smt,
        )
        out[name] = compare(workload, configurations, baseline_name)
    return out


@dataclass(frozen=True)
class SpeedupSummary:
    """Min / average / max speedups across a suite (Table III rows)."""

    config_name: str
    minimum: float
    average: float
    maximum: float


def summarize_speedups(
    comparisons: Dict[str, Comparison], config_name: str
) -> SpeedupSummary:
    speedups = [c.speedup(config_name) for c in comparisons.values()]
    return SpeedupSummary(
        config_name=config_name,
        minimum=min(speedups),
        average=sum(speedups) / len(speedups),
        maximum=max(speedups),
    )
