"""High-level run harness: suites, comparisons, speedups.

Everything the benches need: run a workload lineup and report speedups
versus the private-L2 baseline — the paper's metric throughout §V.

The supported way to call :func:`compare` and :func:`run_suite` is with
a :class:`~repro.sim.scenario.Scenario`; execution then goes through
:class:`repro.exec.Runner`, which adds process-pool parallelism
(``jobs``) and content-addressed result caching (``cache_dir``).  The
legacy keyword-argument forms still work but are deprecated thin
wrappers around the same machinery.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence, Union

from repro.sim import configs as cfg
from repro.sim.engine import ShootdownTraffic, StormConfig
from repro.sim.results import RunResult, geometric_mean
from repro.sim.scenario import Scenario
from repro.workloads.registry import WORKLOAD_NAMES
from repro.workloads.trace import Workload


@dataclass
class Comparison:
    """Results of one workload across several configurations."""

    workload_name: str
    results: Dict[str, RunResult]
    baseline_name: str = "private"

    @property
    def baseline(self) -> RunResult:
        return self.results[self.baseline_name]

    def speedup(self, config_name: str) -> float:
        return self.results[config_name].speedup_over(self.baseline)

    def speedups(self) -> Dict[str, float]:
        return {
            name: result.speedup_over(self.baseline)
            for name, result in self.results.items()
            if name != self.baseline_name
        }

    def fault_summaries(self) -> Dict[str, Dict[str, int]]:
        """Per-config fault degradation counters; empty when the
        comparison ran fault-free."""
        return {
            name: result.faults
            for name, result in self.results.items()
            if getattr(result, "faults", None)
        }

    def misses_eliminated_pct(self, config_name: str) -> float:
        """Fig 2's metric: % of private L2 misses the shared TLB removes."""
        private_misses = self.baseline.stats.l2_misses
        shared_misses = self.results[config_name].stats.l2_misses
        if private_misses == 0:
            return 0.0
        return 100.0 * (1.0 - shared_misses / private_misses)


def _runner(jobs, cache_dir, use_cache, telemetry_path, runner, trace_store):
    if runner is not None:
        return runner
    from repro.exec.runner import Runner

    return Runner(
        jobs=jobs,
        cache_dir=cache_dir,
        use_cache=use_cache,
        telemetry_path=telemetry_path,
        trace_store=trace_store,
    )


def compare(
    workload: Union[Scenario, Workload],
    configurations: Optional[Sequence[cfg.SystemConfig]] = None,
    baseline_name: str = "private",
    storm: Optional[StormConfig] = None,
    shootdown: Optional[ShootdownTraffic] = None,
    record_intervals: bool = False,
    *,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    use_cache: bool = True,
    telemetry_path: Optional[str] = None,
    runner=None,
    trace_store=None,
) -> Comparison:
    """Run one workload on every configuration of a lineup.

    Pass a single-workload :class:`Scenario` (supported form); the
    scenario's own baseline/storm/shootdown fields apply and execution
    goes through :class:`repro.exec.Runner`.  The legacy form taking a
    built :class:`Workload` plus keyword knobs is deprecated — use a
    Scenario, or ``Runner.run_prebuilt`` for built traces and
    multiprogrammed mixes.
    """
    run = _runner(jobs, cache_dir, use_cache, telemetry_path, runner, trace_store)
    if isinstance(workload, Scenario):
        if configurations is not None:
            raise TypeError(
                "a Scenario already carries its lineup; drop configurations"
            )
        return run.run_one(workload)
    warnings.warn(
        "compare(workload, configurations, ...) is deprecated; pass a "
        "Scenario (or use repro.exec.Runner.run_prebuilt for built "
        "workloads)",
        DeprecationWarning,
        stacklevel=2,
    )
    if configurations is None:
        raise TypeError("compare(workload, ...) needs configurations")
    return run.run_prebuilt(
        workload,
        configurations,
        baseline_name=baseline_name,
        storm=storm,
        shootdown=shootdown,
        record_intervals=record_intervals,
    )


def run_suite(
    configurations: Union[Scenario, Sequence[cfg.SystemConfig]],
    num_cores: Optional[int] = None,
    workload_names: Optional[Iterable[str]] = None,
    accesses_per_core: int = 12_000,
    seed: int = 1,
    superpages: bool = True,
    smt: int = 1,
    baseline_name: str = "private",
    *,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    use_cache: bool = True,
    telemetry_path: Optional[str] = None,
    runner=None,
    trace_store=None,
) -> Dict[str, Comparison]:
    """The paper's standard sweep: every workload through a lineup.

    Pass a :class:`Scenario` (supported form); the legacy keyword form
    is a deprecated wrapper that builds the equivalent Scenario.
    ``jobs``/``cache_dir`` select parallel execution and result
    caching (see :class:`repro.exec.Runner`).
    """
    if isinstance(configurations, Scenario):
        scenario = configurations
        if num_cores is not None and num_cores != scenario.num_cores:
            raise ValueError(
                f"num_cores={num_cores} disagrees with the scenario's "
                f"lineup ({scenario.num_cores} cores)"
            )
    else:
        warnings.warn(
            "run_suite(configurations, num_cores, ...) is deprecated; "
            "pass a Scenario",
            DeprecationWarning,
            stacklevel=2,
        )
        scenario = Scenario(
            configurations=tuple(configurations),
            workloads=tuple(workload_names or WORKLOAD_NAMES),
            accesses_per_core=accesses_per_core,
            seed=seed,
            superpages=superpages,
            smt=smt,
            baseline_name=baseline_name,
        )
        if num_cores is not None and num_cores != scenario.num_cores:
            raise ValueError(
                f"num_cores={num_cores} disagrees with the lineup "
                f"({scenario.num_cores} cores)"
            )
    run = _runner(jobs, cache_dir, use_cache, telemetry_path, runner, trace_store)
    return run.run(scenario)


@dataclass(frozen=True)
class SpeedupSummary:
    """Min / average / max speedups across a suite (Table III rows)."""

    config_name: str
    minimum: float
    average: float
    maximum: float


def summarize_speedups(
    comparisons: Dict[str, Comparison], config_name: str
) -> SpeedupSummary:
    speedups = [c.speedup(config_name) for c in comparisons.values()]
    return SpeedupSummary(
        config_name=config_name,
        minimum=min(speedups),
        average=sum(speedups) / len(speedups),
        maximum=max(speedups),
    )
