"""Result types produced by simulation runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.tlb.stats import TlbStats


@dataclass
class RunResult:
    """Everything measured in one simulation of one workload+config."""

    config_name: str
    workload_name: str
    #: Completion time: the cycle the last core retires its trace.
    cycles: int
    per_core_cycles: List[int]
    stats: TlbStats
    #: Dynamic+static translation energy breakdown (pJ by component).
    energy: Dict[str, float]
    #: Interconnect behaviour (mean setup retries, no-contention frac...).
    network: Dict[str, float] = field(default_factory=dict)
    #: Page-walk level histogram ({"pwc": n, "l1": n, ...}).
    walk_levels: Dict[str, int] = field(default_factory=dict)
    #: Shared-L2 access intervals (start, end, slice) when recorded.
    intervals: Optional[List[Tuple[int, int, int]]] = None
    #: app name -> mean finish cycles of its cores (multiprogrammed runs).
    app_cycles: Dict[str, float] = field(default_factory=dict)
    #: MetricsRegistry snapshot (counters/gauges/histograms) when the
    #: run was observed; None for unobserved runs.
    metrics: Optional[Dict[str, object]] = None
    #: Ring-buffered typed event records (oldest -> newest) when event
    #: tracing was on; None otherwise.
    trace: Optional[List[Dict[str, object]]] = None
    #: Fault-injection degradation counters (drops, fallbacks, degraded
    #: walks, ...); None for fault-free runs.
    faults: Optional[Dict[str, int]] = None

    @property
    def total_energy_pj(self) -> float:
        return self.energy.get("total", 0.0)

    def speedup_over(self, baseline: "RunResult") -> float:
        """Paper metric: baseline cycles / this config's cycles."""
        if self.cycles <= 0:
            raise ValueError("run did not complete")
        return baseline.cycles / self.cycles

    def app_speedups_over(self, baseline: "RunResult") -> Dict[str, float]:
        """Per-application speedups (Fig 18's fairness analysis)."""
        out = {}
        for app, cycles in self.app_cycles.items():
            base = baseline.app_cycles.get(app)
            if base and cycles:
                out[app] = base / cycles
        return out

    def as_dict(self) -> Dict[str, object]:
        """JSON-serialisable summary (for external result pipelines)."""
        out = {
            "config": self.config_name,
            "workload": self.workload_name,
            "cycles": self.cycles,
            "per_core_cycles": list(self.per_core_cycles),
            "stats": self.stats.as_dict(),
            "energy_pj": dict(self.energy),
            "network": dict(self.network),
            "walk_levels": dict(self.walk_levels),
            "app_cycles": dict(self.app_cycles),
        }
        if self.metrics is not None:
            out["metrics"] = self.metrics
        if self.trace is not None:
            out["trace"] = self.trace
        if self.faults is not None:
            out["faults"] = dict(self.faults)
        return out


def geometric_mean(values: List[float]) -> float:
    if not values:
        raise ValueError("cannot average nothing")
    product = 1.0
    for value in values:
        if value <= 0:
            raise ValueError("geometric mean needs positive values")
        product *= value
    return product ** (1.0 / len(values))
