"""Vectorized mega-mesh machinery for the batched engine.

The batched fast path (:mod:`repro.sim.engine`) still performs one
Python-level L1 probe per trace record during its compile pre-pass and
one Python-level heap transaction per quantum window.  At 64 cores
that is fine; at 256-1024 tiles the per-record interpreter overhead
dominates wall-clock.  This module supplies the three pieces the
``_drive_vectorized`` loop composes, each proven byte-identical to the
scalar path it replaces (the differential corpus runs all three):

* :func:`bulk_fill_compile_cache` — the numpy compile pre-pass.  All
  per-core miss streams are column-stacked into ``(cores, records)``
  arrays; the per-core L1 LRU arrays are simulated *in lockstep across
  cores* (one numpy step per trace position, per page size: set-index
  gather, key-match ``argmax`` for the hit way, an MRU shift expressed
  as a masked column roll, and segment-sums/``cumsum`` for the cycle
  prefix tables).  The output is written into the engine's per-workload
  compile cache in exactly the scalar ``_compile_core_cached`` format
  (Python-int prefix lists, miss positions, miss records, counter
  deltas), so the drive loop — and any later batched run sharing the
  workload — consumes it unchanged.
* :func:`make_lean_transaction` — an inlined mesh-distributed L2
  transaction for the un-observed fault-free common case, driving the
  *real* slice/port/walker state through flattened int tables (the
  RouteCache's compact hop arrays, raw ``_PortSet`` cycle dicts, raw
  per-set ``LruState`` OrderedDicts) with counters accumulated in bulk
  and folded back at the end.  Any configuration outside its gate
  (non-mesh interconnects, priority arbitration, non-LRU slices, QoS
  quotas, prefetch, faults, observability) falls through to the
  ordinary ``System.l2_transaction`` — correct for every config, just
  not flattened.
* :func:`vectorized_wanted` — the dispatch predicate.  Auto-engages at
  ``>= 256`` cores; ``REPRO_VECTORIZED_ENGINE=1`` forces it on at any
  scale (the differential harness does this), ``=0`` disables it.
  Storms, shootdowns, ``REPRO_REFERENCE_ENGINE=1``, watchdogs, and
  remote-PTW configs all fall back exactly as the batched path's own
  gates dictate — the env toggle can never change a result, only which
  engine produces it.

Why the no-expiry scheduler in ``_drive_vectorized`` is exact: absent
storms, shootdowns, and remote-PTW pollution, a quantum-expiry heap pop
neither reads nor writes shared state (``pending_penalty`` stays zero,
nothing fires at the frontier), so only *transaction* pops are
observable.  Each core's transaction call time is a pure function of
its own resume time and its compiled prefix table, so the loop computes
it directly with the same windowed ``bisect`` the batched loop applies
one quantum at a time, and a numpy ``argmin``/cohort scan over the
per-core call-time vector reproduces the heap's ``(time, core)`` pop
order exactly.
"""

from __future__ import annotations

import os
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.sim import configs as cfg
from repro.tlb.l2_shared import FIFO
from repro.vm.address import PAGE_1G

#: Environment switch for the vectorized mega-mesh path: "0" disables,
#: any other non-empty value forces it on at every core count, unset
#: auto-engages at VECTORIZED_MIN_CORES.  Read at use time so tests can
#: flip it per run.  Never affects results — only which bit-identical
#: engine produces them — so ENGINE_VERSION is untouched.
VECTORIZED_ENV = "REPRO_VECTORIZED_ENGINE"

#: Core count at which the vectorized path engages by default.
VECTORIZED_MIN_CORES = 256

#: Packing layout for (asid, size-code, page_number) -> one int64 key.
_PN_BITS = 48
_CODE_BITS = 2


def vectorized_mode(num_cores: int) -> bool:
    """Whether the env/threshold selects the vectorized drive loop."""
    value = os.environ.get(VECTORIZED_ENV, "")
    if value == "0":
        return False
    if value:
        return True
    return num_cores >= VECTORIZED_MIN_CORES


def vectorized_wanted(config, watchdog_cycles: Optional[int]) -> bool:
    """Dispatch gate for ``_drive_vectorized`` (inside the batched gate).

    Beyond the batched path's own conditions (no storms/shootdowns/
    reference mode, checked by the caller) the no-expiry scheduler
    needs two more: no watchdog (the watchdog observes expiry-pop
    times) and no remote-PTW pollution (the only transaction-side
    writer of ``pending_penalty``).
    """
    return (
        watchdog_cycles is None
        and config.ptw_policy == cfg.PTW_REQUESTER
        and vectorized_mode(config.num_cores)
    )


def _merged_streams(workload, num_cores: int) -> Optional[List]:
    """Every core's merged stream, or None when shapes are unsuitable."""
    from repro.sim.engine import _merged_stream

    streams = []
    length = None
    for core in range(num_cores):
        core_streams = workload.core_streams(core)
        merged = (
            core_streams[0]
            if len(core_streams) == 1
            else _merged_stream(core_streams)
        )
        if length is None:
            length = len(merged)
        elif len(merged) != length:
            return None  # ragged cores: scalar compile handles them
        streams.append(merged)
    if not length:
        return None
    return streams


def bulk_fill_compile_cache(workload, l1s, cache) -> bool:
    """Compile every core's stream at once; fill the engine cache.

    Returns True when the cache now holds every core (either it already
    did, or the lockstep pass just populated it); False when the
    workload's shape or value ranges fall outside the vectorized
    assumptions, in which case the caller's per-core scalar compile
    path applies unchanged.
    """
    num_cores = len(l1s)
    proto = l1s[0]
    size_order = list(proto._arrays)
    geoms = [proto.array(size) for size in size_order]
    key_suffix = tuple(
        sorted((size, a.entries, a.ways, a.index_shift)
               for size, a in zip(size_order, geoms))
    )
    if all((core,) + key_suffix in cache for core in range(num_cores)):
        return True

    streams = _merged_streams(workload, num_cores)
    if streams is None:
        return False
    recs = np.asarray(streams, dtype=np.int64)
    if recs.ndim != 3 or recs.shape[2] != 4:
        return False
    gaps = recs[:, :, 0]
    asids = recs[:, :, 1]
    sizes = recs[:, :, 2]
    pns = recs[:, :, 3]
    num_records = recs.shape[1]
    if (
        gaps.min() < 0
        or asids.min() < 0
        or pns.min() < 0
        or asids.max() >= 1 << (63 - _PN_BITS - _CODE_BITS)
        or pns.max() >= 1 << _PN_BITS
        or len(size_order) >= 1 << _CODE_BITS
    ):
        return False

    codes = np.full(sizes.shape, -1, dtype=np.int64)
    for code, size in enumerate(size_order):
        codes[sizes == size] = code
    if codes.min() < 0:
        return False  # a page size with no L1 array; let the scalar path raise
    packed = (
        (asids << (_PN_BITS + _CODE_BITS)) | (codes << _PN_BITS) | pns
    )

    # Lockstep per-size LRU state: keys[(core, set, way)] ordered
    # MRU-first with -1 sentinels, plus an occupancy count per set.
    state = []
    for array in geoms:
        ways = array.ways
        num_sets = array.num_sets
        state.append((
            np.full((num_cores, num_sets, ways), -1, dtype=np.int64),
            np.zeros((num_cores, num_sets), dtype=np.int32),
            ways,
            array.index_shift,
            num_sets,
        ))
    n_codes = len(size_order)
    hits_cs = np.zeros((num_cores, n_codes), dtype=np.int64)
    misses_cs = np.zeros((num_cores, n_codes), dtype=np.int64)
    evicts_cs = np.zeros((num_cores, n_codes), dtype=np.int64)
    miss_core_chunks: List[np.ndarray] = []
    miss_step_chunks: List[np.ndarray] = []

    for r in range(num_records):
        col = codes[:, r]
        for code in np.unique(col).tolist():
            keys, cnt, ways, shift, num_sets = state[code]
            members = np.flatnonzero(col == code)
            key_m = packed[members, r]
            set_idx = (pns[members, r] >> shift) % num_sets
            rows = keys[members, set_idx]  # (K, ways) gathered copy
            hit_mask = rows == key_m[:, None]
            is_hit = hit_mask.any(axis=1)
            full = cnt[members, set_idx]
            # The hit way (or, on a miss, the last way: either the LRU
            # victim of a full set or a don't-care sentinel slot).
            way = np.where(is_hit, hit_mask.argmax(axis=1), ways - 1)
            # MRU update: new key to way 0, ways 1..way shift right.
            out = np.empty_like(rows)
            out[:, 0] = key_m
            if ways > 1:
                lanes = np.arange(1, ways)
                out[:, 1:] = np.where(
                    lanes[None, :] <= way[:, None], rows[:, :-1], rows[:, 1:]
                )
            keys[members, set_idx] = out
            cnt[members, set_idx] = np.where(
                is_hit, full, np.minimum(full + 1, ways)
            )
            hits_cs[members[is_hit], code] += 1
            missed = members[~is_hit]
            misses_cs[missed, code] += 1
            evicts_cs[members[(~is_hit) & (full >= ways)], code] += 1
            if missed.size:
                miss_core_chunks.append(missed)
                miss_step_chunks.append(
                    np.full(missed.size, r, dtype=np.int64)
                )

    if miss_core_chunks:
        miss_cores = np.concatenate(miss_core_chunks)
        miss_steps = np.concatenate(miss_step_chunks)
        # Collection is step-major; a stable core sort yields per-core
        # segments with steps ascending — the scalar emission order.
        order = np.argsort(miss_cores, kind="stable")
        miss_cores = miss_cores[order]
        miss_steps = miss_steps[order]
    else:
        miss_cores = np.empty(0, dtype=np.int64)
        miss_steps = np.empty(0, dtype=np.int64)
    counts = np.bincount(miss_cores, minlength=num_cores)
    offsets = np.zeros(num_cores + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])

    prefix_all = np.zeros((num_cores, num_records + 1), dtype=np.int64)
    np.cumsum(gaps + 1, axis=1, out=prefix_all[:, 1:])

    for core in range(num_cores):
        steps = miss_steps[offsets[core]:offsets[core + 1]]
        miss_rec = list(zip(
            asids[core, steps].tolist(),
            sizes[core, steps].tolist(),
            pns[core, steps].tolist(),
        ))
        deltas = tuple(
            (
                size,
                (
                    int(hits_cs[core, code]),
                    int(misses_cs[core, code]),
                    # One insert per miss; admit() spills on full sets.
                    int(misses_cs[core, code]),
                    int(evicts_cs[core, code]),
                ),
            )
            for code, size in enumerate(size_order)
        )
        cache[(core,) + key_suffix] = (
            prefix_all[core].tolist(),
            steps.tolist(),
            miss_rec,
            deltas,
        )
    return True


def make_lean_transaction(
    system, sink
) -> Optional[Tuple[Callable[[int, int, int, int, int], int], Callable[[], None]]]:
    """Inlined mesh-distributed transaction, or None outside its gate.

    Returns ``(transaction, finalize)``: ``transaction`` matches the
    ``System.l2_transaction`` signature and semantics byte-for-byte for
    the gated configuration; ``finalize`` folds the locally accumulated
    slice/stat/network counters back into the live objects and must run
    once after the drive loop.
    """
    config = system.config
    if (
        config.scheme != cfg.DISTRIBUTED
        or config.interconnect != cfg.MESH
        or config.slice_indexing != "modulo"
        or config.policy != "lru"
        or config.arbitration != FIFO
        or config.qos_way_quota is not None
        or config.ptw_policy != cfg.PTW_REQUESTER
        or system.prefetcher.enabled
        or system.faults is not None
        or system.record_intervals
        or system.timeline is not None
        or sink.enabled
        or system.routes is None
    ):
        return None

    shared = system.shared_l2
    num_slices = shared.num_shards
    lat_rows = system.routes.mesh_latency(system.network.cycles_per_hop)
    hop_rows = system.routes.hops
    lookup_cycles = system.l2_lookup_cycles
    read_ports = shared.read_ports
    write_ports = shared.write_ports
    read_starts = [ports._starts for ports in read_ports]
    write_starts = [ports._starts for ports in write_ports]
    num_read = read_ports[0].num_ports
    num_write = write_ports[0].num_ports
    slice_sets = [shard._sets for shard in shared.shards]
    shard0 = shared.shards[0]
    shard_shift = shard0.index_shift
    shard_num_sets = shard0.num_sets
    shard_ways = shard0.ways
    make_set = shard0._state_cls  # materialises lazily-constructed sets
    visible = system._visible
    overlap_off = visible == 1.0
    do_walk = system.walker.walk_cycles
    from repro.sim.system import _SHIFT  # local: avoids a module cycle

    shifts = dict(_SHIFT)
    queues = system.walker_queues
    queue_busy = [q._busy_until for q in queues]

    slice_hits = [0] * num_slices
    slice_misses = [0] * num_slices
    slice_inserts = [0] * num_slices
    slice_evicts = [0] * num_slices
    # [l2_hits, l2_misses, messages, total_hops, walks]
    totals = [0, 0, 0, 0, 0]

    def transaction(
        core: int, asid: int, size: int, page_number: int, now: int
    ) -> int:
        home = page_number % num_slices
        latency = lat_rows[core][home]  # symmetric: also the return leg
        starts = read_starts[home]
        start = now + latency
        arrival = start
        while starts.get(start, 0) >= num_read:
            start += 1
        starts[start] = starts.get(start, 0) + 1
        if start != arrival:
            read_ports[home].conflict_cycles += start - arrival
        lookup_done = start + lookup_cycles
        hops = hop_rows[core][home]
        if size != PAGE_1G:
            sets = slice_sets[home]
            set_idx = (page_number >> shard_shift) % shard_num_sets
            cache_set = sets[set_idx]
            if cache_set is None:
                cache_set = sets[set_idx] = make_set(shard_ways)
            key = (asid, size, page_number)
            if key in cache_set:
                cache_set.move_to_end(key)
                slice_hits[home] += 1
                totals[0] += 1
                totals[2] += 2  # request + response
                totals[3] += 2 * hops
                access = lookup_done + latency - now
                if overlap_off:
                    return access
                return int(access * visible)
        else:
            cache_set = None
        # Miss: reply to the requester, walk there, fill back to home.
        slice_misses[home] += 1
        totals[1] += 1
        totals[2] += 3  # request + miss reply + fill
        totals[3] += 3 * hops
        miss_reply = lookup_done + latency
        # Inlined System._walk_at: latency-only walk plus the two-walker
        # admit (ties pick walker 0, exactly WalkerQueue.admit's min).
        cycles = do_walk(
            core, asid, page_number << shifts[size], size, miss_reply
        )
        totals[4] += 1
        busy = queue_busy[core]
        if busy[0] <= busy[1]:
            walker_slot = 0
            avail = busy[0]
        else:
            walker_slot = 1
            avail = busy[1]
        if avail > miss_reply:
            queue = queues[core]
            queue.total_queue_cycles += avail - miss_reply
            queue.queued_walks += 1
        else:
            avail = miss_reply
        walk_done = avail + cycles
        busy[walker_slot] = walk_done
        wstarts = write_starts[home]
        wstart = walk_done
        while wstarts.get(wstart, 0) >= num_write:
            wstart += 1
        wstarts[wstart] = wstarts.get(wstart, 0) + 1
        if wstart != walk_done:
            write_ports[home].conflict_cycles += wstart - walk_done
        if cache_set is not None:  # 1GB translations are never cached
            if len(cache_set) >= shard_ways:
                cache_set.popitem(last=False)
                slice_evicts[home] += 1
            cache_set[key] = None
            slice_inserts[home] += 1
        walk_cycles = walk_done - miss_reply
        if overlap_off:
            return miss_reply - now + walk_cycles
        return int((miss_reply - now) * visible) + walk_cycles

    def finalize() -> None:
        for i, shard in enumerate(shared.shards):
            shard.hits += slice_hits[i]
            shard.misses += slice_misses[i]
            shard.insertions += slice_inserts[i]
            shard.evictions += slice_evicts[i]
        stats = system.stats
        stats.l2_hits += totals[0]
        stats.l2_misses += totals[1]
        stats.walks += totals[4]
        network = system.network
        network.messages += totals[2]
        network.total_hops += totals[3]

    return transaction, finalize
