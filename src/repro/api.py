"""``repro.api`` — the supported public surface of this package.

This facade is the stability boundary: everything in ``__all__`` below
keeps its name and semantics across releases, with deprecation cycles
for any change.  Internal modules (``repro.sim.engine`` internals, TLB
structures, NoC models, ...) may be imported directly for research, but
only what is re-exported here is covered by that promise.
:data:`VERSION` names the facade revision; bump it whenever the surface
grows (see the migration table in DESIGN.md for what moved where).

Legacy package-level entry points (``from repro.sim import simulate`` /
``compare`` / ``run_suite``) still work but emit
:class:`DeprecationWarning` — this module is their supported home.

Typical use::

    from repro import api

    scenario = api.Scenario(
        configurations=api.paper_lineup(16),
        workloads=("graph500", "gups"),
        accesses_per_core=8_000,
        seed=42,
    )
    runner = api.Runner(jobs=4, cache_dir=".repro-cache")
    comparisons = runner.run(scenario)
    print(comparisons["graph500"].speedup("nocstar"))
"""

from __future__ import annotations

from repro.exec.cache import ResultCache, canonical_json, unit_key
from repro.experiments import (
    CampaignRun,
    CampaignSpec,
    DriftReport,
    DriftVerdict,
    Scale,
    available_campaigns,
    check_drift,
    expand_campaigns,
    get_campaign,
    register_campaign,
    run_campaign,
    update_pins,
)
from repro.exec.runner import Runner, execute_unit, unit_cost
from repro.exec.trace_store import TraceStore, attach_workload
from repro.faults import (
    ArbiterDrop,
    FaultAwareRouter,
    FaultPlan,
    FaultSpec,
    LinkFailure,
    SliceFailure,
    UnreachableError,
    WalkerSlowdown,
    derive_seed,
)
from repro.obs import (
    EVENT_KINDS,
    EventTrace,
    MetricsRegistry,
    MetricsSink,
    NullSink,
    NULL_SINK,
    Span,
    Tracer,
    load_obs_records,
    load_spans,
    render_prometheus,
    render_report,
    render_tree,
    write_obs_jsonl,
    write_spans,
)
from repro.sim.configs import (
    SystemConfig,
    available_configs,
    build_config,
    distributed,
    ideal,
    monolithic,
    nocstar,
    nocstar_ideal,
    paper_lineup,
    private,
    register_config,
)
from repro.sim.engine import (
    ENGINE_VERSION,
    ShootdownTraffic,
    StormConfig,
    simulate,
)
from repro.sim.results import RunResult, geometric_mean
from repro.sim.run import (
    Comparison,
    SpeedupSummary,
    compare,
    run_suite,
    summarize_speedups,
)
from repro.serve import (
    SCHEMA_VERSION,
    SERVICE_CLASSES,
    BackgroundDaemon,
    JobManager,
    JobResult,
    JobStatus,
    SchemaError,
    ServeClient,
    ServeConfig,
    ServeDaemon,
    ServeError,
    SubmitRequest,
    run_daemon,
)
from repro.sim.scenario import RunUnit, Scenario
from repro.tlb.opt import (
    PolicyEval,
    offline_policy_eval,
    pct_of_opt,
)
from repro.tlb.policies import (
    POLICY_NAMES,
    ReplacementPolicy,
    make_policy,
)
from repro.workloads.generators import (
    build_multiprogrammed,
    build_multithreaded,
)
from repro.workloads.registry import WORKLOAD_NAMES, WORKLOADS, get_workload
from repro.workloads.spec import WorkloadSpec

#: Facade revision.  Bumped whenever names are added to (or deprecated
#: from) this surface; independent of the engine/telemetry versions.
#: 1.3.0: span tracing (Tracer/Span/load_spans/write_spans/render_tree)
#: and Prometheus exposition (render_prometheus).
#: 1.4.0: experiment campaigns (CampaignSpec/Scale/register_campaign/
#: run_campaign/CampaignRun) and the drift gate (check_drift/
#: DriftReport/DriftVerdict/update_pins).
#: 1.5.0: the replacement-policy zoo (POLICY_NAMES/make_policy/
#: ReplacementPolicy, SystemConfig.policy/.arbitration) and the offline
#: Belady bound (offline_policy_eval/pct_of_opt/PolicyEval).
VERSION = "1.5.0"

__all__ = [
    "VERSION",
    # scenario & execution
    "Scenario",
    "RunUnit",
    "Runner",
    "ResultCache",
    "TraceStore",
    "attach_workload",
    "execute_unit",
    "unit_cost",
    "unit_key",
    "canonical_json",
    "ENGINE_VERSION",
    # run harness
    "simulate",
    "compare",
    "run_suite",
    "Comparison",
    "SpeedupSummary",
    "summarize_speedups",
    "RunResult",
    "geometric_mean",
    # configurations
    "SystemConfig",
    "register_config",
    "available_configs",
    "build_config",
    "paper_lineup",
    "private",
    "monolithic",
    "distributed",
    "nocstar",
    "nocstar_ideal",
    "ideal",
    # replacement policies & the offline Belady bound
    "POLICY_NAMES",
    "ReplacementPolicy",
    "make_policy",
    "PolicyEval",
    "offline_policy_eval",
    "pct_of_opt",
    # pathological traffic
    "StormConfig",
    "ShootdownTraffic",
    # fault injection & resilience
    "FaultSpec",
    "FaultPlan",
    "LinkFailure",
    "ArbiterDrop",
    "SliceFailure",
    "WalkerSlowdown",
    "FaultAwareRouter",
    "UnreachableError",
    "derive_seed",
    # observability
    "MetricsRegistry",
    "MetricsSink",
    "NullSink",
    "NULL_SINK",
    "EventTrace",
    "EVENT_KINDS",
    "render_report",
    "load_obs_records",
    "write_obs_jsonl",
    "Tracer",
    "Span",
    "load_spans",
    "write_spans",
    "render_tree",
    "render_prometheus",
    # serving
    "SCHEMA_VERSION",
    "SERVICE_CLASSES",
    "SchemaError",
    "SubmitRequest",
    "JobStatus",
    "JobResult",
    "ServeConfig",
    "JobManager",
    "ServeDaemon",
    "BackgroundDaemon",
    "run_daemon",
    "ServeClient",
    "ServeError",
    # experiment campaigns & drift gate
    "CampaignSpec",
    "Scale",
    "register_campaign",
    "available_campaigns",
    "get_campaign",
    "expand_campaigns",
    "run_campaign",
    "CampaignRun",
    "check_drift",
    "DriftReport",
    "DriftVerdict",
    "update_pins",
    # workloads
    "WorkloadSpec",
    "WORKLOADS",
    "WORKLOAD_NAMES",
    "get_workload",
    "build_multithreaded",
    "build_multiprogrammed",
]
