"""Content-addressed store of materialized trace artifacts.

The sweep data plane's first principle is *build once*: a multi-core
trace is a pure function of its build signature — workload spec, core
count, accesses per core, seed, superpage flag, SMT width — so there is
never a reason to construct it more than once per machine.  The
:class:`TraceStore` materializes each signature's trace as a packed
``.npy`` artifact (see :func:`repro.workloads.io.save_workload_packed`)
under a SHA-256 content address, shared across lineups, sweeps, and
sessions.

Keying mirrors the result cache: the canonical JSON of the signature
plus two version tags — :data:`~repro.workloads.generators.GENERATOR_VERSION`
(bumped whenever trace *generation* changes) and
:data:`~repro.workloads.io.PACKED_FORMAT_VERSION` (bumped whenever the
artifact *layout* changes).  Either bump orphans every stale artifact
by construction; no manual invalidation logic exists.

Attachment is the zero-copy half: :func:`attach_workload` maps an
artifact with ``np.load(..., mmap_mode="r")``, so the bytes live once
in the page cache no matter how many pool workers attach, and converts
them to engine-native record tuples exactly once per process (a small
LRU keeps the hottest workloads resident; see DESIGN.md "Sweep data
plane" for the lifetime rules).  Attached workloads are byte-identical
to in-process builds — the differential suite proves it — which is why
the data plane can swap builds for attaches without touching
``ENGINE_VERSION`` or any result-cache key.
"""

from __future__ import annotations

import hashlib
import os
from collections import OrderedDict
from typing import Dict, Iterator, List, Tuple

from repro.exec.cache import canonical_json
from repro.workloads.io import (
    PACKED_FORMAT_VERSION,
    load_workload_packed,
    save_workload_packed,
)
from repro.workloads.trace import Workload

#: Attached workloads kept resident per process.  Eviction only drops
#: the Python-side record lists (the engine's compiled-core cache
#: follows via its weakref); the on-disk artifact is untouched.
ATTACH_CACHE_CAPACITY = 4

_ATTACHED: "OrderedDict[str, Workload]" = OrderedDict()


def attach_workload(path: str, mmap: bool = True) -> Workload:
    """Attach a packed trace artifact; memoised per absolute path.

    Repeat attaches in one process return the *same* ``Workload``
    object — that identity is what lets the engine's per-object
    compiled-core cache amortise its pre-pass across every unit of a
    lineup that lands on the same worker.
    """
    key = os.path.abspath(path)
    workload = _ATTACHED.get(key)
    if workload is not None:
        _ATTACHED.move_to_end(key)
        return workload
    workload = load_workload_packed(key, mmap=mmap)
    _ATTACHED[key] = workload
    while len(_ATTACHED) > ATTACH_CACHE_CAPACITY:
        _ATTACHED.popitem(last=False)
    return workload


def _clear_attachments() -> None:
    """Drop every process-local attachment (test isolation helper)."""
    _ATTACHED.clear()


def trace_key(signature) -> str:
    """SHA-256 content address of one build signature.

    ``signature`` is any canonicalisable value (the store uses the
    mapping built by :meth:`TraceStore._payload`); generator and format
    versions must already be folded in by the caller.
    """
    return hashlib.sha256(
        canonical_json(signature).encode("utf-8")
    ).hexdigest()


class TraceStore:
    """On-disk, content-addressed trace artifacts.

    Layout: ``<root>/<key[:2]>/<key>.npy`` plus a ``<key>.json``
    metadata sidecar — the same two-character fan-out as the result
    cache.  An artifact without its sidecar is an uncommitted torn
    write and reads as a miss.
    """

    def __init__(self, root: str) -> None:
        self.root = str(root)

    # ------------------------------------------------------------------
    # keying

    @staticmethod
    def _payload(
        spec, num_cores: int, accesses_per_core: int, seed: int,
        superpages: bool, smt: int,
    ) -> Dict[str, object]:
        from repro.workloads.generators import GENERATOR_VERSION

        return {
            "workload": spec,
            "num_cores": num_cores,
            "accesses_per_core": accesses_per_core,
            "seed": seed,
            "superpages": superpages,
            "smt": smt,
            "generator": GENERATOR_VERSION,
            "format": PACKED_FORMAT_VERSION,
        }

    def key_for(self, signature: Tuple) -> str:
        """Content address of a ``RunUnit.build_signature()`` tuple."""
        return trace_key(self._payload(*signature))

    @staticmethod
    def prebuilt_key(fingerprint: str) -> str:
        """Content address for an already-built workload's artifact.

        Prebuilt workloads (loaded traces, multiprogrammed mixes) are
        addressed by their record fingerprint — the generator version
        is irrelevant because no generation happens — plus the packed
        format version.
        """
        return trace_key(
            {"prebuilt": fingerprint, "format": PACKED_FORMAT_VERSION}
        )

    # ------------------------------------------------------------------
    # artifact lifecycle

    def path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}.npy")

    def _committed(self, key: str) -> bool:
        path = self.path(key)
        return os.path.exists(path) and os.path.exists(
            os.path.splitext(path)[0] + ".json"
        )

    def ensure(self, signature: Tuple) -> Tuple[str, bool]:
        """Materialize one signature's artifact; returns (path, built).

        Builds the trace (via the deterministic generator path the
        serial runner uses) only when the artifact is absent — the
        build-once guarantee.  Concurrent builders race harmlessly:
        writes are atomic and content-addressed, so the loser just
        overwrites identical bytes.
        """
        key = self.key_for(signature)
        path = self.path(key)
        if self._committed(key):
            return path, False
        from repro.workloads.generators import build_multithreaded

        spec, num_cores, accesses_per_core, seed, superpages, smt = signature
        workload = build_multithreaded(
            spec,
            num_cores,
            accesses_per_core=accesses_per_core,
            seed=seed,
            superpages=superpages,
            smt=smt,
        )
        save_workload_packed(workload, path)
        return path, True

    def ensure_prebuilt(
        self, fingerprint: str, workload: Workload
    ) -> Tuple[str, bool]:
        """Materialize an already-built workload under its fingerprint."""
        key = self.prebuilt_key(fingerprint)
        path = self.path(key)
        if self._committed(key):
            return path, False
        save_workload_packed(workload, path)
        return path, True

    # ------------------------------------------------------------------
    # stats & eviction

    def keys(self) -> Iterator[str]:
        if not os.path.isdir(self.root):
            return
        for bucket in sorted(os.listdir(self.root)):
            subdir = os.path.join(self.root, bucket)
            if not os.path.isdir(subdir):
                continue
            for entry in sorted(os.listdir(subdir)):
                if entry.endswith(".npy") and not entry.startswith(".tmp-"):
                    key = entry[: -len(".npy")]
                    if self._committed(key):
                        yield key

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def __contains__(self, key: str) -> bool:
        return self._committed(key)

    def _entry_bytes(self, key: str) -> int:
        path = self.path(key)
        total = 0
        for candidate in (path, os.path.splitext(path)[0] + ".json"):
            try:
                total += os.path.getsize(candidate)
            except OSError:
                pass
        return total

    def stats(self) -> Dict[str, int]:
        """``{"artifacts": count, "bytes": total_size}``."""
        artifacts = 0
        size = 0
        for key in self.keys():
            artifacts += 1
            size += self._entry_bytes(key)
        return {"artifacts": artifacts, "bytes": size}

    def _remove(self, key: str) -> None:
        path = self.path(key)
        # Sidecar first: a half-removed entry must read as a miss, and
        # processes that already attached keep their live memmap (POSIX
        # unlink keeps mapped bytes alive until the last map closes).
        for candidate in (os.path.splitext(path)[0] + ".json", path):
            try:
                os.unlink(candidate)
            except OSError:
                pass

    def evict(self, max_bytes: int) -> int:
        """Shrink the store to ``max_bytes``, oldest artifacts first.

        Returns how many artifacts were removed.  Recency is mtime of
        the ``.npy`` — attaches never rewrite artifacts, so this is
        creation-time LRU, which is the right policy for content-
        addressed entries (older generator output is colder output).
        """
        entries: List[Tuple[float, str, int]] = []
        for key in self.keys():
            try:
                mtime = os.path.getmtime(self.path(key))
            except OSError:
                continue
            entries.append((mtime, key, self._entry_bytes(key)))
        total = sum(size for _, _, size in entries)
        removed = 0
        entries.sort()
        for _, key, size in entries:
            if total <= max_bytes:
                break
            self._remove(key)
            total -= size
            removed += 1
        return removed

    def clear(self) -> int:
        """Delete every artifact; returns how many were removed."""
        removed = 0
        for key in list(self.keys()):
            self._remove(key)
            removed += 1
        return removed
