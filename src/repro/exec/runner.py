"""Parallel experiment runner with content-addressed result caching.

The :class:`Runner` executes the independent :class:`RunUnit` grains of
a :class:`~repro.sim.scenario.Scenario`:

* **fan-out** — with ``jobs=N`` the units are mapped over a
  ``multiprocessing`` pool (``jobs=1`` is a pure in-process serial
  fallback with zero pool overhead);
* **memoisation** — with a ``cache_dir``, every unit's result is stored
  under its content address (see :mod:`repro.exec.cache`); warm re-runs
  of a suite skip simulation entirely;
* **zero-copy trace fan-out** — with a ``trace_store``, each distinct
  build signature in the dispatch list is materialized exactly once (in
  the parent, before the pool spins up) as a packed ``.npy`` artifact;
  workers then *attach* it through the page cache (``np.memmap``)
  instead of rebuilding the trace per unit or receiving pickled record
  arrays.  A lineup of N configurations over one workload costs one
  build, not N — and nothing at all when the
  :class:`~repro.exec.trace_store.TraceStore` is warm from an earlier
  sweep or session;
* **cost-aware scheduling** — each task's cost is estimated from
  ``num_cores × trace_length × scheme factor`` (factors calibrated from
  Runner telemetry) and tasks are dispatched longest-first over
  ``imap_unordered``, so a straggler starts first instead of last and
  the pool drains evenly.  Results are reassembled in submission order,
  so scheduling is invisible to callers;
* **observability** — every unit emits one JSONL telemetry record
  (key, wall time split into build/sim, cache hit/miss, cycles, miss
  rates) so benchmark trajectories can be tracked over time.

Determinism: units are rebuilt from seeds (or attached from artifacts
whose bytes those same seeds produced), the engine is deterministic,
and results are reassembled in submission order — parallel, cached,
attached, and serial paths are bit-identical.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple, Union

from repro.exec.cache import (
    ResultCache,
    canonicalize,
    unit_key,
    workload_fingerprint,
)
from repro.exec.trace_store import TraceStore, attach_workload
from repro.obs.spans import Span, Tracer, span_record
from repro.sim import configs as cfg
from repro.sim.engine import (
    DEFAULT_QUANTUM,
    ENGINE_VERSION,
    ShootdownTraffic,
    StormConfig,
    simulate,
)
from repro.sim.results import RunResult
from repro.sim.run import Comparison
from repro.sim.scenario import RunUnit, Scenario
from repro.workloads.trace import Workload

#: Telemetry file dropped next to the cache when none is specified.
TELEMETRY_BASENAME = "telemetry.jsonl"

#: Version of the telemetry record layout (see DESIGN.md for the field
#: table).  3: ``wall_s`` is split into ``build_s`` (trace build or
#: artifact attach) + ``sim_s`` (engine time), and trace-store activity
#: is summarised in a per-call ``record: "trace_store"`` line.
TELEMETRY_SCHEMA = 3

#: Relative simulation cost per scheme, calibrated from telemetry
#: ``sim_s`` at equal core counts and trace lengths.  NOCSTAR pays for
#: per-access setup arbitration; ideal skips the interconnect entirely.
#: Unknown schemes cost 1.0 — the scheduler degrades to trace-length
#: ordering, never breaks.
_SCHEME_COST = {
    "ideal": 0.7,
    "distributed": 0.95,
    "private": 1.0,
    "monolithic": 1.05,
    "nocstar": 1.45,
}

#: Storms and shootdowns force the engine's reference drive loop (the
#: batched fast path bows out), roughly doubling per-access cost.
_REFERENCE_LOOP_COST = 2.0


class _Task(NamedTuple):
    """One schedulable simulation, self-contained for a pool worker.

    Exactly one of ``unit`` / ``prebuilt`` is set.  ``artifact`` (when
    not ``None``) points at a packed trace to attach in place of
    building — for prebuilt tasks it also replaces the pickled
    workload, which is the zero-copy half of the data plane.
    """

    index: int
    cost: float
    unit: Optional[RunUnit]
    artifact: Optional[str]
    prebuilt: Optional[tuple]


def _config_cost(
    config: cfg.SystemConfig,
    trace_length: int,
    storm: Optional[StormConfig],
    shootdown: Optional[ShootdownTraffic],
) -> float:
    cost = float(config.num_cores) * trace_length
    cost *= _SCHEME_COST.get(config.scheme, 1.0)
    if storm is not None or shootdown is not None:
        cost *= _REFERENCE_LOOP_COST
    return cost


def unit_cost(unit: RunUnit) -> float:
    """Estimated relative cost of one unit (the LPT scheduling weight).

    Shared by the Runner's longest-first dispatch and the serving
    tier's admission queue, so both layers order work by the same
    calibrated model.
    """
    return _config_cost(
        unit.config,
        unit.accesses_per_core * unit.smt,
        unit.storm,
        unit.shootdown,
    )


#: Backwards-compatible private alias (pre-serve name).
_unit_cost = unit_cost


def _execute_task(task: _Task) -> Tuple[int, RunResult, float, float]:
    """Pool worker body: attach-or-build, then simulate; both timed.

    Returns ``(index, result, build_s, sim_s)`` — the index rides along
    because ``imap_unordered`` yields completions in finish order and
    the parent reassembles by submission index.
    """
    start = time.perf_counter()
    if task.unit is not None:
        unit = task.unit
        if task.artifact is not None:
            workload = attach_workload(task.artifact)
        else:
            workload = unit.build_workload()
        built = time.perf_counter()
        result = simulate(
            unit.config,
            workload,
            quantum=unit.quantum,
            storm=unit.storm,
            shootdown=unit.shootdown,
            record_intervals=unit.record_intervals,
            metrics=unit.metrics,
            trace=unit.trace,
            faults=unit.fault_plan(),
        )
    else:
        (
            config, workload, storm, shootdown, record_intervals, quantum,
            metrics, trace,
        ) = task.prebuilt
        if task.artifact is not None:
            workload = attach_workload(task.artifact)
        built = time.perf_counter()
        result = simulate(
            config,
            workload,
            quantum=quantum,
            storm=storm,
            shootdown=shootdown,
            record_intervals=record_intervals,
            metrics=metrics,
            trace=trace,
        )
    return task.index, result, built - start, time.perf_counter() - built


def execute_unit(
    unit: RunUnit, artifact: Optional[str] = None
) -> Tuple[RunResult, float, float]:
    """Execute one unit (attach-or-build) outside a Runner.

    The serving tier's pool workers call this; it funnels into the same
    :func:`_execute_task` body the Runner dispatches, which is what
    makes an HTTP-submitted unit byte-identical to a CLI run of the
    same unit.  Returns ``(result, build_s, sim_s)``.
    """
    _, result, build_s, sim_s = _execute_task(
        _Task(index=0, cost=0.0, unit=unit, artifact=artifact, prebuilt=None)
    )
    return result, build_s, sim_s


class Runner:
    """Executes scenarios over a worker pool, through a result cache.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (default) runs serially in-process.
    cache_dir:
        Directory of the content-addressed result cache.  ``None``
        disables caching (and telemetry, unless ``telemetry_path`` is
        given explicitly).
    use_cache:
        Master switch; ``False`` ignores ``cache_dir`` for lookups and
        stores (the CLI's ``--no-cache``).
    telemetry_path:
        JSONL file appended with one record per executed unit.
        Defaults to ``<cache_dir>/telemetry.jsonl`` when caching is on.
    engine_version:
        Cache-key version tag; defaults to the engine's own
        :data:`~repro.sim.engine.ENGINE_VERSION`.  Exposed so tests can
        prove that bumping the tag invalidates stale entries.
    trace_store:
        A :class:`~repro.exec.trace_store.TraceStore` (or a directory
        path for one).  When set, traces are materialized once per
        build signature and attached zero-copy by every worker; when
        ``None`` (default) units build their own traces as before.
    tracer:
        A :class:`~repro.obs.spans.Tracer`.  When set, each
        ``execute_units``/``run_prebuilt`` call is recorded as a
        ``runner.execute`` span whose per-unit children carry the
        schema-3 ``build_s``/``sim_s`` split (tail-anchored at each
        unit's completion, the same synthesis the serving tier uses).
        Pure telemetry: spans never touch cache keys or results.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: Optional[str] = None,
        use_cache: bool = True,
        telemetry_path: Optional[str] = None,
        engine_version: Optional[str] = None,
        trace_store: Optional[Union[TraceStore, str]] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.engine_version = engine_version or ENGINE_VERSION
        self.cache: Optional[ResultCache] = None
        if cache_dir is not None and use_cache:
            self.cache = ResultCache(cache_dir)
        if telemetry_path is None and self.cache is not None:
            telemetry_path = os.path.join(self.cache.root, TELEMETRY_BASENAME)
        self.telemetry_path = telemetry_path
        if isinstance(trace_store, str):
            trace_store = TraceStore(trace_store)
        self.trace_store: Optional[TraceStore] = trace_store
        #: Hit/miss counters of the most recent ``run``/``execute`` call.
        self.stats: Dict[str, int] = {"hits": 0, "misses": 0}
        #: Trace-store activity of the most recent call: how many
        #: artifacts were built (vs found warm) and the time spent.
        self.trace_stats: Dict[str, float] = {"builds": 0, "build_s": 0.0}
        self.tracer = tracer
        #: Wall-clock completion times of the last dispatch, by index
        #: (the anchor for tail-synthesized per-unit spans).
        self._arrivals: Dict[int, float] = {}
        self._span: Optional[Span] = None

    # ------------------------------------------------------------------
    # scenario execution

    def run(self, scenario: Scenario) -> Dict[str, Comparison]:
        """Run a full scenario; one :class:`Comparison` per workload."""
        names = [config.name for config in scenario.configurations]
        if scenario.baseline_name not in names:
            raise ValueError(
                f"no baseline {scenario.baseline_name!r} in the lineup"
            )
        units = scenario.units()
        results = self.execute_units(units)
        per_config = len(scenario.configurations)
        out: Dict[str, Comparison] = {}
        for index, spec in enumerate(scenario.workloads):
            chunk = results[index * per_config : (index + 1) * per_config]
            out[spec.name] = Comparison(
                spec.name,
                dict(zip(names, chunk)),
                scenario.baseline_name,
            )
        return out

    def run_one(self, scenario: Scenario) -> Comparison:
        """Run a single-workload scenario and return its comparison."""
        if len(scenario.workloads) != 1:
            raise ValueError(
                "run_one needs a single-workload scenario; "
                "use run() for sweeps"
            )
        return self.run(scenario)[scenario.workloads[0].name]

    def execute_units(self, units: Sequence[RunUnit]) -> List[RunResult]:
        """Execute units (cache, then pool); results in unit order."""
        if self.tracer is None:
            return self._execute_units(units)
        with self.tracer.span(
            "runner.execute", units=len(units), jobs=self.jobs
        ) as span:
            self._span = span
            try:
                results = self._execute_units(units)
            finally:
                self._span = None
            span.attrs["cache_hits"] = self.stats["hits"]
            span.attrs["misses"] = self.stats["misses"]
            return results

    def _execute_units(self, units: Sequence[RunUnit]) -> List[RunResult]:
        self.stats = {"hits": 0, "misses": 0}
        self.trace_stats = {"builds": 0, "build_s": 0.0}
        keys: List[Optional[str]] = [None] * len(units)
        results: List[Optional[RunResult]] = [None] * len(units)
        pending: List[int] = []
        for i, unit in enumerate(units):
            if self.cache is not None:
                # Hit wall_s = key computation + cache read, so warm-run
                # telemetry reflects real lookup cost rather than 0.0.
                start = time.perf_counter()
                keys[i] = unit_key(unit, self.engine_version)
                hit = self.cache.get(keys[i])
                if hit is not None:
                    results[i] = hit
                    self.stats["hits"] += 1
                    self._telemetry(
                        keys[i], unit.config.name, unit.workload.name,
                        unit.config.num_cores, unit.seed, "hit",
                        time.perf_counter() - start, 0.0, 0.0, hit,
                    )
                    continue
            pending.append(i)

        artifacts = self._stage_signatures(units, pending)
        tasks = [
            _Task(
                index=i,
                cost=_unit_cost(units[i]),
                unit=units[i],
                artifact=artifacts.get(units[i].build_signature()),
                prebuilt=None,
            )
            for i in pending
        ]
        for index, result, build_s, sim_s in self._dispatch(tasks):
            results[index] = result
            self.stats["misses"] += 1
            if self.cache is not None:
                self.cache.put(keys[index], result)
            unit = units[index]
            self._unit_spans(index, unit.config.name, build_s, sim_s)
            self._telemetry(
                keys[index], unit.config.name, unit.workload.name,
                unit.config.num_cores, unit.seed,
                "miss" if self.cache is not None else "off",
                build_s + sim_s, build_s, sim_s, result,
            )
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # prebuilt workloads (loaded traces, multiprogrammed mixes)

    def run_prebuilt(
        self,
        workload: Workload,
        configurations: Sequence[cfg.SystemConfig],
        baseline_name: str = "private",
        storm: Optional[StormConfig] = None,
        shootdown: Optional[ShootdownTraffic] = None,
        record_intervals: bool = False,
        quantum: int = DEFAULT_QUANTUM,
        metrics: bool = False,
        trace: bool = False,
    ) -> Comparison:
        """Run an already-built workload through a lineup.

        The cache key hashes the workload's trace records (there is no
        spec to canonicalise), so loaded ``.npz`` traces and
        multiprogrammed mixes cache just as scenario units do.  With a
        trace store the workload is materialized once under that same
        fingerprint and attached by every worker — never pickled per
        task.
        """
        if self.tracer is None:
            return self._run_prebuilt(
                workload, configurations, baseline_name, storm, shootdown,
                record_intervals, quantum, metrics, trace,
            )
        with self.tracer.span(
            "runner.execute", workload=workload.name, jobs=self.jobs
        ) as span:
            self._span = span
            try:
                comparison = self._run_prebuilt(
                    workload, configurations, baseline_name, storm,
                    shootdown, record_intervals, quantum, metrics, trace,
                )
            finally:
                self._span = None
            span.attrs["cache_hits"] = self.stats["hits"]
            span.attrs["misses"] = self.stats["misses"]
            return comparison

    def _run_prebuilt(
        self,
        workload: Workload,
        configurations: Sequence[cfg.SystemConfig],
        baseline_name: str,
        storm: Optional[StormConfig],
        shootdown: Optional[ShootdownTraffic],
        record_intervals: bool,
        quantum: int,
        metrics: bool,
        trace: bool,
    ) -> Comparison:
        configurations = list(configurations)
        names = [config.name for config in configurations]
        if baseline_name not in names:
            raise ValueError(f"no baseline {baseline_name!r} in the lineup")
        self.stats = {"hits": 0, "misses": 0}
        self.trace_stats = {"builds": 0, "build_s": 0.0}
        keys: List[Optional[str]] = [None] * len(configurations)
        results: List[Optional[RunResult]] = [None] * len(configurations)
        pending: List[int] = []
        fingerprint = (
            workload_fingerprint(workload)
            if self.cache is not None or self.trace_store is not None
            else None
        )
        for i, config in enumerate(configurations):
            if self.cache is not None:
                start = time.perf_counter()
                payload = {
                    "workload_fingerprint": fingerprint,
                    "config": canonicalize(config),
                    "storm": canonicalize(storm),
                    "shootdown": canonicalize(shootdown),
                    "record_intervals": record_intervals,
                    "quantum": quantum,
                    "metrics": metrics,
                    "trace": trace,
                }
                keys[i] = unit_key(payload, self.engine_version)
                hit = self.cache.get(keys[i])
                if hit is not None:
                    results[i] = hit
                    self.stats["hits"] += 1
                    self._telemetry(
                        keys[i], config.name, workload.name,
                        config.num_cores, workload.seed, "hit",
                        time.perf_counter() - start, 0.0, 0.0, hit,
                    )
                    continue
            pending.append(i)

        artifact: Optional[str] = None
        if self.trace_store is not None and pending:
            start = time.perf_counter()
            artifact, built = self.trace_store.ensure_prebuilt(
                fingerprint, workload
            )
            if built:
                self.trace_stats["builds"] += 1
                self.trace_stats["build_s"] += time.perf_counter() - start
            self._store_telemetry()
        trace_length = sum(
            len(stream) for core in workload.traces for stream in core
        )
        tasks = [
            _Task(
                index=i,
                cost=_config_cost(
                    configurations[i], trace_length, storm, shootdown
                ),
                unit=None,
                artifact=artifact,
                prebuilt=(
                    configurations[i],
                    None if artifact is not None else workload,
                    storm, shootdown, record_intervals, quantum, metrics,
                    trace,
                ),
            )
            for i in pending
        ]
        for index, result, build_s, sim_s in self._dispatch(tasks):
            results[index] = result
            self.stats["misses"] += 1
            if self.cache is not None:
                self.cache.put(keys[index], result)
            self._unit_spans(
                index, configurations[index].name, build_s, sim_s
            )
            self._telemetry(
                keys[index], configurations[index].name, workload.name,
                configurations[index].num_cores, workload.seed,
                "miss" if self.cache is not None else "off",
                build_s + sim_s, build_s, sim_s, result,
            )
        return Comparison(workload.name, dict(zip(names, results)), baseline_name)

    # ------------------------------------------------------------------
    # internals

    def _stage_signatures(
        self, units: Sequence[RunUnit], pending: Sequence[int]
    ) -> Dict[tuple, str]:
        """Materialize every distinct build signature exactly once.

        Runs in the parent before any fan-out — the build-once point of
        the data plane.  Returns ``signature -> artifact path`` for the
        dispatch list; empty (build-in-worker behaviour) without a
        store.
        """
        artifacts: Dict[tuple, str] = {}
        if self.trace_store is None or not pending:
            return artifacts
        for i in pending:
            signature = units[i].build_signature()
            if signature in artifacts:
                continue
            start = time.perf_counter()
            path, built = self.trace_store.ensure(signature)
            if built:
                self.trace_stats["builds"] += 1
                self.trace_stats["build_s"] += time.perf_counter() - start
            artifacts[signature] = path
        self._store_telemetry()
        return artifacts

    def _dispatch(
        self, tasks: List[_Task]
    ) -> List[Tuple[int, RunResult, float, float]]:
        """Run tasks longest-first; return completions in index order.

        The single dispatch path for serial and parallel execution:
        both orderings, the worker body, and the reassembly are shared,
        so telemetry and determinism logic exist exactly once.  With a
        pool, ``imap_unordered(chunksize=1)`` lets free workers steal
        the next-longest task instead of being handed a fixed slice —
        longest-first submission bounds the straggler tail (LPT).
        """
        if not tasks:
            return []
        self._arrivals = {}
        ordered = sorted(tasks, key=lambda task: (-task.cost, task.index))
        done = []
        if self.jobs > 1 and len(ordered) > 1:
            workers = min(self.jobs, len(ordered))
            with multiprocessing.Pool(processes=workers) as pool:
                for item in pool.imap_unordered(
                    _execute_task, ordered, chunksize=1
                ):
                    done.append(item)
                    self._arrivals[item[0]] = time.time()
        else:
            for task in ordered:
                item = _execute_task(task)
                done.append(item)
                self._arrivals[item[0]] = time.time()
        done.sort(key=lambda item: item[0])
        return done

    def _unit_spans(
        self, index: int, config_name: str, build_s: float, sim_s: float
    ) -> None:
        """Tail-anchored build/sim spans of one completed unit.

        The worker reports durations, not wall timestamps, so the unit
        span is anchored at its completion time in the parent; the
        anchor error is one result-pickle hand-off, rendered as gap in
        the ``runner.execute`` parent rather than misattributed.
        """
        if self.tracer is None or self._span is None:
            return
        end = self._arrivals.get(index)
        if end is None:
            return
        sim_start = end - sim_s
        start = sim_start - build_s
        unit_rec = span_record(
            name="unit.exec",
            trace_id=self.tracer.trace_id,
            parent_id=self._span.span_id,
            start_s=start,
            end_s=end,
            attrs={"config": config_name},
        )
        self.tracer.records.append(unit_rec)
        self.tracer.records.append(
            span_record(
                name="unit.build",
                trace_id=self.tracer.trace_id,
                parent_id=unit_rec["span_id"],
                start_s=start,
                end_s=sim_start,
                attrs={"config": config_name},
            )
        )
        self.tracer.records.append(
            span_record(
                name="unit.sim",
                trace_id=self.tracer.trace_id,
                parent_id=unit_rec["span_id"],
                start_s=sim_start,
                end_s=end,
                attrs={"config": config_name},
            )
        )

    def _telemetry(
        self,
        key: Optional[str],
        config_name: str,
        workload_name: str,
        cores: int,
        seed: int,
        cache_state: str,
        wall_s: float,
        build_s: float,
        sim_s: float,
        result: RunResult,
    ) -> None:
        if self.telemetry_path is None:
            return
        record = {
            "schema": TELEMETRY_SCHEMA,
            "key": key,
            "config": config_name,
            "workload": workload_name,
            "cores": cores,
            "seed": seed,
            "engine": self.engine_version,
            "cache": cache_state,
            "wall_s": round(wall_s, 6),
            "build_s": round(build_s, 6),
            "sim_s": round(sim_s, 6),
            "cycles": result.cycles,
            "l1_miss_rate": result.stats.l1_miss_rate,
            "l2_miss_rate": result.stats.l2_miss_rate,
            "walks": result.stats.walks,
            "metrics": getattr(result, "metrics", None),
        }
        self._append_telemetry(record)

    def _store_telemetry(self) -> None:
        """One summary line per execute call describing store activity.

        Carries neither ``kind`` nor ``cycles``/``metrics``, so the
        report loader classifies it as neither run nor event and skips
        it; it exists for humans and benchmark tooling reading the raw
        JSONL.
        """
        if self.telemetry_path is None:
            return
        self._append_telemetry(
            {
                "schema": TELEMETRY_SCHEMA,
                "record": "trace_store",
                "builds": self.trace_stats["builds"],
                "build_s": round(self.trace_stats["build_s"], 6),
            }
        )

    def _append_telemetry(self, record: Dict) -> None:
        directory = os.path.dirname(self.telemetry_path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(self.telemetry_path, "a") as fh:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
