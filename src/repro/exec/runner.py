"""Parallel experiment runner with content-addressed result caching.

The :class:`Runner` executes the independent :class:`RunUnit` grains of
a :class:`~repro.sim.scenario.Scenario`:

* **fan-out** — with ``jobs=N`` the units are mapped over a
  ``multiprocessing`` pool (``jobs=1`` is a pure in-process serial
  fallback with zero pool overhead);
* **memoisation** — with a ``cache_dir``, every unit's result is stored
  under its content address (see :mod:`repro.exec.cache`); warm re-runs
  of a suite skip simulation entirely;
* **observability** — every unit emits one JSONL telemetry record
  (key, wall time, cache hit/miss, cycles, miss rates) so benchmark
  trajectories can be tracked over time.

Determinism: units are rebuilt from seeds inside each worker, the
engine is deterministic, and results are reassembled in submission
order — parallel, cached, and serial paths are bit-identical.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exec.cache import (
    ResultCache,
    canonicalize,
    unit_key,
    workload_fingerprint,
)
from repro.sim import configs as cfg
from repro.sim.engine import (
    DEFAULT_QUANTUM,
    ENGINE_VERSION,
    ShootdownTraffic,
    StormConfig,
    simulate,
)
from repro.sim.results import RunResult
from repro.sim.run import Comparison
from repro.sim.scenario import RunUnit, Scenario
from repro.workloads.trace import Workload

#: Telemetry file dropped next to the cache when none is specified.
TELEMETRY_BASENAME = "telemetry.jsonl"

#: Version of the telemetry record layout (see DESIGN.md for the field
#: table).  2: every record carries ``schema`` and ``metrics``, and hit
#: records time the cache read (key computation + disk fetch) instead
#: of reporting 0.0.
TELEMETRY_SCHEMA = 2


def _execute_unit(unit: RunUnit) -> Tuple[RunResult, float]:
    """Pool worker body: one deterministic simulation, timed."""
    start = time.perf_counter()
    result = unit.execute()
    return result, time.perf_counter() - start


def _execute_prebuilt(args) -> Tuple[RunResult, float]:
    (
        config, workload, storm, shootdown, record_intervals, quantum,
        metrics, trace,
    ) = args
    start = time.perf_counter()
    result = simulate(
        config,
        workload,
        quantum=quantum,
        storm=storm,
        shootdown=shootdown,
        record_intervals=record_intervals,
        metrics=metrics,
        trace=trace,
    )
    return result, time.perf_counter() - start


class Runner:
    """Executes scenarios over a worker pool, through a result cache.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (default) runs serially in-process.
    cache_dir:
        Directory of the content-addressed result cache.  ``None``
        disables caching (and telemetry, unless ``telemetry_path`` is
        given explicitly).
    use_cache:
        Master switch; ``False`` ignores ``cache_dir`` for lookups and
        stores (the CLI's ``--no-cache``).
    telemetry_path:
        JSONL file appended with one record per executed unit.
        Defaults to ``<cache_dir>/telemetry.jsonl`` when caching is on.
    engine_version:
        Cache-key version tag; defaults to the engine's own
        :data:`~repro.sim.engine.ENGINE_VERSION`.  Exposed so tests can
        prove that bumping the tag invalidates stale entries.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: Optional[str] = None,
        use_cache: bool = True,
        telemetry_path: Optional[str] = None,
        engine_version: Optional[str] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.engine_version = engine_version or ENGINE_VERSION
        self.cache: Optional[ResultCache] = None
        if cache_dir is not None and use_cache:
            self.cache = ResultCache(cache_dir)
        if telemetry_path is None and self.cache is not None:
            telemetry_path = os.path.join(self.cache.root, TELEMETRY_BASENAME)
        self.telemetry_path = telemetry_path
        #: Hit/miss counters of the most recent ``run``/``execute`` call.
        self.stats: Dict[str, int] = {"hits": 0, "misses": 0}

    # ------------------------------------------------------------------
    # scenario execution

    def run(self, scenario: Scenario) -> Dict[str, Comparison]:
        """Run a full scenario; one :class:`Comparison` per workload."""
        names = [config.name for config in scenario.configurations]
        if scenario.baseline_name not in names:
            raise ValueError(
                f"no baseline {scenario.baseline_name!r} in the lineup"
            )
        units = scenario.units()
        results = self.execute_units(units)
        per_config = len(scenario.configurations)
        out: Dict[str, Comparison] = {}
        for index, spec in enumerate(scenario.workloads):
            chunk = results[index * per_config : (index + 1) * per_config]
            out[spec.name] = Comparison(
                spec.name,
                dict(zip(names, chunk)),
                scenario.baseline_name,
            )
        return out

    def run_one(self, scenario: Scenario) -> Comparison:
        """Run a single-workload scenario and return its comparison."""
        if len(scenario.workloads) != 1:
            raise ValueError(
                "run_one needs a single-workload scenario; "
                "use run() for sweeps"
            )
        return self.run(scenario)[scenario.workloads[0].name]

    def execute_units(self, units: Sequence[RunUnit]) -> List[RunResult]:
        """Execute units (cache, then pool); results in unit order."""
        self.stats = {"hits": 0, "misses": 0}
        keys: List[Optional[str]] = [None] * len(units)
        results: List[Optional[RunResult]] = [None] * len(units)
        pending: List[int] = []
        for i, unit in enumerate(units):
            if self.cache is not None:
                # Hit wall_s = key computation + cache read, so warm-run
                # telemetry reflects real lookup cost rather than 0.0.
                start = time.perf_counter()
                keys[i] = unit_key(unit, self.engine_version)
                hit = self.cache.get(keys[i])
                if hit is not None:
                    results[i] = hit
                    self.stats["hits"] += 1
                    self._telemetry(
                        keys[i], unit.config.name, unit.workload.name,
                        unit.config.num_cores, unit.seed, "hit",
                        time.perf_counter() - start, hit,
                    )
                    continue
            pending.append(i)

        executed = self._map(
            _execute_unit, [units[i] for i in pending]
        )
        for i, (result, wall) in zip(pending, executed):
            results[i] = result
            self.stats["misses"] += 1
            if self.cache is not None:
                self.cache.put(keys[i], result)
            unit = units[i]
            self._telemetry(
                keys[i], unit.config.name, unit.workload.name,
                unit.config.num_cores, unit.seed,
                "miss" if self.cache is not None else "off", wall, result,
            )
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # prebuilt workloads (loaded traces, multiprogrammed mixes)

    def run_prebuilt(
        self,
        workload: Workload,
        configurations: Sequence[cfg.SystemConfig],
        baseline_name: str = "private",
        storm: Optional[StormConfig] = None,
        shootdown: Optional[ShootdownTraffic] = None,
        record_intervals: bool = False,
        quantum: int = DEFAULT_QUANTUM,
        metrics: bool = False,
        trace: bool = False,
    ) -> Comparison:
        """Run an already-built workload through a lineup.

        The cache key hashes the workload's trace records (there is no
        spec to canonicalise), so loaded ``.npz`` traces and
        multiprogrammed mixes cache just as scenario units do.
        """
        configurations = list(configurations)
        names = [config.name for config in configurations]
        if baseline_name not in names:
            raise ValueError(f"no baseline {baseline_name!r} in the lineup")
        self.stats = {"hits": 0, "misses": 0}
        keys: List[Optional[str]] = [None] * len(configurations)
        results: List[Optional[RunResult]] = [None] * len(configurations)
        pending: List[int] = []
        fingerprint = (
            workload_fingerprint(workload) if self.cache is not None else None
        )
        for i, config in enumerate(configurations):
            if self.cache is not None:
                start = time.perf_counter()
                payload = {
                    "workload_fingerprint": fingerprint,
                    "config": canonicalize(config),
                    "storm": canonicalize(storm),
                    "shootdown": canonicalize(shootdown),
                    "record_intervals": record_intervals,
                    "quantum": quantum,
                    "metrics": metrics,
                    "trace": trace,
                }
                keys[i] = unit_key(payload, self.engine_version)
                hit = self.cache.get(keys[i])
                if hit is not None:
                    results[i] = hit
                    self.stats["hits"] += 1
                    self._telemetry(
                        keys[i], config.name, workload.name,
                        config.num_cores, workload.seed, "hit",
                        time.perf_counter() - start, hit,
                    )
                    continue
            pending.append(i)

        executed = self._map(
            _execute_prebuilt,
            [
                (
                    configurations[i], workload, storm, shootdown,
                    record_intervals, quantum, metrics, trace,
                )
                for i in pending
            ],
        )
        for i, (result, wall) in zip(pending, executed):
            results[i] = result
            self.stats["misses"] += 1
            if self.cache is not None:
                self.cache.put(keys[i], result)
            self._telemetry(
                keys[i], configurations[i].name, workload.name,
                configurations[i].num_cores, workload.seed,
                "miss" if self.cache is not None else "off", wall, result,
            )
        return Comparison(workload.name, dict(zip(names, results)), baseline_name)

    # ------------------------------------------------------------------
    # internals

    def _map(self, fn, items: List) -> List[Tuple[RunResult, float]]:
        if not items:
            return []
        if self.jobs > 1 and len(items) > 1:
            workers = min(self.jobs, len(items))
            with multiprocessing.Pool(processes=workers) as pool:
                return pool.map(fn, items, chunksize=1)
        return [fn(item) for item in items]

    def _telemetry(
        self,
        key: Optional[str],
        config_name: str,
        workload_name: str,
        cores: int,
        seed: int,
        cache_state: str,
        wall_s: float,
        result: RunResult,
    ) -> None:
        if self.telemetry_path is None:
            return
        record = {
            "schema": TELEMETRY_SCHEMA,
            "key": key,
            "config": config_name,
            "workload": workload_name,
            "cores": cores,
            "seed": seed,
            "engine": self.engine_version,
            "cache": cache_state,
            "wall_s": round(wall_s, 6),
            "cycles": result.cycles,
            "l1_miss_rate": result.stats.l1_miss_rate,
            "l2_miss_rate": result.stats.l2_miss_rate,
            "walks": result.stats.walks,
            "metrics": getattr(result, "metrics", None),
        }
        directory = os.path.dirname(self.telemetry_path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(self.telemetry_path, "a") as fh:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
