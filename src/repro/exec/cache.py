"""Content-addressed on-disk cache of simulation results.

A cache entry is keyed by the SHA-256 of the *canonicalised* run unit:
every field of the :class:`~repro.sim.scenario.RunUnit` (configuration,
workload spec, seed, storm/shootdown knobs, quantum, ...) serialised to
a stable JSON form, plus an engine-version tag that is bumped whenever
the simulator's behaviour changes.  Two runs share a key exactly when
the determinism contract guarantees they produce bit-identical
:class:`~repro.sim.results.RunResult`\\ s — so a hit can simply return
the stored value.

Prebuilt workloads (loaded traces, multiprogrammed mixes) have no spec
to canonicalise; they are fingerprinted by hashing their trace records
instead, which preserves the same property.

Values are stored with :mod:`pickle` (results are trusted local
artefacts and must round-trip exactly, intervals and all), written
atomically so concurrent writers — pool workers, parallel suites —
can never expose a torn entry.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
import time
from typing import Iterator, Optional

import numpy as np

from repro.sim.results import RunResult
from repro.workloads.trace import Workload


def canonicalize(obj):
    """Reduce a value to deterministic JSON-representable primitives.

    Dataclasses become ``{"__dataclass__": <type>, <field>: ...}`` maps
    (the type name participates in the key: two dataclasses with equal
    fields but different meanings must not collide), sequences become
    lists, dict keys are stringified and sorted by ``json.dumps``.
    Anything unhashable-by-design (functions, arrays, open files) is a
    ``TypeError`` — cache keys must never silently depend on object
    identity.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        if obj != obj or obj in (float("inf"), float("-inf")):
            raise TypeError("non-finite floats cannot be canonicalised")
        return obj
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        out = {"__dataclass__": type(obj).__name__}
        for f in dataclasses.fields(obj):
            out[f.name] = canonicalize(getattr(obj, f.name))
        return out
    if isinstance(obj, dict):
        return {str(key): canonicalize(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [canonicalize(item) for item in obj]
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return canonicalize(float(obj))
    raise TypeError(f"cannot canonicalise {type(obj).__name__} for a cache key")


def canonical_json(obj) -> str:
    return json.dumps(canonicalize(obj), sort_keys=True, separators=(",", ":"))


def unit_key(unit, engine_version: str) -> str:
    """SHA-256 content address of one run unit under one engine version."""
    payload = canonical_json({"engine": engine_version, "unit": unit})
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def workload_fingerprint(workload: Workload) -> str:
    """Content hash of a prebuilt workload's traces and identity.

    Used when a run arrives with a built :class:`Workload` (a loaded
    ``.npz`` trace, a multiprogrammed mix) rather than a spec: hashing
    the records themselves keeps the key honest about what actually
    ran.
    """
    digest = hashlib.sha256()
    header = {
        "name": workload.name,
        "seed": workload.seed,
        "superpages": workload.superpages,
        "info": workload.info,
    }
    digest.update(canonical_json(header).encode("utf-8"))
    for core in workload.traces:
        for stream in core:
            arr = np.asarray(stream, dtype=np.int64).reshape(len(stream), -1)
            digest.update(str(arr.shape).encode())
            digest.update(arr.tobytes())
    return digest.hexdigest()


class ResultCache:
    """Content-addressed store of :class:`RunResult` values on disk.

    Layout: ``<root>/<key[:2]>/<key>.pkl`` — the two-character fan-out
    keeps directories small under big sweeps.  ``get`` treats any
    unreadable entry as a miss (a corrupt or truncated file must never
    poison a run).
    """

    def __init__(self, root: str) -> None:
        self.root = str(root)

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}.pkl")

    def get(self, key: str) -> Optional[RunResult]:
        try:
            with open(self._path(key), "rb") as fh:
                return pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            return None

    def put(self, key: str, result: RunResult) -> None:
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(path), prefix=".tmp-", suffix=".pkl"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(result, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __contains__(self, key: str) -> bool:
        return os.path.exists(self._path(key))

    def keys(self) -> Iterator[str]:
        if not os.path.isdir(self.root):
            return
        for bucket in sorted(os.listdir(self.root)):
            subdir = os.path.join(self.root, bucket)
            if not os.path.isdir(subdir):
                continue
            for entry in sorted(os.listdir(subdir)):
                if entry.endswith(".pkl") and not entry.startswith(".tmp-"):
                    yield entry[: -len(".pkl")]

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def stats(self) -> dict:
        """``{"entries": count, "bytes": total_size}``."""
        entries = 0
        size = 0
        for key in self.keys():
            entries += 1
            try:
                size += os.path.getsize(self._path(key))
            except OSError:
                pass
        return {"entries": entries, "bytes": size}

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for key in list(self.keys()):
            try:
                os.unlink(self._path(key))
                removed += 1
            except OSError:
                pass
        return removed

    def evict_older_than(self, max_age_s: float, now: Optional[float] = None) -> int:
        """Delete entries last written more than ``max_age_s`` ago.

        The serving tier's TTL sweep: results are content-addressed, so
        an evicted entry costs at most one re-simulation — correctness
        never depends on retention.  ``now`` is injectable for tests.
        Returns how many entries were removed; races with concurrent
        writers are benign (a vanished file is simply skipped).
        """
        if max_age_s < 0:
            raise ValueError(f"max_age_s must be >= 0 (got {max_age_s})")
        if now is None:
            now = time.time()
        removed = 0
        for key in list(self.keys()):
            path = self._path(key)
            try:
                if now - os.path.getmtime(path) > max_age_s:
                    os.unlink(path)
                    removed += 1
            except OSError:
                pass
        return removed
