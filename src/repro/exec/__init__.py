"""Experiment execution layer: parallel runner + content-addressed cache.

``repro.exec`` is the substrate every sweep runs on: it decomposes a
:class:`~repro.sim.scenario.Scenario` into independent run units, fans
them out over a process pool, and memoises each unit's result under a
content address so warm re-runs skip simulation entirely.  See
:mod:`repro.exec.runner` and :mod:`repro.exec.cache`.
"""

from repro.exec.cache import (
    ResultCache,
    canonical_json,
    canonicalize,
    unit_key,
    workload_fingerprint,
)
from repro.exec.runner import Runner
from repro.exec.trace_store import TraceStore, attach_workload

__all__ = [
    "ResultCache",
    "Runner",
    "TraceStore",
    "attach_workload",
    "canonical_json",
    "canonicalize",
    "unit_key",
    "workload_fingerprint",
]
