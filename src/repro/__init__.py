"""repro — reproduction of "Scalable Distributed Last-Level TLBs Using
Low-Latency Interconnects" (NOCSTAR, MICRO 2018).

Public API tour:

* ``repro.api`` — the supported stable surface in one namespace:
  :class:`~repro.sim.scenario.Scenario`,
  :class:`~repro.exec.runner.Runner`, the run harness, configuration
  factories and registry, and the workload registry.
* ``repro.exec`` — parallel experiment runner with content-addressed
  result caching (the execution substrate behind every sweep).
* ``repro.serve`` — simulation-as-a-service: the ``repro serve``
  daemon, job manager, and :class:`~repro.serve.client.ServeClient`.
* ``repro.sim`` — build configurations (:func:`repro.sim.private`,
  :func:`repro.sim.nocstar`, ...) and the simulation engine; the run
  harness lives on the :mod:`repro.api` facade.
* ``repro.core`` — the NOCSTAR interconnect itself.
* ``repro.workloads`` — the paper's application suite and
  microbenchmarks as synthetic trace generators.
* ``repro.tlb`` / ``repro.vm`` / ``repro.mem`` / ``repro.noc`` — the
  substrates: TLB structures, virtual memory and page walks, SRAM and
  cache models, and baseline on-chip networks.
* ``repro.energy`` / ``repro.analysis`` — translation-energy accounting
  and result post-processing.

Quickstart::

    from repro import api

    scenario = api.Scenario(
        configurations=[api.private(16), api.nocstar(16)],
        workloads="graph500",
    )
    cmp = api.Runner(jobs=4).run_one(scenario)
    print(cmp.speedup("nocstar"))
"""

__version__ = "1.5.0"

from repro import analysis, api, core, energy, mem, noc, serve, sim, tlb, vm, workloads
from repro import exec as exec_  # "exec" shadows the builtin; alias too

__all__ = [
    "analysis",
    "api",
    "core",
    "energy",
    "exec",
    "mem",
    "noc",
    "serve",
    "sim",
    "tlb",
    "vm",
    "workloads",
    "__version__",
]
