"""repro — reproduction of "Scalable Distributed Last-Level TLBs Using
Low-Latency Interconnects" (NOCSTAR, MICRO 2018).

Public API tour:

* ``repro.sim`` — build configurations (:func:`repro.sim.private`,
  :func:`repro.sim.nocstar`, ...) and run workloads
  (:func:`repro.sim.simulate`, :func:`repro.sim.run_suite`).
* ``repro.core`` — the NOCSTAR interconnect itself.
* ``repro.workloads`` — the paper's application suite and
  microbenchmarks as synthetic trace generators.
* ``repro.tlb`` / ``repro.vm`` / ``repro.mem`` / ``repro.noc`` — the
  substrates: TLB structures, virtual memory and page walks, SRAM and
  cache models, and baseline on-chip networks.
* ``repro.energy`` / ``repro.analysis`` — translation-energy accounting
  and result post-processing.

Quickstart::

    from repro.sim import nocstar, private, compare
    from repro.workloads import build_multithreaded, get_workload

    wl = build_multithreaded(get_workload("graph500"), num_cores=16)
    cmp = compare(wl, [private(16), nocstar(16)])
    print(cmp.speedup("nocstar"))
"""

__version__ = "1.0.0"

from repro import analysis, core, energy, mem, noc, sim, tlb, vm, workloads

__all__ = [
    "analysis",
    "core",
    "energy",
    "mem",
    "noc",
    "sim",
    "tlb",
    "vm",
    "workloads",
    "__version__",
]
