"""NOCSTAR — the paper's primary contribution: the TLB interconnect."""

from repro.core.config import NocstarConfig, ONE_WAY, ROUND_TRIP
from repro.core.indexing import (
    INDEXERS,
    asid_mix_index,
    get_indexer,
    modulo_index,
    xor_fold_index,
)
from repro.core.link_arbiter import LinkArbiter, control_fanout
from repro.core.nocstar import NocstarInterconnect, NocstarTraversal

__all__ = [
    "NocstarConfig",
    "ONE_WAY",
    "ROUND_TRIP",
    "INDEXERS",
    "asid_mix_index",
    "get_indexer",
    "modulo_index",
    "xor_fold_index",
    "LinkArbiter",
    "control_fanout",
    "NocstarInterconnect",
    "NocstarTraversal",
]
