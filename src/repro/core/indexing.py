"""Slice-indexing strategies: mapping a translation to its home slice.

The paper uses "a simple indexing mechanism using bits from [the]
virtual address" and notes that "optimized indexing mechanisms can be
adopted for better performance" (§III-A).  This module provides that
design space:

* ``modulo``    — low-order page-number bits (the paper's choice);
* ``xor-fold``  — XOR-folds several bit groups of the page number, so
  strided access patterns (which alias badly under modulo) spread
  evenly across slices;
* ``asid-mix``  — mixes the context ID into the hash, so multiprogrammed
  workloads with identical per-process layouts don't all hash their
  hot pages onto the same slices.

`benchmarks/test_ablation_indexing.py` quantifies the choice.
"""

from __future__ import annotations

from typing import Callable, Dict

IndexFn = Callable[[int, int, int], int]  # (asid, page_number, slices)


def modulo_index(asid: int, page_number: int, num_slices: int) -> int:
    """The paper's scheme: low-order page-number bits."""
    return page_number % num_slices


def xor_fold_index(asid: int, page_number: int, num_slices: int) -> int:
    """XOR-fold successive bit groups so strides don't alias.

    Requires a power-of-two slice count (true for 16/32/64-core tiles).
    """
    bits = (num_slices - 1).bit_length()
    mask = num_slices - 1
    folded = 0
    value = page_number
    while value:
        folded ^= value & mask
        value >>= bits
    return folded


def asid_mix_index(asid: int, page_number: int, num_slices: int) -> int:
    """XOR-fold with the ASID mixed in (de-correlates processes)."""
    folded = xor_fold_index(0, page_number, num_slices)
    return (folded ^ (asid * 7)) % num_slices


INDEXERS: Dict[str, IndexFn] = {
    "modulo": modulo_index,
    "xor-fold": xor_fold_index,
    "asid-mix": asid_mix_index,
}


def get_indexer(name: str) -> IndexFn:
    try:
        return INDEXERS[name]
    except KeyError:
        known = ", ".join(sorted(INDEXERS))
        raise KeyError(f"unknown slice indexer {name!r}; known: {known}") from None
