"""Configuration of the NOCSTAR interconnect (§III-B)."""

from __future__ import annotations

from dataclasses import dataclass

#: Link-acquisition modes (§V, Fig 16 left).
ONE_WAY = "one-way"  # 2x one-way: request and response arbitrate separately
ROUND_TRIP = "round-trip"  # 1x two-way: links held for the whole remote access


@dataclass(frozen=True)
class NocstarConfig:
    """Design-time parameters of the TLB interconnect.

    ``hpc_max`` is the maximum hops traversable in one clock before
    pipeline latches must be inserted (§III-B3) — the full chip fits in
    one cycle when ``hpc_max >= mesh diameter``.  ``acquire`` selects
    how links are reserved; the paper finds 2x one-way wins (Fig 16).
    ``priority_rotation_cycles`` is the round-robin period of the link
    arbiters' static priority (§III-B2, anti-starvation).
    """

    hpc_max: int = 16
    acquire: str = ONE_WAY
    priority_rotation_cycles: int = 1000
    #: NOCSTAR slice size after shaving SRAM to pay for the interconnect
    #: (area-normalised 920 vs 1024 entries, §IV Table II).
    slice_entries: int = 920

    def __post_init__(self) -> None:
        if self.hpc_max < 1:
            raise ValueError("hpc_max must be >= 1")
        if self.acquire not in (ONE_WAY, ROUND_TRIP):
            raise ValueError(f"unknown acquire mode: {self.acquire}")
        if self.priority_rotation_cycles < 1:
            raise ValueError("priority rotation period must be >= 1")
