"""The NOCSTAR interconnect: latchless, circuit-switched, single-cycle.

Datapath (§III-B1): a mux-based latchless switch sits next to each TLB
slice; once every link of the XY path is granted, the message ripples
through all intermediate switches combinationally — up to ``hpc_max``
hops per clock — and is latched only at the destination.

Control path (§III-B2): before the traversal, the source requests every
link of the path from that link's arbiter *in the same cycle*; the
grants are ANDed.  Any missing grant means the whole setup retries next
cycle (no partial paths).  This discrete-event model resolves
contention with per-link ``free_at`` reservations: a setup succeeds in
the first cycle all links are simultaneously free, and each failed
attempt is charged one retry cycle and one round of control energy.

Both link-acquisition modes of §V are supported: one-way (request and
response each arbitrate for a single traversal) and round-trip (links
held for the whole remote access and released explicitly).

Reservations are per-cycle occupancy maps rather than busy-until
watermarks: the driving engine resolves cores' misses slightly out of
global time order (bounded by its run-ahead quantum), and a watermark
would make a reservation placed at cycle 5000 block an unrelated
message at cycle 4000.  With occupancy maps, only true same-cycle
conflicts on a link cause retries.
"""

from __future__ import annotations

from typing import Dict, NamedTuple, Set, Tuple

from repro.core.config import NocstarConfig, ONE_WAY, ROUND_TRIP
from repro.core.link_arbiter import control_fanout
from repro.faults.inject import (
    FALLBACK_CYCLES_PER_HOP,
    FALLBACK_INJECTION_CYCLES,
)
from repro.faults.routing import UnreachableError
from repro.noc.topology import Link, MeshTopology
from repro.obs import NULL_SINK


class NocstarTraversal(NamedTuple):
    """Outcome of one message through the TLB interconnect.

    A NamedTuple for the same reason as :class:`repro.noc.mesh.
    Traversal`: construction sits on the per-message hot path.
    """

    ready: int  # cycle the message is available at the destination
    hops: int
    setup_retries: int
    traversal_cycles: int
    links: Tuple[Link, ...]

    @property
    def contended(self) -> bool:
        return self.setup_retries > 0


class NocstarInterconnect:
    """Discrete-event model of the NOCSTAR TLB network."""

    def __init__(
        self,
        topology: MeshTopology,
        config: NocstarConfig = NocstarConfig(),
        sink=NULL_SINK,
        faults=None,
        routes=None,
    ) -> None:
        self.topology = topology
        self.config = config
        self.sink = sink
        #: Bound event emitter, or None when unobserved — the hot send
        #: paths then skip building the kwargs for a no-op sink call.
        self._event = sink.event if sink.enabled else None
        self.faults = faults  # Optional[FaultInjector]
        self.routes = routes  # Optional[RouteCache]
        if faults is not None and (
            faults.router.dead or faults.plan.arbiter_drop_prob > 0.0
        ):
            # Construction-time dispatch: the fault-free hot path stays
            # branch-free and byte-identical to the pre-fault model.
            self.send = self._send_faulty
        elif routes is not None:
            # Same dispatch pattern for the route cache: paths and
            # uncontended traversal durations come from the precomputed
            # fault-free tables; arbitration stays live.
            self._cached_path = routes.path
            self._cached_cycles = routes.nocstar_cycles(config.hpc_max)
            self.send = self._send_routed
        #: link -> set of cycles during which the link carries data.
        self._occupied: Dict[Link, Set[int]] = {}
        #: link -> cycle from which the link is held (round-trip mode).
        self._held: Dict[Link, int] = {}
        self.messages = 0
        self.local_messages = 0
        self.total_hops = 0
        self.total_setup_retries = 0
        self.uncontended_messages = 0
        self.control_requests = 0  # arbiter requests (energy accounting)

    # ------------------------------------------------------------------
    # Datapath

    def traversal_cycles(self, hops: int) -> int:
        """Cycles for the data traversal: ceil(hops / HPCmax)."""
        return -(-hops // self.config.hpc_max) if hops else 0

    def send(
        self,
        src: int,
        dst: int,
        now: int,
        speculative_setup: bool = False,
        hold: bool = False,
    ) -> NocstarTraversal:
        """Send one message from tile ``src`` to tile ``dst``.

        ``speculative_setup`` overlaps the path-setup cycle with
        preceding work (the paper sets up the response path during the
        slice lookup, §III-C).  ``hold`` keeps the links reserved until
        :meth:`release` — round-trip acquisition.
        """
        self.messages += 1
        if src == dst:
            self.local_messages += 1
            return NocstarTraversal(
                ready=now, hops=0, setup_retries=0, traversal_cycles=0, links=()
            )
        path = tuple(self.topology.xy_path(src, dst))
        hops = len(path)
        duration = self.traversal_cycles(hops)
        earliest = now if speculative_setup else now + 1
        start = earliest
        while not self._path_free(path, start, duration):
            start += 1
        retries = start - earliest
        for link in path:
            occupied = self._occupied.setdefault(link, set())
            occupied.update(range(start, start + duration))
            if hold:
                self._held[link] = start + duration
        # Every setup attempt broadcasts a request to all path arbiters.
        self.control_requests += hops * (retries + 1)
        self.total_hops += hops
        self.total_setup_retries += retries
        if retries == 0:
            self.uncontended_messages += 1
        if self._event is not None:
            self._event(
                now, "nocstar_setup",
                src=src, dst=dst, hops=hops, retries=retries, hold=hold,
            )
        return NocstarTraversal(
            ready=start + duration,
            hops=hops,
            setup_retries=retries,
            traversal_cycles=duration,
            links=path,
        )

    def _send_routed(
        self,
        src: int,
        dst: int,
        now: int,
        speculative_setup: bool = False,
        hold: bool = False,
    ) -> NocstarTraversal:
        """:meth:`send` off the precomputed fault-free route tables.

        Only the pure (src, dst) functions — the XY path and the
        uncontended traversal duration — come from the cache; the
        per-cycle link reservations, retries, and round-trip holds run
        through the exact live arbitration model, so contended sends
        resolve identically to the uncached path.
        """
        self.messages += 1
        if src == dst:
            self.local_messages += 1
            return NocstarTraversal(
                ready=now, hops=0, setup_retries=0, traversal_cycles=0, links=()
            )
        path = self._cached_path(src, dst)
        hops = len(path)
        duration = self._cached_cycles[src][dst]
        earliest = now if speculative_setup else now + 1
        start = earliest
        occupancy = self._occupied
        if self._held:
            while not self._path_free(path, start, duration):
                start += 1
        else:
            # Inlined _path_free for the dominant one-way case: no held
            # links to police, so the free test is pure occupancy.  On a
            # conflict, skip directly past the latest busy cycle in the
            # candidate span: a setup is feasible only once every busy
            # cycle of every link clears the span, so any viable start
            # exceeds that cycle — the jump lands on the same first
            # feasible start the cycle-by-cycle retry would find.
            while True:
                span = range(start, start + duration)
                for link in path:
                    occupied = occupancy.get(link)
                    if occupied:
                        busy = occupied.intersection(span)
                        if busy:
                            start = max(busy) + 1
                            break
                else:
                    break
        retries = start - earliest
        span = range(start, start + duration)
        if hold:
            held = self._held
            for link in path:
                occupancy.setdefault(link, set()).update(span)
                held[link] = start + duration
        else:
            for link in path:
                occupancy.setdefault(link, set()).update(span)
        self.control_requests += hops * (retries + 1)
        self.total_hops += hops
        self.total_setup_retries += retries
        if retries == 0:
            self.uncontended_messages += 1
        if self._event is not None:
            self._event(
                now, "nocstar_setup",
                src=src, dst=dst, hops=hops, retries=retries, hold=hold,
            )
        return NocstarTraversal(
            ready=start + duration,
            hops=hops,
            setup_retries=retries,
            traversal_cycles=duration,
            links=path,
        )

    def _send_faulty(
        self,
        src: int,
        dst: int,
        now: int,
        speculative_setup: bool = False,
        hold: bool = False,
    ) -> "NocstarTraversal":
        """:meth:`send` under fault injection.

        Resilience policy: a permanently dead link on the arbiters' XY
        path makes the setup unwinnable, so the message falls back to
        buffered-mesh routing immediately.  Otherwise the setup loop
        retries through contention (next cycle, as fault-free) and
        through transient arbiter drops (exponential backoff, capped at
        ``max_backoff``); if the grant has not landed within
        ``setup_timeout`` cycles the circuit-switched fabric is
        abandoned and the message falls back too.
        """
        self.messages += 1
        if src == dst:
            self.local_messages += 1
            return NocstarTraversal(
                ready=now, hops=0, setup_retries=0, traversal_cycles=0, links=()
            )
        inj = self.faults
        path = tuple(self.topology.xy_path(src, dst))
        hops = len(path)
        duration = self.traversal_cycles(hops)
        earliest = now if speculative_setup else now + 1
        if not inj.router.path_alive(path):
            return self._fallback(src, dst, earliest, hops, attempts=1)
        deadline = earliest + inj.plan.setup_timeout
        start = earliest
        attempts = 0
        drops = 0
        backoff = 1
        while True:
            if start >= deadline:
                return self._fallback(src, dst, start, hops, attempts)
            attempts += 1
            if not self._path_free(path, start, duration):
                start += 1  # contention: retry next cycle, as fault-free
                continue
            if inj.drop_setup():
                drops += 1
                inj.record_drop(start, src, dst, backoff)
                start += backoff
                backoff = min(backoff * 2, inj.plan.max_backoff)
                continue
            break
        for link in path:
            occupied = self._occupied.setdefault(link, set())
            occupied.update(range(start, start + duration))
            if hold:
                self._held[link] = start + duration
        retries = attempts - 1
        self.control_requests += hops * attempts
        self.total_hops += hops
        self.total_setup_retries += retries
        if retries == 0:
            self.uncontended_messages += 1
        self.sink.event(
            now, "nocstar_setup",
            src=src, dst=dst, hops=hops, retries=retries, hold=hold,
            drops=drops,
        )
        return NocstarTraversal(
            ready=start + duration,
            hops=hops,
            setup_retries=retries,
            traversal_cycles=duration,
            links=path,
        )

    def _fallback(
        self, src: int, dst: int, giveup: int, xy_hops: int, attempts: int
    ) -> "NocstarTraversal":
        """Deliver over the buffered coherence mesh after abandoning setup.

        The failed attempts still burned control energy; the traversal
        is then charged at buffered-mesh cost (injection plus
        router+wire per hop) over the fault-aware route.  Returns
        ``links=()`` — no circuit is held, so round-trip hold/release
        bookkeeping is skipped by the existing guards.
        """
        inj = self.faults
        path = inj.router.route(src, dst)
        if path is None:
            raise UnreachableError(
                f"no alive route {src}->{dst}; caller must pre-check "
                "reachability and degrade to a local walk"
            )
        hops = len(path)
        self.control_requests += xy_hops * attempts
        self.total_setup_retries += attempts
        self.total_hops += hops
        ready = giveup + FALLBACK_INJECTION_CYCLES + FALLBACK_CYCLES_PER_HOP * hops
        inj.record_fallback(giveup, src, dst, hops)
        return NocstarTraversal(
            ready=ready,
            hops=hops,
            setup_retries=attempts,
            traversal_cycles=ready - giveup,
            links=(),
        )

    def _path_free(self, path: Tuple[Link, ...], start: int, duration: int) -> bool:
        """True if every link is free for [start, start+duration).

        Arbitrating over a link that is currently *held* (round-trip
        acquisition in flight) is a protocol error: the holder releases
        before the next transaction is issued, so a held link at send
        time means the caller broke the hold/release discipline — and
        waiting for it would never terminate (the release time is not
        yet known).
        """
        cycles = range(start, start + duration)
        held = self._held
        occupancy = self._occupied
        if held:
            for link in path:
                held_from = held.get(link)
                if held_from is not None and start + duration > held_from:
                    raise RuntimeError(
                        f"link {link} is held by an unreleased round-trip "
                        "acquisition; release() it before arbitrating again"
                    )
                occupied = occupancy.get(link)
                if occupied and not occupied.isdisjoint(cycles):
                    return False
            return True
        # One-way acquisition never holds links; skip the per-link
        # held-map probes on this (dominant) path.
        for link in path:
            occupied = occupancy.get(link)
            if occupied and not occupied.isdisjoint(cycles):
                return False
        return True

    def release(self, links: Tuple[Link, ...], at: int) -> None:
        """Release round-trip-held links at cycle ``at``.

        The held window is converted into explicit occupancy so that
        slightly out-of-order requests (see class docstring) still see
        the hold."""
        for link in links:
            held_from = self._held.pop(link, None)
            if held_from is not None:
                self._occupied.setdefault(link, set()).update(
                    range(held_from, at)
                )

    def round_trip(
        self,
        src: int,
        dst: int,
        now: int,
        service_cycles: int,
    ) -> Tuple[int, int]:
        """Complete remote transaction; returns (response_ready, retries).

        Dispatches on the configured acquisition mode: one-way arbitrates
        separately for request and response (response setup speculative,
        §III-C); round-trip holds the request path's links until the
        response lands.
        """
        if self.config.acquire == ROUND_TRIP:
            request = self.send(src, dst, now, hold=True)
            lookup_done = request.ready + service_cycles
            # The response reuses the held path: no second arbitration.
            response_ready = lookup_done + request.traversal_cycles
            self.release(request.links, response_ready)
            if request.links:
                self.messages += 1  # the response is still a message
                self.total_hops += request.hops
                self.uncontended_messages += 1
            return response_ready, request.setup_retries
        request = self.send(src, dst, now)
        lookup_done = request.ready + service_cycles
        response = self.send(dst, src, lookup_done, speculative_setup=True)
        return response.ready, request.setup_retries + response.setup_retries

    # ------------------------------------------------------------------
    # Introspection

    def link_busy_cycles(self) -> Dict[Link, int]:
        """Cycles each link carried data (utilization numerator).

        Round-trip holds still in flight are not counted; every hold is
        released before a run finishes, converting it into occupancy.
        """
        return {link: len(cycles) for link, cycles in self._occupied.items()}

    @property
    def mean_setup_retries(self) -> float:
        sent = self.messages - self.local_messages
        return self.total_setup_retries / sent if sent else 0.0

    @property
    def no_contention_fraction(self) -> float:
        sent = self.messages - self.local_messages
        return self.uncontended_messages / sent if sent else 1.0

    def control_wires_per_core(self) -> int:
        """Fan-out of control wires per core under XY routing."""
        return control_fanout(self.topology.rows, self.topology.cols)

    def reset(self) -> None:
        self._occupied.clear()
        self._held.clear()
        self.messages = self.local_messages = 0
        self.total_hops = self.total_setup_retries = 0
        self.uncontended_messages = 0
        self.control_requests = 0
