"""Per-link arbiters for cycle-accurate NOCSTAR simulation (§III-B2).

Each data link has one arbiter.  In a given cycle it collects requests
from every core that can route through the link (the fan-in depends on
XY routing and the link's position, Fig 7d), grants the link to exactly
one of them, and the winner's output mux is pre-set for the next cycle.
Priority is static but rotates round-robin every N cycles to prevent
starvation; a requester holding the highest priority is guaranteed all
of its links, which rules out livelock from partial acquisitions.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence


class LinkArbiter:
    """Arbitrates one directed link among requesting cores."""

    def __init__(self, num_requesters: int, rotation_cycles: int = 1000) -> None:
        if num_requesters < 1:
            raise ValueError("an arbiter needs at least one requester")
        self.num_requesters = num_requesters
        self.rotation_cycles = rotation_cycles
        self.grants = 0
        self.conflicts = 0

    def priority_base(self, cycle: int) -> int:
        """Requester holding top priority this cycle (round-robin rotation)."""
        return (cycle // self.rotation_cycles) % self.num_requesters

    def grant(self, cycle: int, requesters: Sequence[int]) -> Optional[int]:
        """Pick the winner among ``requesters`` (core ids) for this cycle.

        Priority order starts at ``priority_base`` and wraps; the
        requester closest after the base wins.
        """
        if not requesters:
            return None
        base = self.priority_base(cycle)
        winner = min(requesters, key=lambda r: (r - base) % self.num_requesters)
        self.grants += 1
        self.conflicts += len(requesters) - 1
        return winner


def control_fanout(rows: int, cols: int) -> int:
    """Control wires leaving each core under XY routing (§III-B2).

    A core must reach the arbiters of every link it can ever request:
    (cols - 1) X-links in its own row plus one Y-link arbiter per
    (row, column) pair below/above, i.e.::

        (num_cores_each_row - 1) + (num_rows - 1) * num_columns
    """
    if rows < 1 or cols < 1:
        raise ValueError("mesh dimensions must be positive")
    return (cols - 1) + (rows - 1) * cols
