"""Energy/power/area accounting for the translation path."""

from repro.energy.components import (
    ARBITERS_AREA_MM2,
    ARBITERS_POWER_MW,
    DEFAULT_PARAMS,
    EnergyParams,
    SRAM_SLICE_AREA_MM2,
    SRAM_SLICE_POWER_MW,
    SWITCH_AREA_MM2,
    SWITCH_POWER_MW,
)
from repro.energy.message import DESIGNS, message_energy_pj
from repro.energy.model import EnergyBreakdown, EnergyModel, percent_energy_saved

__all__ = [
    "ARBITERS_AREA_MM2",
    "ARBITERS_POWER_MW",
    "DEFAULT_PARAMS",
    "EnergyParams",
    "SRAM_SLICE_AREA_MM2",
    "SRAM_SLICE_POWER_MW",
    "SWITCH_AREA_MM2",
    "SWITCH_POWER_MW",
    "DESIGNS",
    "message_energy_pj",
    "EnergyBreakdown",
    "EnergyModel",
    "percent_energy_saved",
]
