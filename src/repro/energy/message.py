"""Analytic per-message energy vs hop count — Fig 11(b).

For each shared-TLB organisation, the energy of one L2 TLB access that
travels ``hops`` hops, broken down the way the paper plots it:
Link / Switch / Control / SRAM.

* Monolithic pays a big-SRAM read plus buffered-router mesh hops.
* Distributed pays a slice-sized read plus the same mesh hops.
* NOCSTAR pays a slice read, cheap latchless mux hops, and a control
  premium — one arbiter request per link arbitrated simultaneously
  (traversing 14 hops in a cycle needs 14 parallel arbitrations,
  §III-D) — which the latency-driven savings elsewhere outweigh.
"""

from __future__ import annotations

from typing import Dict

from repro.energy.components import DEFAULT_PARAMS, EnergyParams
from repro.mem import sram

DESIGNS = ("monolithic", "distributed", "nocstar")


def message_energy_pj(
    design: str,
    hops: int,
    num_cores: int = 32,
    slice_entries: int = 1024,
    nocstar_slice_entries: int = 920,
    params: EnergyParams = DEFAULT_PARAMS,
) -> Dict[str, float]:
    """Energy breakdown (pJ) of one shared-L2 access over ``hops`` hops."""
    if hops < 0:
        raise ValueError("hop count cannot be negative")
    if design == "monolithic":
        breakdown = {
            "sram": sram.read_energy_pj(slice_entries * num_cores),
            "link": params.link_hop_pj * hops,
            "switch": params.router_hop_pj * hops,
            "control": 0.0,
        }
    elif design == "distributed":
        breakdown = {
            "sram": sram.read_energy_pj(slice_entries),
            "link": params.link_hop_pj * hops,
            "switch": params.router_hop_pj * hops,
            "control": 0.0,
        }
    elif design == "nocstar":
        breakdown = {
            "sram": sram.read_energy_pj(nocstar_slice_entries),
            "link": params.link_hop_pj * hops,
            "switch": params.nocstar_switch_hop_pj * hops,
            "control": params.control_request_pj * hops,
        }
    else:
        raise ValueError(f"unknown design: {design}")
    breakdown["total"] = sum(breakdown.values())
    return breakdown
