"""Per-event energy and per-component power/area constants.

Seeded with the paper's post-synthesis numbers (Fig 9, 28nm TSMC at
2 GHz): per-tile switch 0.43 mW / 0.0022 mm^2, four link arbiters
2.39 mW / 0.0038 mm^2, slice SRAM 10.91 mW / 0.4646 mm^2.  Dynamic
per-event energies are calibrated so the Fig 11(b) breakdown
(link / switch / control / SRAM) reproduces the paper's ordering:
monolithic is dominated by its large SRAM, a buffered multi-hop router
costs several times a latchless NOCSTAR mux, and NOCSTAR pays a small
control premium for its parallel arbitration requests.

Energy of the page-walk path follows the paper's observation that
"the energy spent accessing hardware caches for page table walks is
orders of magnitude more expensive than the energy spent on TLB
accesses" — LLC and DRAM references dominate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

#: 2 GHz clock: 0.5 ns per cycle, so 1 mW of leakage costs 0.5 pJ/cycle.
CLOCK_GHZ = 2.0
PJ_PER_MW_CYCLE = 1.0 / CLOCK_GHZ

#: Fig 9 per-tile numbers.
SWITCH_POWER_MW = 0.43
SWITCH_AREA_MM2 = 0.0022
ARBITERS_POWER_MW = 2.39
ARBITERS_AREA_MM2 = 0.0038
SRAM_SLICE_POWER_MW = 10.91
SRAM_SLICE_AREA_MM2 = 0.4646


@dataclass(frozen=True)
class EnergyParams:
    """Dynamic energy per event, picojoules."""

    #: Repeated wire, one mesh hop of distance.
    link_hop_pj: float = 1.5
    #: Buffered router traversal (mesh / SMART / distributed baseline).
    router_hop_pj: float = 2.5
    #: Latchless NOCSTAR mux-switch pass-through.
    nocstar_switch_hop_pj: float = 0.6
    #: One request+grant at one link arbiter.
    control_request_pj: float = 0.3
    #: L1 TLB probe (tiny array).
    l1_tlb_pj: float = 1.0
    #: Page-walk-cache probe.
    pwc_pj: float = 2.0
    #: Walk references by the level that served them.  Data-cache and
    #: DRAM references are orders of magnitude above a TLB probe (§V:
    #: "the energy spent accessing hardware caches for page table walks
    #: is orders of magnitude more expensive than the energy spent on
    #: TLB accesses") — an LLC reference runs ~1 nJ-class and a DRAM
    #: access ~15 nJ on server parts, which is why eliminating walks
    #: dominates the translation energy budget (Fig 14 right).
    cache_pj: Dict[str, float] = field(
        default_factory=lambda: {
            "l1": 20.0,
            "l2": 60.0,
            "llc": 800.0,
            "dram": 15_000.0,
            "pwc": 2.0,
            "fixed": 800.0,  # fixed-latency walks: an LLC-class ref
        }
    )
    #: Energy of one page walk at the paper's 2TB footprints, where the
    #: multi-GB page table keeps leaf PTEs out of the cache hierarchy:
    #: ~0.7 DRAM-class + 0.3 LLC-class for the leaf, plus upper levels.
    #: Used for run-level accounting (Fig 14 right) so that walk
    #: *elimination* carries the energy weight the paper reports; our
    #: scaled-down footprints would otherwise make the surviving cold
    #: walks dominate and hide the savings (see DESIGN.md).
    big_footprint_walk_pj: float = 11_000.0


DEFAULT_PARAMS = EnergyParams()
