"""Address-translation energy accounting (McPAT-style event counting).

The simulator reports every translation-path event here; at the end of
a run :meth:`EnergyModel.breakdown` holds the dynamic + static energy
breakdown used by Fig 14 (percent of translation energy saved vs the
private-L2 baseline) and Fig 11(b) (per-message energy vs hops).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.energy.components import (
    DEFAULT_PARAMS,
    EnergyParams,
    PJ_PER_MW_CYCLE,
)
from repro.mem import sram


@dataclass
class EnergyBreakdown:
    """Dynamic energy by component plus leakage, picojoules."""

    sram_pj: float = 0.0
    link_pj: float = 0.0
    switch_pj: float = 0.0
    control_pj: float = 0.0
    walk_pj: float = 0.0
    static_pj: float = 0.0

    @property
    def total_pj(self) -> float:
        return (
            self.sram_pj
            + self.link_pj
            + self.switch_pj
            + self.control_pj
            + self.walk_pj
            + self.static_pj
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "sram": self.sram_pj,
            "link": self.link_pj,
            "switch": self.switch_pj,
            "control": self.control_pj,
            "walk": self.walk_pj,
            "static": self.static_pj,
            "total": self.total_pj,
        }


class EnergyModel:
    """Accumulates translation-path energy for one simulation run."""

    def __init__(
        self,
        params: EnergyParams = DEFAULT_PARAMS,
        static_power_mw: float = 0.0,
    ) -> None:
        self.params = params
        self.static_power_mw = static_power_mw
        self.breakdown = EnergyBreakdown()

    # -- TLB arrays -----------------------------------------------------

    def l1_lookup(self, count: int = 1) -> None:
        self.breakdown.sram_pj += self.params.l1_tlb_pj * count

    def l2_lookup(self, entries: int, count: int = 1) -> None:
        self.breakdown.sram_pj += sram.read_energy_pj(entries) * count

    # -- Interconnect ----------------------------------------------------

    def mesh_hops(self, hops: int) -> None:
        """Mesh/SMART hops: repeated wire + buffered router per hop."""
        self.breakdown.link_pj += self.params.link_hop_pj * hops
        self.breakdown.switch_pj += self.params.router_hop_pj * hops

    def nocstar_hops(self, hops: int) -> None:
        """NOCSTAR hops: same wire, but a latchless mux per hop."""
        self.breakdown.link_pj += self.params.link_hop_pj * hops
        self.breakdown.switch_pj += self.params.nocstar_switch_hop_pj * hops

    def control(self, arbiter_requests: int) -> None:
        self.breakdown.control_pj += (
            self.params.control_request_pj * arbiter_requests
        )

    # -- Page walks -------------------------------------------------------

    def walk_levels(self, levels) -> None:
        cache_pj = self.params.cache_pj
        for level in levels:
            self.breakdown.walk_pj += cache_pj[level]

    # -- Leakage ----------------------------------------------------------

    def finalize(self, cycles: int) -> None:
        self.breakdown.static_pj += (
            self.static_power_mw * PJ_PER_MW_CYCLE * cycles
        )

    @property
    def total_pj(self) -> float:
        return self.breakdown.total_pj


def percent_energy_saved(baseline_pj: float, config_pj: float) -> float:
    """Fig 14 right: percent of translation energy saved vs baseline."""
    if baseline_pj <= 0:
        raise ValueError("baseline energy must be positive")
    return 100.0 * (1.0 - config_pj / baseline_pj)
