"""Shared last-level TLB structures: monolithic banked and distributed.

Both organisations hold the same logical content — one copy of every
translation, hashed to a bank/slice by low-order page-number bits
(§III-A) — but differ physically:

* :class:`MonolithicSharedTlb` is one large structure at a fixed chip
  location, split into a few banks (Fig 1c; the paper settles on 4
  banks for 16/32 cores, 8 for 64).  Its lookup latency is that of the
  large SRAM array.
* :class:`DistributedSharedTlb` is an array of per-tile slices (Fig 1d),
  each the size of (or, for NOCSTAR's area-normalised configuration,
  slightly smaller than) a private L2 TLB, so each lookup is fast; the
  cost moves into the interconnect, which the simulator layer models.

Port contention (2R/1W, pipelined — one access can start per cycle per
port, §IV) is tracked here via per-bank/slice reservation state.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.indexing import IndexFn, modulo_index
from repro.mem import sram
from repro.tlb.set_assoc import Key, SetAssociativeTLB
from repro.vm.address import PAGE_1G, translation_vpn

#: Extra cycles for the bank-select mux / H-tree of a banked monolith.
BANK_MUX_CYCLES = 2


#: Arbitration modes for the per-bank/slice ports.
FIFO = "fifo"
PRIORITY = "priority"

#: Service classes under priority arbitration (lower wins): shootdown
#: invalidations preempt demand walks/fills, which preempt prefetches.
SHOOTDOWN_CLASS = 0
WALK_CLASS = 1
PREFETCH_CLASS = 2


class _PortSet:
    """Pipelined access ports: one new access per port per cycle.

    Occupancy is tracked per cycle (not as a busy-until watermark) so
    the engine's bounded out-of-order reservations only conflict when
    two accesses genuinely claim the same cycle — see the reservation
    note in :mod:`repro.core.nocstar`.

    Under ``priority`` arbitration, a contended reservation of service
    class ``klass > 0`` yields ``klass`` extra cycles to whatever beat
    it and re-arbitrates from there (shootdown > walk > prefetch, per
    the priority-traffic-classes model in PAPERS.md).  Class-0 traffic
    and every uncontended access follow the FIFO arithmetic exactly, so
    ``fifo`` mode — and every class-0 reservation — is byte-identical
    to the historical behaviour.
    """

    def __init__(self, num_ports: int, priority: bool = False) -> None:
        self.num_ports = num_ports
        self.priority = priority
        self._starts: Dict[int, int] = {}  # cycle -> accesses started
        self.conflict_cycles = 0

    def reserve(self, now: int, klass: int = 0) -> int:
        """Return the cycle the access can start (>= now)."""
        start = now
        starts = self._starts
        while starts.get(start, 0) >= self.num_ports:
            start += 1
        if klass and self.priority and start > now:
            # Lower-priority traffic lost the arbitration: pay the
            # class penalty, then take the next genuinely free cycle.
            start += klass
            while starts.get(start, 0) >= self.num_ports:
                start += 1
        starts[start] = starts.get(start, 0) + 1
        self.conflict_cycles += start - now
        return start

    def reserve_many(self, now: int, count: int, klass: int = 0) -> int:
        """Back-to-back accesses (invalidation sweeps); returns last cycle."""
        last = now
        for _ in range(count):
            last = self.reserve(last, klass)
        return last


class _ShardedTlb:
    """Common machinery: N arrays selected by low page-number bits."""

    def __init__(
        self,
        total_entries: int,
        ways: int,
        num_shards: int,
        name: str,
        read_ports: int = 2,
        write_ports: int = 1,
        indexer: IndexFn = modulo_index,
        policy: str = "lru",
        arbitration: str = FIFO,
    ) -> None:
        if total_entries % num_shards:
            raise ValueError("entries must divide evenly across shards")
        if arbitration not in (FIFO, PRIORITY):
            raise ValueError(f"unknown arbitration mode: {arbitration!r}")
        self.num_shards = num_shards
        self._indexer = indexer
        self.policy = policy
        self.arbitration = arbitration
        self.entries_per_shard = total_entries // num_shards
        shift = max(num_shards - 1, 0).bit_length()  # log2 for power of two
        self.shards: List[SetAssociativeTLB] = [
            SetAssociativeTLB(
                self.entries_per_shard, ways, f"{name}[{i}]",
                index_shift=shift, policy=policy, lazy_sets=True,
            )
            for i in range(num_shards)
        ]
        prio = arbitration == PRIORITY
        self.read_ports = [
            _PortSet(read_ports, priority=prio) for _ in range(num_shards)
        ]
        self.write_ports = [
            _PortSet(write_ports, priority=prio) for _ in range(num_shards)
        ]

    def home(self, page_number: int, asid: int = 0) -> int:
        """Shard holding a translation (configurable indexing, §III-A)."""
        return self._indexer(asid, page_number, self.num_shards)

    @staticmethod
    def caches(page_size: int) -> bool:
        return page_size != PAGE_1G

    def lookup(self, asid: int, vpn: int, page_size: int) -> Tuple[bool, int]:
        """Probe; returns (hit, shard index)."""
        page_number = translation_vpn(vpn, page_size)
        shard = self.home(page_number, asid)
        if not self.caches(page_size):
            self.shards[shard].misses += 1
            return False, shard
        return self.shards[shard].lookup(asid, page_size, page_number), shard

    def insert(self, asid: int, vpn: int, page_size: int) -> Optional[Key]:
        if not self.caches(page_size):
            return None
        page_number = translation_vpn(vpn, page_size)
        return self.shards[self.home(page_number, asid)].insert(
            asid, page_size, page_number
        )

    def insert_page_number(
        self, asid: int, page_size: int, page_number: int
    ) -> Optional[Key]:
        """Insert by size-granular page number (prefetch path)."""
        if not self.caches(page_size):
            return None
        return self.shards[self.home(page_number, asid)].insert(
            asid, page_size, page_number
        )

    def lookup_page_number(
        self,
        asid: int,
        page_size: int,
        page_number: int,
        shard: Optional[int] = None,
    ) -> bool:
        """Probe by size-granular page number (simulator fast path)."""
        if shard is None:
            shard = self.home(page_number, asid)
        if not self.caches(page_size):
            self.shards[shard].misses += 1
            return False
        return self.shards[shard].lookup(asid, page_size, page_number)

    def probe_page_number(
        self, asid: int, page_size: int, page_number: int
    ) -> bool:
        """Presence check without LRU/counter side effects."""
        if not self.caches(page_size):
            return False
        return self.shards[self.home(page_number, asid)].probe(
            asid, page_size, page_number
        )

    def invalidate(self, asid: int, page_size: int, page_number: int) -> bool:
        return self.shards[self.home(page_number, asid)].invalidate(
            asid, page_size, page_number
        )

    def reserve_read(self, shard: int, now: int, klass: int = 0) -> int:
        return self.read_ports[shard].reserve(now, klass)

    def reserve_write(self, shard: int, now: int, klass: int = 0) -> int:
        return self.write_ports[shard].reserve(now, klass)

    def flush(self) -> int:
        return sum(shard.flush() for shard in self.shards)

    @property
    def hits(self) -> int:
        return sum(shard.hits for shard in self.shards)

    @property
    def misses(self) -> int:
        return sum(shard.misses for shard in self.shards)

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def total_entries(self) -> int:
        return self.entries_per_shard * self.num_shards


class MonolithicSharedTlb(_ShardedTlb):
    """Fig 1c: one big banked structure at a fixed location.

    Banking buys port bandwidth (one access per bank per cycle), not
    latency: the global wordline/H-tree of the large structure still
    dominates, so lookup latency follows the *total* capacity (the
    paper's 32x structure takes ~16 cycles even with zero-latency
    interconnect, Fig 4) plus the bank-select mux.
    """

    #: Extra cycles per direction to get on/off the monolithic macro:
    #: the structure sits at one end of the chip beyond the mesh edge
    #: (§II-C), and its request/response must cross the global H-tree
    #: feeding a multi-bank macro the size of tens of private TLBs.
    INGRESS_CYCLES = 8

    def __init__(
        self,
        total_entries: int,
        num_banks: int = 4,
        ways: int = 8,
        indexer: IndexFn = modulo_index,
        policy: str = "lru",
        arbitration: str = FIFO,
    ) -> None:
        super().__init__(total_entries, ways, num_banks, "mono-bank",
                         indexer=indexer, policy=policy,
                         arbitration=arbitration)
        self.lookup_cycles = sram.lookup_cycles(total_entries) + 1

    @staticmethod
    def banks_for(num_cores: int) -> int:
        """The paper's best-performing banking: 4 banks at 16/32 cores, 8 at 64+.

        Beyond the paper's 64-core ceiling the banking keeps scaling at
        the same cores-per-bank ratio (one bank per 8 cores, capped at
        32) so mega-mesh monolithic configs don't serialise a thousand
        cores behind 8 ports.  Counts at <=64 cores are untouched.
        """
        if num_cores >= 256:
            return min(32, num_cores // 8)
        return 8 if num_cores >= 64 else 4


class DistributedSharedTlb(_ShardedTlb):
    """Fig 1d: one slice per tile; slice lookup is a small-array access."""

    def __init__(
        self,
        num_slices: int,
        entries_per_slice: int = 1024,
        ways: int = 8,
        indexer: IndexFn = modulo_index,
        policy: str = "lru",
        arbitration: str = FIFO,
    ) -> None:
        super().__init__(
            entries_per_slice * num_slices, ways, num_slices, "slice",
            indexer=indexer, policy=policy, arbitration=arbitration,
        )
        self.lookup_cycles = sram.lookup_cycles(entries_per_slice)
