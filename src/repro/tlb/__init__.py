"""TLB structures: arrays, L1 groups, private/shared L2s, prefetch, shootdown."""

from repro.tlb.l1 import L1Tlb, L1TlbConfig
from repro.tlb.l2_private import L2TlbConfig, PrivateL2Tlb
from repro.tlb.l2_shared import DistributedSharedTlb, MonolithicSharedTlb
from repro.tlb.opt import PolicyEval, offline_policy_eval, pct_of_opt
from repro.tlb.policies import (
    POLICY_NAMES,
    ReplacementPolicy,
    make_policy,
)
from repro.tlb.prefetch import SequentialPrefetcher
from repro.tlb.set_assoc import SetAssociativeTLB
from repro.tlb.shootdown import (
    InvalidationController,
    ShootdownMessage,
    ShootdownPlan,
)
from repro.tlb.stats import TlbStats

__all__ = [
    "L1Tlb",
    "L1TlbConfig",
    "L2TlbConfig",
    "PrivateL2Tlb",
    "DistributedSharedTlb",
    "MonolithicSharedTlb",
    "POLICY_NAMES",
    "PolicyEval",
    "ReplacementPolicy",
    "make_policy",
    "offline_policy_eval",
    "pct_of_opt",
    "SequentialPrefetcher",
    "SetAssociativeTLB",
    "InvalidationController",
    "ShootdownMessage",
    "ShootdownPlan",
    "TlbStats",
]
