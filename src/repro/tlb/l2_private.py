"""Per-core private L2 TLB — the paper's baseline (§IV).

Haswell private L2 TLBs: 1024 entries, 8-way associative, holding 4KB
and 2MB translations concurrently, 9-cycle lookup (post-synthesis SRAM
and Intel manuals agree).  1GB translations are not cached at L2 and
miss straight to the page-table walker, as on real Haswell.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mem import sram
from repro.tlb.set_assoc import SetAssociativeTLB
from repro.vm.address import PAGE_1G, translation_vpn


@dataclass(frozen=True)
class L2TlbConfig:
    """Size/associativity of one private L2 TLB (or one shared slice)."""

    entries: int = 1024
    ways: int = 8
    #: Replacement policy (repro.tlb.policies registry name).
    policy: str = "lru"

    @property
    def lookup_cycles(self) -> int:
        return sram.lookup_cycles(self.entries)


class PrivateL2Tlb:
    """One core's private L2 TLB."""

    def __init__(self, config: L2TlbConfig = L2TlbConfig()) -> None:
        self.config = config
        self.array = SetAssociativeTLB(
            config.entries, config.ways, "l2-private", policy=config.policy
        )
        self.lookup_cycles = config.lookup_cycles

    @staticmethod
    def caches(page_size: int) -> bool:
        """Whether this level holds translations of ``page_size``."""
        return page_size != PAGE_1G

    def lookup(self, asid: int, vpn: int, page_size: int) -> bool:
        if not self.caches(page_size):
            self.array.misses += 1
            return False
        return self.array.lookup(asid, page_size, translation_vpn(vpn, page_size))

    def insert(self, asid: int, vpn: int, page_size: int) -> None:
        if self.caches(page_size):
            self.array.insert(asid, page_size, translation_vpn(vpn, page_size))

    def lookup_page_number(
        self, asid: int, page_size: int, page_number: int
    ) -> bool:
        """Probe by size-granular page number (simulator fast path)."""
        if not self.caches(page_size):
            self.array.misses += 1
            return False
        return self.array.lookup(asid, page_size, page_number)

    def insert_page_number(
        self, asid: int, page_size: int, page_number: int
    ) -> None:
        if self.caches(page_size):
            self.array.insert(asid, page_size, page_number)

    def invalidate(self, asid: int, page_size: int, page_number: int) -> bool:
        return self.array.invalidate(asid, page_size, page_number)

    def flush(self) -> int:
        return self.array.flush()

    @property
    def hits(self) -> int:
        return self.array.hits

    @property
    def misses(self) -> int:
        return self.array.misses

    @property
    def accesses(self) -> int:
        return self.array.hits + self.array.misses
