"""Per-core L1 TLBs, split by page size as on Intel Haswell (§IV).

Haswell keeps separate single-cycle L1 TLBs per page size: 64-entry
4-way for 4KB pages, 32-entry 4-way for 2MB pages, and a 4-entry array
for 1GB pages, all accessed in parallel with the VIPT L1 cache.  The
simulator knows the backing page size of each reference (the lookups
happen in parallel in hardware), so it probes the matching array.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.tlb.set_assoc import SetAssociativeTLB
from repro.vm.address import PAGE_1G, PAGE_2M, PAGE_4K, translation_vpn


@dataclass(frozen=True)
class L1TlbConfig:
    """Entry counts / associativity of the per-page-size L1 arrays."""

    entries_4k: int = 64
    ways_4k: int = 4
    entries_2m: int = 32
    ways_2m: int = 4
    entries_1g: int = 4
    ways_1g: int = 4
    lookup_cycles: int = 1

    def scaled(self, factor: float) -> "L1TlbConfig":
        """Scale L1 capacities (Fig 6's 0.5x / 1.5x L1 sweeps)."""

        def scale(entries: int, ways: int) -> int:
            return max(ways, int(round(entries * factor / ways)) * ways)

        return L1TlbConfig(
            entries_4k=scale(self.entries_4k, self.ways_4k),
            ways_4k=self.ways_4k,
            entries_2m=scale(self.entries_2m, self.ways_2m),
            ways_2m=self.ways_2m,
            entries_1g=scale(self.entries_1g, self.ways_1g),
            ways_1g=self.ways_1g,
            lookup_cycles=self.lookup_cycles,
        )


class L1Tlb:
    """The three per-page-size L1 arrays of one core."""

    def __init__(self, config: L1TlbConfig = L1TlbConfig()) -> None:
        self.config = config
        # Lazy sets: a 1024-tile system builds 3072 L1 arrays, most of
        # whose sets a short trace never touches; the engine's compile
        # fast path materialises on demand.
        self._arrays: Dict[int, SetAssociativeTLB] = {
            PAGE_4K: SetAssociativeTLB(
                config.entries_4k, config.ways_4k, "l1-4k", lazy_sets=True
            ),
            PAGE_2M: SetAssociativeTLB(
                config.entries_2m, config.ways_2m, "l1-2m", lazy_sets=True
            ),
            PAGE_1G: SetAssociativeTLB(
                config.entries_1g, min(config.ways_1g, config.entries_1g),
                "l1-1g", lazy_sets=True,
            ),
        }

    def array(self, page_size: int) -> SetAssociativeTLB:
        return self._arrays[page_size]

    def lookup(self, asid: int, vpn: int, page_size: int) -> bool:
        """Probe the matching array with the size-granular page number."""
        return self._arrays[page_size].lookup(
            asid, page_size, translation_vpn(vpn, page_size)
        )

    def insert(self, asid: int, vpn: int, page_size: int) -> None:
        self._arrays[page_size].insert(
            asid, page_size, translation_vpn(vpn, page_size)
        )

    def invalidate(self, asid: int, page_size: int, page_number: int) -> bool:
        return self._arrays[page_size].invalidate(asid, page_size, page_number)

    def flush(self) -> int:
        return sum(array.flush() for array in self._arrays.values())

    @property
    def hits(self) -> int:
        return sum(array.hits for array in self._arrays.values())

    @property
    def misses(self) -> int:
        return sum(array.misses for array in self._arrays.values())

    @property
    def accesses(self) -> int:
        return self.hits + self.misses
