"""Offline replacement-policy evaluation with a Belady (OPT) bound.

This module never runs inside the DES hot path.  It replays a
workload's *canonical offline stream* against the L2 structure geometry
of a :class:`~repro.sim.configs.SystemConfig` — same sharding, same set
indexing, same ``(asid, page_size, page_number)`` keys — under each
online policy from :mod:`repro.tlb.policies` and under Belady's OPT,
and reports per-slice and total hit rates.  The campaign layer turns
those into the ``%-of-OPT`` column.

Canonical stream
----------------
The offline order is the engine's statically deterministic interleave:
each core's SMT streams are merged round-robin (the
``_CoreState.next_record`` order the batched engine materialises in
``_merged_stream``), then one record is taken per core per round across
cores.  It is *an* order, not *the* timing-dependent DES order — what
matters for the bound is that OPT and every online policy replay the
**same** sequence, which is what makes per-slice dominance
(hit-rate(OPT) >= hit-rate(policy)) hold by construction.

The replay models the L2 structure in isolation (no L1 filtering, no
QoS quota): every record is one structure access.  Online policies run
through the production :class:`~repro.tlb.set_assoc.SetAssociativeTLB`
code path (install on miss); OPT runs a mandatory-install Belady
replay, which is optimal among install-on-miss policies — exactly the
class every shipped online policy belongs to.

OPT computation and cost
------------------------
Next-use distances come from one vectorised numpy pass (stable argsort
over key ids; O(n log n) for an n-record stream).  The Belady replay
itself keeps, per (shard, set), a resident map plus a lazy max-heap of
``(-next_use, key)`` entries: stale heap entries are skipped when their
recorded next-use no longer matches the resident's.  Total cost is
O(n log n) time and O(n) memory — minutes of trace replay at campaign
scale, never per-cycle work.

1GB-page records mirror the structures' ``caches()`` predicate: they
count as accesses and misses for every policy (OPT included) and are
never installed.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.indexing import IndexFn, get_indexer
from repro.tlb.policies import POLICY_NAMES
from repro.tlb.set_assoc import SetAssociativeTLB
from repro.vm.address import PAGE_1G

#: Name of the offline bound in evaluation results.
OPT = "opt"

#: One canonical-stream record: (core, asid, page_size, page_number).
Access = Tuple[int, int, int, int]


def canonical_stream(workload) -> List[Access]:
    """The workload's canonical offline order (see module docstring)."""
    merged: List[List] = []
    for streams in workload.traces:
        if len(streams) == 1:
            merged.append(streams[0])
            continue
        positions = [0] * len(streams)
        rr = 0
        out: List = []
        remaining = sum(len(s) for s in streams)
        while remaining:
            s = rr % len(streams)
            rr += 1
            pos = positions[s]
            if pos < len(streams[s]):
                positions[s] = pos + 1
                out.append(streams[s][pos])
                remaining -= 1
        merged.append(out)

    stream: List[Access] = []
    positions = [0] * len(merged)
    remaining = sum(len(m) for m in merged)
    while remaining:
        for core, records in enumerate(merged):
            pos = positions[core]
            if pos < len(records):
                positions[core] = pos + 1
                _, asid, size, page_number = records[pos]
                stream.append((core, asid, size, page_number))
                remaining -= 1
    return stream


@dataclass(frozen=True)
class StructureSpec:
    """L2 geometry extracted from a :class:`SystemConfig`."""

    num_shards: int
    entries_per_shard: int
    ways: int
    index_shift: int
    indexer: IndexFn
    #: Private scheme: the home shard is the requesting core, not a hash.
    private: bool

    @property
    def num_sets(self) -> int:
        return self.entries_per_shard // self.ways

    def home(self, core: int, asid: int, page_number: int) -> int:
        if self.private:
            return core
        return self.indexer(asid, page_number, self.num_shards)


def structure_for(config) -> StructureSpec:
    """The offline structure geometry of a configuration.

    Mirrors :class:`~repro.sim.system.System`'s L2 construction:
    private L2s become per-core shards, a monolithic structure becomes
    its banks, distributed/NOCSTAR/ideal become per-core slices —
    each with the sharded structures' ``log2(shards)`` index shift.
    """
    n = config.num_cores
    indexer = get_indexer(config.slice_indexing)
    if config.scheme == "private":
        return StructureSpec(
            num_shards=n,
            entries_per_shard=config.entries_per_core,
            ways=config.l2_ways,
            index_shift=0,
            indexer=indexer,
            private=True,
        )
    if config.scheme == "monolithic":
        from repro.tlb.l2_shared import MonolithicSharedTlb

        banks = config.monolithic_banks or MonolithicSharedTlb.banks_for(n)
        return StructureSpec(
            num_shards=banks,
            entries_per_shard=config.entries_per_core * n // banks,
            ways=config.l2_ways,
            index_shift=max(banks - 1, 0).bit_length(),
            indexer=indexer,
            private=False,
        )
    return StructureSpec(
        num_shards=n,
        entries_per_shard=config.entries_per_core,
        ways=config.l2_ways,
        index_shift=max(n - 1, 0).bit_length(),
        indexer=indexer,
        private=False,
    )


@dataclass(frozen=True)
class PolicyEval:
    """Replay outcome of one policy over one (workload, structure)."""

    policy: str
    hits: int
    accesses: int
    slice_hits: Tuple[int, ...]
    slice_accesses: Tuple[int, ...]

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def slice_hit_rate(self, shard: int) -> float:
        accesses = self.slice_accesses[shard]
        return self.slice_hits[shard] / accesses if accesses else 0.0


class _PreparedStream:
    """Canonical stream resolved against one structure geometry."""

    __slots__ = ("spec", "records", "next_use")

    def __init__(self, workload, spec: StructureSpec) -> None:
        self.spec = spec
        stream = canonical_stream(workload)
        num_sets = spec.num_sets
        shift = spec.index_shift
        #: (shard, slot, key, cacheable) per canonical position.
        records: List[Tuple[int, int, Tuple[int, int, int], bool]] = []
        ids = np.empty(len(stream), dtype=np.int64)
        # Next-use identity is (slot, key), not key alone: under the
        # private scheme one translation lives independently in several
        # per-core shards, and a reuse in another shard must not make
        # this shard's OPT retain the entry.
        id_of: Dict[Tuple[int, Tuple[int, int, int]], int] = {}
        for i, (core, asid, size, page_number) in enumerate(stream):
            key = (asid, size, page_number)
            shard = spec.home(core, asid, page_number)
            slot = shard * num_sets + (page_number >> shift) % num_sets
            records.append((shard, slot, key, size != PAGE_1G))
            ids[i] = id_of.setdefault((slot, key), len(id_of))
        self.records = records
        self.next_use = _next_use(ids)


def _next_use(ids: np.ndarray) -> np.ndarray:
    """Position of each key's next occurrence; ``n`` when never again."""
    n = len(ids)
    nxt = np.full(n, n, dtype=np.int64)
    if n > 1:
        order = np.argsort(ids, kind="stable")
        same = ids[order[:-1]] == ids[order[1:]]
        nxt[order[:-1][same]] = order[1:][same]
    return nxt


def _replay_online(prepared: _PreparedStream, policy: str) -> PolicyEval:
    """Replay through the production set-associative array code path."""
    spec = prepared.spec
    shards = [
        SetAssociativeTLB(
            spec.entries_per_shard, spec.ways, f"offline[{i}]",
            index_shift=spec.index_shift, policy=policy,
        )
        for i in range(spec.num_shards)
    ]
    hits = [0] * spec.num_shards
    accesses = [0] * spec.num_shards
    for shard, _slot, key, cacheable in prepared.records:
        accesses[shard] += 1
        if not cacheable:
            continue
        asid, size, page_number = key
        if shards[shard].lookup(asid, size, page_number):
            hits[shard] += 1
        else:
            shards[shard].insert(asid, size, page_number)
    return PolicyEval(
        policy=policy,
        hits=sum(hits),
        accesses=sum(accesses),
        slice_hits=tuple(hits),
        slice_accesses=tuple(accesses),
    )


def _replay_opt(prepared: _PreparedStream) -> PolicyEval:
    """Mandatory-install Belady replay (lazy max-heap eviction)."""
    spec = prepared.spec
    num_slots = spec.num_shards * spec.num_sets
    residents: List[Dict[Tuple[int, int, int], int]] = [
        {} for _ in range(num_slots)
    ]
    heaps: List[List[Tuple[int, Tuple[int, int, int]]]] = [
        [] for _ in range(num_slots)
    ]
    ways = spec.ways
    hits = [0] * spec.num_shards
    accesses = [0] * spec.num_shards
    next_use = prepared.next_use
    for i, (shard, slot, key, cacheable) in enumerate(prepared.records):
        accesses[shard] += 1
        if not cacheable:
            continue
        res = residents[slot]
        nxt = int(next_use[i])
        if key in res:
            hits[shard] += 1
        elif len(res) >= ways:
            heap = heaps[slot]
            while True:
                neg, victim = heappop(heap)
                if res.get(victim) == -neg:
                    del res[victim]
                    break
        res[key] = nxt
        heappush(heaps[slot], (-nxt, key))
    return PolicyEval(
        policy=OPT,
        hits=sum(hits),
        accesses=sum(accesses),
        slice_hits=tuple(hits),
        slice_accesses=tuple(accesses),
    )


def offline_policy_eval(
    workload,
    config,
    policies: Sequence[str] = POLICY_NAMES,
) -> Dict[str, PolicyEval]:
    """Replay ``workload`` offline under each policy plus OPT.

    Returns ``{policy_name: PolicyEval, ..., "opt": PolicyEval}``; every
    evaluation shares one canonical stream and one structure geometry,
    so OPT's per-slice hit rate upper-bounds each online policy's.
    """
    prepared = _PreparedStream(workload, structure_for(config))
    results = {
        policy: _replay_online(prepared, policy) for policy in policies
    }
    results[OPT] = _replay_opt(prepared)
    return results


def pct_of_opt(results: Dict[str, PolicyEval], policy: str) -> float:
    """Hit-rate of ``policy`` as a percentage of the OPT bound."""
    opt_rate = results[OPT].hit_rate
    if opt_rate == 0.0:
        return 100.0
    return 100.0 * results[policy].hit_rate / opt_rate
