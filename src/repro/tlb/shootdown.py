"""TLB shootdown routing with invalidation leaders (§III-G, Fig 16R).

When the OS modifies a page-table entry it IPIs every core; each core
invalidates its private L1 TLB, and the stale shared-L2 translation
must also be invalidated.  If every core relays its own invalidation
to the home slice, a popular translation produces a burst of redundant
messages converging on one slice.  NOCSTAR instead designates
*invalidation leaders*: cores forward the request to their leader, and
only leaders talk to the slices.

This module plans the message flows for a given leader granularity;
the simulator charges network and slice-port time for each message.
Leader granularities mirror Fig 16R: ``per-4-core``, ``per-8-core``,
and ``per-N-core`` (one leader for the whole chip).  Granularity 1
degenerates to the naive every-core-relays policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple


@dataclass(frozen=True)
class ShootdownMessage:
    """One interconnect message of a shootdown: relay or slice invalidate."""

    src: int
    dst: int
    kind: str  # "relay" (core -> leader) or "invalidate" (leader -> slice)


@dataclass(frozen=True)
class ShootdownPlan:
    """All messages of one shootdown plus local L1 work per core."""

    messages: Tuple[ShootdownMessage, ...]
    l1_invalidations: int


class InvalidationController:
    """Plans shootdown traffic for a leader granularity.

    ``cores_per_leader`` of 1 means every core sends its own invalidate
    to the slice (the naive policy); ``num_cores`` means one single
    leader for the whole chip.
    """

    def __init__(self, num_cores: int, cores_per_leader: int) -> None:
        if cores_per_leader < 1 or cores_per_leader > num_cores:
            raise ValueError("cores_per_leader must be in [1, num_cores]")
        self.num_cores = num_cores
        self.cores_per_leader = cores_per_leader
        self.shootdowns = 0
        self.messages_sent = 0

    def leader_of(self, core: int) -> int:
        """The designated leader core for ``core``'s group."""
        return (core // self.cores_per_leader) * self.cores_per_leader

    @property
    def leaders(self) -> List[int]:
        return list(range(0, self.num_cores, self.cores_per_leader))

    def plan(
        self, initiator: int, home_slices: Sequence[int]
    ) -> ShootdownPlan:
        """Plan one shootdown touching the given home slices.

        Every core receives the IPI and invalidates its L1 locally.
        With leaders, the initiating core relays to its leader (unless
        it *is* one), and the leader sends one invalidate per slice.
        Without leaders (granularity 1), every core that received the
        IPI independently relays to each slice — the congesting case.
        """
        self.shootdowns += 1
        messages: List[ShootdownMessage] = []
        if self.cores_per_leader == 1:
            for core in range(self.num_cores):
                for home in home_slices:
                    messages.append(ShootdownMessage(core, home, "invalidate"))
        else:
            leader = self.leader_of(initiator)
            if initiator != leader:
                messages.append(ShootdownMessage(initiator, leader, "relay"))
            for home in home_slices:
                messages.append(ShootdownMessage(leader, home, "invalidate"))
        self.messages_sent += len(messages)
        return ShootdownPlan(
            messages=tuple(messages), l1_invalidations=self.num_cores
        )
