"""Sequential TLB prefetching (Table III sensitivity).

The original shared-TLB paper studied prefetching the translations of
the +/-1, 2, 3 virtual pages adjacent to the page that missed; the
NOCSTAR paper re-runs that study (Table III) and finds +/-2 most
effective, with more aggressive distances polluting the TLB.  The
prefetcher is purely a candidate generator — the simulator decides
where the prefetched translations are installed and what they cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple


@dataclass
class SequentialPrefetcher:
    """Generates +/-d neighbour pages for the configured distances.

    ``distances`` follows Table III's notation: ``(1,)`` is the "1"
    row, ``(1, 2)`` the "1, 2" row, ``(1, 2, 3)`` the "1-3" row.
    """

    distances: Tuple[int, ...] = ()
    issued: int = 0
    useful: int = 0

    def __post_init__(self) -> None:
        if any(d <= 0 for d in self.distances):
            raise ValueError("prefetch distances must be positive")

    @property
    def enabled(self) -> bool:
        return bool(self.distances)

    def candidates(
        self, asid: int, page_size: int, page_number: int
    ) -> List[Tuple[int, int, int]]:
        """Neighbour translations to prefetch after a miss on ``page_number``."""
        out = []
        for distance in self.distances:
            for neighbour in (page_number - distance, page_number + distance):
                if neighbour >= 0:
                    out.append((asid, page_size, neighbour))
        self.issued += len(out)
        return out

    def record_useful(self) -> None:
        """A demand access hit an entry this prefetcher installed."""
        self.useful += 1
