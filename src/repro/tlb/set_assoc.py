"""Set-associative TLB array with LRU replacement and modulo indexing.

Matches the paper's assumptions (§III-E): lower-order virtual page
number bits choose the set (modulo indexing), LRU replacement, and
entries tagged with a context ID (ASID) plus a valid bit.  Entries are
keyed ``(asid, page_size, page_number)`` so 4KB and 2MB translations
can coexist in one array, as in Haswell's unified L2 TLB.

``index_shift`` lets a distributed shared TLB skip the bits already
consumed by slice selection, so consecutive pages spread across both
slices and sets without aliasing.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator, Optional, Tuple

Key = Tuple[int, int, int]  # (asid, page_size, page_number)


class SetAssociativeTLB:
    """One TLB SRAM array."""

    def __init__(
        self,
        entries: int,
        ways: int,
        name: str = "tlb",
        index_shift: int = 0,
    ) -> None:
        if entries <= 0 or ways <= 0:
            raise ValueError("entries and ways must be positive")
        if ways > entries:
            # Degenerate but legal: a fully-associative structure smaller
            # than its nominal way count (e.g. the 4-entry 1GB L1 TLB).
            ways = entries
        if entries % ways:
            raise ValueError(f"{name}: {entries} entries not divisible by {ways} ways")
        self.name = name
        self.entries = entries
        self.ways = ways
        self.num_sets = entries // ways
        self.index_shift = index_shift
        self._sets = [OrderedDict() for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.evictions = 0
        #: QoS way-partitioning (the paper's future-work interference
        #: fix): when set, no ASID may occupy more than this many ways
        #: of any set — its own LRU entry is evicted instead of another
        #: context's.  None disables partitioning.
        self.way_quota: Optional[int] = None

    def _set_for(self, page_number: int) -> OrderedDict:
        return self._sets[(page_number >> self.index_shift) % self.num_sets]

    def lookup(self, asid: int, page_size: int, page_number: int) -> bool:
        """Probe the array; hits refresh LRU state."""
        cache_set = self._set_for(page_number)
        key = (asid, page_size, page_number)
        if key in cache_set:
            cache_set.move_to_end(key)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def probe(self, asid: int, page_size: int, page_number: int) -> bool:
        """Check presence without perturbing LRU state or counters."""
        return (asid, page_size, page_number) in self._set_for(page_number)

    def insert(self, asid: int, page_size: int, page_number: int) -> Optional[Key]:
        """Install a translation; returns the evicted key, if any."""
        cache_set = self._set_for(page_number)
        key = (asid, page_size, page_number)
        evicted = None
        if key not in cache_set:
            quota = self.way_quota
            if quota is not None:
                own = [k for k in cache_set if k[0] == asid]
                if len(own) >= quota:
                    evicted = own[0]  # the ASID's own LRU entry
                    del cache_set[evicted]
                    self.evictions += 1
            if evicted is None and len(cache_set) >= self.ways:
                evicted, _ = cache_set.popitem(last=False)
                self.evictions += 1
        cache_set[key] = None
        cache_set.move_to_end(key)
        self.insertions += 1
        return evicted

    def invalidate(self, asid: int, page_size: int, page_number: int) -> bool:
        """Shoot down one translation; True if it was present."""
        cache_set = self._set_for(page_number)
        key = (asid, page_size, page_number)
        if key in cache_set:
            del cache_set[key]
            return True
        return False

    def invalidate_asid(self, asid: int) -> int:
        """Drop every translation belonging to ``asid`` (context teardown)."""
        dropped = 0
        for cache_set in self._sets:
            stale = [key for key in cache_set if key[0] == asid]
            for key in stale:
                del cache_set[key]
            dropped += len(stale)
        return dropped

    def flush(self) -> int:
        """Drop everything (full-TLB flush on context switch, §V storms)."""
        dropped = self.occupancy
        for cache_set in self._sets:
            cache_set.clear()
        return dropped

    @property
    def occupancy(self) -> int:
        return sum(len(cache_set) for cache_set in self._sets)

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def iter_keys(self) -> Iterator[Key]:
        for cache_set in self._sets:
            yield from cache_set.keys()

    def reset_stats(self) -> None:
        self.hits = self.misses = self.insertions = self.evictions = 0
