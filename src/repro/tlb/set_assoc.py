"""Set-associative TLB array with pluggable replacement, modulo indexed.

Matches the paper's assumptions (§III-E): lower-order virtual page
number bits choose the set (modulo indexing), LRU replacement by
default, and entries tagged with a context ID (ASID) plus a valid bit.
Entries are keyed ``(asid, page_size, page_number)`` so 4KB and 2MB
translations can coexist in one array, as in Haswell's unified L2 TLB.

``index_shift`` lets a distributed shared TLB skip the bits already
consumed by slice selection, so consecutive pages spread across both
slices and sets without aliasing.

``policy`` names the per-set replacement state machine
(:mod:`repro.tlb.policies`): ``lru`` (default, byte-identical to the
historical hardcoded behaviour), ``arc``, or ``twoq``.  The engine's
batched fast path inlines LRU OrderedDict operations on L1 arrays, so
L1 TLBs must stay on the default policy; L2 structures may run any.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from repro.tlb.policies import POLICIES, make_policy

Key = Tuple[int, int, int]  # (asid, page_size, page_number)


class SetAssociativeTLB:
    """One TLB SRAM array."""

    def __init__(
        self,
        entries: int,
        ways: int,
        name: str = "tlb",
        index_shift: int = 0,
        policy: str = "lru",
        lazy_sets: bool = False,
    ) -> None:
        if entries <= 0 or ways <= 0:
            raise ValueError("entries and ways must be positive")
        if ways > entries:
            # Degenerate but legal: a fully-associative structure smaller
            # than its nominal way count (e.g. the 4-entry 1GB L1 TLB).
            ways = entries
        if entries % ways:
            raise ValueError(f"{name}: {entries} entries not divisible by {ways} ways")
        self.name = name
        self.entries = entries
        self.ways = ways
        self.num_sets = entries // ways
        self.index_shift = index_shift
        self.policy = policy
        # Hoist the registry dispatch out of the per-set loop: a
        # 1024-tile system builds ~10^5 sets, and the mega-mesh configs
        # pay this at every System construction.
        state_cls = POLICIES.get(policy)
        if state_cls is None:
            make_policy(policy, ways)  # raises the canonical KeyError
        self._state_cls = state_cls
        # ``lazy_sets`` defers per-set state construction until a set is
        # first indexed.  A fresh policy state observes nothing until
        # touched, so laziness is invisible to replacement behaviour;
        # aggregate views below simply skip unmaterialised sets, and
        # code that indexes ``_sets`` directly treats ``None`` as an
        # empty set.  The mega-mesh L2 slices and L1 arrays (10^5+
        # sets, mostly cold at 1024 tiles) opt in.
        if lazy_sets:
            self._sets = [None] * self.num_sets
        else:
            self._sets = [state_cls(ways) for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.evictions = 0
        #: QoS way-partitioning (the paper's future-work interference
        #: fix): when set, no ASID may occupy more than this many ways
        #: of any set — its own most-evictable entry is evicted instead
        #: of another context's.  None disables partitioning.
        self.way_quota: Optional[int] = None

    def _set_for(self, page_number: int):
        index = (page_number >> self.index_shift) % self.num_sets
        cache_set = self._sets[index]
        if cache_set is None:
            cache_set = self._sets[index] = self._state_cls(self.ways)
        return cache_set

    def lookup(self, asid: int, page_size: int, page_number: int) -> bool:
        """Probe the array; hits refresh replacement state."""
        cache_set = self._set_for(page_number)
        key = (asid, page_size, page_number)
        if key in cache_set:
            cache_set.touch(key)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def probe(self, asid: int, page_size: int, page_number: int) -> bool:
        """Check presence without perturbing replacement state/counters.

        Policy states expose only *resident* membership through ``in``
        (never ghost history), so a probe can neither refresh recency
        nor leak an observation into ARC/2Q adaptation.
        """
        return (asid, page_size, page_number) in self._set_for(page_number)

    def insert(self, asid: int, page_size: int, page_number: int) -> Optional[Key]:
        """Install a translation; returns the evicted key, if any.

        Reinstalling a resident key is a refresh, not a replacement
        decision.  With a QoS way quota, an over-quota ASID evicts its
        own most-evictable entry — even when the set itself still has
        free ways — before the policy is consulted for capacity.
        """
        cache_set = self._set_for(page_number)
        key = (asid, page_size, page_number)
        evicted = None
        if key in cache_set:
            cache_set.touch(key)
        else:
            quota = self.way_quota
            if quota is not None:
                own = [k for k in cache_set.members() if k[0] == asid]
                if len(own) >= quota:
                    evicted = own[0]  # the ASID's own most-evictable entry
                    cache_set.remove(evicted)
                    self.evictions += 1
            spilled = cache_set.admit(key)
            if spilled is not None:
                evicted = spilled
                self.evictions += 1
        self.insertions += 1
        return evicted

    def invalidate(self, asid: int, page_size: int, page_number: int) -> bool:
        """Shoot down one translation; True if it was present.

        Also drops any ghost/history state the policy kept for the key
        — a remapped translation must not count as a ghost hit later.
        """
        return self._set_for(page_number).remove((asid, page_size, page_number))

    def invalidate_asid(self, asid: int) -> int:
        """Drop every translation belonging to ``asid`` (context teardown)."""
        return sum(
            cache_set.purge_asid(asid)
            for cache_set in self._sets
            if cache_set is not None
        )

    def flush(self) -> int:
        """Drop everything (full-TLB flush on context switch, §V storms)."""
        dropped = self.occupancy
        for cache_set in self._sets:
            if cache_set is not None:
                cache_set.clear()
        return dropped

    @property
    def occupancy(self) -> int:
        return sum(
            len(cache_set) for cache_set in self._sets if cache_set is not None
        )

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def iter_keys(self) -> Iterator[Key]:
        for cache_set in self._sets:
            if cache_set is not None:
                yield from cache_set.members()

    def reset_stats(self) -> None:
        self.hits = self.misses = self.insertions = self.evictions = 0
