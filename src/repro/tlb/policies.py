"""Pluggable per-set replacement policies for the TLB arrays.

:class:`~repro.tlb.set_assoc.SetAssociativeTLB` used to hardcode LRU
inside its lookup/insert paths; this module extracts the replacement
decision behind one frozen interface so slices can run LRU, ARC, or 2Q
— and so the offline Belady bound (:mod:`repro.tlb.opt`) can replay the
exact same per-set state machines against stored traces.

Interface contract (one :class:`ReplacementPolicy` instance per cache
set, capacity ``ways``):

* ``key in state`` / ``len(state)`` — *resident* membership and count.
  Ghost/history entries (ARC's B1/B2, 2Q's A1out) are never visible
  here, which is what keeps ``probe()`` side-effect-free and
  shootdowns honest.
* ``members()``      — residents in eviction-preference order (most
  evictable first); drives QoS way-quota victim selection and
  ``iter_keys``.
* ``touch(key)``     — a hit on a resident key (LRU refresh, ARC
  promote-to-T2, 2Q's deliberate A1in no-op).
* ``admit(key)``     — install a non-resident key; the policy makes its
  internal replacement decision and returns the evicted resident, or
  ``None`` when the set had room.
* ``remove(key)``    — invalidate: drops the resident entry *and* any
  ghost history for the key (a shot-down translation must not later
  count as a ghost hit); returns whether the key was resident.
* ``purge_asid(asid)`` / ``clear()`` — context teardown / full flush,
  both of which also forget history and adaptation state.

Determinism contract: every policy is a pure function of its access
sequence — no wall clock, no RNG, no ambient state.  This is what lets
run results stay byte-identical across jobs=1/jobs=N and cache replay,
and what makes the policies independently verifiable against the
reference oracles in ``tests/tlb/_policy_oracles.py``.

The engine's batched fast path inlines LRU OrderedDict operations on
the *L1* arrays (``repro.sim.engine._compile_core``), so L1 TLBs always
run LRU — :class:`LruState` subclasses :class:`~collections.OrderedDict`
precisely so that inlined path keeps working unchanged.  ``policy=``
applies to the L2 structures (private L2s, shared slices/banks).

``opt`` is deliberately *not* constructible here: Belady's algorithm
needs the future, so it exists only as the offline bound in
:mod:`repro.tlb.opt` and is never run inside the DES hot path.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, Optional, Tuple, Type

Key = Tuple[int, int, int]  # (asid, page_size, page_number)


class ReplacementPolicy:
    """Abstract per-set replacement state (see the module docstring).

    Subclasses implement the full contract; this base only documents
    it and provides the shared ``purge_asid`` convenience used by
    context teardown.
    """

    #: Registry name; subclasses override.
    name = ""

    def __init__(self, ways: int) -> None:
        raise NotImplementedError

    def __contains__(self, key: Key) -> bool:  # pragma: no cover
        raise NotImplementedError

    def __len__(self) -> int:  # pragma: no cover
        raise NotImplementedError

    def members(self) -> Iterator[Key]:  # pragma: no cover
        raise NotImplementedError

    def touch(self, key: Key) -> None:  # pragma: no cover
        raise NotImplementedError

    def admit(self, key: Key) -> Optional[Key]:  # pragma: no cover
        raise NotImplementedError

    def remove(self, key: Key) -> bool:  # pragma: no cover
        raise NotImplementedError

    def purge_asid(self, asid: int) -> int:  # pragma: no cover
        raise NotImplementedError

    def clear(self) -> None:  # pragma: no cover
        raise NotImplementedError


class LruState(OrderedDict, ReplacementPolicy):
    """Least-recently-used — the refactored default.

    Byte-identical to the pre-refactor hardcoded behaviour: residents
    live in one OrderedDict ordered LRU -> MRU, hits ``move_to_end``,
    full-set admits ``popitem(last=False)``.  ``touch`` is aliased to
    the bound ``OrderedDict.move_to_end`` so the hit path costs exactly
    what it did before the extraction (and so the engine's inlined L1
    replay stays valid).
    """

    name = "lru"

    def __init__(self, ways: int) -> None:
        OrderedDict.__init__(self)
        self.ways = ways

    # A hit is exactly an OrderedDict MRU move — no wrapper frame.
    touch = OrderedDict.move_to_end

    def members(self) -> Iterator[Key]:
        return iter(self)

    def admit(self, key: Key) -> Optional[Key]:
        evicted = None
        if len(self) >= self.ways:
            evicted, _ = self.popitem(last=False)
        self[key] = None
        return evicted

    def remove(self, key: Key) -> bool:
        if key in self:
            del self[key]
            return True
        return False

    def purge_asid(self, asid: int) -> int:
        stale = [key for key in self if key[0] == asid]
        for key in stale:
            del self[key]
        return len(stale)


class ArcState(ReplacementPolicy):
    """Adaptive Replacement Cache (Megiddo & Modha, FAST '03).

    Residents split into a recency list T1 and a frequency list T2
    (each LRU -> MRU), shadowed by equal-history ghost lists B1/B2; the
    target size ``p`` of T1 adapts on ghost hits with the standard
    integer deltas ``max(|B_other| // |B_hit|, 1)``.

    Mapping onto the TLB's split lookup/insert flow: a resident hit is
    Case I (``touch``); a miss walks first and installs later, so the
    ghost-hit and cold-miss cases (II/III/IV, including the REPLACE
    subroutine) all run inside ``admit``.  Conventions beyond the
    paper's pseudocode, matched by the test oracle:

    * ``_replace`` is a no-op while the set is not full — invalidations
      can leave |T1|+|T2| < c, and nothing should be evicted then;
    * QoS way-quota evictions (``remove`` of a resident) never ghost —
      a forced eviction is not a capacity-replacement observation;
    * ``remove``/``purge_asid``/``clear`` also forget ghost history for
      the affected keys (``clear`` resets ``p``).
    """

    name = "arc"

    def __init__(self, ways: int) -> None:
        self.ways = ways
        self._t1: "OrderedDict[Key, None]" = OrderedDict()
        self._t2: "OrderedDict[Key, None]" = OrderedDict()
        self._b1: "OrderedDict[Key, None]" = OrderedDict()
        self._b2: "OrderedDict[Key, None]" = OrderedDict()
        self._p = 0

    def __contains__(self, key: Key) -> bool:
        return key in self._t1 or key in self._t2

    def __len__(self) -> int:
        return len(self._t1) + len(self._t2)

    def members(self) -> Iterator[Key]:
        yield from self._t1
        yield from self._t2

    def touch(self, key: Key) -> None:
        # Case I: hit in T1 or T2 -> MRU of T2.
        if key in self._t2:
            self._t2.move_to_end(key)
        else:
            del self._t1[key]
            self._t2[key] = None

    def _replace(self, in_b2: bool) -> Optional[Key]:
        """Evict one resident to its ghost list; no-op when not full."""
        if len(self._t1) + len(self._t2) < self.ways:
            return None
        t1 = len(self._t1)
        if t1 >= 1 and ((in_b2 and t1 == self._p) or t1 > self._p):
            victim, _ = self._t1.popitem(last=False)
            self._b1[victim] = None
        elif self._t2:
            victim, _ = self._t2.popitem(last=False)
            self._b2[victim] = None
        else:  # defensive: T2 empty forces a T1 eviction
            victim, _ = self._t1.popitem(last=False)
            self._b1[victim] = None
        return victim

    def admit(self, key: Key) -> Optional[Key]:
        b1, b2 = self._b1, self._b2
        if key in b1:
            # Case II: B1 ghost hit — grow the recency target.
            self._p = min(self._p + max(len(b2) // len(b1), 1), self.ways)
            evicted = self._replace(False)
            del b1[key]
            self._t2[key] = None
            return evicted
        if key in b2:
            # Case III: B2 ghost hit — shrink the recency target.
            self._p = max(self._p - max(len(b1) // len(b2), 1), 0)
            evicted = self._replace(True)
            del b2[key]
            self._t2[key] = None
            return evicted
        # Case IV: cold miss.
        evicted = None
        t1_b1 = len(self._t1) + len(b1)
        if t1_b1 == self.ways:
            if len(self._t1) < self.ways:
                b1.popitem(last=False)
                evicted = self._replace(False)
            else:
                # T1 holds the whole set: drop its LRU without ghosting.
                evicted, _ = self._t1.popitem(last=False)
        elif t1_b1 < self.ways:
            total = t1_b1 + len(self._t2) + len(b2)
            if total >= self.ways:
                if total == 2 * self.ways:
                    b2.popitem(last=False)
                evicted = self._replace(False)
        self._t1[key] = None
        return evicted

    def remove(self, key: Key) -> bool:
        for residents in (self._t1, self._t2):
            if key in residents:
                del residents[key]
                return True
        self._b1.pop(key, None)
        self._b2.pop(key, None)
        return False

    def purge_asid(self, asid: int) -> int:
        dropped = 0
        for residents in (self._t1, self._t2):
            stale = [key for key in residents if key[0] == asid]
            for key in stale:
                del residents[key]
            dropped += len(stale)
        for ghosts in (self._b1, self._b2):
            for key in [key for key in ghosts if key[0] == asid]:
                del ghosts[key]
        return dropped

    def clear(self) -> None:
        self._t1.clear()
        self._t2.clear()
        self._b1.clear()
        self._b2.clear()
        self._p = 0


class TwoQState(ReplacementPolicy):
    """2Q, full version (Johnson & Shasha, VLDB '94).

    Residents split into the A1in FIFO (first-touch probation,
    ``Kin = max(1, ways // 4)``) and the Am LRU (proven-hot); A1out is
    a ghost FIFO of ``Kout = max(1, ways // 2)`` recently demoted keys.
    A hit in A1in deliberately does nothing (correlated references must
    not promote); a key readmitted while in A1out goes straight to Am.

    Convention beyond the paper's pseudocode, matched by the test
    oracle: when ``reclaimfor`` needs a victim but Am is empty (tiny
    way counts), the A1in head is evicted and ghosted exactly as in the
    ``|A1in| > Kin`` branch.
    """

    name = "twoq"

    def __init__(self, ways: int) -> None:
        self.ways = ways
        self.k_in = max(1, ways // 4)
        self.k_out = max(1, ways // 2)
        self._a1in: "OrderedDict[Key, None]" = OrderedDict()
        self._a1out: "OrderedDict[Key, None]" = OrderedDict()
        self._am: "OrderedDict[Key, None]" = OrderedDict()

    def __contains__(self, key: Key) -> bool:
        return key in self._a1in or key in self._am

    def __len__(self) -> int:
        return len(self._a1in) + len(self._am)

    def members(self) -> Iterator[Key]:
        yield from self._a1in
        yield from self._am

    def touch(self, key: Key) -> None:
        if key in self._am:
            self._am.move_to_end(key)
        # A1in hits deliberately do nothing (correlated references).

    def _reclaim(self) -> Optional[Key]:
        """Free one slot (the paper's ``reclaimfor``); None if roomy."""
        if len(self) < self.ways:
            return None
        if len(self._a1in) > self.k_in or not self._am:
            victim, _ = self._a1in.popitem(last=False)
            self._a1out[victim] = None
            if len(self._a1out) > self.k_out:
                self._a1out.popitem(last=False)
        else:
            victim, _ = self._am.popitem(last=False)
        return victim

    def admit(self, key: Key) -> Optional[Key]:
        evicted = self._reclaim()
        if key in self._a1out:
            del self._a1out[key]
            self._am[key] = None
        else:
            self._a1in[key] = None
        return evicted

    def remove(self, key: Key) -> bool:
        for residents in (self._a1in, self._am):
            if key in residents:
                del residents[key]
                return True
        self._a1out.pop(key, None)
        return False

    def purge_asid(self, asid: int) -> int:
        dropped = 0
        for residents in (self._a1in, self._am):
            stale = [key for key in residents if key[0] == asid]
            for key in stale:
                del residents[key]
            dropped += len(stale)
        for key in [key for key in self._a1out if key[0] == asid]:
            del self._a1out[key]
        return dropped

    def clear(self) -> None:
        self._a1in.clear()
        self._a1out.clear()
        self._am.clear()


#: The constructible (online) policy registry.  ``opt`` is offline-only
#: (see repro.tlb.opt) and deliberately absent.
POLICIES: Dict[str, Type[ReplacementPolicy]] = {
    "lru": LruState,
    "arc": ArcState,
    "twoq": TwoQState,
}

#: Sorted policy names — the ``SystemConfig.policy`` / CLI choices.
POLICY_NAMES: Tuple[str, ...] = tuple(sorted(POLICIES))


def make_policy(name: str, ways: int) -> ReplacementPolicy:
    """Build one per-set policy state by registry name."""
    try:
        state_cls = POLICIES[name]
    except KeyError:
        known = ", ".join(POLICY_NAMES)
        raise KeyError(f"unknown policy {name!r}; known: {known}") from None
    return state_cls(ways)
