"""Aggregated TLB statistics shared by the simulator and benches."""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict


@dataclass
class TlbStats:
    """Counters for one simulation run's translation activity."""

    l1_hits: int = 0
    l1_misses: int = 0
    l2_hits: int = 0
    l2_misses: int = 0
    walks: int = 0
    prefetches: int = 0
    shootdown_messages: int = 0
    flushes: int = 0

    @property
    def l1_accesses(self) -> int:
        return self.l1_hits + self.l1_misses

    @property
    def l2_accesses(self) -> int:
        return self.l2_hits + self.l2_misses

    @property
    def l1_miss_rate(self) -> float:
        return self.l1_misses / self.l1_accesses if self.l1_accesses else 0.0

    @property
    def l2_miss_rate(self) -> float:
        return self.l2_misses / self.l2_accesses if self.l2_accesses else 0.0

    def merge(self, other: "TlbStats") -> None:
        """Fold ``other``'s counters into this one.

        Iterates ``dataclasses.fields`` so a newly added counter can
        never be silently dropped from aggregation: numeric fields add,
        dict-valued fields add per key, anything else is rejected.
        """
        for f in fields(self):
            mine = getattr(self, f.name)
            theirs = getattr(other, f.name)
            if isinstance(mine, dict):
                for key, value in theirs.items():
                    mine[key] = mine.get(key, 0) + value
            elif isinstance(mine, (int, float)):
                setattr(self, f.name, mine + theirs)
            else:
                raise TypeError(
                    f"TlbStats.merge cannot aggregate field {f.name!r} "
                    f"of type {type(mine).__name__}"
                )

    def as_dict(self) -> Dict[str, float]:
        return {
            "l1_hits": self.l1_hits,
            "l1_misses": self.l1_misses,
            "l2_hits": self.l2_hits,
            "l2_misses": self.l2_misses,
            "l1_miss_rate": self.l1_miss_rate,
            "l2_miss_rate": self.l2_miss_rate,
            "walks": self.walks,
            "prefetches": self.prefetches,
            "shootdown_messages": self.shootdown_messages,
            "flushes": self.flushes,
        }
