"""Workload suite: specs, trace generators, multiprogrammed mixes."""

from repro.workloads.generators import (
    PagePool,
    ZipfSampler,
    build_lib_pool,
    build_multiprogrammed,
    build_multithreaded,
)
from repro.workloads.io import (
    load_workload,
    save_workload,
    workload_from_records,
)
from repro.workloads.registry import WORKLOAD_NAMES, WORKLOADS, get_workload
from repro.workloads.spec import WorkloadSpec
from repro.workloads.trace import Record, Workload, flatten_streams

__all__ = [
    "PagePool",
    "ZipfSampler",
    "build_lib_pool",
    "build_multiprogrammed",
    "build_multithreaded",
    "load_workload",
    "save_workload",
    "workload_from_records",
    "WORKLOAD_NAMES",
    "WORKLOADS",
    "get_workload",
    "WorkloadSpec",
    "Record",
    "Workload",
    "flatten_streams",
]
