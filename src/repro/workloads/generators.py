"""Synthetic trace generation for the paper's workload suite.

Builds per-core access traces from a :class:`WorkloadSpec`'s pool
mixture (see :mod:`repro.workloads.spec`).  Generation is vectorised
with numpy: pool choices and Zipf ranks are drawn in bulk, and
sequential runs (spatial locality) are reconstructed with an
anchor-propagation trick instead of a per-access Python loop.

Popularity is decoupled from placement: Zipf ranks are scattered over
the pool's index space with a seeded random permutation, so the hottest
pages are spread across both the superpage- and 4KB-backed portions of
the footprint with no accidental stride structure, while sequential
runs still touch spatially adjacent pages (which is what gives +/-k
prefetching and superpages their bite).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.vm.address import PAGE_2M, PAGE_4K, PAGES_PER_2M
from repro.vm.address_space import AddressSpace, Extent, VpnAllocator
from repro.vm.superpage import SuperpagePolicy
from repro.workloads.spec import WorkloadSpec
from repro.workloads.trace import Record, Workload

#: Version of the trace-generation algorithm.  Any change to how this
#: module turns a :class:`WorkloadSpec` into records — pool layout,
#: sampling, anchor propagation, gap distribution — must bump it: the
#: :class:`~repro.exec.trace_store.TraceStore` keys its on-disk trace
#: artifacts on this constant, so a bump orphans every stale artifact
#: by construction (mirroring how ``ENGINE_VERSION`` invalidates the
#: result cache).
GENERATOR_VERSION = 1

#: Seed offset for the per-pool rank->page permutations.
_SCATTER_SEED = 0x5CA77E12

#: The globally shared library/OS pool every process maps (§II-A).
LIB_POOL_PAGES = 2048
LIB_ALPHA = 1.1
GLOBAL_ASID = 0


#: Process-wide memo of Zipf CDFs keyed by ``(n, alpha)``.  At sweep
#: scale the same populations recur constantly — every core of a
#: workload, every configuration of a lineup, every pool worker — and
#: an ``n``-element cumsum over a paper-scale footprint (millions of
#: pages) is too expensive to recompute per sampler.  The arrays are
#: frozen (non-writeable) so sharing one instance across samplers
#: cannot let one caller mutate another's distribution.
_CDF_CACHE: Dict[Tuple[int, float], np.ndarray] = {}


def _zipf_cdf(n: int, alpha: float) -> np.ndarray:
    cdf = _CDF_CACHE.get((n, alpha))
    if cdf is None:
        weights = 1.0 / np.arange(1, n + 1, dtype=np.float64) ** alpha
        cdf = np.cumsum(weights)
        cdf /= cdf[-1]
        cdf.setflags(write=False)
        _CDF_CACHE[(n, alpha)] = cdf
    return cdf


class ZipfSampler:
    """Bulk sampler of Zipf(alpha)-popular page indices over [0, n).

    With ``permute_seed`` set, popularity ranks are mapped to page
    indices through a seeded random permutation, so the hottest pages
    are scattered uniformly over the pool with no stride structure.
    """

    def __init__(self, n: int, alpha: float, permute_seed=None) -> None:
        if n <= 0:
            raise ValueError("population must be positive")
        self.n = n
        self.alpha = alpha
        if alpha > 0.0:
            self._cdf = _zipf_cdf(n, alpha)
        else:
            self._cdf = None  # uniform
        if permute_seed is not None:
            self._perm = np.random.default_rng(permute_seed).permutation(n)
        else:
            self._perm = None

    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        if count == 0:
            return np.empty(0, dtype=np.int64)
        if self._cdf is None:
            ranks = rng.integers(0, self.n, size=count, dtype=np.int64)
        else:
            ranks = np.searchsorted(self._cdf, rng.random(count)).astype(np.int64)
        if self._perm is not None:
            return self._perm[ranks]
        return ranks

    def head_mass(self, head: int) -> float:
        """Fraction of accesses landing on the ``head`` hottest pages."""
        head = min(head, self.n)
        if self._cdf is None:
            return head / self.n
        return float(self._cdf[head - 1])


@dataclass
class PagePool:
    """A pool of pages laid out as extents, with vectorised translation."""

    asid: int
    num_pages: int
    super_base: int  # base VPN of the 2MB-backed portion (page index 0..)
    super_pages: int  # 4KB pages inside the 2MB-backed portion
    small_base: int  # base VPN of the 4KB-backed remainder
    extents: Tuple[Extent, ...]

    @classmethod
    def build(
        cls,
        allocator: VpnAllocator,
        num_pages: int,
        asid: int,
        superpage_fraction: float,
        shared: bool,
    ) -> "PagePool":
        policy = SuperpagePolicy(superpage_fraction)
        extents = policy.layout(allocator, num_pages, shared=shared)
        super_base = small_base = 0
        super_pages = 0
        for extent in extents:
            if extent.page_size == PAGE_2M:
                super_base, super_pages = extent.base_vpn, extent.num_pages
            else:
                small_base = extent.base_vpn
        return cls(
            asid=GLOBAL_ASID if shared else asid,
            num_pages=num_pages,
            super_base=super_base,
            super_pages=super_pages,
            small_base=small_base,
            extents=tuple(extents),
        )

    def translate(
        self, indices: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Map pool page indices to (page_size, page_number) arrays."""
        in_super = indices < self.super_pages
        vpn = np.where(
            in_super,
            self.super_base + indices,
            self.small_base + (indices - self.super_pages),
        )
        sizes = np.where(in_super, PAGE_2M, PAGE_4K)
        numbers = np.where(in_super, vpn >> 9, vpn)
        return sizes, numbers


@dataclass
class AppLayout:
    """One application's pools and context."""

    spec: WorkloadSpec
    asid: int
    hot_pools: List[PagePool]  # one per thread
    warm_pool: Optional[PagePool]
    cold_pool: PagePool
    cold_sampler: ZipfSampler
    warm_sampler: Optional[ZipfSampler] = None


def build_lib_pool(allocator: VpnAllocator) -> Tuple[PagePool, ZipfSampler]:
    """The shared library / OS pool, mapped by every address space."""
    pool = PagePool.build(
        allocator, LIB_POOL_PAGES, asid=GLOBAL_ASID,
        superpage_fraction=0.0, shared=True,
    )
    return pool, ZipfSampler(
        LIB_POOL_PAGES, LIB_ALPHA, permute_seed=_SCATTER_SEED
    )


def build_app_layout(
    spec: WorkloadSpec,
    asid: int,
    num_threads: int,
    allocator: VpnAllocator,
    superpages: bool,
) -> AppLayout:
    effective = spec.with_superpages(superpages)
    sp_frac = effective.superpage_fraction
    hot_pools = [
        PagePool.build(allocator, spec.hot_pages, asid, 0.0, shared=False)
        for _ in range(num_threads)
    ]
    warm_pool = None
    warm_sampler = None
    if spec.warm_pages:
        warm_pool = PagePool.build(
            allocator, spec.warm_pages, asid, sp_frac, shared=False
        )
        warm_sampler = ZipfSampler(
            spec.warm_pages, 0.3, permute_seed=_SCATTER_SEED + 2 * asid + 1
        )
    cold_pool = PagePool.build(
        allocator, spec.footprint_pages, asid, sp_frac, shared=False
    )
    return AppLayout(
        spec=spec,
        asid=asid,
        hot_pools=hot_pools,
        warm_pool=warm_pool,
        cold_pool=cold_pool,
        cold_sampler=ZipfSampler(
            spec.footprint_pages,
            spec.cold_alpha,
            permute_seed=_SCATTER_SEED + 2 * asid,
        ),
        warm_sampler=warm_sampler,
    )


def generate_stream(
    layout: AppLayout,
    thread: int,
    accesses: int,
    rng: np.random.Generator,
    lib_pool: PagePool,
    lib_sampler: ZipfSampler,
) -> List[Record]:
    """One thread's trace: the pool-mixture with sequential runs."""
    spec = layout.spec
    n = accesses
    if n <= 0:
        raise ValueError("need at least one access")

    # Anchors start fresh draws; non-anchors continue the previous page.
    is_continuation = rng.random(n) < spec.seq_fraction
    is_continuation[0] = False
    anchor_pos = np.where(~is_continuation, np.arange(n), -1)
    last_anchor = np.maximum.accumulate(anchor_pos)
    run_offset = np.arange(n) - last_anchor

    # Pool choice at anchors: 0 hot, 1 warm, 2 lib, 3 cold.
    u = rng.random(n)
    hot_t = spec.hot_fraction
    warm_t = hot_t + spec.warm_fraction
    lib_t = warm_t + spec.lib_fraction
    pool_at = np.select(
        [u < hot_t, u < warm_t, u < lib_t], [0, 1, 2], default=3
    ).astype(np.int8)

    hot_pool = layout.hot_pools[thread % len(layout.hot_pools)]
    pools = [hot_pool, layout.warm_pool or hot_pool, lib_pool, layout.cold_pool]
    pool_sizes = np.array([p.num_pages for p in pools], dtype=np.int64)

    index_at = np.zeros(n, dtype=np.int64)
    anchors = ~is_continuation
    for pool_id, pool in enumerate(pools):
        mask = anchors & (pool_at == pool_id)
        count = int(mask.sum())
        if not count:
            continue
        if pool_id == 0:
            index_at[mask] = rng.integers(
                0, pool.num_pages, size=count, dtype=np.int64
            )
            continue
        if pool_id == 1:
            index_at[mask] = layout.warm_sampler.sample(count, rng)
        elif pool_id == 2:
            index_at[mask] = lib_sampler.sample(count, rng)
        else:
            index_at[mask] = layout.cold_sampler.sample(count, rng)

    # Propagate anchors through runs (continuations walk forward).
    pool_ids = pool_at[last_anchor]
    indices = (index_at[last_anchor] + run_offset) % pool_sizes[pool_ids]

    # Translate per pool.
    sizes = np.zeros(n, dtype=np.int64)
    numbers = np.zeros(n, dtype=np.int64)
    asids = np.zeros(n, dtype=np.int64)
    for pool_id, pool in enumerate(pools):
        mask = pool_ids == pool_id
        if not mask.any():
            continue
        pool_sizes_arr, pool_numbers = pool.translate(indices[mask])
        sizes[mask] = pool_sizes_arr
        numbers[mask] = pool_numbers
        asids[mask] = pool.asid

    gaps = 1 + rng.poisson(max(spec.mean_gap - 1.0, 0.0), size=n)
    return list(
        zip(gaps.tolist(), asids.tolist(), sizes.tolist(), numbers.tolist())
    )


def build_multithreaded(
    spec: WorkloadSpec,
    num_cores: int,
    accesses_per_core: int = 20_000,
    seed: int = 1,
    superpages: bool = True,
    smt: int = 1,
) -> Workload:
    """One multi-threaded application occupying every core."""
    rng = np.random.default_rng(seed)
    allocator = VpnAllocator()
    lib_pool, lib_sampler = build_lib_pool(allocator)
    layout = build_app_layout(
        spec, asid=1, num_threads=num_cores * smt,
        allocator=allocator, superpages=superpages,
    )
    traces = [
        [
            generate_stream(
                layout, core * smt + s, accesses_per_core, rng,
                lib_pool, lib_sampler,
            )
            for s in range(smt)
        ]
        for core in range(num_cores)
    ]
    return Workload(
        name=spec.name,
        traces=traces,
        seed=seed,
        superpages=superpages,
        info={"apps": {spec.name: list(range(num_cores))}},
    )


def build_multiprogrammed(
    specs: Sequence[WorkloadSpec],
    num_cores: int,
    accesses_per_core: int = 20_000,
    seed: int = 1,
    superpages: bool = True,
    footprint_scale: float = 1.0,
) -> Workload:
    """Multiprogrammed mix: apps split the cores evenly (§IV: 4 apps x
    8 threads on 32 cores), each with its own ASID, all sharing the
    library/OS pool."""
    if num_cores % len(specs):
        raise ValueError("core count must divide evenly among the apps")
    threads_per_app = num_cores // len(specs)
    rng = np.random.default_rng(seed)
    allocator = VpnAllocator()
    lib_pool, lib_sampler = build_lib_pool(allocator)
    traces: List[List[List[Record]]] = []
    apps: Dict[str, List[int]] = {}
    for app_id, spec in enumerate(specs):
        scaled = (
            spec.scaled_footprint(footprint_scale)
            if footprint_scale != 1.0
            else spec
        )
        layout = build_app_layout(
            scaled, asid=app_id + 1, num_threads=threads_per_app,
            allocator=allocator, superpages=superpages,
        )
        cores = []
        for thread in range(threads_per_app):
            cores.append(len(traces))
            traces.append(
                [
                    generate_stream(
                        layout, thread, accesses_per_core, rng,
                        lib_pool, lib_sampler,
                    )
                ]
            )
        apps[spec.name] = cores
    name = "+".join(spec.name for spec in specs)
    return Workload(
        name=name, traces=traces, seed=seed,
        superpages=superpages, info={"apps": apps},
    )
