"""Workload trace persistence: bring-your-own-traces support.

A trace-driven simulator is only as useful as the traces you can feed
it.  This module round-trips :class:`~repro.workloads.trace.Workload`
objects through compressed ``.npz`` files — one integer array per
(core, stream) holding ``(gap, asid, page_size, page_number)`` rows,
plus a JSON metadata header — so users can export the calibrated
synthetic suite, post-process it, or import traces captured elsewhere
(e.g. converted from a binary instrumentation run at 4KB-page
granularity).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Sequence, Union

import numpy as np

from repro.vm.address import PAGE_SIZES
from repro.workloads.trace import Record, Workload

FORMAT_VERSION = 1


def save_workload(workload: Workload, path: Union[str, Path]) -> Path:
    """Write a workload to ``path`` (.npz).  Returns the path written."""
    path = Path(path)
    arrays = {}
    shape = []
    for core, streams in enumerate(workload.traces):
        shape.append(len(streams))
        for stream_idx, stream in enumerate(streams):
            arrays[f"c{core}_s{stream_idx}"] = np.asarray(
                stream, dtype=np.int64
            ).reshape(len(stream), 4)
    meta = {
        "version": FORMAT_VERSION,
        "name": workload.name,
        "seed": workload.seed,
        "superpages": workload.superpages,
        "streams_per_core": shape,
        "info": workload.info,
    }
    arrays["meta"] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    np.savez_compressed(path, **arrays)
    return path


def load_workload(path: Union[str, Path]) -> Workload:
    """Read a workload written by :func:`save_workload`."""
    with np.load(Path(path)) as archive:
        meta = json.loads(bytes(archive["meta"]).decode("utf-8"))
        if meta.get("version") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported trace format version {meta.get('version')!r}"
            )
        traces: List[List[List[Record]]] = []
        for core, num_streams in enumerate(meta["streams_per_core"]):
            streams = []
            for stream_idx in range(num_streams):
                rows = archive[f"c{core}_s{stream_idx}"]
                streams.append([tuple(int(v) for v in row) for row in rows])
            traces.append(streams)
    return Workload(
        name=meta["name"],
        traces=traces,
        seed=meta["seed"],
        superpages=meta["superpages"],
        info=meta.get("info", {}),
    )


def workload_from_records(
    name: str,
    per_core_records: Sequence[Sequence[Record]],
    superpages: bool = False,
    seed: int = 0,
) -> Workload:
    """Build a Workload from raw user records (one list per core).

    Each record is ``(gap, asid, page_size, page_number)``; gaps must be
    >= 1, page sizes one of 4K/2M/1G, ASIDs and page numbers
    non-negative.  Validation is strict — a malformed external trace
    should fail here, not deep inside the engine.
    """
    traces: List[List[List[Record]]] = []
    for core, records in enumerate(per_core_records):
        if not records:
            raise ValueError(f"core {core} has an empty trace")
        validated = []
        for i, record in enumerate(records):
            if len(record) != 4:
                raise ValueError(
                    f"core {core} record {i}: need (gap, asid, size, page)"
                )
            gap, asid, size, page = record
            if gap < 1:
                raise ValueError(f"core {core} record {i}: gap must be >= 1")
            if size not in PAGE_SIZES:
                raise ValueError(
                    f"core {core} record {i}: bad page size {size}"
                )
            if asid < 0 or page < 0:
                raise ValueError(
                    f"core {core} record {i}: negative asid/page"
                )
            validated.append((int(gap), int(asid), int(size), int(page)))
        traces.append([validated])
    return Workload(
        name=name, traces=traces, seed=seed, superpages=superpages
    )
