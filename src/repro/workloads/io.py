"""Workload trace persistence: bring-your-own-traces support.

A trace-driven simulator is only as useful as the traces you can feed
it.  This module round-trips :class:`~repro.workloads.trace.Workload`
objects through two on-disk layouts:

* **portable ``.npz``** (:func:`save_workload` / :func:`load_workload`)
  — one integer array per (core, stream) holding
  ``(gap, asid, page_size, page_number)`` rows plus a JSON metadata
  header, compressed; the interchange format for exporting the
  calibrated suite or importing traces captured elsewhere;
* **packed ``.npy`` + JSON sidecar** (:func:`save_workload_packed` /
  :func:`load_workload_packed`) — every stream concatenated into one
  ``(N, 4)`` ``int64`` array, uncompressed, so readers can attach with
  ``np.load(..., mmap_mode="r")`` and share the bytes through the page
  cache instead of each materialising a private copy.  This is the
  memmap-friendly build path the sweep data plane's
  :class:`~repro.exec.trace_store.TraceStore` stores its artifacts in.

Both layouts round-trip exactly: records come back as tuples of Python
``int`` (never ``np.int64``), byte-identical to what the generators
produced, which is what lets fan-out workers attach artifacts in place
of in-process builds without perturbing a single simulated bit.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

import numpy as np

from repro.vm.address import PAGE_SIZES
from repro.workloads.trace import Record, Workload

FORMAT_VERSION = 1

#: Version of the packed (memmap-friendly) artifact layout.  Part of
#: every TraceStore key: bumping it orphans stale artifacts.
PACKED_FORMAT_VERSION = 2


def save_workload(workload: Workload, path: Union[str, Path]) -> Path:
    """Write a workload to ``path`` (.npz).  Returns the path written."""
    path = Path(path)
    arrays = {}
    shape = []
    for core, streams in enumerate(workload.traces):
        shape.append(len(streams))
        for stream_idx, stream in enumerate(streams):
            arrays[f"c{core}_s{stream_idx}"] = np.asarray(
                stream, dtype=np.int64
            ).reshape(len(stream), 4)
    meta = {
        "version": FORMAT_VERSION,
        "name": workload.name,
        "seed": workload.seed,
        "superpages": workload.superpages,
        "streams_per_core": shape,
        "info": workload.info,
    }
    arrays["meta"] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    np.savez_compressed(path, **arrays)
    return path


def load_workload(path: Union[str, Path]) -> Workload:
    """Read a workload written by :func:`save_workload`."""
    with np.load(Path(path)) as archive:
        meta = json.loads(bytes(archive["meta"]).decode("utf-8"))
        if meta.get("version") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported trace format version {meta.get('version')!r}"
            )
        traces: List[List[List[Record]]] = []
        for core, num_streams in enumerate(meta["streams_per_core"]):
            streams = []
            for stream_idx in range(num_streams):
                rows = archive[f"c{core}_s{stream_idx}"]
                streams.append([tuple(int(v) for v in row) for row in rows])
            traces.append(streams)
    return Workload(
        name=meta["name"],
        traces=traces,
        seed=meta["seed"],
        superpages=meta["superpages"],
        info=meta.get("info", {}),
    )


def pack_workload(
    workload: Workload,
) -> Tuple[np.ndarray, List[int], List[int], Dict[str, object]]:
    """Flatten a workload into one ``(N, 4)`` int64 array plus layout.

    Returns ``(data, offsets, streams_per_core, meta)``: ``data`` holds
    every stream's records concatenated in (core, stream) order,
    ``offsets`` has one entry per stream boundary (``len(streams) + 1``
    entries), and ``meta`` carries the identity fields needed to
    rebuild the :class:`Workload`.
    """
    arrays: List[np.ndarray] = []
    offsets = [0]
    streams_per_core: List[int] = []
    for streams in workload.traces:
        streams_per_core.append(len(streams))
        for stream in streams:
            arrays.append(
                np.asarray(stream, dtype=np.int64).reshape(len(stream), 4)
            )
            offsets.append(offsets[-1] + len(stream))
    data = (
        np.concatenate(arrays)
        if arrays
        else np.empty((0, 4), dtype=np.int64)
    )
    meta = {
        "version": PACKED_FORMAT_VERSION,
        "name": workload.name,
        "seed": workload.seed,
        "superpages": workload.superpages,
        "streams_per_core": streams_per_core,
        "offsets": offsets,
        "info": workload.info,
    }
    return data, offsets, streams_per_core, meta


def unpack_traces(
    data: np.ndarray, offsets: Sequence[int], streams_per_core: Sequence[int]
) -> List[List[List[Record]]]:
    """Rebuild ``traces[core][stream]`` record lists from packed form.

    The column-wise ``tolist()`` conversion yields tuples of Python
    ``int`` — exactly the record type the generators emit — and is the
    only copy the attach path makes: the packed array itself can be a
    read-only memmap shared by every attached process.
    """
    if data.size:
        columns = [data[:, i].tolist() for i in range(4)]
        records = list(zip(*columns))
    else:
        records = []
    traces: List[List[List[Record]]] = []
    stream_index = 0
    for num_streams in streams_per_core:
        streams = []
        for _ in range(num_streams):
            lo, hi = offsets[stream_index], offsets[stream_index + 1]
            streams.append(records[lo:hi])
            stream_index += 1
        traces.append(streams)
    return traces


def _sidecar_path(path: Path) -> Path:
    return path.with_suffix(".json")


def save_workload_packed(workload: Workload, path: Union[str, Path]) -> Path:
    """Write the packed (memmap-friendly) layout; returns the .npy path.

    Two files: ``<path>.npy`` (the packed records, uncompressed so they
    can be attached with ``mmap_mode="r"``) and ``<path>.json`` (the
    metadata sidecar).  Both are written to temp files and committed
    with ``os.replace``, sidecar last — the sidecar's presence is the
    commit marker, so concurrent writers (pool workers racing on one
    artifact) can never expose a torn entry.
    """
    path = Path(path)
    if path.suffix != ".npy":
        path = path.with_suffix(path.suffix + ".npy")
    data, _, _, meta = pack_workload(workload)
    directory = path.parent
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".tmp-", suffix=".npy")
    try:
        with os.fdopen(fd, "wb") as fh:
            np.save(fh, data)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".tmp-", suffix=".json")
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(meta, fh, sort_keys=True)
        os.replace(tmp, _sidecar_path(path))
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def load_workload_packed(path: Union[str, Path], mmap: bool = True) -> Workload:
    """Read a packed workload; ``mmap=True`` attaches the records
    read-only through the page cache (zero-copy across processes) while
    ``mmap=False`` loads them into private memory."""
    path = Path(path)
    with open(_sidecar_path(path)) as fh:
        meta = json.load(fh)
    if meta.get("version") != PACKED_FORMAT_VERSION:
        raise ValueError(
            f"unsupported packed trace version {meta.get('version')!r}"
        )
    data = np.load(path, mmap_mode="r" if mmap else None)
    if data.ndim != 2 or data.shape[1] != 4 or data.dtype != np.int64:
        raise ValueError(
            f"packed trace {path} has shape {data.shape} / {data.dtype}; "
            "expected (N, 4) int64"
        )
    traces = unpack_traces(data, meta["offsets"], meta["streams_per_core"])
    return Workload(
        name=meta["name"],
        traces=traces,
        seed=meta["seed"],
        superpages=meta["superpages"],
        info=meta.get("info", {}),
    )


def workload_from_records(
    name: str,
    per_core_records: Sequence[Sequence[Record]],
    superpages: bool = False,
    seed: int = 0,
) -> Workload:
    """Build a Workload from raw user records (one list per core).

    Each record is ``(gap, asid, page_size, page_number)``; gaps must be
    >= 1, page sizes one of 4K/2M/1G, ASIDs and page numbers
    non-negative.  Validation is strict — a malformed external trace
    should fail here, not deep inside the engine.
    """
    traces: List[List[List[Record]]] = []
    for core, records in enumerate(per_core_records):
        if not records:
            raise ValueError(f"core {core} has an empty trace")
        validated = []
        for i, record in enumerate(records):
            if len(record) != 4:
                raise ValueError(
                    f"core {core} record {i}: need (gap, asid, size, page)"
                )
            gap, asid, size, page = record
            if gap < 1:
                raise ValueError(f"core {core} record {i}: gap must be >= 1")
            if size not in PAGE_SIZES:
                raise ValueError(
                    f"core {core} record {i}: bad page size {size}"
                )
            if asid < 0 or page < 0:
                raise ValueError(
                    f"core {core} record {i}: negative asid/page"
                )
            validated.append((int(gap), int(asid), int(size), int(page)))
        traces.append([validated])
    return Workload(
        name=name, traces=traces, seed=seed, superpages=superpages
    )
