"""The paper's workload suite (§IV: PARSEC, CloudSuite, gups).

Pool parameters are calibrated against the paper's reported TLB
behaviour; see :mod:`repro.workloads.spec` for the model.  Footprints
are scaled relative to TLB reach (DESIGN.md, substitution table) —
what matters is the footprint/TLB-capacity ratio, not absolute bytes.

Character notes, mirrored from the paper:

* ``canneal``, ``xsbench``, ``gups``, ``graph500`` — poor locality /
  huge cold pools: most helped by shared TLBs at high core counts.
* ``olio``, ``nutch``, ``swtesting`` — warmer, smaller cold tails.
* ``gups`` — near-uniform random table updates: the TLB stress case.
"""

from __future__ import annotations

from typing import Dict, List

from repro.workloads.spec import WorkloadSpec

_SPECS = [
    WorkloadSpec("graph500", 48, 0.91, 896, 0.045, 28672, 0.85, 0.45, 0.015, 7.0, 0.55),
    WorkloadSpec("canneal", 64, 0.87, 1024, 0.050, 32768, 0.80, 0.30, 0.015, 6.5, 0.50),
    WorkloadSpec("xsbench", 48, 0.86, 640, 0.060, 40960, 0.75, 0.30, 0.015, 6.5, 0.60),
    WorkloadSpec("datacaching", 64, 0.92, 1024, 0.045, 24576, 0.95, 0.45, 0.025, 9.0, 0.60),
    WorkloadSpec("swtesting", 64, 0.93, 768, 0.040, 20480, 1.05, 0.50, 0.030, 8.0, 0.55),
    WorkloadSpec("graphanalytics", 48, 0.90, 896, 0.045, 28672, 0.90, 0.40, 0.020, 7.0, 0.60),
    WorkloadSpec("nutch", 64, 0.93, 1024, 0.035, 18432, 1.05, 0.45, 0.030, 8.0, 0.50),
    WorkloadSpec("olio", 64, 0.93, 768, 0.035, 16384, 1.10, 0.45, 0.030, 8.0, 0.50),
    WorkloadSpec("redis", 64, 0.92, 1024, 0.040, 24576, 1.00, 0.40, 0.025, 8.0, 0.65),
    WorkloadSpec("mongodb", 64, 0.91, 1024, 0.040, 28672, 0.95, 0.40, 0.025, 8.0, 0.60),
    WorkloadSpec("gups", 48, 0.78, 256, 0.050, 28672, 0.00, 0.00, 0.010, 8.0, 0.70),
]

WORKLOADS: Dict[str, WorkloadSpec] = {spec.name: spec for spec in _SPECS}

#: Paper figure ordering.
WORKLOAD_NAMES: List[str] = [spec.name for spec in _SPECS]


def get_workload(name: str) -> WorkloadSpec:
    try:
        return WORKLOADS[name]
    except KeyError:
        known = ", ".join(WORKLOAD_NAMES)
        raise KeyError(f"unknown workload {name!r}; known: {known}") from None
