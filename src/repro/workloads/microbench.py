"""Pathological microbenchmarks (§V).

1. **TLB storm** — pairs a normal workload with aggressive context
   switching and superpage promotion/demotion churn: full TLB flushes
   plus 512-entry invalidation bursts.  The trace side is the normal
   workload; the churn side is injected by the engine via
   :class:`repro.sim.engine.StormConfig`.  :func:`storm_config_for`
   derives the paper's 0.5ms-equivalent period scaled to trace length.

2. **Slice hammer** — N-1 threads continuously access translations all
   homed on the slice of the Nth core, creating worst-case congestion
   on one slice (and its links).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.sim.engine import StormConfig
from repro.vm.address import PAGE_4K
from repro.workloads.trace import Record, Workload

#: The paper context-switches every 0.5 ms at 2 GHz = 1M cycles; our
#: traces are shorter, so the storm period is expressed as a fraction
#: of the expected run length instead.
STORM_EVENTS_PER_RUN = 12


def storm_config_for(
    accesses_per_core: int, mean_gap: float = 2.0, asid: int = 1
) -> StormConfig:
    """A storm schedule that fires ~STORM_EVENTS_PER_RUN times per run."""
    expected_cycles = int(accesses_per_core * (mean_gap + 1) * 1.6)
    period = max(1, expected_cycles // STORM_EVENTS_PER_RUN)
    return StormConfig(period=period, burst_entries=512, flush=True, asid=asid)


def build_slice_hammer(
    num_cores: int,
    accesses_per_core: int = 8_000,
    victim_slice: int = None,
    pages: int = 4096,
    mean_gap: float = 12.0,
    seed: int = 1,
) -> Workload:
    """N-1 cores hammer translations homed on one victim slice.

    Page numbers are congruent to ``victim_slice`` modulo the core
    count, so with the low-order-bits home function every access from
    every core lands on the same slice.  The victim core runs the same
    pattern (it at least enjoys local-slice accesses under NOCSTAR).
    """
    if victim_slice is None:
        victim_slice = num_cores - 1
    if not 0 <= victim_slice < num_cores:
        raise ValueError("victim slice out of range")
    rng = np.random.default_rng(seed)
    base = 1 << 20
    traces: List[List[List[Record]]] = []
    for core in range(num_cores):
        ks = rng.integers(0, pages, size=accesses_per_core)
        numbers = base + victim_slice + ks * num_cores
        gaps = 1 + rng.poisson(mean_gap - 1.0, size=accesses_per_core)
        stream = list(
            zip(
                gaps.tolist(),
                [1] * accesses_per_core,
                [PAGE_4K] * accesses_per_core,
                numbers.tolist(),
            )
        )
        traces.append([stream])
    return Workload(
        name=f"slice-hammer[{victim_slice}]",
        traces=traces,
        seed=seed,
        superpages=False,
        info={"victim_slice": victim_slice},
    )
