"""Multiprogrammed workload combinations (§V, Fig 18).

The paper forms all C(11, 4) = 330 combinations of four applications,
each running 8 threads, on a 32-core system.  ``combinations_of_four``
enumerates them deterministically in the paper's workload order;
``sample_combinations`` picks a reproducible subset for quicker runs.
"""

from __future__ import annotations

import random
from itertools import combinations
from typing import List, Sequence, Tuple

from repro.workloads.registry import WORKLOAD_NAMES

Combo = Tuple[str, str, str, str]


def combinations_of_four(
    names: Sequence[str] = tuple(WORKLOAD_NAMES),
) -> List[Combo]:
    """All 4-app combinations (330 for the 11-workload suite)."""
    return [tuple(combo) for combo in combinations(names, 4)]


def sample_combinations(
    count: int,
    names: Sequence[str] = tuple(WORKLOAD_NAMES),
    seed: int = 0,
) -> List[Combo]:
    """A deterministic subset of the 330 combinations."""
    all_combos = combinations_of_four(names)
    if count >= len(all_combos):
        return all_combos
    rng = random.Random(seed)
    return rng.sample(all_combos, count)
