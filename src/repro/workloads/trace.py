"""Trace containers.

A trace record is the tuple ``(gap, asid, page_size, page_number)``:

* ``gap`` — compute cycles since the previous memory reference;
* ``asid`` — the context tag of the translation (0 = globally shared);
* ``page_size`` — backing page size of the reference (4K/2M/1G);
* ``page_number`` — the page number at that granularity (the TLB tag).

Classification to (size, tag) happens at generation time — the address
-space layout is static during a run — which keeps the simulator's
per-access fast path to a couple of dict operations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

Record = Tuple[int, int, int, int]  # (gap, asid, page_size, page_number)


@dataclass
class Workload:
    """A complete multi-core input: one trace per core (or SMT stream)."""

    name: str
    #: traces[core][stream] -> list of records (stream 0 unless SMT > 1).
    traces: List[List[List[Record]]]
    seed: int
    superpages: bool
    #: Extra detail for reporting (app -> cores, footprints, ...).
    info: Dict[str, object] = field(default_factory=dict)

    @property
    def num_cores(self) -> int:
        return len(self.traces)

    @property
    def smt(self) -> int:
        return len(self.traces[0]) if self.traces else 1

    @property
    def total_accesses(self) -> int:
        return sum(
            len(stream) for core in self.traces for stream in core
        )

    def core_streams(self, core: int) -> List[List[Record]]:
        return self.traces[core]


def flatten_streams(workload: Workload) -> List[List[Record]]:
    """All streams of all cores, in core-major order (analysis helper)."""
    return [stream for core in workload.traces for stream in core]
