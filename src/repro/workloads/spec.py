"""Workload specifications: page-level behaviour of the paper's suite.

The paper evaluates PARSEC and CloudSuite applications plus gups, each
scaled to a 2 TB footprint (§IV).  What the TLB hierarchy sees of a
workload is its *page-reuse structure*, which we model as a mixture of
access pools:

* **hot** — a small per-core pool (thread-local data) that L1 TLBs
  capture;
* **warm** — an application-shared pool sized near one private L2 TLB,
  which private L2s capture but replicate across cores;
* **cold** — a large application-shared pool with Zipf-distributed
  popularity, where shared-TLB capacity and implicit cross-core
  prefetching pay off;
* **lib** — a globally shared pool (shared libraries / OS structures)
  that even unrelated processes replicate in private TLBs [34].

Pool probabilities and sizes are calibrated per workload so that the
baseline statistics land where the paper reports them: private-L2 miss
rates of 5-18%, shared TLBs eliminating ~70-90% of those misses
(Fig 2), and poor-locality workloads (canneal, xsbench, gups) gaining
most from sharing.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class WorkloadSpec:
    """Page-level behavioural parameters of one application."""

    name: str
    #: Per-core private hot pool (4KB pages) and its access probability.
    hot_pages: int
    hot_fraction: float
    #: App-shared warm pool and its access probability.
    warm_pages: int
    warm_fraction: float
    #: App-shared cold pool (the big-data footprint) with Zipf(alpha)
    #: popularity; its access probability is the remainder.
    footprint_pages: int
    cold_alpha: float
    #: Probability an access continues the previous one sequentially
    #: (spatial locality; gives +/-k prefetching something to exploit).
    seq_fraction: float
    #: Probability of touching the global shared-library/OS pool.
    lib_fraction: float
    #: Mean compute cycles between memory references.
    mean_gap: float
    #: Fraction of the footprint THP backs with 2MB pages (§V: 50-80%).
    superpage_fraction: float

    def __post_init__(self) -> None:
        if self.hot_pages <= 0 or self.footprint_pages <= 0:
            raise ValueError(f"{self.name}: pools must be non-empty")
        if self.warm_pages < 0:
            raise ValueError(f"{self.name}: warm pool cannot be negative")
        total = self.hot_fraction + self.warm_fraction + self.lib_fraction
        if not 0.0 < total <= 1.0:
            raise ValueError(f"{self.name}: pool fractions must leave room for cold")
        if not 0.0 <= self.seq_fraction < 1.0:
            raise ValueError(f"{self.name}: seq_fraction must be in [0, 1)")
        if not 0.0 <= self.superpage_fraction <= 1.0:
            raise ValueError(f"{self.name}: superpage fraction must be in [0, 1]")
        if self.mean_gap < 1.0:
            raise ValueError(f"{self.name}: mean gap must be >= 1 cycle")

    @property
    def cold_fraction(self) -> float:
        return 1.0 - self.hot_fraction - self.warm_fraction - self.lib_fraction

    def with_superpages(self, enabled: bool) -> "WorkloadSpec":
        """The 4KB-only variant used by Fig 12 (vs Fig 13's THP runs)."""
        if enabled:
            return self
        return replace(self, superpage_fraction=0.0)

    def scaled_footprint(self, factor: float) -> "WorkloadSpec":
        """Scale the cold footprint (multiprogrammed runs shrink inputs)."""
        return replace(
            self, footprint_pages=max(1024, int(self.footprint_pages * factor))
        )
