"""``repro.obs`` — observability: metrics, histograms, event tracing.

The subsystem has three layers:

* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters,
  gauges, and fixed-bucket + streaming-quantile histograms, written to
  through a *sink*.  The module-level :data:`NULL_SINK` is a no-op;
  instrumented components call it unconditionally, so disabled
  observability costs nothing on hot paths and zero branches anywhere.
* :mod:`repro.obs.trace` — :class:`EventTrace`, a ring buffer of typed
  events (L1/L2 lookups, NOCSTAR/SMART path setups, walks, shootdowns,
  storm flushes) with time-window filtering and JSONL export.
* :mod:`repro.obs.report` — text rendering of latency percentiles,
  per-link NoC utilization heatmap rows, and hottest-slice tables from
  any mix of obs files and Runner telemetry (the ``repro report`` CLI).
* :mod:`repro.obs.spans` — span-based request tracing with propagated
  ``trace_id``/``span_id``/``parent_id`` correlation across the serving
  tier (client → daemon → queue → worker → build/sim), JSONL sidecars,
  and the ``repro trace`` tree/critical-path renderer.
* :mod:`repro.obs.prometheus` — Prometheus text exposition of any
  registry snapshot (the daemon's ``GET /v1/metrics`` under
  ``Accept: text/plain``).

Everything is deterministic: metric values and event timestamps are
simulation cycles, never wall clock, so serial, parallel, and
cache-replayed runs produce byte-identical snapshots and traces — and
because observation never changes simulated behaviour,
``ENGINE_VERSION`` is unaffected by turning it on or off.
"""

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSink,
    NullSink,
    NULL_SINK,
    StreamingQuantile,
)
from repro.obs.trace import (
    DEFAULT_CAPACITY,
    EVENT_KINDS,
    EventTrace,
    filter_window,
)
from repro.obs.report import (
    load_obs_records,
    render_report,
    run_records_from,
    write_obs_jsonl,
)
from repro.obs.prometheus import CONTENT_TYPE, render_prometheus
from repro.obs.spans import (
    SPAN_SCHEMA,
    Span,
    Tracer,
    build_tree,
    load_spans,
    render_tree,
    span_record,
    validate_context,
    write_spans,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "StreamingQuantile",
    "MetricsRegistry",
    "MetricsSink",
    "NullSink",
    "NULL_SINK",
    "DEFAULT_LATENCY_BUCKETS",
    "EventTrace",
    "EVENT_KINDS",
    "DEFAULT_CAPACITY",
    "filter_window",
    "load_obs_records",
    "render_report",
    "run_records_from",
    "write_obs_jsonl",
    "CONTENT_TYPE",
    "render_prometheus",
    "SPAN_SCHEMA",
    "Span",
    "Tracer",
    "build_tree",
    "load_spans",
    "render_tree",
    "span_record",
    "validate_context",
    "write_spans",
]
