"""Render text summaries from metric snapshots and event traces.

Two JSONL record shapes feed a report, and both can be mixed freely
across any number of input files:

* **obs files** written by :func:`write_obs_jsonl` (the CLI's
  ``--trace-out``): ``{"type": "run", ...,"metrics": {...}}`` lines
  followed by that run's ``{"type": "event", ..., "kind": ...}`` lines;
* **Runner telemetry** (``<cache-dir>/telemetry.jsonl``): one record
  per executed unit, carrying an embedded ``metrics`` snapshot when the
  unit ran with metrics enabled.

The report renders the distributional claims the paper's figures rest
on: translation/walk latency percentiles, per-link NoC utilization
heatmap rows, and the hottest shared-L2 slices.
"""

from __future__ import annotations

import json
import os
import re
import sys
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.tables import render_table
from repro.obs.trace import filter_window

#: ASCII heat ramp for utilization bars (cold -> hot).
HEAT_RAMP = " .:-=+*#%@"

_LINK_RE = re.compile(r"^noc\.link\.(\d+)>(\d+)\.busy_cycles$")
_SLICE_RE = re.compile(r"^tlb\.slice\.(\d+)\.(hits|misses|occupancy)$")

RunRecord = Dict[str, object]
EventRecord = Dict[str, object]


# ----------------------------------------------------------------------
# Producing and loading obs JSONL


def run_records_from(labelled_results) -> List[RunRecord]:
    """Normalise ``(config, workload, RunResult)`` triples to run records."""
    records = []
    for config_name, workload_name, result in labelled_results:
        records.append(
            {
                "type": "run",
                "config": config_name,
                "workload": workload_name,
                "cycles": result.cycles,
                "metrics": getattr(result, "metrics", None),
            }
        )
    return records


def event_records_from(labelled_results) -> List[EventRecord]:
    """Flatten the traces of ``(config, workload, RunResult)`` triples."""
    records = []
    for config_name, workload_name, result in labelled_results:
        for event in getattr(result, "trace", None) or ():
            record = {
                "type": "event",
                "config": config_name,
                "workload": workload_name,
            }
            record.update(event)
            records.append(record)
    return records


def write_obs_jsonl(path: str, labelled_results) -> int:
    """Write runs + their event traces to one obs file; returns lines.

    ``labelled_results`` is an iterable of ``(config_name,
    workload_name, RunResult)``.  Output is deterministic (sorted JSON
    keys, engine-defined event order): identical runs produce
    byte-identical files.
    """
    labelled_results = list(labelled_results)
    records: List[Dict[str, object]] = []
    records.extend(run_records_from(labelled_results))
    records.extend(event_records_from(labelled_results))
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w") as fh:
        for record in records:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
    return len(records)


def load_obs_records(
    paths: Sequence[str],
) -> Tuple[List[RunRecord], List[EventRecord]]:
    """Split JSONL files into (run records, event records).

    A line is an event when it carries a ``kind``; anything else with a
    ``cycles`` or ``metrics`` field is treated as a run record (this is
    what makes Runner telemetry files directly reportable).

    Robust by design: an absent file is warned about and skipped (a
    sweep that produced no trace should not kill the report of the ones
    that did), and malformed or non-object JSONL lines are skipped —
    reporting renders whatever evidence exists.  Event kinds are passed
    through untouched, so files written by a newer schema (with kinds
    this version does not know) still render.
    """
    runs: List[RunRecord] = []
    events: List[EventRecord] = []
    for path in paths:
        if not os.path.exists(path):
            print(f"warning: no such obs file, skipping: {path}",
                  file=sys.stderr)
            continue
        with open(path) as fh:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    print(
                        f"warning: skipping malformed JSONL line "
                        f"{path}:{lineno}",
                        file=sys.stderr,
                    )
                    continue
                if not isinstance(record, dict):
                    continue
                if "kind" in record:
                    events.append(record)
                elif "metrics" in record or "cycles" in record:
                    runs.append(record)
    return runs, events


# ----------------------------------------------------------------------
# Rendering


def _label(record: Dict[str, object]) -> str:
    config = record.get("config") or "?"
    workload = record.get("workload") or "?"
    return f"{config}/{workload}"


def _histogram_rows(runs: Iterable[RunRecord], name: str) -> List[List]:
    rows = []
    for record in runs:
        metrics = record.get("metrics") or {}
        histogram = (metrics.get("histograms") or {}).get(name)
        if not histogram:
            continue
        rows.append(
            [
                _label(record),
                histogram.get("count", 0),
                histogram.get("p50"),
                histogram.get("p95"),
                histogram.get("p99"),
                histogram.get("max"),
            ]
        )
    return rows


def _heat(utilization: float, peak: float) -> str:
    """One heatmap cell: a bar plus ramp character, scaled to the peak."""
    if peak <= 0:
        return HEAT_RAMP[0]
    fraction = min(utilization / peak, 1.0)
    bar = "#" * int(round(fraction * 12))
    return f"{HEAT_RAMP[int(fraction * (len(HEAT_RAMP) - 1))]}|{bar:<12}|"


def _link_rows(record: RunRecord, top: int) -> List[List]:
    metrics = record.get("metrics") or {}
    gauges = metrics.get("gauges") or {}
    links = []
    for name, busy in gauges.items():
        match = _LINK_RE.match(name)
        if not match:
            continue
        src, dst = int(match.group(1)), int(match.group(2))
        utilization = gauges.get(f"noc.link.{src}>{dst}.util", 0.0)
        links.append((busy, utilization, src, dst))
    if not links:
        return []
    links.sort(key=lambda item: (-item[0], item[2], item[3]))
    peak = max(item[1] for item in links)
    return [
        [
            _label(record),
            f"{src}>{dst}",
            busy,
            utilization,
            _heat(utilization, peak),
        ]
        for busy, utilization, src, dst in links[:top]
    ]


def _slice_rows(record: RunRecord, top: int) -> List[List]:
    metrics = record.get("metrics") or {}
    gauges = metrics.get("gauges") or {}
    slices: Dict[int, Dict[str, float]] = {}
    for name, value in gauges.items():
        match = _SLICE_RE.match(name)
        if match:
            slices.setdefault(int(match.group(1)), {})[match.group(2)] = value
    rows = []
    for index in sorted(slices):
        data = slices[index]
        hits = data.get("hits", 0)
        misses = data.get("misses", 0)
        accesses = hits + misses
        rows.append(
            [
                _label(record),
                index,
                hits,
                misses,
                hits / accesses if accesses else 0.0,
                data.get("occupancy", 0),
                accesses,
            ]
        )
    rows.sort(key=lambda row: (-row[6], row[1]))
    return [row[:6] for row in rows[:top]]


def _event_rows(
    events: Sequence[EventRecord],
    window: Optional[Tuple[Optional[int], Optional[int]]],
) -> List[List]:
    if window is not None:
        events = filter_window(events, window[0], window[1])
    by_kind: Dict[str, List[int]] = {}
    for event in events:
        try:
            cycle = int(event.get("cycle", 0))
        except (TypeError, ValueError):
            continue  # foreign record with an unusable timestamp
        by_kind.setdefault(str(event.get("kind")), []).append(cycle)
    return [
        [kind, len(cycles), min(cycles), max(cycles)]
        for kind, cycles in sorted(by_kind.items())
    ]


def _fault_rows(runs: Iterable[RunRecord]) -> List[List]:
    """One row per run that published ``faults.*`` counters."""
    rows = []
    for record in runs:
        metrics = record.get("metrics") or {}
        counters = metrics.get("counters") or {}
        faults = {
            name[len("faults."):]: value
            for name, value in counters.items()
            if isinstance(name, str) and name.startswith("faults.")
        }
        if not faults:
            continue
        rows.append(
            [
                _label(record),
                faults.get("arbiter_drops", 0),
                faults.get("fallback_messages", 0),
                faults.get("fallback_hops", 0),
                faults.get("degraded_walks", 0),
                faults.get("shootdown_retries", 0),
            ]
        )
    return rows


def render_report(
    runs: Sequence[RunRecord],
    events: Sequence[EventRecord] = (),
    top: int = 8,
    window: Optional[Tuple[Optional[int], Optional[int]]] = None,
) -> str:
    """Render the full text report for any mix of runs and events."""
    sections: List[str] = [
        f"observability report — {len(runs)} run(s), {len(events)} event(s)"
    ]

    run_rows = []
    for record in runs:
        metrics = record.get("metrics") or {}
        # build_s/sim_s exist in telemetry schema >= 3; obs records and
        # older telemetry render a "-" placeholder (whether the key is
        # absent or an explicit null).
        build_s = record.get("build_s")
        sim_s = record.get("sim_s")
        run_rows.append(
            [
                _label(record),
                record.get("cycles", "-"),
                record.get("cache", "-"),
                "-" if build_s is None else build_s,
                "-" if sim_s is None else sim_s,
                "yes" if metrics else "no",
            ]
        )
    if run_rows:
        sections.append(
            render_table(
                ["run", "cycles", "cache", "build_s", "sim_s", "metrics"],
                run_rows,
                title="== runs ==",
            )
        )

    for section_title, histogram_name in (
        ("== translation latency (stall cycles per L1 miss) ==",
         "translation.stall_cycles"),
        ("== page-walk latency (cycles) ==", "walk.latency"),
    ):
        rows = _histogram_rows(runs, histogram_name)
        if rows:
            sections.append(
                render_table(
                    ["run", "count", "p50", "p95", "p99", "max"], rows,
                    title=section_title, precision=1,
                )
            )

    link_rows = [row for record in runs for row in _link_rows(record, top)]
    if link_rows:
        sections.append(
            render_table(
                ["run", "link", "busy", "util", "heat"], link_rows,
                title=f"== NoC link utilization (top {top} per run) ==",
                precision=4,
            )
        )

    slice_rows = [row for record in runs for row in _slice_rows(record, top)]
    if slice_rows:
        sections.append(
            render_table(
                ["run", "slice", "hits", "misses", "hit_rate", "occupancy"],
                slice_rows,
                title=f"== hottest L2 slices (top {top} per run) ==",
            )
        )

    fault_rows = _fault_rows(runs)
    if fault_rows:
        sections.append(
            render_table(
                ["run", "drops", "fallbacks", "fb_hops", "degraded",
                 "sd_retries"],
                fault_rows,
                title="== fault injection ==",
            )
        )

    event_rows = _event_rows(events, window)
    if event_rows:
        suffix = ""
        if window is not None:
            suffix = f" (window {window[0] or 0}..{window[1] or 'end'})"
        sections.append(
            render_table(
                ["kind", "count", "first_cycle", "last_cycle"], event_rows,
                title=f"== events{suffix} ==",
            )
        )

    if len(sections) == 1:
        sections.append(
            "(no metric snapshots or events found — run with metrics/trace "
            "enabled, e.g. `repro run --metrics --trace-out obs.jsonl`)"
        )
    return "\n\n".join(sections)
