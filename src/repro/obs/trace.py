"""Structured event tracing: a ring buffer of typed simulation events.

Events are small dicts with a simulation-cycle timestamp and a kind
drawn from the closed :data:`EVENT_KINDS` vocabulary (an unknown kind
is a programming error and raises immediately).  The buffer is a ring:
the trace of a long run keeps the *last* ``capacity`` events and counts
what it dropped, so tracing never grows without bound and never slows
down as a run gets longer.

Determinism: events carry only simulation-derived values, and emission
order is the engine's deterministic processing order, so the exported
JSONL of a run is byte-identical across serial, parallel, and
cache-replayed executions.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, List, Optional

#: The closed vocabulary of trace event kinds.
#:
#: ``l1_lookup``      L1 TLB probe (emitted on the miss path only; hits
#:                    stay on the engine fast path and are aggregated as
#:                    counters instead)
#: ``l2_lookup``      shared-slice / private-L2 probe, with home slice
#: ``nocstar_setup``  NOCSTAR circuit setup, with retry count
#: ``smart_setup``    SMART multi-hop setup, with premature stops
#: ``walk_begin``     page-table walk issued at a core's walker
#: ``walk_end``       the walk's completion, with its latency
#: ``shootdown``      one TLB-shootdown remapping event
#: ``storm_flush``    TLB-storm context-switch flush + promotion burst
#: ``fault_drop``     transient arbiter drop of a NOCSTAR setup attempt
#: ``fault_fallback`` setup abandoned; message rerouted over the
#:                    buffered mesh around failed links
#: ``fault_degraded`` lookup degraded to a local page walk (dead or
#:                    partitioned home slice)
#: ``fault_shootdown_retry``  shootdown message dropped and retransmitted
EVENT_KINDS = (
    "l1_lookup",
    "l2_lookup",
    "nocstar_setup",
    "smart_setup",
    "walk_begin",
    "walk_end",
    "shootdown",
    "storm_flush",
    "fault_drop",
    "fault_fallback",
    "fault_degraded",
    "fault_shootdown_retry",
)
_KIND_SET = frozenset(EVENT_KINDS)

DEFAULT_CAPACITY = 65536


class EventTrace:
    """Ring-buffered trace of typed events."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError("trace capacity must be positive")
        self.capacity = capacity
        self._events: List[Dict[str, object]] = []
        self.emitted = 0  # total emit() calls, including overwritten ones
        self.dropped = 0  # events overwritten by newer ones

    def emit(self, cycle: int, kind: str, **fields) -> None:
        """Record one event at simulation cycle ``cycle``."""
        if kind not in _KIND_SET:
            raise ValueError(
                f"unknown event kind {kind!r}; known: {', '.join(EVENT_KINDS)}"
            )
        event: Dict[str, object] = {"cycle": cycle, "kind": kind}
        event.update(fields)
        if len(self._events) < self.capacity:
            self._events.append(event)
        else:
            self._events[self.emitted % self.capacity] = event
            self.dropped += 1
        self.emitted += 1

    def __len__(self) -> int:
        return len(self._events)

    def to_records(self) -> List[Dict[str, object]]:
        """Events oldest-to-newest as plain dicts (copies)."""
        if len(self._events) < self.capacity:
            ordered = self._events
        else:
            head = self.emitted % self.capacity
            ordered = self._events[head:] + self._events[:head]
        return [dict(event) for event in ordered]

    def window(
        self, start: Optional[int] = None, end: Optional[int] = None
    ) -> List[Dict[str, object]]:
        """Events with ``start <= cycle < end`` (either bound optional)."""
        return filter_window(self.to_records(), start, end)

    def export_jsonl(self, path: str) -> int:
        """Write the buffered events as JSONL; returns the line count."""
        records = self.to_records()
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(path, "w") as fh:
            for record in records:
                fh.write(json.dumps(record, sort_keys=True) + "\n")
        return len(records)

    @staticmethod
    def load_jsonl(path: str) -> List[Dict[str, object]]:
        with open(path) as fh:
            return [json.loads(line) for line in fh if line.strip()]


def filter_window(
    events: Iterable[Dict[str, object]],
    start: Optional[int] = None,
    end: Optional[int] = None,
) -> List[Dict[str, object]]:
    """Time-window filter over event records (``start`` <= cycle < ``end``).

    Tolerant of foreign records: a non-numeric ``cycle`` (e.g. from a
    hand-edited or newer-schema file) is coerced when possible and the
    record is skipped otherwise, rather than raising mid-report.
    """
    out = []
    for event in events:
        cycle = event.get("cycle", 0)
        if not isinstance(cycle, (int, float)):
            try:
                cycle = int(cycle)
            except (TypeError, ValueError):
                continue
        if start is not None and cycle < start:
            continue
        if end is not None and cycle >= end:
            continue
        out.append(event)
    return out
