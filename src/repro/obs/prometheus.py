"""Prometheus text exposition of a :class:`MetricsRegistry` snapshot.

Maps the registry's JSON snapshot (the daemon's default ``/v1/metrics``
payload) onto the Prometheus text format, version 0.0.4:

* counters  → ``<name>_total <value>`` (``# TYPE ... counter``);
* gauges    → ``<name> <value>`` (``# TYPE ... gauge``);
* histograms → cumulative ``<name>_bucket{le="..."}`` series ending in
  ``le="+Inf"``, plus ``<name>_sum`` and ``<name>_count``.

Metric names are sanitised to the Prometheus grammar
(``[a-zA-Z_:][a-zA-Z0-9_:]*``): the registry's dotted names
(``serve.queue_ms``) become underscored (``serve_queue_ms``).  The
snapshot's per-bound bucket counts (which omit empty buckets and use
``None`` for the overflow bucket) are accumulated into the cumulative
``le`` form Prometheus requires, so ``_count`` always equals the
``+Inf`` bucket.

Exposition is read-only telemetry over an already-deterministic
snapshot: rendering the same snapshot always produces the same bytes
(sorted names, stable float formatting), and nothing here feeds back
into simulation or caching.
"""

from __future__ import annotations

import re
from typing import Dict, List

#: Content type of the exposition format (what a scraper negotiates).
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def metric_name(name: str) -> str:
    """A registry name made valid for Prometheus (``serve.x`` → ``serve_x``)."""
    sanitised = _NAME_RE.sub("_", str(name))
    if not sanitised or not (sanitised[0].isalpha() or sanitised[0] in "_:"):
        sanitised = "_" + sanitised
    return sanitised


def _number(value) -> str:
    """Stable numeric formatting (ints stay ints; floats via repr)."""
    if value is None:
        return "NaN"
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def render_prometheus(snapshot: Dict[str, Dict], prefix: str = "") -> str:
    """The exposition text of one registry snapshot.

    ``prefix`` is prepended to every metric name (already-sanitised
    callers aside, it goes through :func:`metric_name` too).
    """
    lines: List[str] = []

    counters = snapshot.get("counters") or {}
    for name in sorted(counters):
        metric = metric_name(prefix + name) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_number(counters[name])}")

    gauges = snapshot.get("gauges") or {}
    for name in sorted(gauges):
        metric = metric_name(prefix + name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_number(gauges[name])}")

    histograms = snapshot.get("histograms") or {}
    for name in sorted(histograms):
        metric = metric_name(prefix + name)
        data = histograms[name] or {}
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        saw_inf = False
        for bound, count in data.get("buckets") or []:
            cumulative += count
            le = "+Inf" if bound is None else _number(bound)
            saw_inf = saw_inf or bound is None
            lines.append(f'{metric}_bucket{{le="{le}"}} {cumulative}')
        total = data.get("count", 0)
        # The snapshot omits empty buckets (including an empty overflow
        # bucket); the +Inf bucket must still close the series at the
        # full count.
        if not saw_inf:
            lines.append(f'{metric}_bucket{{le="+Inf"}} {total}')
        lines.append(f"{metric}_sum {_number(data.get('sum', 0))}")
        lines.append(f"{metric}_count {total}")

    return "\n".join(lines) + "\n" if lines else "\n"
