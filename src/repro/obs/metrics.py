"""Metrics primitives: counters, gauges, and latency histograms.

Everything here is *pure observation*: metric values are derived from
simulation-cycle timestamps and event counts only — never the wall
clock — so two runs of the same seed produce byte-identical snapshots
whether they execute serially, in a worker pool, or are replayed from
the result cache.

The subsystem hangs off a *sink* object rather than ``if enabled``
branches: instrumented components hold a reference to a sink (the
module-level :data:`NULL_SINK` by default) and call it unconditionally.
When observability is off, every call is a no-op method on
:class:`NullSink`; the L1-hit fast path of the engine carries no sink
call at all, so the disabled cost is one no-op invocation per (rare)
L1 miss.  See DESIGN.md, "Observability".
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Optional, Tuple

#: Power-of-two latency buckets, 1 .. 128Ki cycles (values above the
#: last bound land in an unbounded overflow bucket, serialised ``None``).
DEFAULT_LATENCY_BUCKETS: Tuple[int, ...] = tuple(2 ** i for i in range(18))


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A point-in-time value (occupancy, utilization, ...)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def set(self, value) -> None:
        self.value = value


class StreamingQuantile:
    """Deterministic bounded-memory quantile sketch.

    Systematic (stride) sampling: every ``stride``-th observation is
    retained in arrival order; when the reservoir fills, it is decimated
    by keeping every other retained sample and the stride doubles.  For
    streams shorter than ``max_samples`` the estimate is exact; longer
    streams degrade gracefully with no randomness anywhere, so the same
    observation sequence always yields the same percentile values.
    """

    def __init__(self, max_samples: int = 2048) -> None:
        if max_samples < 2:
            raise ValueError("need at least two samples for a quantile")
        self.max_samples = max_samples
        self.count = 0
        self._stride = 1
        self._samples: List[float] = []

    def add(self, value) -> None:
        if self.count % self._stride == 0:
            if len(self._samples) >= self.max_samples:
                self._samples = self._samples[::2]
                self._stride *= 2
                if self.count % self._stride == 0:
                    self._samples.append(value)
            else:
                self._samples.append(value)
        self.count += 1

    def percentile(self, q: float) -> Optional[float]:
        """Linear-interpolated quantile ``q`` in [0, 1]; None when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        if not self._samples:
            return None
        ordered = sorted(self._samples)
        position = q * (len(ordered) - 1)
        lo = int(position)
        hi = min(lo + 1, len(ordered) - 1)
        fraction = position - lo
        return ordered[lo] * (1.0 - fraction) + ordered[hi] * fraction

    @property
    def retained(self) -> int:
        return len(self._samples)


class Histogram:
    """Fixed-bucket histogram plus a streaming-quantile sketch.

    The buckets give the full distribution shape cheaply; the sketch
    gives accurate p50/p95/p99 without storing the stream.  Both are
    fed from the same :meth:`observe` call.
    """

    __slots__ = ("bounds", "counts", "count", "sum", "min", "max", "quantiles")

    def __init__(
        self,
        buckets: Tuple[int, ...] = DEFAULT_LATENCY_BUCKETS,
        quantile_samples: int = 2048,
    ) -> None:
        if not buckets:
            raise ValueError("need at least one bucket bound")
        self.bounds = tuple(sorted(buckets))
        self.counts = [0] * (len(self.bounds) + 1)  # +1: overflow bucket
        self.count = 0
        self.sum = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.quantiles = StreamingQuantile(quantile_samples)

    def observe(self, value) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self.quantiles.add(value)

    def percentile(self, q: float) -> Optional[float]:
        return self.quantiles.percentile(q)

    def snapshot(self) -> Dict[str, object]:
        """JSON-serialisable state; bucket bound ``None`` = overflow."""
        bounds: List[Optional[int]] = list(self.bounds) + [None]
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "buckets": [
                [bound, count]
                for bound, count in zip(bounds, self.counts)
                if count
            ],
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
        }


class MetricsRegistry:
    """Named counters, gauges, and histograms for one simulation run.

    Metrics are created on first use and snapshotted into a plain
    sorted dict — deterministic, picklable, JSON-serialisable — which is
    what :class:`~repro.sim.results.RunResult` carries and the Runner's
    telemetry embeds.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter()
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge()
        return metric

    def histogram(
        self, name: str, buckets: Tuple[int, ...] = DEFAULT_LATENCY_BUCKETS
    ) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(buckets)
        return metric

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value for name in sorted(self._gauges)
            },
            "histograms": {
                name: self._histograms[name].snapshot()
                for name in sorted(self._histograms)
            },
        }


class NullSink:
    """The disabled observability sink: every method is a no-op.

    Components keep a reference to a sink and call it unconditionally —
    this class is what makes that free when observability is off, with
    no ``if enabled`` checks strewn through hot paths.  ``enabled`` lets
    construction-time code (never per-event code) choose an observed
    variant, e.g. a network that only computes per-link accounting when
    someone is watching.
    """

    enabled = False
    registry: Optional[MetricsRegistry] = None
    trace = None  # Optional[EventTrace]; typed loosely to avoid a cycle

    def count(self, name: str, n: int = 1) -> None:
        """Increment counter ``name`` by ``n``."""

    def gauge(self, name: str, value) -> None:
        """Set gauge ``name`` to ``value``."""

    def observe(self, name: str, value) -> None:
        """Record ``value`` into histogram ``name``."""

    def event(self, cycle: int, kind: str, **fields) -> None:
        """Emit a typed trace event at simulation cycle ``cycle``."""


#: Module-level no-op sink shared by every uninstrumented component.
NULL_SINK = NullSink()


class MetricsSink(NullSink):
    """The live sink: fans writes into a registry and optional trace."""

    enabled = True

    def __init__(self, registry: Optional[MetricsRegistry] = None, trace=None):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.trace = trace

    def count(self, name: str, n: int = 1) -> None:
        self.registry.counter(name).inc(n)

    def gauge(self, name: str, value) -> None:
        self.registry.gauge(name).set(value)

    def observe(self, name: str, value) -> None:
        self.registry.histogram(name).observe(value)

    def event(self, cycle: int, kind: str, **fields) -> None:
        if self.trace is not None:
            self.trace.emit(cycle, kind, **fields)
