"""Span-based request tracing with propagated correlation IDs.

A *span* is one timed operation — a client submit, an HTTP handler, a
queue wait, a worker execution, a trace build — identified by a
``(trace_id, span_id, parent_id)`` triple.  Spans from every layer of
the serving tier (ServeClient → daemon → JobManager → pool worker →
build/sim split) share one ``trace_id``, so one request's latency can
be decomposed across processes the way the paper decomposes a
translation's cycles across L1 miss, interconnect traversal, slice
lookup, and page walk.

Purity is the enforced invariant: spans are wall-clock telemetry and
live *only* in sidecar JSONL files, ``JobStatus.telemetry``, and the
``serve.*`` metrics namespace.  They are never part of
:class:`~repro.sim.results.RunResult` bytes, never hashed into
``job_id`` (``SubmitRequest.canonical()`` excludes the trace context),
and never part of the result-cache ``unit_key`` — so tracing a run
cannot change what it simulates or how it caches
(``tests/obs/test_spans.py`` and ``tests/serve/test_schema.py`` assert
this literally).

Wire form of one span (one JSONL line, ``record: "span"``)::

    {"record": "span", "schema": 1, "trace_id": ..., "span_id": ...,
     "parent_id": ..., "name": ..., "start_s": ..., "end_s": ...,
     "status": "ok", "attrs": {...}}

Propagation: the client puts ``{"trace_id", "parent_id"}`` into the
optional ``trace_context`` field of :class:`SubmitRequest` (a
serving-only field, like ``client_id``); the daemon parents its spans
under it and returns them in ``JobStatus.telemetry["spans"]``, where
the client merges them into its own sidecar — one file, one tree,
rendered by ``repro trace``.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Version of the span record layout.
SPAN_SCHEMA = 1

#: Keys a wire trace context may carry (anything else is rejected at
#: the schema boundary so typos fail loudly, not silently detach trees).
CONTEXT_KEYS = frozenset({"trace_id", "parent_id"})


def new_id() -> str:
    """A fresh 16-hex-digit correlation id.

    Randomness is fine here — ids exist only in telemetry sidecars, so
    they can never perturb a cache key or a simulated outcome.
    """
    return os.urandom(8).hex()


def validate_context(context) -> Optional[Dict[str, str]]:
    """Check a wire ``trace_context``; returns it (or None) normalised.

    Raises ``ValueError`` on malformed contexts: a bad context means a
    broken client, and silently dropping it would detach every server
    span from the tree the client is trying to assemble.
    """
    if context is None:
        return None
    if not isinstance(context, dict):
        raise ValueError(
            f"trace_context must be an object (got {type(context).__name__})"
        )
    unknown = set(context) - CONTEXT_KEYS
    if unknown:
        raise ValueError(
            f"trace_context: unknown key(s) {sorted(unknown)}; "
            f"allowed: {sorted(CONTEXT_KEYS)}"
        )
    for key, value in context.items():
        if not isinstance(value, str) or not value:
            raise ValueError(
                f"trace_context[{key!r}] must be a non-empty string"
            )
    if "trace_id" not in context:
        raise ValueError("trace_context needs a trace_id")
    return dict(context)


class Span:
    """One in-flight timed operation; finished spans become records."""

    __slots__ = (
        "trace_id", "span_id", "parent_id", "name", "start_s", "end_s",
        "status", "attrs",
    )

    def __init__(
        self,
        name: str,
        trace_id: str,
        parent_id: Optional[str] = None,
        start_s: Optional[float] = None,
        **attrs,
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = new_id()
        self.parent_id = parent_id
        self.start_s = time.time() if start_s is None else start_s
        self.end_s: Optional[float] = None
        self.status = "ok"
        self.attrs: Dict[str, object] = dict(attrs)

    @property
    def duration_s(self) -> float:
        end = self.end_s if self.end_s is not None else time.time()
        return max(0.0, end - self.start_s)

    def context(self) -> Dict[str, str]:
        """The wire ``trace_context`` naming this span as the parent."""
        return {"trace_id": self.trace_id, "parent_id": self.span_id}

    def finish(self, end_s: Optional[float] = None) -> None:
        if self.end_s is None:
            self.end_s = time.time() if end_s is None else end_s

    def to_dict(self) -> Dict[str, object]:
        return span_record(
            trace_id=self.trace_id,
            span_id=self.span_id,
            parent_id=self.parent_id,
            name=self.name,
            start_s=self.start_s,
            end_s=self.end_s if self.end_s is not None else self.start_s,
            status=self.status,
            attrs=self.attrs,
        )


def span_record(
    *,
    name: str,
    trace_id: str,
    start_s: float,
    end_s: float,
    span_id: Optional[str] = None,
    parent_id: Optional[str] = None,
    status: str = "ok",
    attrs: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """A finished span as a plain JSONL-ready record.

    Layers that learn timings after the fact — the JobManager
    synthesising worker ``build``/``sim`` children from the Runner's
    schema-3 split — build records directly instead of running a live
    :class:`Span`.
    """
    return {
        "record": "span",
        "schema": SPAN_SCHEMA,
        "trace_id": trace_id,
        "span_id": span_id if span_id is not None else new_id(),
        "parent_id": parent_id,
        "name": name,
        "start_s": round(float(start_s), 6),
        "end_s": round(float(end_s), 6),
        "status": status,
        "attrs": dict(attrs or {}),
    }


class Tracer:
    """Collects one process's finished spans for one trace.

    Not thread-safe by design — each request path owns its tracer the
    way each run owns its :class:`~repro.obs.MetricsRegistry`.  Foreign
    span records (e.g. the daemon's, returned in job telemetry) are
    merged with :meth:`extend`.
    """

    def __init__(self, trace_id: Optional[str] = None) -> None:
        self.trace_id = trace_id or new_id()
        self.records: List[Dict[str, object]] = []

    def start(
        self, name: str, parent: Optional[Span] = None, **attrs
    ) -> Span:
        return Span(
            name,
            self.trace_id,
            parent_id=parent.span_id if parent is not None else None,
            **attrs,
        )

    def finish(self, span: Span) -> Span:
        span.finish()
        self.records.append(span.to_dict())
        return span

    @contextmanager
    def span(self, name: str, parent: Optional[Span] = None, **attrs):
        span = self.start(name, parent=parent, **attrs)
        try:
            yield span
        except BaseException as exc:
            span.status = f"error: {type(exc).__name__}"
            raise
        finally:
            self.finish(span)

    def extend(self, records: Iterable[Dict[str, object]]) -> int:
        """Merge foreign span records (daemon telemetry); returns count."""
        added = 0
        for record in records or ():
            if isinstance(record, dict) and record.get("record") == "span":
                self.records.append(dict(record))
                added += 1
        return added

    def export_jsonl(self, path: str) -> int:
        return write_spans(path, self.records)


# ----------------------------------------------------------------------
# Sidecar I/O


def write_spans(path: str, records: Sequence[Dict[str, object]]) -> int:
    """Write span records as JSONL, sorted by start time; returns count."""
    ordered = sorted(
        records, key=lambda r: (r.get("start_s", 0.0), r.get("end_s", 0.0))
    )
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w") as fh:
        for record in ordered:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
    return len(ordered)


def load_spans(path: str) -> List[Dict[str, object]]:
    """Load span records from a JSONL sidecar; non-span lines skipped.

    Tolerant like the report loader: a span file may share a sidecar
    with other telemetry records, and malformed lines are evidence of a
    partial write, not a reason to refuse the rest.
    """
    records: List[Dict[str, object]] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict) and record.get("record") == "span":
                records.append(record)
    return records


# ----------------------------------------------------------------------
# Tree analysis & rendering


def build_tree(
    records: Sequence[Dict[str, object]],
) -> Tuple[List[Dict[str, object]], Dict[str, List[Dict[str, object]]]]:
    """``(roots, children_by_span_id)`` from flat span records.

    A span whose ``parent_id`` is absent from the record set is a root
    (partial sidecars — e.g. ``--no-wait`` submissions that never
    fetched the daemon's spans — still render as a forest).
    """
    by_id = {str(r.get("span_id")): r for r in records}
    children: Dict[str, List[Dict[str, object]]] = {}
    roots: List[Dict[str, object]] = []
    for record in records:
        parent = record.get("parent_id")
        if parent is not None and str(parent) in by_id:
            children.setdefault(str(parent), []).append(record)
        else:
            roots.append(record)
    for siblings in children.values():
        siblings.sort(key=lambda r: (r.get("start_s", 0.0), str(r.get("span_id"))))
    roots.sort(key=lambda r: (r.get("start_s", 0.0), str(r.get("span_id"))))
    return roots, children


def _duration(record: Dict[str, object]) -> float:
    try:
        return max(0.0, float(record["end_s"]) - float(record["start_s"]))
    except (KeyError, TypeError, ValueError):
        return 0.0


def _interval_union(intervals: List[Tuple[float, float]]) -> float:
    """Total length covered by a set of (possibly overlapping) intervals."""
    total = 0.0
    last_end = None
    for start, end in sorted(intervals):
        if last_end is None or start > last_end:
            total += max(0.0, end - start)
            last_end = end
        elif end > last_end:
            total += end - last_end
            last_end = end
    return total


def coverage(
    record: Dict[str, object],
    children: Dict[str, List[Dict[str, object]]],
) -> Dict[str, float]:
    """Child coverage of one span: ``{duration, child_s, gap_s}``.

    ``child_s`` is the union of the children's intervals clipped to the
    parent (concurrent children are not double-counted) and ``gap_s``
    is the uncovered remainder, so ``duration == child_s + gap_s``
    holds exactly — the identity the serve smoke asserts end-to-end.
    """
    duration = _duration(record)
    intervals = []
    try:
        lo, hi = float(record["start_s"]), float(record["end_s"])
    except (KeyError, TypeError, ValueError):
        lo, hi = 0.0, 0.0
    for child in children.get(str(record.get("span_id")), []):
        try:
            start = max(lo, float(child["start_s"]))
            end = min(hi, float(child["end_s"]))
        except (KeyError, TypeError, ValueError):
            continue
        if end > start:
            intervals.append((start, end))
    child_s = min(duration, _interval_union(intervals))
    return {
        "duration": duration,
        "child_s": child_s,
        "gap_s": max(0.0, duration - child_s),
    }


def self_times(
    records: Sequence[Dict[str, object]],
) -> List[Tuple[float, Dict[str, object]]]:
    """``(self_seconds, record)`` pairs, largest first.

    A span's *self time* is its duration minus the union of its
    children — the part of the latency this layer is itself
    responsible for.  Ranking by self time is the critical-path table:
    the layers where an optimisation would actually move end-to-end
    latency.
    """
    _, children = build_tree(records)
    ranked = [
        (coverage(record, children)["gap_s"], record) for record in records
    ]
    ranked.sort(
        key=lambda item: (-item[0], str(item[1].get("name")),
                          str(item[1].get("span_id")))
    )
    return ranked


def render_tree(records: Sequence[Dict[str, object]], top: int = 5) -> str:
    """The ``repro trace`` rendering: tree + attribution + critical path."""
    from repro.analysis.tables import render_table

    if not records:
        return "(no span records found)"
    roots, children = build_tree(records)
    origin = min(float(r.get("start_s", 0.0)) for r in records)
    lines: List[str] = [
        f"span trace — {len(records)} span(s), {len(roots)} root(s)"
    ]

    def walk(record: Dict[str, object], depth: int) -> None:
        info = coverage(record, children)
        offset = float(record.get("start_s", 0.0)) - origin
        status = record.get("status", "ok")
        flag = "" if status == "ok" else f"  [{status}]"
        detail = ""
        kids = children.get(str(record.get("span_id")), [])
        if kids:
            detail = (f"  (children {info['child_s'] * 1000.0:.1f}ms, "
                      f"gap {info['gap_s'] * 1000.0:.1f}ms)")
        lines.append(
            f"{'  ' * depth}{record.get('name', '?')}  "
            f"+{offset * 1000.0:.1f}ms  {info['duration'] * 1000.0:.1f}ms"
            f"{detail}{flag}"
        )
        for child in kids:
            walk(child, depth + 1)

    lines.append("")
    for root in roots:
        walk(root, 0)

    total = sum(_duration(root) for root in roots)
    rows = []
    for self_s, record in self_times(records)[:top]:
        rows.append(
            [
                str(record.get("name", "?")),
                f"{_duration(record) * 1000.0:.1f}",
                f"{self_s * 1000.0:.1f}",
                f"{(self_s / total * 100.0) if total else 0.0:.1f}%",
            ]
        )
    lines.append("")
    lines.append(
        render_table(
            ["span", "total ms", "self ms", "share of trace"],
            rows,
            title=f"== critical path (top {min(top, len(rows))} by self time) ==",
        )
    )
    return "\n".join(lines)
