"""Fault-aware mesh routing: XY, YX escape, deterministic BFS fallback.

The resilient fabrics route around permanently failed links in three
tiers, cheapest first:

1. **XY** — the mesh's native dimension-ordered route (what the link
   arbiters assume).  Used whenever every link of it is alive.
2. **YX escape** — the transposed dimension order.  XY and YX are
   link-disjoint except at the endpoints' row/column, so a single dead
   link never kills both.
3. **BFS of last resort** — a deterministic breadth-first search over
   the alive links (neighbours expanded in sorted tile order, so the
   chosen path is a pure function of the failed-link set).  This makes
   the router *complete*: ``route`` returns a path exactly when one
   exists, so ``None`` certifies that the failure set genuinely
   partitions ``src`` from ``dst`` — the property the partition tests
   pin down.

Routes are memoised per (src, dst); the failure set is immutable for a
run, so the cache never needs invalidation.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Tuple

from repro.noc.topology import Link, MeshTopology


class UnreachableError(RuntimeError):
    """Raised when a message is sent between partitioned tiles.

    The simulator checks reachability *before* issuing transactions and
    degrades unreachable lookups to local page walks, so this escaping
    a run indicates a protocol bug, not an expected fault outcome.
    """


class FaultAwareRouter:
    """Routes around a fixed set of failed directed links."""

    def __init__(
        self, topology: MeshTopology, failed_links: Iterable[Link] = ()
    ) -> None:
        self.topology = topology
        self.dead = frozenset((int(a), int(b)) for a, b in failed_links)
        self._routes: Dict[Tuple[int, int], Optional[Tuple[Link, ...]]] = {}
        #: Alive out-neighbours per tile, sorted (deterministic BFS order).
        self._neighbors: Dict[int, List[int]] = {}
        for src, dst in sorted(topology.all_links()):
            if (src, dst) not in self.dead:
                self._neighbors.setdefault(src, []).append(dst)

    def alive(self, link: Link) -> bool:
        return link not in self.dead

    def path_alive(self, path: Iterable[Link]) -> bool:
        return all(link not in self.dead for link in path)

    def route(self, src: int, dst: int) -> Optional[Tuple[Link, ...]]:
        """Alive path ``src -> dst``; ``()`` when local, ``None`` when
        the failure set partitions the pair."""
        if src == dst:
            return ()
        key = (src, dst)
        cached = self._routes.get(key, False)
        if cached is not False:
            return cached
        path = self._compute(src, dst)
        self._routes[key] = path
        return path

    def reachable(self, src: int, dst: int) -> bool:
        return self.route(src, dst) is not None

    def reachable_round_trip(self, src: int, dst: int) -> bool:
        """Both directions routable (request and response legs)."""
        return self.reachable(src, dst) and self.reachable(dst, src)

    def unreachable_pairs(self) -> List[Tuple[int, int]]:
        """Every ordered (src, dst) pair the failure set partitions."""
        n = self.topology.num_tiles
        return [
            (src, dst)
            for src in range(n)
            for dst in range(n)
            if src != dst and not self.reachable(src, dst)
        ]

    @property
    def partitioned(self) -> bool:
        """True when at least one ordered tile pair cannot communicate."""
        return bool(self.unreachable_pairs())

    # ------------------------------------------------------------------

    def _compute(self, src: int, dst: int) -> Optional[Tuple[Link, ...]]:
        xy = tuple(self.topology.xy_path(src, dst))
        if self.path_alive(xy):
            return xy
        yx = tuple(self.topology.yx_path(src, dst))
        if self.path_alive(yx):
            return yx
        return self._bfs(src, dst)

    def _bfs(self, src: int, dst: int) -> Optional[Tuple[Link, ...]]:
        parents: Dict[int, int] = {src: src}
        frontier = deque([src])
        while frontier:
            tile = frontier.popleft()
            if tile == dst:
                break
            for neighbor in self._neighbors.get(tile, ()):
                if neighbor not in parents:
                    parents[neighbor] = tile
                    frontier.append(neighbor)
        if dst not in parents:
            return None
        hops: List[Link] = []
        tile = dst
        while tile != src:
            parent = parents[tile]
            hops.append((parent, tile))
            tile = parent
        return tuple(reversed(hops))
