"""``repro.faults`` — deterministic fault injection & resilience.

Three layers, mirroring ``repro.obs``'s structure:

* :mod:`repro.faults.models` — the typed fault models (permanent
  :class:`LinkFailure`, transient :class:`ArbiterDrop`, permanent
  :class:`SliceFailure`, :class:`WalkerSlowdown`) composed into a
  :class:`FaultSpec`, which *compiles* into a frozen :class:`FaultPlan`:
  the concrete, seed-derived set of failures one run injects.  Both the
  spec and the plan are frozen dataclasses, so either can sit in a
  :class:`~repro.sim.scenario.Scenario` and participate in the result
  cache key.
* :mod:`repro.faults.routing` — :class:`FaultAwareRouter`: XY routing
  with a YX escape path and a deterministic BFS of last resort around
  failed links.  ``route()`` returns a path exactly when one exists over
  the alive links, so "unreachable" means the mesh is genuinely
  partitioned.
* :mod:`repro.faults.inject` — :class:`FaultInjector`, the per-run
  mutable state: the runtime RNG (seeded from the plan's sub-seed, no
  module-level randomness anywhere), the route cache, and the
  degradation counters the simulator reports.

Determinism contract: every stochastic choice — which links die, which
slices die, whether a given setup attempt is dropped — derives from
sub-seeds split from the scenario seed with :func:`derive_seed`.  Same
seed, same plan, same drop sequence, byte-identical results across
serial, parallel, and cache-replayed executions.  With no plan (the
default) the simulator follows the exact pre-fault code path.
"""

from repro.faults.inject import FaultInjector
from repro.faults.models import (
    ArbiterDrop,
    FaultPlan,
    FaultSpec,
    LinkFailure,
    SliceFailure,
    WalkerSlowdown,
    derive_seed,
)
from repro.faults.routing import FaultAwareRouter, UnreachableError

__all__ = [
    "LinkFailure",
    "ArbiterDrop",
    "SliceFailure",
    "WalkerSlowdown",
    "FaultSpec",
    "FaultPlan",
    "derive_seed",
    "FaultAwareRouter",
    "UnreachableError",
    "FaultInjector",
]
