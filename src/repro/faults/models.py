"""Typed fault models and their compilation into a frozen FaultPlan.

The *spec* layer describes failure **rates** (fail 5% of links, drop
setups with probability 0.01); the *plan* layer is the concrete,
reproducible outcome of rolling those rates for one seed (exactly these
links are dead, exactly this sub-seed drives runtime drops).  A
:class:`FaultSpec` compiles into a :class:`FaultPlan` with
:meth:`FaultSpec.compile`; a plan can also be written out directly when
a test or experiment wants to pin an exact failure set.

Seed discipline: compilation derives one sub-seed per stochastic
decision with :func:`derive_seed` (a SHA-256 split of the base seed and
a label), so fault draws can never alias workload-generation draws and
no module-level RNG exists anywhere in the subsystem.

Nested sampling: the failed-link (and failed-slice) sets for one base
seed are prefixes of a single seeded permutation, so sweeping the rate
upward only ever *adds* failures.  This is what makes degradation
curves monotone by construction instead of by luck.
"""

from __future__ import annotations

import hashlib
import math
import random
from dataclasses import dataclass, field
from typing import Tuple

from repro.noc.topology import Link, MeshTopology


def derive_seed(base: int, label: str) -> int:
    """Split a deterministic 63-bit sub-seed from ``base`` for ``label``.

    SHA-256 of ``"<base>:<label>"`` — stable across platforms and Python
    versions (unlike ``hash()``), collision-free for practical purposes,
    and independent per label so consumers can never share a stream.
    """
    digest = hashlib.sha256(f"{base}:{label}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") & ((1 << 63) - 1)


# ----------------------------------------------------------------------
# The typed fault models (the spec layer)


@dataclass(frozen=True)
class LinkFailure:
    """Permanent failure of directed mesh links.

    ``rate`` fails that fraction of the mesh's directed links (chosen by
    a seeded permutation at compile time); ``links`` pins explicit
    additional failures (useful for targeted experiments and tests).
    """

    rate: float = 0.0
    links: Tuple[Link, ...] = ()

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("link failure rate must be in [0, 1]")
        object.__setattr__(
            self, "links", tuple((int(a), int(b)) for a, b in self.links)
        )


@dataclass(frozen=True)
class ArbiterDrop:
    """Transient arbiter fault: each setup attempt is independently
    dropped with this probability (the grant is lost, the requester
    backs off and retries)."""

    probability: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("arbiter drop probability must be in [0, 1]")


@dataclass(frozen=True)
class SliceFailure:
    """Permanent failure of shared-L2 TLB slices (the SRAM at a tile).

    A dead slice serves no lookups and accepts no fills; requests homed
    to it degrade to a local page walk.  The tile's *router* stays
    alive — slice death and link death are independent fault axes.
    """

    rate: float = 0.0
    slices: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("slice failure rate must be in [0, 1]")
        object.__setattr__(
            self, "slices", tuple(int(s) for s in self.slices)
        )


@dataclass(frozen=True)
class WalkerSlowdown:
    """Degraded page-table walkers: every walk's latency is multiplied
    by ``factor`` (>= 1), modelling a failing memory path under the
    walker rather than the TLB fabric itself."""

    factor: float = 1.0

    def __post_init__(self) -> None:
        if self.factor < 1.0:
            raise ValueError("walker slowdown factor must be >= 1.0")


@dataclass(frozen=True)
class FaultSpec:
    """A composition of fault models plus the resilience knobs.

    ``setup_timeout`` bounds how many cycles a NOCSTAR path setup may
    spend retrying (contention + transient drops) before abandoning the
    circuit-switched fabric and falling back to buffered-mesh routing;
    ``max_backoff`` caps the exponential backoff between dropped
    attempts; ``max_retries`` bounds shootdown retransmissions (the
    final attempt is delivered via the reliable escalation path, so a
    shootdown can never livelock).
    """

    links: LinkFailure = field(default_factory=LinkFailure)
    arbiter: ArbiterDrop = field(default_factory=ArbiterDrop)
    slices: SliceFailure = field(default_factory=SliceFailure)
    walker: WalkerSlowdown = field(default_factory=WalkerSlowdown)
    setup_timeout: int = 64
    max_backoff: int = 8
    max_retries: int = 8

    def __post_init__(self) -> None:
        if self.setup_timeout < 1:
            raise ValueError("setup_timeout must be >= 1 cycle")
        if self.max_backoff < 1:
            raise ValueError("max_backoff must be >= 1 cycle")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")

    def compile(self, num_tiles: int, base_seed: int) -> "FaultPlan":
        """Roll the rates into a concrete :class:`FaultPlan`.

        Deterministic: ``(spec, num_tiles, base_seed)`` fully determines
        the plan.  Rate-selected links/slices are prefixes of one seeded
        permutation (nested across rates; see module docstring), and
        explicit ``links``/``slices`` are validated against the mesh and
        added on top.
        """
        topology = MeshTopology(num_tiles)
        all_links = sorted(topology.all_links())
        link_set = set(all_links)
        for link in self.links.links:
            if link not in link_set:
                raise ValueError(f"{link} is not a link of the {num_tiles}-tile mesh")
        for index in self.slices.slices:
            if not 0 <= index < num_tiles:
                raise ValueError(f"slice {index} outside the {num_tiles}-tile mesh")

        order = list(all_links)
        random.Random(derive_seed(base_seed, "faults.links")).shuffle(order)
        k = int(round(self.links.rate * len(order)))
        failed_links = set(order[:k]) | set(self.links.links)

        slice_order = list(range(num_tiles))
        random.Random(derive_seed(base_seed, "faults.slices")).shuffle(slice_order)
        k = int(round(self.slices.rate * num_tiles))
        failed_slices = set(slice_order[:k]) | set(self.slices.slices)

        return FaultPlan(
            num_tiles=num_tiles,
            failed_links=tuple(sorted(failed_links)),
            arbiter_drop_prob=self.arbiter.probability,
            failed_slices=tuple(sorted(failed_slices)),
            walker_slowdown=self.walker.factor,
            setup_timeout=self.setup_timeout,
            max_backoff=self.max_backoff,
            max_retries=self.max_retries,
            seed=derive_seed(base_seed, "faults.runtime"),
        )


# ----------------------------------------------------------------------
# The compiled plan


@dataclass(frozen=True)
class FaultPlan:
    """The frozen, concrete fault injection of one run.

    Pure data: hashable, canonicalisable (a cache-key field of
    :class:`~repro.sim.scenario.RunUnit`), and complete — everything the
    runtime :class:`~repro.faults.inject.FaultInjector` needs, including
    the sub-seed that drives transient drop draws.
    """

    num_tiles: int
    failed_links: Tuple[Link, ...] = ()
    arbiter_drop_prob: float = 0.0
    failed_slices: Tuple[int, ...] = ()
    walker_slowdown: float = 1.0
    setup_timeout: int = 64
    max_backoff: int = 8
    max_retries: int = 8
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_tiles < 1:
            raise ValueError("need at least one tile")
        if not 0.0 <= self.arbiter_drop_prob <= 1.0:
            raise ValueError("arbiter drop probability must be in [0, 1]")
        if self.walker_slowdown < 1.0:
            raise ValueError("walker slowdown must be >= 1.0")
        if self.setup_timeout < 1 or self.max_backoff < 1 or self.max_retries < 0:
            raise ValueError("resilience knobs out of range")
        object.__setattr__(
            self,
            "failed_links",
            tuple(sorted((int(a), int(b)) for a, b in self.failed_links)),
        )
        object.__setattr__(
            self, "failed_slices", tuple(sorted(int(s) for s in self.failed_slices))
        )
        for index in self.failed_slices:
            if not 0 <= index < self.num_tiles:
                raise ValueError(f"failed slice {index} outside the mesh")

    @property
    def is_empty(self) -> bool:
        """True when injecting this plan cannot change any outcome.

        The engine treats an empty plan exactly like ``faults=None`` —
        the fault-free code path — so a rate-0 sweep point is bit-
        identical to the plain run by construction.
        """
        return (
            not self.failed_links
            and not self.failed_slices
            and self.arbiter_drop_prob == 0.0
            and self.walker_slowdown == 1.0
        )

    def scaled_walk_latency(self, latency: int) -> int:
        """A walk's latency under the walker-slowdown model."""
        if self.walker_slowdown == 1.0:
            return latency
        return int(math.ceil(latency * self.walker_slowdown))
