"""Runtime fault-injection state: the RNG, the router, the counters.

One :class:`FaultInjector` lives for one simulation run (the
:class:`~repro.sim.system.System` creates it from the run's
:class:`~repro.faults.models.FaultPlan` and hands it to the resilient
network models).  It owns:

* the runtime RNG — ``random.Random(plan.seed)``, consumed in the
  engine's deterministic processing order, so the drop sequence of a
  seed is identical across serial, parallel, and cache-replayed runs;
* the :class:`~repro.faults.routing.FaultAwareRouter` with its route
  cache, shared by every fabric and by the shootdown coherence NoC;
* the degradation counters surfaced in ``RunResult.faults``, metric
  counters (``faults.*``), the ``faults.backoff_cycles`` histogram, and
  the ``fault_*`` trace events.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from repro.faults.models import FaultPlan
from repro.faults.routing import FaultAwareRouter
from repro.noc.topology import MeshTopology
from repro.obs import NULL_SINK

#: Cycles per hop of the buffered-mesh fallback path (router + wire),
#: matching the coherence NoC's cost in ``System._plain_send``.
FALLBACK_CYCLES_PER_HOP = 2
#: Injection cycle of a fallback message (entering the buffered mesh).
FALLBACK_INJECTION_CYCLES = 1


class FaultInjector:
    """Mutable per-run fault state shared by the resilient components."""

    def __init__(
        self,
        plan: FaultPlan,
        topology: MeshTopology,
        sink=NULL_SINK,
    ) -> None:
        if plan.num_tiles != topology.num_tiles:
            raise ValueError(
                f"plan compiled for {plan.num_tiles} tiles, topology has "
                f"{topology.num_tiles}"
            )
        self.plan = plan
        self.topology = topology
        self.sink = sink
        self.router = FaultAwareRouter(topology, plan.failed_links)
        self.rng = random.Random(plan.seed)
        self.failed_slices = frozenset(plan.failed_slices)
        # --- degradation counters ------------------------------------
        self.arbiter_drops = 0
        self.fallback_messages = 0
        self.fallback_hops = 0
        self.degraded_walks = 0
        self.shootdown_drops = 0
        self.shootdown_retries = 0
        self.shootdown_unreachable = 0
        self.walk_slowdown_cycles = 0

    # ------------------------------------------------------------------
    # Stochastic draws (engine-deterministic order)

    def drop_setup(self) -> bool:
        """One transient-arbiter draw for one setup attempt."""
        p = self.plan.arbiter_drop_prob
        return p > 0.0 and self.rng.random() < p

    def record_drop(self, cycle: int, src: int, dst: int, backoff: int) -> None:
        self.arbiter_drops += 1
        self.sink.observe("faults.backoff_cycles", backoff)
        self.sink.event(cycle, "fault_drop", src=src, dst=dst, backoff=backoff)

    # ------------------------------------------------------------------
    # Degradation paths

    def slice_dead(self, tile: int) -> bool:
        return tile in self.failed_slices

    def record_fallback(self, cycle: int, src: int, dst: int, hops: int) -> None:
        self.fallback_messages += 1
        self.fallback_hops += hops
        self.sink.observe("faults.fallback_hops", hops)
        self.sink.event(cycle, "fault_fallback", src=src, dst=dst, hops=hops)

    def record_degraded_walk(self, cycle: int, core: int, home: int) -> None:
        self.degraded_walks += 1
        self.sink.event(cycle, "fault_degraded", core=core, home=home)

    def walk_latency(self, latency: int) -> int:
        """Apply the walker-slowdown model to one walk's latency."""
        scaled = self.plan.scaled_walk_latency(latency)
        self.walk_slowdown_cycles += scaled - latency
        return scaled

    # ------------------------------------------------------------------
    # Shootdown delivery with retry-on-drop

    def shootdown_send(self, src: int, dst: int, now: int) -> Optional[int]:
        """Deliver one shootdown relay/invalidate over the coherence NoC.

        Routes around failed links; each attempt may be transiently
        dropped (detected after a round-trip-ish timeout, retried with
        exponential backoff).  After ``max_retries`` drops the message
        is escalated to the reliable path and delivered — a shootdown
        can never livelock.  Returns the delivery cycle, or ``None``
        when the destination is partitioned away (the caller skips the
        invalidate: a slice nobody can reach serves nobody stale data).
        """
        path = self.router.route(src, dst)
        if path is None:
            self.shootdown_unreachable += 1
            self.sink.event(now, "fault_degraded", core=src, home=dst)
            return None
        hops = len(path)
        cost = 2 * hops + 1
        t = now
        backoff = 1
        retries = 0
        while retries < self.plan.max_retries and self.drop_setup():
            retries += 1
            self.shootdown_drops += 1
            self.sink.event(
                t, "fault_shootdown_retry", src=src, dst=dst, attempt=retries
            )
            t += cost + backoff  # loss detected, back off, retransmit
            backoff = min(backoff * 2, self.plan.max_backoff)
        self.shootdown_retries += retries
        return t + cost

    # ------------------------------------------------------------------
    # Reporting

    def summary(self) -> Dict[str, int]:
        """The fault summary carried on ``RunResult.faults``."""
        return {
            "failed_links": len(self.plan.failed_links),
            "failed_slices": len(self.plan.failed_slices),
            "arbiter_drops": self.arbiter_drops,
            "fallback_messages": self.fallback_messages,
            "fallback_hops": self.fallback_hops,
            "degraded_walks": self.degraded_walks,
            "shootdown_drops": self.shootdown_drops,
            "shootdown_retries": self.shootdown_retries,
            "shootdown_unreachable": self.shootdown_unreachable,
            "walk_slowdown_cycles": self.walk_slowdown_cycles,
        }

    def publish_metrics(self) -> None:
        """Fold the counters into the metrics sink (end of run)."""
        sink = self.sink
        if not sink.enabled:
            return
        for name, value in self.summary().items():
            if name in ("failed_links", "failed_slices"):
                sink.gauge(f"faults.{name}", value)
            else:
                sink.count(f"faults.{name}", value)
