"""Virtual-memory substrate: addresses, page tables, walkers, address spaces."""

from repro.vm.address import (
    PAGE_4K,
    PAGE_2M,
    PAGE_1G,
    translation_vpn,
    va_to_vpn,
    vpn_to_va,
)
from repro.vm.address_space import AddressSpace, Extent, SharedRegion
from repro.vm.asid import AsidAssignment, AsidManager
from repro.vm.page_table import PageTable, PTE
from repro.vm.superpage import SuperpagePolicy
from repro.vm.walker import (
    FixedLatencyWalker,
    PageTableWalker,
    WalkResult,
    WalkerQueue,
)

__all__ = [
    "PAGE_4K",
    "PAGE_2M",
    "PAGE_1G",
    "translation_vpn",
    "va_to_vpn",
    "vpn_to_va",
    "AddressSpace",
    "Extent",
    "SharedRegion",
    "AsidAssignment",
    "AsidManager",
    "PageTable",
    "PTE",
    "SuperpagePolicy",
    "FixedLatencyWalker",
    "PageTableWalker",
    "WalkResult",
    "WalkerQueue",
]
