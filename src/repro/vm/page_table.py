"""x86-64 four-level radix page tables with synthetic physical placement.

Each table node is a 4KB frame of 512 8-byte entries.  Nodes and data
frames are allocated from a bump allocator of synthetic physical
addresses, so the *cache-line address* of every entry a walk touches is
well-defined — that is what the variable-latency walker feeds through
the cache hierarchy to obtain realistic walk latencies.

Shared mappings (tagged ``GLOBAL_ASID``) live in their own table, so
their upper-level nodes — exactly like shared kernel/library page
tables on a real system — are shared in the caches by every core.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.vm.address import (
    PAGE_1G,
    PAGE_2M,
    PAGE_4K,
    PAGE_SHIFT_4K,
    translation_vpn,
)

FRAME_BYTES = 4096
ENTRY_BYTES = 8
FANOUT = 512

#: Radix levels from root to leaf; a 2MB page terminates at the PD
#: (3 node accesses) and a 1GB page at the PDPT (2 node accesses).
LEVELS = ("pml4", "pdpt", "pd", "pt")
_LEAF_DEPTH = {PAGE_4K: 4, PAGE_2M: 3, PAGE_1G: 2}


@dataclass(frozen=True)
class PTE:
    """A translation: physical page number at the mapping's granularity."""

    ppn: int
    page_size: int
    asid: int


class PageTable:
    """Radix page tables for all address spaces, plus frame allocation."""

    def __init__(self) -> None:
        # (asid, level_depth, node_index_path) -> physical frame base.
        self._nodes: Dict[Tuple[int, int, Tuple[int, ...]], int] = {}
        self._ptes: Dict[Tuple[int, int, int], PTE] = {}
        # (asid, page_size, page_number) -> (walk addresses, PTE); see
        # walk_info.  Invalidated by unmap.
        self._walk_info: Dict[
            Tuple[int, int, int], Tuple[Tuple[int, ...], PTE]
        ] = {}
        self._next_frame = 1  # frame 0 reserved
        self.nodes_allocated = 0
        self.pages_mapped = 0

    def _allocate_frame(self) -> int:
        frame = self._next_frame * FRAME_BYTES
        self._next_frame += 1
        return frame

    def _node_frame(self, asid: int, depth: int, path: Tuple[int, ...]) -> int:
        key = (asid, depth, path)
        frame = self._nodes.get(key)
        if frame is None:
            frame = self._nodes[key] = self._allocate_frame()
            self.nodes_allocated += 1
        return frame

    @staticmethod
    def _indices(vpn: int) -> Tuple[int, int, int, int]:
        """Radix indices (PML4, PDPT, PD, PT) for a 4KB VPN."""
        return (
            (vpn >> 27) & (FANOUT - 1),
            (vpn >> 18) & (FANOUT - 1),
            (vpn >> 9) & (FANOUT - 1),
            vpn & (FANOUT - 1),
        )

    def map_page(self, asid: int, vpn: int, page_size: int) -> PTE:
        """Ensure the translation covering 4KB VPN ``vpn`` exists."""
        page_number = translation_vpn(vpn, page_size)
        key = (asid, page_size, page_number)
        pte = self._ptes.get(key)
        if pte is None:
            ppn = self._allocate_frame() >> PAGE_SHIFT_4K
            pte = self._ptes[key] = PTE(ppn=ppn, page_size=page_size, asid=asid)
            self.pages_mapped += 1
            # Materialise the node chain so walk addresses are stable.
            self.walk_addresses(asid, vpn, page_size)
        return pte

    def lookup(self, asid: int, vpn: int, page_size: int) -> PTE:
        """Return the PTE covering ``vpn`` (mapping it on first touch)."""
        return self.map_page(asid, vpn, page_size)

    def walk_addresses(self, asid: int, vpn: int, page_size: int) -> List[int]:
        """Physical addresses of the page-table entries a walk touches.

        One address per radix level down to the leaf: 4 for 4KB
        mappings, 3 for 2MB, 2 for 1GB.
        """
        depth = _LEAF_DEPTH[page_size]
        indices = self._indices(vpn)
        addresses = []
        for level in range(depth):
            path = indices[:level]  # path identifies the node
            frame = self._node_frame(asid, level, path)
            addresses.append(frame + indices[level] * ENTRY_BYTES)
        return addresses

    def walk_info(self, asid: int, vpn: int, page_size: int) -> Tuple[Tuple[int, ...], PTE]:
        """Walk addresses plus the PTE, memoised per translation.

        Both are pure functions of ``(asid, page_size, page_number)``
        once the mapping exists: the node chain is stable after
        materialisation, and only the radix indices above the leaf
        depth — all determined by the page number — feed the address
        computation.  The first touch performs exactly the walker's
        historical call sequence (``walk_addresses`` then ``map_page``),
        so frame-allocation order — and with it every synthetic
        physical address — is unchanged.
        """
        key = (asid, page_size, translation_vpn(vpn, page_size))
        info = self._walk_info.get(key)
        if info is None:
            addresses = tuple(self.walk_addresses(asid, vpn, page_size))
            pte = self._ptes.get(key)
            if pte is None:
                # map_page's body minus its node materialisation — the
                # walk_addresses call above already allocated the node
                # chain, so allocation order (nodes, then data frame)
                # matches the historical call sequence exactly.
                ppn = self._allocate_frame() >> PAGE_SHIFT_4K
                pte = self._ptes[key] = PTE(
                    ppn=ppn, page_size=page_size, asid=asid
                )
                self.pages_mapped += 1
            info = self._walk_info[key] = (addresses, pte)
        return info

    def unmap(self, asid: int, vpn: int, page_size: int) -> None:
        """Drop a translation (page remapping / demotion)."""
        key = (asid, page_size, translation_vpn(vpn, page_size))
        self._ptes.pop(key, None)
        self._walk_info.pop(key, None)
