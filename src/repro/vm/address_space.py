"""Process address spaces built from contiguous extents.

A workload's footprint is described as a handful of :class:`Extent`
objects — contiguous runs of 4KB virtual pages backed by a single page
size.  Extents may be *private* to one address space or *shared*
(libraries, OS structures, or all of memory for a multi-threaded
process).  Shared extents are tagged with the global ASID 0 so that the
same TLB entry serves every process mapping them; this is what lets a
shared last-level TLB de-duplicate them while private TLBs replicate
them per core (§II-A of the paper).

Lookups are a bisect over extent bases, so classification of a VPN is
O(log #extents) with #extents typically < 10.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple

from repro.vm.address import PAGE_4K, pages_spanned, translation_vpn

#: ASID tag used for globally shared mappings (kernel, shared libraries).
GLOBAL_ASID = 0


@dataclass(frozen=True)
class Extent:
    """A contiguous run of 4KB virtual pages backed by one page size.

    ``base_vpn`` and ``num_pages`` are in 4KB-page units; ``page_size``
    is the backing translation granularity (4K/2M/1G).  ``shared``
    extents translate identically in every address space.
    """

    base_vpn: int
    num_pages: int
    page_size: int = PAGE_4K
    shared: bool = False

    def __post_init__(self) -> None:
        if self.num_pages <= 0:
            raise ValueError("extent must cover at least one page")
        span = pages_spanned(self.page_size)
        if self.base_vpn % span or self.num_pages % span:
            raise ValueError(
                f"extent [{self.base_vpn}, +{self.num_pages}) is not aligned "
                f"to its {self.page_size}-byte page size"
            )

    @property
    def end_vpn(self) -> int:
        """One past the last 4KB VPN in the extent."""
        return self.base_vpn + self.num_pages

    def contains(self, vpn: int) -> bool:
        return self.base_vpn <= vpn < self.end_vpn


@dataclass(frozen=True)
class SharedRegion:
    """A shared extent plus the set of address spaces that map it."""

    extent: Extent
    mappers: Tuple[int, ...]


class AddressSpace:
    """Virtual address space of one process (one ASID).

    Provides ``classify(vpn) -> (page_size, tag_asid)``: the backing
    page size of the 4KB page and the ASID under which its translation
    is tagged in TLBs (``GLOBAL_ASID`` for shared extents).
    """

    def __init__(self, asid: int, extents: Iterable[Extent] = ()) -> None:
        if asid == GLOBAL_ASID:
            raise ValueError("ASID 0 is reserved for shared mappings")
        self.asid = asid
        self._extents: List[Extent] = []
        self._bases: List[int] = []
        for extent in extents:
            self.add_extent(extent)

    @property
    def extents(self) -> Tuple[Extent, ...]:
        return tuple(self._extents)

    def add_extent(self, extent: Extent) -> None:
        """Insert an extent, rejecting overlap with existing ones."""
        idx = bisect.bisect_right(self._bases, extent.base_vpn)
        if idx > 0 and self._extents[idx - 1].end_vpn > extent.base_vpn:
            raise ValueError("extent overlaps an existing mapping")
        if idx < len(self._extents) and extent.end_vpn > self._bases[idx]:
            raise ValueError("extent overlaps an existing mapping")
        self._extents.insert(idx, extent)
        self._bases.insert(idx, extent.base_vpn)

    def replace_extent(self, old: Extent, new: Iterable[Extent]) -> None:
        """Atomically swap ``old`` for replacement extents (promotion/demotion)."""
        idx = self._extents.index(old)
        del self._extents[idx]
        del self._bases[idx]
        for extent in new:
            self.add_extent(extent)

    def find_extent(self, vpn: int) -> Optional[Extent]:
        """Return the extent containing ``vpn``, or None if unmapped."""
        idx = bisect.bisect_right(self._bases, vpn) - 1
        if idx < 0:
            return None
        extent = self._extents[idx]
        return extent if extent.contains(vpn) else None

    def classify(self, vpn: int) -> Tuple[int, int]:
        """Return ``(page_size, tag_asid)`` for a mapped 4KB VPN."""
        extent = self.find_extent(vpn)
        if extent is None:
            raise KeyError(f"VPN {vpn:#x} is not mapped in ASID {self.asid}")
        return extent.page_size, (GLOBAL_ASID if extent.shared else self.asid)

    def translation_key(self, vpn: int) -> Tuple[int, int, int]:
        """Return ``(tag_asid, page_size, page_number)`` — the unique
        identity of the translation covering ``vpn``, collapsing all 4KB
        VPNs inside a superpage onto one key."""
        page_size, tag_asid = self.classify(vpn)
        return tag_asid, page_size, translation_vpn(vpn, page_size)

    @property
    def footprint_pages(self) -> int:
        """Total mapped 4KB pages."""
        return sum(extent.num_pages for extent in self._extents)


@dataclass
class VpnAllocator:
    """Bump allocator handing out non-overlapping, aligned VPN ranges.

    Used by workload builders to lay out footprints without collisions.
    Alignment is in 4KB pages (512 aligns a 2MB superpage region).
    """

    next_vpn: int = 1 << 20  # start well above the null page
    allocations: List[Tuple[int, int]] = field(default_factory=list)

    def allocate(self, num_pages: int, align_pages: int = 1) -> int:
        if num_pages <= 0:
            raise ValueError("must allocate at least one page")
        base = -(-self.next_vpn // align_pages) * align_pages
        self.next_vpn = base + num_pages
        self.allocations.append((base, num_pages))
        return base
