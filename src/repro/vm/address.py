"""Virtual/physical address helpers and page-size constants.

The simulator works at page granularity: a memory reference is a 4KB
virtual page number (VPN).  When a reference falls inside a 2MB or 1GB
mapping, the TLB-relevant page number is the 4KB VPN shifted right by
the size difference.  These helpers centralise that arithmetic.
"""

from __future__ import annotations

# Page sizes supported by x86-64 (and by this model).
PAGE_4K = 4 * 1024
PAGE_2M = 2 * 1024 * 1024
PAGE_1G = 1024 * 1024 * 1024

PAGE_SHIFT_4K = 12
PAGE_SHIFT_2M = 21
PAGE_SHIFT_1G = 30

#: 4KB pages per 2MB superpage (512) and per 1GB page (262144).
PAGES_PER_2M = 1 << (PAGE_SHIFT_2M - PAGE_SHIFT_4K)
PAGES_PER_1G = 1 << (PAGE_SHIFT_1G - PAGE_SHIFT_4K)

#: Canonical x86-64 virtual addresses are 48 bits wide.
VA_BITS = 48
MAX_VPN = (1 << (VA_BITS - PAGE_SHIFT_4K)) - 1

PAGE_SIZES = (PAGE_4K, PAGE_2M, PAGE_1G)

_SHIFT_FOR_SIZE = {
    PAGE_4K: PAGE_SHIFT_4K,
    PAGE_2M: PAGE_SHIFT_2M,
    PAGE_1G: PAGE_SHIFT_1G,
}


def page_shift(page_size: int) -> int:
    """Return log2(page_size) for a supported page size."""
    try:
        return _SHIFT_FOR_SIZE[page_size]
    except KeyError:
        raise ValueError(f"unsupported page size: {page_size}") from None


def vpn_to_va(vpn: int) -> int:
    """Return the base virtual address of a 4KB virtual page number."""
    return vpn << PAGE_SHIFT_4K


def va_to_vpn(va: int) -> int:
    """Return the 4KB virtual page number containing virtual address ``va``."""
    return va >> PAGE_SHIFT_4K


def translation_vpn(vpn: int, page_size: int) -> int:
    """Map a 4KB VPN to the page number at ``page_size`` granularity.

    This is the tag a TLB for ``page_size`` pages stores: e.g. all 512
    4KB VPNs inside one 2MB superpage collapse onto a single 2MB page
    number.
    """
    return vpn >> (page_shift(page_size) - PAGE_SHIFT_4K)


def pages_spanned(page_size: int) -> int:
    """Number of 4KB pages covered by one page of ``page_size``."""
    return page_size // PAGE_4K


def is_aligned(vpn: int, page_size: int) -> bool:
    """True if a 4KB VPN is aligned to the start of a ``page_size`` page."""
    return vpn % pages_spanned(page_size) == 0
