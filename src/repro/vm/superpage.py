"""Transparent-superpage (THP) policy.

The paper's experiments run Linux 4.14 with transparent 2MB superpages
and report that 50-80% of each workload's footprint ends up backed by
superpages (§V).  This module provides:

* :func:`SuperpagePolicy.layout` — split a requested footprint into a
  2MB-backed extent and a 4KB-backed remainder at a given superpage
  fraction, mirroring what THP achieves at steady state; and
* promotion/demotion of individual 2MB regions, which is the engine of
  the TLB-storm microbenchmark (§V, pathological workloads): promoting
  512 4KB pages to one superpage invalidates 512 distinct TLB entries,
  and demotion invalidates the superpage entry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.vm.address import PAGE_2M, PAGE_4K, PAGES_PER_2M, translation_vpn
from repro.vm.address_space import AddressSpace, Extent, VpnAllocator


@dataclass(frozen=True)
class InvalidationBatch:
    """TLB entries that must be shot down after a promotion/demotion.

    Each element is a ``(page_size, page_number)`` pair (tagged with the
    address space's ASID by the caller).
    """

    entries: Tuple[Tuple[int, int], ...]

    def __len__(self) -> int:
        return len(self.entries)


class SuperpagePolicy:
    """Builds and mutates superpage-backed layouts."""

    def __init__(self, superpage_fraction: float = 0.65) -> None:
        if not 0.0 <= superpage_fraction <= 1.0:
            raise ValueError("superpage fraction must be in [0, 1]")
        self.superpage_fraction = superpage_fraction

    def layout(
        self,
        allocator: VpnAllocator,
        num_pages: int,
        shared: bool = False,
    ) -> List[Extent]:
        """Split ``num_pages`` 4KB pages into superpage + 4KB extents.

        The superpage share is rounded down to whole 2MB regions; a
        fraction of 0 (or a footprint smaller than one superpage)
        yields a single 4KB extent.
        """
        if num_pages <= 0:
            raise ValueError("footprint must be positive")
        super_pages = int(num_pages * self.superpage_fraction)
        super_pages -= super_pages % PAGES_PER_2M
        extents: List[Extent] = []
        if super_pages:
            base = allocator.allocate(super_pages, align_pages=PAGES_PER_2M)
            extents.append(
                Extent(base, super_pages, page_size=PAGE_2M, shared=shared)
            )
        small_pages = num_pages - super_pages
        if small_pages:
            base = allocator.allocate(small_pages)
            extents.append(
                Extent(base, small_pages, page_size=PAGE_4K, shared=shared)
            )
        return extents

    @staticmethod
    def promote(space: AddressSpace, base_vpn: int) -> InvalidationBatch:
        """Promote the 512 4KB pages at ``base_vpn`` into one 2MB page.

        Returns the TLB entries invalidated: the 512 distinct 4KB
        translations (the paper's microbenchmark relies on exactly this
        burst).
        """
        extent = _aligned_region(space, base_vpn, PAGE_4K)
        before = Extent(extent.base_vpn, extent.num_pages, PAGE_4K, extent.shared)
        pieces = _split_out(before, base_vpn)
        promoted = Extent(base_vpn, PAGES_PER_2M, PAGE_2M, extent.shared)
        space.replace_extent(extent, pieces + [promoted])
        invalidated = tuple(
            (PAGE_4K, vpn) for vpn in range(base_vpn, base_vpn + PAGES_PER_2M)
        )
        return InvalidationBatch(invalidated)

    @staticmethod
    def demote(space: AddressSpace, base_vpn: int) -> InvalidationBatch:
        """Break the 2MB page at ``base_vpn`` back into 512 4KB pages."""
        extent = _aligned_region(space, base_vpn, PAGE_2M)
        pieces = _split_out(extent, base_vpn)
        demoted = Extent(base_vpn, PAGES_PER_2M, PAGE_4K, extent.shared)
        space.replace_extent(extent, pieces + [demoted])
        return InvalidationBatch(
            ((PAGE_2M, translation_vpn(base_vpn, PAGE_2M)),)
        )


def _aligned_region(space: AddressSpace, base_vpn: int, page_size: int) -> Extent:
    """Fetch the extent holding a 2MB-aligned region, validating inputs."""
    if base_vpn % PAGES_PER_2M:
        raise ValueError("region base must be 2MB aligned")
    extent = space.find_extent(base_vpn)
    if extent is None or extent.page_size != page_size:
        raise ValueError(
            f"VPN {base_vpn:#x} is not backed by {page_size}-byte pages"
        )
    if extent.end_vpn < base_vpn + PAGES_PER_2M:
        raise ValueError("region extends past its extent")
    return extent


def _split_out(extent: Extent, base_vpn: int) -> List[Extent]:
    """Return the pieces of ``extent`` around [base_vpn, base_vpn+512)."""
    pieces = []
    if base_vpn > extent.base_vpn:
        pieces.append(
            Extent(
                extent.base_vpn,
                base_vpn - extent.base_vpn,
                extent.page_size,
                extent.shared,
            )
        )
    tail = extent.end_vpn - (base_vpn + PAGES_PER_2M)
    if tail:
        pieces.append(
            Extent(base_vpn + PAGES_PER_2M, tail, extent.page_size, extent.shared)
        )
    return pieces
