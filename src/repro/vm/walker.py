"""Page-table walkers: variable (cache-hierarchy) and fixed latency.

On an L2 TLB miss a hardware walker performs a serial pointer chase
through the radix table; each reference is satisfied wherever the entry
happens to sit in the cache hierarchy.  The paper reports typical walk
latencies of 20-40 cycles on real systems, with 70-87% of walks
touching the LLC or memory (§V Energy).  Table III additionally studies
fixed walk latencies of 10/20/40/80 cycles.

A small page-walk cache (PWC) holds upper-level entries (PML4/PDPT/PD),
as on real x86 cores [MICRO'13 "Large-reach MMU caches"]; it makes the
leaf PTE reference dominate walk latency, as observed in practice.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.mem.cache import CacheHierarchy
from repro.obs import NULL_SINK
from repro.vm.page_table import PageTable, PTE


@dataclass
class WalkResult:
    """Outcome of one page-table walk."""

    latency: int
    pte: PTE
    levels: Tuple[str, ...] = ()
    #: References that missed the walking core's L1 (installed new lines
    #: there) — a proxy for how much the walk polluted that core's cache.
    pollution: int = 0


class _PageWalkCache:
    """Per-core cache of upper-level page-table entries (1-cycle hit)."""

    def __init__(self, entries: int = 32) -> None:
        self.entries = entries
        self._cache: "OrderedDict[int, None]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def lookup(self, addr: int) -> bool:
        if addr in self._cache:
            self._cache.move_to_end(addr)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def fill(self, addr: int) -> None:
        if addr not in self._cache and len(self._cache) >= self.entries:
            self._cache.popitem(last=False)
        self._cache[addr] = None

    def invalidate_all(self) -> None:
        self._cache.clear()


class PageTableWalker:
    """Variable-latency walker driven by the cache hierarchy."""

    PWC_HIT_CYCLES = 1

    def __init__(
        self,
        page_table: PageTable,
        hierarchy: CacheHierarchy,
        num_cores: int,
        pwc_entries: int = 16,
        sink=NULL_SINK,
    ) -> None:
        self.page_table = page_table
        self.hierarchy = hierarchy
        self.pwcs = [_PageWalkCache(pwc_entries) for _ in range(num_cores)]
        self.walks = 0
        self.sink = sink
        self.level_hits: Dict[str, int] = {
            "pwc": 0, "l1": 0, "l2": 0, "llc": 0, "dram": 0,
        }

    def walk(
        self, core: int, asid: int, vpn: int, page_size: int, now: int
    ) -> WalkResult:
        """Perform a serial walk at ``core``; returns latency and the PTE."""
        addresses, pte = self.page_table.walk_info(asid, vpn, page_size)
        pwc = self.pwcs[core]
        level_hits = self.level_hits
        access = self.hierarchy.access
        latency = 0
        pollution = 0
        levels = []
        last = len(addresses) - 1
        for depth, addr in enumerate(addresses):
            # Upper levels can hit the PWC; the leaf PTE never does.
            if depth < last and pwc.lookup(addr):
                latency += self.PWC_HIT_CYCLES
                levels.append("pwc")
                level_hits["pwc"] += 1
                continue
            level, cycles = access(core, addr, now + latency)
            latency += cycles
            levels.append(level)
            level_hits[level] += 1
            if level != "l1":
                pollution += 1
            if depth < last:
                pwc.fill(addr)
        self.walks += 1
        if self.sink.enabled:
            self.sink.observe("walk.latency", latency)
            self.sink.event(now, "walk_begin", core=core, vpn=vpn)
            self.sink.event(
                now + latency, "walk_end", core=core, latency=latency
            )
        return WalkResult(
            latency=latency, pte=pte, levels=tuple(levels), pollution=pollution
        )

    def walk_cycles(
        self, core: int, asid: int, vpn: int, page_size: int, now: int
    ) -> int:
        """:meth:`walk` minus the per-walk result object and trace.

        Identical caching/counter side effects and latency; skips the
        ``WalkResult``/levels-tuple construction, pollution tally, and
        sink events.  For engine fast paths that run with observability
        disabled and never read pollution (requester-side PTW only).
        """
        addresses, _ = self.page_table.walk_info(asid, vpn, page_size)
        pwc = self.pwcs[core]
        level_hits = self.level_hits
        access = self.hierarchy.access
        latency = 0
        last = len(addresses) - 1
        for depth, addr in enumerate(addresses):
            if depth < last and pwc.lookup(addr):
                latency += self.PWC_HIT_CYCLES
                level_hits["pwc"] += 1
                continue
            level, cycles = access(core, addr, now + latency)
            latency += cycles
            level_hits[level] += 1
            if depth < last:
                pwc.fill(addr)
        self.walks += 1
        return latency


class FixedLatencyWalker:
    """Walker with a fixed latency (Table III's fixed-10/20/40/80)."""

    def __init__(self, page_table: PageTable, latency: int, sink=NULL_SINK) -> None:
        if latency <= 0:
            raise ValueError("walk latency must be positive")
        self.page_table = page_table
        self.latency = latency
        self.walks = 0
        self.sink = sink

    def walk(
        self, core: int, asid: int, vpn: int, page_size: int, now: int
    ) -> WalkResult:
        self.walks += 1
        pte = self.page_table.lookup(asid, vpn, page_size)
        self.sink.observe("walk.latency", self.latency)
        self.sink.event(now, "walk_begin", core=core, vpn=vpn)
        self.sink.event(
            now + self.latency, "walk_end", core=core, latency=self.latency
        )
        return WalkResult(latency=self.latency, pte=pte, levels=("fixed",))

    def walk_cycles(
        self, core: int, asid: int, vpn: int, page_size: int, now: int
    ) -> int:
        """Latency-only variant matching :meth:`PageTableWalker.walk_cycles`."""
        self.walks += 1
        self.page_table.lookup(asid, vpn, page_size)
        self.sink.observe("walk.latency", self.latency)
        self.sink.event(now, "walk_begin", core=core, vpn=vpn)
        self.sink.event(
            now + self.latency, "walk_end", core=core, latency=self.latency
        )
        return self.latency


@dataclass
class WalkerQueue:
    """Queues walks at one core's hardware walkers.

    Modern x86 cores keep two concurrent page walkers; a walk admitted
    while both are busy queues behind the earlier-finishing one.  The
    paper notes that performing walks at the remote node risks walker
    congestion when several cores miss to the same slice (§III-F) —
    this queue is what produces that effect.
    """

    num_walkers: int = 2
    queued_walks: int = 0
    total_queue_cycles: int = 0

    def __post_init__(self) -> None:
        if self.num_walkers < 1:
            raise ValueError("need at least one walker")
        self._busy_until = [0] * self.num_walkers

    def admit(self, now: int, latency: int) -> int:
        """Start a walk of ``latency`` cycles; return its completion time."""
        walker = min(range(self.num_walkers), key=self._busy_until.__getitem__)
        start = max(now, self._busy_until[walker])
        self.total_queue_cycles += start - now
        if start > now:
            self.queued_walks += 1
        self._busy_until[walker] = start + latency
        return start + latency

    @property
    def busy_until(self) -> int:
        """Cycle at which the last-finishing walker frees up."""
        return max(self._busy_until)
