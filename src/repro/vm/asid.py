"""ASID (address-space identifier) management.

Real x86 cores have a limited PCID/ASID space (12 bits on x86, often
fewer usable in hardware structures).  When the OS runs more address
spaces than there are ASIDs, it must recycle one — and recycling
forces a shootdown of every TLB entry tagged with the victim ASID, a
cost the TLB-storm microbenchmark's context-switch flushes approximate
with a sledgehammer.  This manager provides the precise version: LRU
allocation with explicit recycle events, so experiments can model
ASID-pressure-induced invalidations.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.vm.address_space import GLOBAL_ASID


@dataclass(frozen=True)
class AsidAssignment:
    """Result of bringing a process in: its ASID and what it evicted."""

    asid: int
    recycled_from: Optional[int]  # process id previously holding it

    @property
    def required_shootdown(self) -> bool:
        return self.recycled_from is not None


class AsidManager:
    """Allocates hardware ASIDs to processes, recycling LRU ones.

    ``capacity`` is the number of hardware context tags; ASID 0 is
    reserved for globally shared mappings and never handed out.
    """

    def __init__(self, capacity: int = 8) -> None:
        if capacity < 1:
            raise ValueError("need at least one allocatable ASID")
        self.capacity = capacity
        #: process id -> asid, in LRU order (oldest first).
        self._active: "OrderedDict[int, int]" = OrderedDict()
        self._free: List[int] = list(range(capacity, 0, -1))
        self.recycles = 0

    def activate(self, process_id: int) -> AsidAssignment:
        """A process is scheduled in: return its (possibly new) ASID."""
        asid = self._active.get(process_id)
        if asid is not None:
            self._active.move_to_end(process_id)
            return AsidAssignment(asid=asid, recycled_from=None)
        if self._free:
            asid = self._free.pop()
            self._active[process_id] = asid
            return AsidAssignment(asid=asid, recycled_from=None)
        victim_pid, asid = self._active.popitem(last=False)
        self._active[process_id] = asid
        self.recycles += 1
        return AsidAssignment(asid=asid, recycled_from=victim_pid)

    def release(self, process_id: int) -> None:
        """Process exit: the ASID returns to the free pool (its entries
        still require invalidation before reuse, which activate() of the
        next holder signals via ``recycled_from``... release is clean:
        the OS shoots the entries down at exit)."""
        asid = self._active.pop(process_id, None)
        if asid is not None:
            self._free.append(asid)

    def asid_of(self, process_id: int) -> Optional[int]:
        return self._active.get(process_id)

    @property
    def active_count(self) -> int:
        return len(self._active)

    def validate(self) -> None:
        """Internal consistency: no duplicates, ASID 0 never allocated."""
        allocated = list(self._active.values())
        assert GLOBAL_ASID not in allocated
        assert len(set(allocated)) == len(allocated)
        assert not (set(allocated) & set(self._free))
