"""Set-associative cache model used for page-table-walk latency.

The paper's "variable" page-table-walk latency comes from where the
page-table entries happen to reside in the data cache hierarchy (§V,
Table III): most walk references hit in the LLC, giving walks of 20-40
cycles, with occasional DRAM trips.

Only walk traffic flows through this model (simulating the full demand
stream through the caches would dominate runtime without changing TLB
behaviour), so demand-traffic pollution is approximated by *decay*:
a line older than ``decay_cycles`` counts as evicted.  Decay defaults
are tuned so steady-state walk latencies land in the paper's 20-40
cycle band (validated by tests).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional

LINE_BYTES = 64


class Cache:
    """One level of set-associative cache with LRU and optional decay."""

    def __init__(
        self,
        name: str,
        size_bytes: int,
        ways: int,
        decay_cycles: Optional[int] = None,
    ) -> None:
        num_lines = size_bytes // LINE_BYTES
        if num_lines < ways or num_lines % ways:
            raise ValueError(f"{name}: {size_bytes}B / {ways} ways is not valid")
        self.name = name
        self.ways = ways
        self.num_sets = num_lines // ways
        self.decay_cycles = decay_cycles
        # One OrderedDict per set: line address -> last-touch cycle.
        self._sets: Dict[int, "OrderedDict[int, int]"] = {}
        self.hits = 0
        self.misses = 0

    def _set_for(self, line_addr: int) -> "OrderedDict[int, int]":
        index = line_addr % self.num_sets
        cache_set = self._sets.get(index)
        if cache_set is None:
            cache_set = self._sets[index] = OrderedDict()
        return cache_set

    def lookup(self, addr: int, now: int) -> bool:
        """Probe (and on hit, touch) the line holding ``addr``."""
        line_addr = addr // LINE_BYTES
        cache_set = self._set_for(line_addr)
        stamp = cache_set.get(line_addr)
        if stamp is not None:
            if self.decay_cycles is not None and now - stamp > self.decay_cycles:
                del cache_set[line_addr]  # decayed: evicted by demand traffic
            else:
                cache_set.move_to_end(line_addr)
                cache_set[line_addr] = now
                self.hits += 1
                return True
        self.misses += 1
        return False

    def fill(self, addr: int, now: int) -> None:
        """Install the line holding ``addr``, evicting LRU if needed."""
        line_addr = addr // LINE_BYTES
        cache_set = self._set_for(line_addr)
        if line_addr not in cache_set and len(cache_set) >= self.ways:
            cache_set.popitem(last=False)
        cache_set[line_addr] = now
        cache_set.move_to_end(line_addr)

    def invalidate_all(self) -> None:
        self._sets.clear()


@dataclass(frozen=True)
class CacheLatencies:
    """Access latencies of the Haswell-like hierarchy (§IV) in cycles."""

    l1: int = 4
    l2: int = 12
    llc: int = 50
    dram: int = 300


class CacheHierarchy:
    """Per-core L1/L2 backed by a shared LLC, for walk references.

    ``access`` returns ``(level_name, latency_cycles)`` for the level
    that satisfied the reference and fills all levels above it.
    """

    def __init__(
        self,
        num_cores: int,
        latencies: CacheLatencies = CacheLatencies(),
        l1_bytes: int = 32 * 1024,
        l2_bytes: int = 256 * 1024,
        llc_bytes_per_core: int = 8 * 1024 * 1024,
        decay_cycles: Optional[int] = 1_200,
        llc_decay_cycles: Optional[int] = 14_000,
    ) -> None:
        self.latencies = latencies
        self.l1 = [
            Cache(f"l1[{core}]", l1_bytes, 8, decay_cycles)
            for core in range(num_cores)
        ]
        self.l2 = [
            Cache(f"l2[{core}]", l2_bytes, 8, decay_cycles)
            for core in range(num_cores)
        ]
        self.llc = Cache("llc", llc_bytes_per_core * num_cores, 16, llc_decay_cycles)
        self.dram_accesses = 0

    @staticmethod
    def _probe(cache: Cache, line: int, now: int):
        """Inlined Cache.lookup on a precomputed line address.

        Returns the cache set on a miss (for the fill below — a missed
        line is guaranteed absent, decayed entries having been deleted)
        or ``None`` on a hit.  Counter/decay/LRU semantics match
        ``Cache.lookup`` byte for byte.
        """
        sets = cache._sets
        index = line % cache.num_sets
        cache_set = sets.get(index)
        if cache_set is None:
            cache_set = sets[index] = OrderedDict()
        stamp = cache_set.get(line)
        if stamp is not None:
            decay = cache.decay_cycles
            if decay is not None and now - stamp > decay:
                del cache_set[line]  # decayed: evicted by demand traffic
            else:
                cache_set.move_to_end(line)
                cache_set[line] = now
                cache.hits += 1
                return None
        cache.misses += 1
        return cache_set

    def access(self, core: int, addr: int, now: int) -> tuple:
        # Chained Cache.lookup/Cache.fill calls, inlined via _probe:
        # walk traffic makes this the hottest simulator loop after the
        # L2-TLB transaction, and the open-coded form computes the line
        # address once and skips fill()'s membership test (a missed
        # line is absent by _probe's contract, so a fill is a plain
        # append with LRU eviction on a full set).
        line = addr // LINE_BYTES
        lat = self.latencies
        probe = self._probe
        l1 = self.l1[core]
        set1 = probe(l1, line, now)
        if set1 is None:
            return "l1", lat.l1
        l2 = self.l2[core]
        set2 = probe(l2, line, now)
        if set2 is None:
            if len(set1) >= l1.ways:
                set1.popitem(last=False)
            set1[line] = now
            return "l2", lat.l2
        llc = self.llc
        set3 = probe(llc, line, now)
        if set3 is None:
            level = "llc"
            cycles = lat.llc
        else:
            self.dram_accesses += 1
            if len(set3) >= llc.ways:
                set3.popitem(last=False)
            set3[line] = now
            level = "dram"
            cycles = lat.dram
        if len(set2) >= l2.ways:
            set2.popitem(last=False)
        set2[line] = now
        if len(set1) >= l1.ways:
            set1.popitem(last=False)
        set1[line] = now
        return level, cycles
