"""SRAM latency / area / power scaling model.

The paper characterises TLB SRAM arrays with TSMC 28nm memory compilers
(post-synthesis, Fig 3): a 1536-entry array (Skylake private L2 TLB)
takes 9 cycles, and a 32x1536-entry array takes ~15 cycles.  The curve
is logarithmic in capacity, which we fit as::

    cycles(entries) = BASE_CYCLES + SLOPE * log2(entries / BASE_ENTRIES)

with ``BASE_ENTRIES`` = 1024 (the Haswell private L2 TLB the paper's
methodology uses at 9 cycles, §IV), ``SLOPE`` = 1.2 cycles per doubling
(matching Fig 3's 9 -> 15 cycles over 5 doublings).

Area and power per tile come from the paper's Fig 9 place-and-route
numbers and scale linearly (power) / linearly (area) with capacity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Entry count whose lookup takes BASE_CYCLES (Haswell private L2 TLB).
BASE_ENTRIES = 1024
BASE_CYCLES = 9.0
#: Extra lookup cycles per doubling of capacity (fit to Fig 3).
SLOPE = 1.2
#: Fig 3 plots sizes relative to a 1536-entry Skylake private L2 TLB.
FIG3_BASE_ENTRIES = 1536

#: Fig 9 per-tile numbers for a 1024-entry-class slice (28nm TSMC).
SLICE_POWER_MW = 10.91
SLICE_AREA_MM2 = 0.4646
#: Dynamic read energy of a BASE_ENTRIES-sized array, picojoules.
BASE_READ_ENERGY_PJ = 12.0


def lookup_cycles(entries: int) -> int:
    """SRAM lookup latency in cycles for an ``entries``-sized TLB array."""
    if entries <= 0:
        raise ValueError("SRAM must have at least one entry")
    cycles = BASE_CYCLES + SLOPE * math.log2(entries / BASE_ENTRIES)
    return max(1, round(cycles))


def fig3_lookup_cycles(relative_size: float) -> float:
    """Fig 3's y-axis: latency for a TLB ``relative_size`` x 1536 entries.

    Returned unrounded so the bench can report the fitted curve.
    """
    if relative_size <= 0:
        raise ValueError("relative size must be positive")
    entries = relative_size * FIG3_BASE_ENTRIES
    return BASE_CYCLES + SLOPE * math.log2(entries / BASE_ENTRIES)


def read_energy_pj(entries: int) -> float:
    """Dynamic energy of one read, scaling ~sqrt with capacity.

    Wordline/bitline energy grows roughly with the array's linear
    dimension, i.e. sqrt(capacity) for a square array.
    """
    if entries <= 0:
        raise ValueError("SRAM must have at least one entry")
    return BASE_READ_ENERGY_PJ * math.sqrt(entries / BASE_ENTRIES)


@dataclass(frozen=True)
class SramBudget:
    """Static power (mW) and area (mm^2) of one SRAM array."""

    power_mw: float
    area_mm2: float


def budget(entries: int) -> SramBudget:
    """Leakage power and area of an ``entries``-sized array (linear scale)."""
    scale = entries / BASE_ENTRIES
    return SramBudget(
        power_mw=SLICE_POWER_MW * scale,
        area_mm2=SLICE_AREA_MM2 * scale,
    )
