"""Memory-side models: SRAM scaling and the data-cache hierarchy."""

from repro.mem.cache import Cache, CacheHierarchy, CacheLatencies, LINE_BYTES
from repro.mem.sram import (
    budget,
    fig3_lookup_cycles,
    lookup_cycles,
    read_energy_pj,
    SramBudget,
)

__all__ = [
    "Cache",
    "CacheHierarchy",
    "CacheLatencies",
    "LINE_BYTES",
    "budget",
    "fig3_lookup_cycles",
    "lookup_cycles",
    "read_energy_pj",
    "SramBudget",
]
