"""Post-processing: concurrency distributions and table rendering."""

from repro.analysis.contention import (
    BUCKET_LABELS,
    BUCKETS,
    bucket_label,
    concurrency_counts,
    concurrency_distribution,
    isolated_fraction,
    merge_distributions,
    per_slice_distribution,
)
from repro.analysis.tables import (
    fmt,
    render_distribution,
    render_series,
    render_table,
)

__all__ = [
    "BUCKET_LABELS",
    "BUCKETS",
    "bucket_label",
    "concurrency_counts",
    "concurrency_distribution",
    "isolated_fraction",
    "merge_distributions",
    "per_slice_distribution",
    "fmt",
    "render_distribution",
    "render_series",
    "render_table",
]
