"""ASCII rendering used by every bench to print paper-style tables."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence


def fmt(value, precision: int = 3) -> str:
    """Compact numeric formatting for table cells."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: str = "",
    precision: int = 3,
) -> str:
    """Monospace table with column alignment."""
    str_rows = [[fmt(cell, precision) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(
            " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def render_distribution(
    name: str, distribution: Dict[str, float], precision: int = 3
) -> str:
    """One stacked-bar's worth of bucket fractions on a single line."""
    cells = ", ".join(
        f"{label}={value:.{precision}f}"
        for label, value in distribution.items()
        if value > 0
    )
    return f"{name}: {cells}"


def render_series(
    title: str, xs: Sequence, ys: Sequence, precision: int = 3
) -> str:
    """A named (x, y) series, one pair per line."""
    lines = [title]
    for x, y in zip(xs, ys):
        lines.append(f"  {fmt(x, precision)} -> {fmt(y, precision)}")
    return "\n".join(lines)
