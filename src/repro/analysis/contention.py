"""Concurrency analysis of shared-L2 accesses (Figs 5 and 6).

For every shared L2 TLB access the paper plots how many *other* cores
had outstanding shared L2 accesses at that moment, bucketed as
1 acc / 2-4 acc / ... / 29-32 acc.  Fig 6 (right) applies the same
analysis per TLB slice.  Inputs are the ``(start, end, slice)``
intervals the simulator records with ``record_intervals=True``.
"""

from __future__ import annotations

import heapq
from collections import defaultdict
from typing import Dict, Iterable, List, Sequence, Tuple

Interval = Tuple[int, int, int]  # (start, end, slice)

#: Paper bucket boundaries: total concurrent accesses (including self).
BUCKETS: List[Tuple[int, int, str]] = [
    (1, 1, "1 acc"),
    (2, 4, "2-4 acc"),
    (5, 8, "5-8 acc"),
    (9, 12, "9-12 acc"),
    (13, 16, "13-16 acc"),
    (17, 20, "17-20 acc"),
    (21, 24, "21-24 acc"),
    (25, 28, "25-28 acc"),
    (29, 10**9, "29+ acc"),
]

BUCKET_LABELS = [label for _, _, label in BUCKETS]


def bucket_label(concurrent_total: int) -> str:
    """Bucket for a total concurrency count (self included, so >= 1)."""
    if concurrent_total < 1:
        raise ValueError("an access is always concurrent with itself")
    for low, high, label in BUCKETS:
        if low <= concurrent_total <= high:
            return label
    return BUCKETS[-1][2]


def concurrency_counts(intervals: Sequence[Interval]) -> List[int]:
    """Per-access total concurrency at the moment each access starts."""
    ordered = sorted(intervals, key=lambda iv: iv[0])
    active: List[int] = []  # min-heap of end times
    counts = []
    for start, end, _ in ordered:
        while active and active[0] <= start:
            heapq.heappop(active)
        counts.append(len(active) + 1)  # self included
        heapq.heappush(active, end)
    return counts


def concurrency_distribution(
    intervals: Sequence[Interval]
) -> Dict[str, float]:
    """Fraction of accesses in each paper bucket (Fig 5)."""
    counts = concurrency_counts(intervals)
    if not counts:
        return {label: 0.0 for label in BUCKET_LABELS}
    histogram: Dict[str, int] = defaultdict(int)
    for count in counts:
        histogram[bucket_label(count)] += 1
    total = len(counts)
    return {label: histogram.get(label, 0) / total for label in BUCKET_LABELS}


def per_slice_distribution(
    intervals: Sequence[Interval]
) -> Dict[str, float]:
    """Fig 6 right: concurrency measured against accesses to the same slice."""
    by_slice: Dict[int, List[Interval]] = defaultdict(list)
    for interval in intervals:
        by_slice[interval[2]].append(interval)
    histogram: Dict[str, int] = defaultdict(int)
    total = 0
    for slice_intervals in by_slice.values():
        for count in concurrency_counts(slice_intervals):
            histogram[bucket_label(count)] += 1
            total += 1
    if not total:
        return {label: 0.0 for label in BUCKET_LABELS}
    return {label: histogram.get(label, 0) / total for label in BUCKET_LABELS}


def isolated_fraction(intervals: Sequence[Interval]) -> float:
    """Fraction of accesses with no other outstanding access (paper: >40%)."""
    return concurrency_distribution(intervals)["1 acc"]


def merge_distributions(
    distributions: Iterable[Dict[str, float]]
) -> Dict[str, float]:
    """Average several workloads' distributions (Fig 6's per-bar averages)."""
    dists = list(distributions)
    if not dists:
        raise ValueError("nothing to merge")
    return {
        label: sum(d.get(label, 0.0) for d in dists) / len(dists)
        for label in BUCKET_LABELS
    }
