"""Declarative campaign specs — one frozen value per paper figure.

A :class:`CampaignSpec` describes everything needed to regenerate one
figure or table of the paper as pure data: the configuration lineup
(registry names), the workload roster, the core counts, the seeds, and
the per-scale trace lengths.  The experiment grid is the
``itertools.product`` of those axes (the classic campaign-runner
pattern: enumerate ``sizes x configurations x periods x repeats``
up front, then fan the points out through an executor), so grid size,
seed derivation, and scenario expansion are all computable without
running anything.

Three standard scales ship with every simulation campaign:

* ``smoke``   — minutes-fast CI gate (few workloads, short traces,
  small meshes);
* ``reduced`` — the default; matches the bench suite's reduced scale,
  which is what EXPERIMENTS.md's measured numbers (and the drift-gate
  pins) were taken at;
* ``full``    — paper scale (all workloads, long traces).

Determinism contract: a spec expands to :class:`~repro.sim.scenario.
Scenario` values only — execution inherits the Runner/TraceStore/
ResultCache guarantees, so a campaign's results (and therefore its CSV
artifacts) are byte-identical across ``jobs=1``/``jobs=N`` and
warm-cache replay.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.faults.models import derive_seed
from repro.sim import configs as cfg
from repro.sim.scenario import Scenario

#: The scale names every simulation campaign is expected to ship.
STANDARD_SCALES = ("smoke", "reduced", "full")

#: Campaign kinds: ``grid`` fans scenarios through the Runner,
#: ``analytic`` computes its table without simulating (Table I), and
#: ``meta`` names a list of member campaigns (the ``headline`` roll-up).
GRID = "grid"
ANALYTIC = "analytic"
META = "meta"


@dataclass(frozen=True)
class Scale:
    """One named operating point of a campaign's grid.

    ``core_counts`` doubles as the tile count for analytic campaigns;
    ``workloads``/``accesses_per_core`` are unused (and may be empty/0)
    when nothing is simulated.
    """

    accesses_per_core: int
    workloads: Tuple[str, ...]
    core_counts: Tuple[int, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "workloads", tuple(self.workloads))
        object.__setattr__(self, "core_counts", tuple(self.core_counts))
        if not self.core_counts:
            raise ValueError("a scale needs at least one core count")
        if any(c < 1 for c in self.core_counts):
            raise ValueError("core counts must be positive")
        if self.accesses_per_core < 0:
            raise ValueError("accesses_per_core must be >= 0")


@dataclass(frozen=True)
class GridPoint:
    """One cell of the campaign grid: a (cores, seed, workload) triple.

    Configurations are *not* an axis of the point — every point runs
    the spec's whole lineup so speedups-vs-baseline stay well defined.
    """

    cores: int
    seed: int
    workload: str


@dataclass(frozen=True)
class CampaignSpec:
    """Frozen description of one paper-figure campaign.

    ``config_names`` are configuration *registry* names
    (:func:`repro.sim.configs.build_config`); the built lineup may
    carry different display names (``monolithic`` builds
    ``monolithic-mesh``).  ``seed`` is the base seed; ``replicas > 1``
    derives further independent seeds with
    :func:`repro.faults.models.derive_seed` so replicated grids never
    share a random stream with the base run.
    """

    name: str
    title: str
    figure: str
    kind: str = GRID
    config_names: Tuple[str, ...] = ()
    baseline: str = "private"
    superpages: bool = True
    seed: int = 11
    replicas: int = 1
    scales: Tuple[Tuple[str, Scale], ...] = ()
    #: Analytics reducer name (defaults to the campaign name).
    reducer: str = ""
    #: Member campaigns (meta campaigns only).
    members: Tuple[str, ...] = ()
    #: SystemConfig field overrides applied to every lineup member
    #: (``(("entries_per_core", 128), ...)``).  Lets a campaign pin an
    #: operating point — e.g. the policy zoo's area-constrained slices,
    #: where replacement choice actually matters — without registering
    #: one-off configurations.  Overridden fields flow into the RunUnit
    #: cache keys like any other SystemConfig field.
    overrides: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "config_names", tuple(self.config_names))
        object.__setattr__(self, "scales", tuple(self.scales))
        object.__setattr__(self, "members", tuple(self.members))
        object.__setattr__(
            self, "overrides", tuple(tuple(pair) for pair in self.overrides)
        )
        if not self.name:
            raise ValueError("a campaign needs a name")
        if self.kind not in (GRID, ANALYTIC, META):
            raise ValueError(f"unknown campaign kind: {self.kind!r}")
        if self.replicas < 1:
            raise ValueError("replicas must be >= 1")
        if self.kind == META:
            if not self.members:
                raise ValueError("a meta campaign needs members")
            return
        if not self.scales:
            raise ValueError(f"campaign {self.name!r} needs scales")
        names = [name for name, _ in self.scales]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate scale names in {self.name!r}")
        if self.kind == GRID:
            if not self.config_names:
                raise ValueError(
                    f"grid campaign {self.name!r} needs config_names"
                )
            if self.baseline not in self.config_names:
                raise ValueError(
                    f"baseline {self.baseline!r} missing from the "
                    f"{self.name!r} lineup"
                )
            for scale_name, scale in self.scales:
                if not scale.workloads or scale.accesses_per_core <= 0:
                    raise ValueError(
                        f"grid scale {scale_name!r} of {self.name!r} "
                        "needs workloads and a positive trace length"
                    )

    # ------------------------------------------------------------------
    # axes

    @property
    def scale_names(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.scales)

    def scale(self, name: str) -> Scale:
        for scale_name, scale in self.scales:
            if scale_name == name:
                return scale
        raise KeyError(
            f"campaign {self.name!r} has no scale {name!r}; "
            f"known: {', '.join(self.scale_names)}"
        )

    def seeds(self) -> Tuple[int, ...]:
        """The seed axis: the base seed plus derived replica seeds.

        ``seeds()[0] == seed`` always, so single-replica campaigns
        reproduce the bench suite's numbers exactly; extra replicas get
        label-split sub-seeds that cannot collide with the base stream.
        """
        derived = tuple(
            derive_seed(self.seed, f"{self.name}:rep{i}")
            for i in range(1, self.replicas)
        )
        return (self.seed,) + derived

    # ------------------------------------------------------------------
    # grid expansion

    def grid(self, scale_name: str) -> Tuple[GridPoint, ...]:
        """The full product grid: core_counts x seeds x workloads."""
        scale = self.scale(scale_name)
        return tuple(
            GridPoint(cores=cores, seed=seed, workload=workload)
            for cores, seed, workload in itertools.product(
                scale.core_counts, self.seeds(), scale.workloads
            )
        )

    def grid_size(self, scale_name: str) -> int:
        """Total simulations the grid expands to (points x lineup)."""
        if self.kind != GRID:
            return 0
        return len(self.grid(scale_name)) * len(self.config_names)

    def lineup(self, cores: int) -> List[cfg.SystemConfig]:
        """The built configuration lineup at one core count.

        Overrides are applied by field replacement *after* the factory
        runs, so they compose with factories that pin the same field
        themselves (``nocstar`` sets ``entries_per_core``); the built
        display names are preserved.
        """
        from dataclasses import replace

        built = [cfg.build_config(name, cores) for name in self.config_names]
        if self.overrides:
            fields = dict(self.overrides)
            built = [replace(config, **fields) for config in built]
        return built

    def scenarios(self, scale_name: str) -> List[Scenario]:
        """One Scenario per (core count, seed) — workload-major fan-out.

        Grouping the whole roster into one Scenario per lineup lets the
        Runner dedupe workload builds across the lineup and schedule
        the grid longest-first; the decomposition into cache-keyed
        RunUnits is the Scenario's own.
        """
        if self.kind != GRID:
            return []
        scale = self.scale(scale_name)
        scenarios = []
        for cores in scale.core_counts:
            lineup = self.lineup(cores)
            built_names = [config.name for config in lineup]
            if self.baseline not in built_names:
                raise ValueError(
                    f"baseline {self.baseline!r} not among built configs "
                    f"{built_names} of campaign {self.name!r}"
                )
            for seed in self.seeds():
                scenarios.append(
                    Scenario(
                        configurations=tuple(lineup),
                        workloads=scale.workloads,
                        accesses_per_core=scale.accesses_per_core,
                        seed=seed,
                        superpages=self.superpages,
                        baseline_name=self.baseline,
                    )
                )
        return scenarios

    def describe(self) -> Dict[str, object]:
        """JSON-friendly summary (the ``experiments list`` row)."""
        out: Dict[str, object] = {
            "name": self.name,
            "figure": self.figure,
            "title": self.title,
            "kind": self.kind,
        }
        if self.kind == META:
            out["members"] = list(self.members)
        else:
            out["scales"] = {
                name: self.grid_size(name) for name in self.scale_names
            }
        return out
