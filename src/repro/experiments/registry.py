"""Campaign registry — one namespace for every paper-figure campaign.

Mirrors the configuration registry (:func:`repro.sim.configs.
register_config`): campaigns register under unique names, duplicates
raise, and everything downstream (CLI, benches, drift gate) builds
from the same registered specs so no figure can grow a private copy of
its grid.

``register_campaign`` works both as a plain call on a spec and as a
decorator on a zero-argument factory::

    register_campaign(CampaignSpec(name="fig2", ...))

    @register_campaign
    def fig12() -> CampaignSpec:
        return CampaignSpec(name="fig12", ...)

Meta campaigns (``kind="meta"``) name member campaigns;
:func:`expand_campaigns` resolves them (one level deep, order
preserving, deduplicating) into concrete runnable specs.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple, Union

from repro.experiments.spec import META, CampaignSpec

_REGISTRY: Dict[str, CampaignSpec] = {}

SpecOrFactory = Union[CampaignSpec, Callable[[], CampaignSpec]]


def register_campaign(spec_or_factory: SpecOrFactory):
    """Register a campaign spec (or a factory producing one).

    Returns its argument unchanged so the decorator form leaves the
    factory importable and the plain form can be used inline.  Names
    must be unique — duplicates raise ``ValueError`` so two modules
    cannot silently fight over one figure.
    """
    spec = (
        spec_or_factory
        if isinstance(spec_or_factory, CampaignSpec)
        else spec_or_factory()
    )
    if not isinstance(spec, CampaignSpec):
        raise TypeError(
            f"register_campaign needs a CampaignSpec (got {type(spec)!r})"
        )
    if spec.name in _REGISTRY:
        raise ValueError(f"campaign {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec_or_factory


def available_campaigns() -> Tuple[str, ...]:
    """Every registered campaign name, sorted."""
    _ensure_loaded()
    return tuple(sorted(_REGISTRY))


def get_campaign(name: str) -> CampaignSpec:
    """Look a campaign up by name (``KeyError`` lists the registry)."""
    _ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(
            f"unknown campaign {name!r}; known: {known}"
        ) from None


def expand_campaigns(names: Sequence[str]) -> List[CampaignSpec]:
    """Resolve names (including metas) into concrete specs.

    Meta members are expanded one level deep in declaration order;
    duplicates keep their first position.  A meta member that is itself
    a meta raises — roll-ups of roll-ups hide what actually runs.
    """
    out: List[CampaignSpec] = []
    seen = set()
    for name in names:
        spec = get_campaign(name)
        members = spec.members if spec.kind == META else (spec.name,)
        for member in members:
            member_spec = get_campaign(member)
            if member_spec.kind == META:
                raise ValueError(
                    f"meta campaign {spec.name!r} may not nest the meta "
                    f"campaign {member!r}"
                )
            if member_spec.name not in seen:
                seen.add(member_spec.name)
                out.append(member_spec)
    return out


def _ensure_loaded() -> None:
    """Import the shipped campaign definitions exactly once."""
    from repro.experiments import campaigns  # noqa: F401  (registration)
