"""The shipped campaign specs — the paper's headline claims, as data.

One :class:`~repro.experiments.spec.CampaignSpec` per headline figure/
table, plus the ``headline`` meta-campaign that rolls the five
load-bearing ones into a single ``repro experiments run headline``.

The ``reduced`` scales reproduce the bench suite's reduced operating
point exactly (5 representative workloads, 5,000 accesses/core, seed
11) — which is the scale EXPERIMENTS.md's measured numbers, and
therefore the drift-gate pins, were taken at.  ``full`` is paper scale
(all 11 workloads, 12,000 accesses/core); ``smoke`` is the minutes-fast
CI operating point.
"""

from __future__ import annotations

from repro.experiments.registry import register_campaign
from repro.experiments.spec import ANALYTIC, META, CampaignSpec, Scale
from repro.workloads.registry import WORKLOAD_NAMES

#: The bench suite's reduced roster (benchmarks/_common.HEAVY_WORKLOADS).
REDUCED_WORKLOADS = ("graph500", "canneal", "xsbench", "olio", "gups")
#: The CI smoke roster: the three most divergent locality profiles.
SMOKE_WORKLOADS = ("graph500", "gups", "olio")

REDUCED_ACCESSES = 5_000
FULL_ACCESSES = 12_000
SMOKE_ACCESSES = 1_200

#: The bench suite's seed (benchmarks/_common.SEED).
SEED = 11


def _scales(smoke_cores, reduced_cores, full_cores=None):
    """The standard smoke/reduced/full ladder over one core-count axis."""
    return (
        ("smoke", Scale(SMOKE_ACCESSES, SMOKE_WORKLOADS, smoke_cores)),
        ("reduced", Scale(REDUCED_ACCESSES, REDUCED_WORKLOADS, reduced_cores)),
        ("full", Scale(FULL_ACCESSES, tuple(WORKLOAD_NAMES),
                       full_cores or reduced_cores)),
    )


register_campaign(
    CampaignSpec(
        name="fig2",
        title="Private L2 TLB misses eliminated by a shared TLB",
        figure="Fig 2",
        config_names=("private", "distributed"),
        scales=_scales(smoke_cores=(8, 16), reduced_cores=(16, 32, 64)),
        seed=SEED,
    )
)

register_campaign(
    CampaignSpec(
        name="fig12",
        title="16-core speedups over private L2 TLBs, 4KB pages only",
        figure="Fig 12",
        config_names=("private", "monolithic", "distributed", "nocstar",
                      "ideal"),
        superpages=False,
        scales=_scales(smoke_cores=(16,), reduced_cores=(16,)),
        seed=SEED,
        reducer="speedup",
    )
)

register_campaign(
    CampaignSpec(
        name="fig13",
        title="16-core speedups with transparent 2MB superpages",
        figure="Fig 13",
        config_names=("private", "monolithic", "distributed", "nocstar",
                      "ideal"),
        superpages=True,
        scales=_scales(smoke_cores=(16,), reduced_cores=(16,)),
        seed=SEED,
        reducer="speedup",
    )
)

register_campaign(
    CampaignSpec(
        name="fig14",
        title="Scalability (16-64 cores) and translation energy saved",
        figure="Fig 14",
        config_names=("private", "monolithic", "distributed", "nocstar"),
        scales=_scales(smoke_cores=(8, 16), reduced_cores=(16, 32, 64)),
        seed=SEED,
    )
)

register_campaign(
    CampaignSpec(
        name="fig15",
        title="Distribution vs interconnect breakdown at 32 cores",
        figure="Fig 15",
        config_names=("private", "monolithic", "monolithic-smart",
                      "distributed", "nocstar", "nocstar-ideal", "ideal"),
        scales=_scales(smoke_cores=(16,), reduced_cores=(32,)),
        seed=SEED,
    )
)

register_campaign(
    CampaignSpec(
        name="table1",
        title="TLB interconnect design choices, quantified",
        figure="Table I",
        kind=ANALYTIC,
        # core_counts doubles as the tile count for the analytic model;
        # Table I is evaluated on the paper's 64-tile system at every
        # scale (the model is closed-form, so there is nothing to cut).
        scales=(
            ("smoke", Scale(0, (), (64,))),
            ("reduced", Scale(0, (), (64,))),
            ("full", Scale(0, (), (64,))),
        ),
    )
)

register_campaign(
    CampaignSpec(
        name="policy_zoo",
        title="Replacement-policy zoo vs the offline Belady (OPT) bound",
        figure="ROADMAP item 3",
        config_names=("private", "distributed", "distributed-arc",
                      "distributed-twoq", "distributed-prio", "nocstar",
                      "nocstar-arc", "nocstar-twoq", "nocstar-prio"),
        scales=_scales(smoke_cores=(8,), reduced_cores=(16,)),
        seed=SEED,
        reducer="policy_zoo",
        # Area-constrained slices: replacement choice only matters under
        # capacity pressure, and campaign-scale traces fit comfortably
        # in the full 1024-entry structures (every policy would tie at
        # 100% of OPT).  128 entries/core keeps the zoo discriminative
        # at smoke/reduced scale.
        overrides=(("entries_per_core", 128),),
    )
)

register_campaign(
    CampaignSpec(
        name="headline",
        title="The paper's five headline artifacts",
        figure="Figs 2/12/14/15 + Table I",
        kind=META,
        members=("fig2", "fig12", "fig14", "fig15", "table1"),
    )
)
