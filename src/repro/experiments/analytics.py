"""Analytics — reduce raw campaign results into tidy tables + metrics.

Each campaign names a *reducer*: a function that turns the executor's
raw per-point :class:`~repro.sim.run.Comparison` map into

* **tables** — named lists of flat row dicts (tidy data: one
  observation per row), written as ``campaigns/<name>/<table>.csv``;
* **summary** — a flat ``metric -> float`` dict of the campaign's
  headline numbers, written as ``summary.json`` and fed to the drift
  gate.

Everything here is deterministic: rows are emitted in grid order,
floats are formatted with a fixed ``%.10g`` rule, and JSON keys are
sorted — so CSV/JSON artifacts are byte-identical whenever the
underlying results are (which the Runner guarantees across jobs=1/N
and cache replay).

Plotting is an optional extra: ``matplotlib`` renders one PNG per
campaign when importable, and its absence degrades to CSV-only with a
single warning (install with ``pip install repro[plot]``).
"""

from __future__ import annotations

import csv
import json
import os
import warnings
from typing import Callable, Dict, List, Tuple

from repro.energy.model import percent_energy_saved
from repro.noc.tradeoffs import evaluate_designs
from repro.sim.run import Comparison

from repro.experiments.spec import CampaignSpec, Scale
from repro.tlb.opt import OPT, offline_policy_eval, pct_of_opt, structure_for
from repro.workloads.generators import build_multithreaded
from repro.workloads.registry import get_workload

#: Raw results keyed by grid coordinates: (cores, seed, workload).
Comparisons = Dict[Tuple[int, int, str], Comparison]
#: Named tidy tables: table name -> list of flat row dicts.
Tables = Dict[str, List[Dict[str, object]]]
#: Headline metrics: flat dotted names -> values (the drift surface).
Summary = Dict[str, float]

Reducer = Callable[[CampaignSpec, str, Scale, Comparisons],
                   Tuple[Tables, Summary]]

#: Artifact layout version written into every summary.json.
ARTIFACT_SCHEMA = 1

_REDUCERS: Dict[str, Reducer] = {}


def register_reducer(name: str):
    """Register an analytics reducer under a unique name."""

    def _register(fn: Reducer) -> Reducer:
        if name in _REDUCERS:
            raise ValueError(f"reducer {name!r} is already registered")
        _REDUCERS[name] = fn
        return fn

    return _register


def reduce_campaign(
    spec: CampaignSpec,
    scale_name: str,
    scale: Scale,
    comparisons: Comparisons,
) -> Tuple[Tables, Summary]:
    """Run the campaign's reducer (default: its own name)."""
    name = spec.reducer or spec.name
    try:
        reducer = _REDUCERS[name]
    except KeyError:
        known = ", ".join(sorted(_REDUCERS))
        raise KeyError(f"no reducer {name!r}; known: {known}") from None
    return reducer(spec, scale_name, scale, comparisons)


def _mean(values: List[float]) -> float:
    return sum(values) / len(values)


# The spec's grid() takes a scale *name*; reducers already hold the
# Scale value, so iterate the product directly (same order as grid()).
def _points(spec: CampaignSpec, scale: Scale, comparisons: Comparisons):
    for cores in scale.core_counts:
        for seed in spec.seeds():
            for workload in scale.workloads:
                yield cores, seed, workload, comparisons[
                    (cores, seed, workload)
                ]


# ----------------------------------------------------------------------
# reducers


@register_reducer("fig2")
def _reduce_fig2(spec, scale_name, scale, comparisons):
    """Fig 2: % of private L2 misses the distributed shared TLB removes."""
    rows = []
    by_cores: Dict[int, List[float]] = {}
    for cores, seed, workload, lineup in _points(spec, scale, comparisons):
        pct = lineup.misses_eliminated_pct("distributed")
        rows.append(
            {"cores": cores, "seed": seed, "workload": workload,
             "eliminated_pct": pct}
        )
        by_cores.setdefault(cores, []).append(pct)
    summary = {
        f"elim_avg.c{cores}": _mean(values)
        for cores, values in sorted(by_cores.items())
    }
    summary["elim_min"] = min(row["eliminated_pct"] for row in rows)
    return {"miss_elimination": rows}, summary


@register_reducer("speedup")
def _reduce_speedup(spec, scale_name, scale, comparisons):
    """Figs 12/13: per-workload speedups over the private baseline."""
    rows = []
    by_config: Dict[str, List[float]] = {}
    for cores, seed, workload, lineup in _points(spec, scale, comparisons):
        for config, speedup in lineup.speedups().items():
            rows.append(
                {"cores": cores, "seed": seed, "workload": workload,
                 "config": config, "speedup": speedup}
            )
            by_config.setdefault(config, []).append(speedup)
    summary = {
        f"speedup_avg.{config}": _mean(values)
        for config, values in sorted(by_config.items())
    }
    summary["speedup_max.nocstar"] = max(by_config["nocstar"])
    if "ideal" in by_config:
        summary["ideal_fraction.nocstar"] = (
            summary["speedup_avg.nocstar"] / summary["speedup_avg.ideal"]
        )
    return {"speedups": rows}, summary


@register_reducer("fig14")
def _reduce_fig14(spec, scale_name, scale, comparisons):
    """Fig 14: speedup scalability + % translation energy saved."""
    rows = []
    speed: Dict[Tuple[int, str], List[float]] = {}
    saved: Dict[Tuple[int, str], List[float]] = {}
    for cores, seed, workload, lineup in _points(spec, scale, comparisons):
        base_pj = lineup.baseline.total_energy_pj
        for config, speedup in lineup.speedups().items():
            pct = percent_energy_saved(
                base_pj, lineup.results[config].total_energy_pj
            )
            rows.append(
                {"cores": cores, "seed": seed, "workload": workload,
                 "config": config, "speedup": speedup,
                 "energy_saved_pct": pct}
            )
            speed.setdefault((cores, config), []).append(speedup)
            saved.setdefault((cores, config), []).append(pct)
    summary: Summary = {}
    for (cores, config), values in sorted(speed.items()):
        summary[f"speedup_avg.c{cores}.{config}"] = _mean(values)
        summary[f"speedup_min.c{cores}.{config}"] = min(values)
        summary[f"speedup_max.c{cores}.{config}"] = max(values)
    for (cores, config), values in sorted(saved.items()):
        summary[f"energy_saved_avg.c{cores}.{config}"] = _mean(values)
    return {"scalability_energy": rows}, summary


@register_reducer("fig15")
def _reduce_fig15(spec, scale_name, scale, comparisons):
    """Fig 15: interconnect breakdown + NOCSTAR setup-retry levels."""
    rows = []
    retry_rows = []
    by_config: Dict[str, List[float]] = {}
    retries: List[float] = []
    for cores, seed, workload, lineup in _points(spec, scale, comparisons):
        for config, speedup in lineup.speedups().items():
            rows.append(
                {"cores": cores, "seed": seed, "workload": workload,
                 "config": config, "speedup": speedup}
            )
            by_config.setdefault(config, []).append(speedup)
        mean_retries = lineup.results["nocstar"].network[
            "mean_setup_retries"
        ]
        retries.append(mean_retries)
        retry_rows.append(
            {"cores": cores, "seed": seed, "workload": workload,
             "mean_setup_retries": mean_retries}
        )
    summary = {
        f"speedup_avg.{config}": _mean(values)
        for config, values in sorted(by_config.items())
    }
    summary["setup_retries.max"] = max(retries)
    summary["ideal_fraction.nocstar"] = (
        summary["speedup_avg.nocstar"] / summary["speedup_avg.ideal"]
    )
    return {"speedups": rows, "setup_retries": retry_rows}, summary


@register_reducer("policy_zoo")
def _reduce_policy_zoo(spec, scale_name, scale, comparisons):
    """Policy zoo: speedup + %-of-OPT per config x workload.

    Rebuilds each grid point's workload (same generator inputs the
    executor used, so the trace is identical) and replays it offline
    through :mod:`repro.tlb.opt` against each configuration's L2
    geometry.  One offline evaluation covers every policy plus the
    Belady bound, and is memoised per (grid point, geometry): lineup
    members sharing a geometry — e.g. every ``distributed-*`` policy
    variant — pay for it once.
    """
    rows = []
    speed: Dict[str, List[float]] = {}
    pct: Dict[str, List[float]] = {}
    workload_cache: Dict[Tuple[int, int, str], object] = {}
    eval_cache: Dict[Tuple[int, int, str, Tuple], Dict] = {}
    for cores, seed, workload, lineup in _points(spec, scale, comparisons):
        wl_key = (cores, seed, workload)
        built = workload_cache.get(wl_key)
        if built is None:
            built = build_multithreaded(
                get_workload(workload), cores, scale.accesses_per_core,
                seed=seed, superpages=spec.superpages,
            )
            workload_cache[wl_key] = built
        configs = {config.name: config for config in spec.lineup(cores)}
        for name in sorted(lineup.results):
            result = lineup.results[name]
            config = configs[name]
            geometry = structure_for(config)
            geo_key = wl_key + (
                (geometry.num_shards, geometry.entries_per_shard,
                 geometry.ways, geometry.index_shift, geometry.private),
            )
            evals = eval_cache.get(geo_key)
            if evals is None:
                evals = offline_policy_eval(built, config)
                eval_cache[geo_key] = evals
            stats = result.stats
            l2_accesses = stats.l2_hits + stats.l2_misses
            speedup = (
                1.0 if name == lineup.baseline_name
                else lineup.speedup(name)
            )
            of_opt = pct_of_opt(evals, config.policy)
            rows.append(
                {"cores": cores, "seed": seed, "workload": workload,
                 "config": name, "policy": config.policy,
                 "arbitration": config.arbitration,
                 "cycles": result.cycles, "speedup": speedup,
                 "sim_l2_hit_rate": (
                     stats.l2_hits / l2_accesses if l2_accesses else 0.0
                 ),
                 "offline_hit_rate": evals[config.policy].hit_rate,
                 "opt_hit_rate": evals[OPT].hit_rate,
                 "pct_of_opt": of_opt}
            )
            speed.setdefault(name, []).append(speedup)
            pct.setdefault(name, []).append(of_opt)
    summary: Summary = {}
    for name, values in sorted(speed.items()):
        summary[f"speedup_avg.{name}"] = _mean(values)
    for name, values in sorted(pct.items()):
        summary[f"pct_of_opt_avg.{name}"] = _mean(values)
    summary["pct_of_opt_min"] = min(
        row["pct_of_opt"] for row in rows
    )
    return {"policy_zoo": rows}, summary


@register_reducer("table1")
def _reduce_table1(spec, scale_name, scale, comparisons):
    """Table I: quantified design-choice metrics (no simulation)."""
    tiles = scale.core_counts[0]
    rows = []
    summary: Summary = {}
    for row in evaluate_designs(tiles):
        rows.append(
            {
                "noc": row.name,
                "latency_glyph": row.glyphs["latency"],
                "bandwidth_glyph": row.glyphs["bandwidth"],
                "area_glyph": row.glyphs["area"],
                "power_glyph": row.glyphs["power"],
                "latency_cycles": row.latency_cycles,
                "bandwidth_transfers": row.bandwidth_transfers,
                "area_units": row.area_units,
                "power_units": row.power_units,
            }
        )
        summary[f"latency_cycles.{row.name}"] = row.latency_cycles
        summary[f"bandwidth.{row.name}"] = row.bandwidth_transfers
    return {"design_choices": rows}, summary


# ----------------------------------------------------------------------
# artifact writing


def _format_cell(value: object) -> str:
    """Deterministic CSV cell formatting (the byte-identity contract).

    Floats use ``%.10g`` — enough digits that distinct doubles from
    the deterministic engine render distinctly, few enough that the
    format is stable and diff-friendly.
    """
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return format(value, ".10g")
    return str(value)


def write_table_csv(path: str, rows: List[Dict[str, object]]) -> str:
    """Write one tidy table; column order follows the first row."""
    if not rows:
        raise ValueError(f"refusing to write an empty table to {path!r}")
    fieldnames = list(rows[0].keys())
    for row in rows:
        if list(row.keys()) != fieldnames:
            raise ValueError(
                f"ragged table rows for {path!r}: {list(row.keys())} "
                f"vs {fieldnames}"
            )
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", newline="\n") as fh:
        writer = csv.writer(fh, lineterminator="\n")
        writer.writerow(fieldnames)
        for row in rows:
            writer.writerow([_format_cell(row[name]) for name in fieldnames])
    return path


_PLOT_WARNED = False


def _plot_summary(title: str, summary: Summary, path: str) -> bool:
    """Render the summary metrics as one horizontal bar chart.

    Returns ``False`` (after a single process-wide warning) when
    matplotlib is unavailable — the CSV-only degradation path.
    """
    global _PLOT_WARNED
    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        if not _PLOT_WARNED:
            _PLOT_WARNED = True
            warnings.warn(
                "matplotlib is not installed; campaign plots are "
                "skipped (CSV/JSON artifacts are still written). "
                "Install the optional extra with `pip install "
                "repro[plot]`.",
                stacklevel=2,
            )
        return False
    names = sorted(summary)
    values = [summary[name] for name in names]
    height = max(2.0, 0.35 * len(names) + 1.0)
    fig, ax = plt.subplots(figsize=(8.0, height))
    ax.barh(range(len(names)), values)
    ax.set_yticks(range(len(names)))
    ax.set_yticklabels(names, fontsize=7)
    ax.invert_yaxis()
    ax.set_title(title, fontsize=9)
    fig.tight_layout()
    fig.savefig(path, dpi=120)
    plt.close(fig)
    return True


def write_artifacts(run, out_dir: str, plot: bool = True) -> List[str]:
    """Write one campaign run's artifact tree; returns written paths.

    Layout (all under ``<out_dir>/<campaign>/``):

    * ``<table>.csv``   — one per tidy table, deterministic bytes;
    * ``summary.json``  — schema/campaign/scale/figure + the summary
      metrics (sorted keys; the drift gate's input);
    * ``summary.png``   — optional matplotlib bar chart of the summary.
    """
    directory = os.path.join(out_dir, run.spec.name)
    os.makedirs(directory, exist_ok=True)
    written = []
    for table_name, rows in run.tables.items():
        written.append(
            write_table_csv(
                os.path.join(directory, f"{table_name}.csv"), rows
            )
        )
    payload = {
        "schema": ARTIFACT_SCHEMA,
        "campaign": run.spec.name,
        "figure": run.spec.figure,
        "scale": run.scale_name,
        "grid_size": run.spec.grid_size(run.scale_name),
        "summary": run.summary,
    }
    summary_path = os.path.join(directory, "summary.json")
    with open(summary_path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    written.append(summary_path)
    if plot:
        png_path = os.path.join(directory, "summary.png")
        if _plot_summary(
            f"{run.spec.figure} — {run.spec.title} [{run.scale_name}]",
            run.summary,
            png_path,
        ):
            written.append(png_path)
    return written


def read_summary(out_dir: str, campaign: str) -> Dict[str, object]:
    """Load a previously written ``summary.json`` (``repro experiments
    check`` without re-running)."""
    path = os.path.join(out_dir, campaign, "summary.json")
    with open(path) as fh:
        return json.load(fh)
