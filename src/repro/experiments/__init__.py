"""``repro.experiments`` — declarative paper-figure campaign runner.

The subsystem has four layers (see DESIGN.md, "Experiment campaigns"):

* :mod:`repro.experiments.spec` — frozen :class:`CampaignSpec`/
  :class:`Scale` values describing a figure's experiment grid
  (``itertools.product`` over core counts x seeds x workloads, times a
  configuration lineup) at smoke/reduced/full scales;
* :mod:`repro.experiments.registry` — ``@register_campaign`` and the
  shipped specs (:mod:`repro.experiments.campaigns`): fig2, fig12,
  fig13, fig14, fig15, table1, and the ``headline`` meta-campaign;
* :mod:`repro.experiments.executor` — :func:`run_campaign` fans the
  grid through the existing Runner/TraceStore/ResultCache stack
  (warm-cache cheap, byte-deterministic across jobs) and reduces raw
  results via :mod:`repro.experiments.analytics` into tidy CSV tables
  and headline summary metrics under ``campaigns/<name>/``;
* :mod:`repro.experiments.drift` — per-campaign pinned reference
  numbers with relative tolerances; :func:`check_drift` turns a
  summary into a green/red/warn report (the ``--check`` gate).

CLI: ``repro experiments list | run | check | pin``.
"""

from repro.experiments.analytics import (
    ARTIFACT_SCHEMA,
    read_summary,
    reduce_campaign,
    register_reducer,
    write_artifacts,
    write_table_csv,
)
from repro.experiments.drift import (
    DEFAULT_RTOL,
    PIN_SCHEMA,
    DriftReport,
    DriftVerdict,
    check_drift,
    load_pins,
    pin_path,
    update_pins,
)
from repro.experiments.executor import CampaignRun, run_campaign
from repro.experiments.registry import (
    available_campaigns,
    expand_campaigns,
    get_campaign,
    register_campaign,
)
from repro.experiments.spec import (
    ANALYTIC,
    GRID,
    META,
    STANDARD_SCALES,
    CampaignSpec,
    GridPoint,
    Scale,
)

__all__ = [
    # specs & registry
    "CampaignSpec",
    "Scale",
    "GridPoint",
    "GRID",
    "ANALYTIC",
    "META",
    "STANDARD_SCALES",
    "register_campaign",
    "available_campaigns",
    "get_campaign",
    "expand_campaigns",
    # execution & analytics
    "CampaignRun",
    "run_campaign",
    "register_reducer",
    "reduce_campaign",
    "write_artifacts",
    "write_table_csv",
    "read_summary",
    "ARTIFACT_SCHEMA",
    # drift gate
    "DriftReport",
    "DriftVerdict",
    "check_drift",
    "update_pins",
    "load_pins",
    "pin_path",
    "DEFAULT_RTOL",
    "PIN_SCHEMA",
]
