"""Drift gate — pinned reference numbers per campaign, with tolerances.

Every campaign may ship a pin file (``pins/<campaign>.json``, package
data) holding, per scale, the expected value and relative tolerance of
each summary metric.  ``check_drift`` compares a measured summary
against those pins and produces a :class:`DriftReport` whose verdict
rows follow the bench-regression gate's philosophy
(``tools/check_bench_regression.py``):

* ``ok``             — within tolerance (green);
* ``DRIFT``          — beyond tolerance (red; the gate fails);
* ``missing-metric`` — pinned but not measured (red: a renamed or
  dropped metric must fail loudly, not silently un-gate itself);
* ``no-pin``         — measured but not pinned (warn, pass: new metrics
  need a pin-update, not a red build);
* ``no-pins``        — no pin file, or no section for this scale
  (warn, pass: a gate needs a reference before it can gate).

Pin file layout (sorted keys, one file per campaign)::

    {
      "schema": 1,
      "campaign": "fig12",
      "scales": {
        "reduced": {
          "metrics": {
            "speedup_avg.nocstar": {"value": 1.137, "rtol": 0.05}
          }
        }
      }
    }

The pins shipped in-tree are seeded from the measured numbers recorded
in EXPERIMENTS.md (reduced scale) and from the CI smoke runs (smoke
scale); ``repro experiments pin`` regenerates them — the documented
workflow for intentional model changes (see DESIGN.md).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.tables import render_table

from repro.experiments.analytics import Summary

#: Pin file layout version.
PIN_SCHEMA = 1

#: Default relative tolerance for freshly written pins.  The engine is
#: deterministic, so same-code re-runs match exactly; 5% headroom is
#: for platform float quirks and deliberate small calibration shifts —
#: anything larger should be a conscious `repro experiments pin`.
DEFAULT_RTOL = 0.05

#: In-tree pin directory (package data).
PINS_DIR = os.path.join(os.path.dirname(__file__), "pins")


def pin_path(campaign: str, pins_dir: Optional[str] = None) -> str:
    return os.path.join(pins_dir or PINS_DIR, f"{campaign}.json")


def load_pins(
    campaign: str, pins_dir: Optional[str] = None
) -> Optional[Dict]:
    """The campaign's pin payload, or ``None`` when no file exists."""
    path = pin_path(campaign, pins_dir)
    if not os.path.exists(path):
        return None
    with open(path) as fh:
        return json.load(fh)


@dataclass(frozen=True)
class DriftVerdict:
    """One metric's comparison against its pin."""

    metric: str
    status: str  # ok | DRIFT | missing-metric | no-pin | no-pins
    pinned: Optional[float] = None
    measured: Optional[float] = None
    rtol: Optional[float] = None

    @property
    def delta(self) -> Optional[float]:
        """Fractional deviation from the pin (None when incomparable)."""
        if self.pinned is None or self.measured is None:
            return None
        if self.pinned == 0.0:
            return self.measured
        return self.measured / self.pinned - 1.0


@dataclass
class DriftReport:
    """All verdicts of one (campaign, scale) drift check."""

    campaign: str
    scale: str
    verdicts: List[DriftVerdict]

    @property
    def ok(self) -> bool:
        return not any(
            v.status in ("DRIFT", "missing-metric") for v in self.verdicts
        )

    @property
    def gated(self) -> bool:
        """Whether any pin actually constrained this run."""
        return any(
            v.status in ("ok", "DRIFT", "missing-metric")
            for v in self.verdicts
        )

    def render(self) -> str:
        def fmt(value):
            return format(value, ".6g") if value is not None else "-"

        rows = []
        for v in self.verdicts:
            delta = v.delta
            rows.append(
                [
                    v.metric,
                    fmt(v.pinned),
                    fmt(v.measured),
                    f"{delta * 100.0:+.2f}%" if delta is not None else "-",
                    f"{v.rtol * 100.0:.0f}%" if v.rtol is not None else "-",
                    v.status,
                ]
            )
        title = f"== drift gate: {self.campaign} [{self.scale}] =="
        table = render_table(
            ["metric", "pinned", "measured", "delta", "rtol", "status"],
            rows,
            title=title,
        )
        verdict = "OK" if self.ok else "FAIL"
        if not self.gated:
            verdict = "OK (ungated: no pins for this scale)"
        return f"{table}\n{verdict}"


def _check_metric(
    metric: str, pin: Dict, measured: Optional[float]
) -> DriftVerdict:
    pinned = float(pin["value"])
    rtol = float(pin.get("rtol", DEFAULT_RTOL))
    if measured is None:
        return DriftVerdict(
            metric=metric, status="missing-metric", pinned=pinned, rtol=rtol
        )
    if pinned == 0.0:
        drifted = abs(measured) > rtol
    else:
        drifted = abs(measured - pinned) > rtol * abs(pinned)
    return DriftVerdict(
        metric=metric,
        status="DRIFT" if drifted else "ok",
        pinned=pinned,
        measured=float(measured),
        rtol=rtol,
    )


def check_drift(
    campaign: str,
    scale: str,
    summary: Summary,
    pins_dir: Optional[str] = None,
) -> DriftReport:
    """Compare a measured summary against the campaign's pins."""
    payload = load_pins(campaign, pins_dir)
    section = (
        ((payload or {}).get("scales") or {}).get(scale) or {}
    ).get("metrics")
    if not section:
        return DriftReport(
            campaign=campaign,
            scale=scale,
            verdicts=[DriftVerdict(metric="*", status="no-pins")],
        )
    verdicts = []
    for metric in sorted(section):
        verdicts.append(
            _check_metric(metric, section[metric], summary.get(metric))
        )
    for metric in sorted(summary):
        if metric not in section:
            verdicts.append(
                DriftVerdict(
                    metric=metric,
                    status="no-pin",
                    measured=float(summary[metric]),
                )
            )
    return DriftReport(campaign=campaign, scale=scale, verdicts=verdicts)


def update_pins(
    campaign: str,
    scale: str,
    summary: Summary,
    rtol: float = DEFAULT_RTOL,
    pins_dir: Optional[str] = None,
) -> str:
    """Write (or refresh) one scale's pins from a measured summary.

    Existing per-metric tolerances are preserved; metrics that vanished
    from the summary are dropped from the scale section (they would
    otherwise fail every future check as ``missing-metric``).  Other
    scales' sections are left untouched.  Returns the pin file path.
    """
    if rtol < 0.0:
        raise ValueError("rtol must be >= 0")
    payload = load_pins(campaign, pins_dir) or {
        "schema": PIN_SCHEMA,
        "campaign": campaign,
        "scales": {},
    }
    scales = payload.setdefault("scales", {})
    previous = (scales.get(scale) or {}).get("metrics") or {}
    metrics = {}
    for metric in sorted(summary):
        kept_rtol = float(previous.get(metric, {}).get("rtol", rtol))
        metrics[metric] = {
            "value": float(summary[metric]),
            "rtol": kept_rtol,
        }
    scales[scale] = {"metrics": metrics}
    path = pin_path(campaign, pins_dir)
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path
