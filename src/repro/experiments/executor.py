"""Campaign executor — expand a spec and fan it through the Runner.

``run_campaign`` is the one way a campaign turns into results: the
spec's scenarios go through :class:`repro.exec.Runner` (process-pool
fan-out, content-addressed result cache, build-once trace store), the
raw per-point Comparisons are reduced by the campaign's analytics
reducer, and the whole thing comes back as a :class:`CampaignRun`.

Because execution rides the existing Runner stack, campaigns inherit
its contracts wholesale: warm-cache re-runs skip simulation entirely,
and results — hence CSV artifacts — are byte-identical across
``jobs=1``/``jobs=N`` and cache replay.

Observability: pass a :class:`~repro.obs.spans.Tracer` to record a
``campaign.run`` span with one ``campaign.scenario`` child per grid
lineup (the Runner adds its own ``runner.execute``/``unit.*`` spans to
the same trace), and a :class:`~repro.obs.MetricsRegistry` to count
``experiments.*`` scenarios/units/cache traffic.  Both are pure
telemetry — they never touch results or cache keys.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Union

from repro.exec.runner import Runner
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import Tracer
from repro.sim.run import Comparison

from repro.experiments.analytics import (
    Summary,
    Tables,
    reduce_campaign,
    write_artifacts,
)
from repro.experiments.registry import get_campaign
from repro.experiments.spec import GRID, META, CampaignSpec, Scale


@dataclass
class CampaignRun:
    """One executed campaign: raw results, tidy tables, and metrics."""

    spec: CampaignSpec
    scale_name: str
    scale: Scale
    #: Raw per-point results keyed by (cores, seed, workload); empty
    #: for analytic campaigns.
    comparisons: Dict[tuple, Comparison]
    tables: Tables
    summary: Summary
    #: Execution counters: scenarios, units, cache hits/misses.
    stats: Dict[str, int] = field(default_factory=dict)

    def write(self, out_dir: str, plot: bool = True):
        """Write the artifact tree (see analytics.write_artifacts)."""
        return write_artifacts(self, out_dir, plot=plot)


def run_campaign(
    campaign: Union[str, CampaignSpec],
    scale: str = "reduced",
    runner: Optional[Runner] = None,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> CampaignRun:
    """Execute one concrete campaign at the named scale.

    ``campaign`` is a registered name or a spec value (metas must be
    expanded first — see :func:`repro.experiments.expand_campaigns`).
    ``runner`` defaults to a serial, cache-less Runner; pass a
    configured one to get fan-out, result caching, and the trace
    store.
    """
    spec = get_campaign(campaign) if isinstance(campaign, str) else campaign
    if spec.kind == META:
        raise ValueError(
            f"meta campaign {spec.name!r} cannot run directly; expand it "
            "with expand_campaigns() first"
        )
    scale_value = spec.scale(scale)
    if tracer is None:
        return _run(spec, scale, scale_value, runner, None, metrics)
    with tracer.span(
        "campaign.run",
        campaign=spec.name,
        scale=scale,
        grid=spec.grid_size(scale),
    ) as span:
        return _run(spec, scale, scale_value, runner, (tracer, span), metrics)


def _run(spec, scale_name, scale, runner, tracing, metrics):
    stats = {"scenarios": 0, "units": 0, "cache_hits": 0, "cache_misses": 0}
    comparisons: Dict[tuple, Comparison] = {}
    if spec.kind == GRID:
        if runner is None:
            runner = Runner(jobs=1, cache_dir=None)
        if tracing is not None and runner.tracer is None:
            runner.tracer = tracing[0]
        for scenario in spec.scenarios(scale_name):
            if tracing is not None:
                tracer, parent = tracing
                with tracer.span(
                    "campaign.scenario",
                    parent=parent,
                    campaign=spec.name,
                    cores=scenario.num_cores,
                    seed=scenario.seed,
                ):
                    per_workload = runner.run(scenario)
            else:
                per_workload = runner.run(scenario)
            stats["scenarios"] += 1
            stats["units"] += len(scenario.units())
            stats["cache_hits"] += runner.stats["hits"]
            stats["cache_misses"] += runner.stats["misses"]
            for workload_name, comparison in per_workload.items():
                comparisons[
                    (scenario.num_cores, scenario.seed, workload_name)
                ] = comparison
    if metrics is not None:
        for key, value in stats.items():
            metrics.counter(f"experiments.{spec.name}.{key}").inc(value)
    tables, summary = reduce_campaign(spec, scale_name, scale, comparisons)
    return CampaignRun(
        spec=spec,
        scale_name=scale_name,
        scale=scale,
        comparisons=comparisons,
        tables=tables,
        summary=summary,
        stats=stats,
    )
