"""Quantitative backing for Table I's NoC design-choice comparison.

For each candidate TLB interconnect we compute, on a 64-tile mesh:

* **latency** — analytic low-load latency at the mesh's mean hop count;
* **bandwidth** — sustainable concurrent transfers (bisection-style
  proxy: independent transmissions the fabric supports at once);
* **area** — wire area + switching area + buffer area, in units of one
  mesh link's wire;
* **power** — the same components weighted by their toggle cost.

The glyph column maps each metric against the mesh baseline with the
thresholds the paper's table implies (good ``yes``, bad ``no``, doubled
for extreme cases), so the bench regenerates Table I's shape from the
numbers instead of hard-coding it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.noc import latency as lat
from repro.noc.topology import MeshTopology


@dataclass(frozen=True)
class NocEvaluation:
    """Quantified metrics of one design, plus Table I-style glyphs."""

    name: str
    latency_cycles: float
    bandwidth_transfers: float
    area_units: float
    power_units: float
    glyphs: Dict[str, str]


def _glyph(value: float, good: float, bad: float, invert: bool = False) -> str:
    """Map a metric to Table I glyphs; ``invert`` for higher-is-better."""
    if invert:
        if value >= 2 * good:
            return "yes+"
        if value >= good:
            return "yes"
        if value <= bad / 2:
            return "no+"
        return "no"
    if value <= good / 2:
        return "yes+"
    if value <= good:
        return "yes"
    if value >= 2 * bad:
        return "no+"
    return "no"


def evaluate_designs(num_tiles: int = 64) -> List[NocEvaluation]:
    """Table I, quantified on an ``num_tiles``-tile system."""
    topo = MeshTopology(num_tiles)
    mean_hops = (topo.rows + topo.cols) / 3.0  # uniform-traffic mesh mean
    num_links = len(topo.all_links())
    fb_links = num_links * 2  # express links roughly double the wiring

    rows: List[NocEvaluation] = []

    def add(name, latency_cycles, bandwidth, area, power):
        rows.append(
            NocEvaluation(
                name=name,
                latency_cycles=latency_cycles,
                bandwidth_transfers=bandwidth,
                area_units=area,
                power_units=power,
                glyphs={
                    "latency": _glyph(latency_cycles, good=4.0, bad=8.0),
                    "bandwidth": _glyph(bandwidth, good=8.0, bad=2.0, invert=True),
                    "area": _glyph(area, good=num_links * 1.5, bad=num_links * 2.5),
                    "power": _glyph(power, good=num_links * 1.5, bad=num_links * 2.5),
                },
            )
        )

    hops = round(mean_hops)
    # Bus: one shared medium.  Low latency when idle, no concurrency,
    # cheap wires, but every traversal is a full-chip broadcast.
    add("bus", lat.BUS.latency(1), 1.0, num_links * 0.5, num_links * 3.0)
    # Mesh: short links + simple routers, but buffers everywhere and
    # multi-hop latency.
    add(
        "mesh",
        lat.MESH.latency(hops),
        num_links / mean_hops,
        num_links * (1.0 + 1.2),  # wires + buffered routers
        num_links * (1.0 + 1.2),
    )
    # Flattened butterfly, wide: high-radix routers and long links.
    fb_hops = lat.fbfly_hops(hops)
    add(
        "fbfly-wide",
        lat.FBFLY_WIDE.latency(fb_hops),
        fb_links / max(fb_hops, 1) * 2,
        num_links * (4.0 + 2.0),  # 4x wiring + crossbar area
        num_links * (4.0 + 2.0),
    )
    # Flattened butterfly, narrow: quarter-width datapath.
    add(
        "fbfly-narrow",
        lat.FBFLY_NARROW.latency(fb_hops),
        fb_links / max(fb_hops, 1) / 2,
        num_links * (1.0 + 1.5),
        num_links * (1.0 + 1.5),
    )
    # SMART: mesh wiring + bypass control + buffered routers remain.
    add(
        "smart",
        lat.smart_params(8).latency(hops),
        num_links / mean_hops,
        num_links * (1.0 + 1.4),
        num_links * (1.0 + 1.4),
    )
    # NOCSTAR: mesh wiring, latchless muxes (<1% of slice SRAM area,
    # Fig 9), modest arbiter power.
    add(
        "nocstar",
        lat.nocstar_params(16).latency(hops),
        num_links / mean_hops,
        num_links * (1.0 + 0.05),
        num_links * (1.0 + 0.3),
    )
    return rows
