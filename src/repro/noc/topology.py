"""2D mesh topology: tile coordinates, XY routes, and directed links.

Tiles are numbered row-major on an R x C grid (squarest factoring of
the tile count, as in tiled many-cores).  Links are directed edges
between adjacent tiles, identified by ``(src_tile, dst_tile)``; XY
routing traverses the X dimension first, then Y — the routing policy
NOCSTAR's link arbiters assume (§III-B2, Fig 7d).
"""

from __future__ import annotations

import math
from typing import List, Tuple

Link = Tuple[int, int]


class MeshTopology:
    """Geometry and routing for an R x C tile grid."""

    def __init__(self, num_tiles: int) -> None:
        if num_tiles <= 0:
            raise ValueError("need at least one tile")
        rows = int(math.sqrt(num_tiles))
        while num_tiles % rows:
            rows -= 1
        self.num_tiles = num_tiles
        self.rows = rows
        self.cols = num_tiles // rows

    def coords(self, tile: int) -> Tuple[int, int]:
        """(x, y) of a tile: x is the column, y the row."""
        if not 0 <= tile < self.num_tiles:
            raise ValueError(f"tile {tile} out of range")
        return tile % self.cols, tile // self.cols

    def tile_at(self, x: int, y: int) -> int:
        if not (0 <= x < self.cols and 0 <= y < self.rows):
            raise ValueError(f"({x}, {y}) outside the {self.cols}x{self.rows} mesh")
        return y * self.cols + x

    def hops(self, src: int, dst: int) -> int:
        """Manhattan distance between two tiles."""
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        return abs(sx - dx) + abs(sy - dy)

    def xy_path(self, src: int, dst: int) -> List[Link]:
        """Directed links of the XY route from ``src`` to ``dst``."""
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        links: List[Link] = []
        x, y = sx, sy
        step = 1 if dx > x else -1
        while x != dx:
            nxt = x + step
            links.append((self.tile_at(x, y), self.tile_at(nxt, y)))
            x = nxt
        step = 1 if dy > y else -1
        while y != dy:
            nxt = y + step
            links.append((self.tile_at(x, y), self.tile_at(x, nxt)))
            y = nxt
        return links

    def yx_path(self, src: int, dst: int) -> List[Link]:
        """Directed links of the YX route (Y dimension first, then X).

        The escape route for fault-aware routing: XY and YX share no
        intermediate links, so a single failed link never blocks both.
        """
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        links: List[Link] = []
        x, y = sx, sy
        step = 1 if dy > y else -1
        while y != dy:
            nxt = y + step
            links.append((self.tile_at(x, y), self.tile_at(x, nxt)))
            y = nxt
        step = 1 if dx > x else -1
        while x != dx:
            nxt = x + step
            links.append((self.tile_at(x, y), self.tile_at(nxt, y)))
            x = nxt
        return links

    @property
    def center_tile(self) -> int:
        """Tile nearest the grid centre (monolithic placement candidate)."""
        return self.tile_at(self.cols // 2, self.rows // 2)

    @property
    def edge_tile(self) -> int:
        """Bottom-centre tile — where the paper's monolithic TLB sits
        ("placed at one end of the chip", §II-C)."""
        return self.tile_at(self.cols // 2, self.rows - 1)

    def mean_hops_to(self, dst: int) -> float:
        """Average hop count from every tile to ``dst``."""
        return sum(self.hops(t, dst) for t in range(self.num_tiles)) / self.num_tiles

    @property
    def diameter(self) -> int:
        """Longest XY route in the mesh."""
        return (self.cols - 1) + (self.rows - 1)

    def all_links(self) -> List[Link]:
        """Every directed link of the mesh."""
        links = []
        for tile in range(self.num_tiles):
            x, y = self.coords(tile)
            for nx, ny in ((x + 1, y), (x - 1, y), (x, y + 1), (x, y - 1)):
                if 0 <= nx < self.cols and 0 <= ny < self.rows:
                    links.append((tile, self.tile_at(nx, ny)))
        return links
