"""SMART NoC model [HPCA'13], the monolithic configuration's fast NoC.

SMART lets a flit dynamically build a multi-hop bypass path over a
mesh, covering up to HPCmax hops per cycle.  Unlike NOCSTAR's
circuit-switched paths, SMART bypasses are *not guaranteed*: SSR
(SMART-hop setup request) conflicts force the flit to stop and get
latched at an intermediate router, paying a router traversal before
re-arbitrating (§II-F, Table I).

The model reserves the links of each HPC segment; a conflicting link
splits the segment at the conflict point — exactly a SMART "premature
stop"."""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.faults.routing import UnreachableError
from repro.noc.mesh import Traversal
from repro.noc.topology import Link, MeshTopology
from repro.obs import NULL_SINK


class SmartNetwork:
    """SMART mesh with HPCmax bypass and conflict-induced stops."""

    def __init__(
        self, topology: MeshTopology, hpc_max: int = 8, sink=NULL_SINK,
        faults=None, routes=None,
    ) -> None:
        if hpc_max < 1:
            raise ValueError("HPCmax must be at least 1")
        self.topology = topology
        self.hpc_max = hpc_max
        self.sink = sink
        #: Bound event emitter, or None when unobserved — send() then
        #: skips building the kwargs for a no-op sink call.
        self._event = sink.event if sink.enabled else None
        self.faults = faults  # Optional[FaultInjector]
        self.routes = routes  # Optional[RouteCache]
        if faults is not None and faults.router.dead:
            # Dead links invalidate the fault-free route cache: every
            # send routes through the FaultAwareRouter instead.
            self._route = self._fault_route
        elif routes is not None:
            self._route = routes.path
        else:
            self._route = topology.xy_path
        #: link -> cycles during which it carries a flit (per-cycle
        #: occupancy; see the reservation note in repro.core.nocstar).
        #: Pre-populated with every topology link so the hot send loop
        #: can use plain indexing (no setdefault, no None checks).
        self._occupied: Dict[Link, set] = {
            link: set() for link in topology.all_links()
        }
        self.messages = 0
        self.total_hops = 0
        self.premature_stops = 0
        self.total_queue_cycles = 0

    def link_busy_cycles(self) -> Dict[Link, int]:
        """Cycles each link carried a flit (utilization numerator)."""
        return {
            link: len(cycles)
            for link, cycles in self._occupied.items()
            if cycles
        }

    def _free(self, link: Link, cycle: int) -> bool:
        occupied = self._occupied.get(link)
        return not occupied or cycle not in occupied

    def _fault_route(self, src: int, dst: int) -> List[Link]:
        """Fault-aware route: bypass segments then ride the detour path
        (SSRs follow whatever route the flit is configured with)."""
        path = self.faults.router.route(src, dst)
        if path is None:
            raise UnreachableError(
                f"no alive route {src}->{dst}; caller must pre-check "
                "reachability and degrade to a local walk"
            )
        return list(path)

    def send(self, src: int, dst: int, now: int) -> Traversal:
        path = self._route(src, dst)
        self.messages += 1
        self.total_hops += len(path)
        if not path:
            return Traversal(arrival=now, hops=0)
        # One SSR setup cycle precedes the first data cycle.
        t = now + 1
        queued = 0
        stops = 0
        index = 0
        occupancy = self._occupied
        hpc = self.hpc_max
        npath = len(path)
        while index < npath:
            # A cycle where the segment's first link is busy advances
            # nothing (the flit waits at the router), so fast-forward
            # to the first cycle that can make progress instead of
            # rescanning the segment once per blocked cycle — under
            # heavy contention near the monolithic tile that rescan
            # made send() quadratic in the queueing delay.
            first_occupied = occupancy[path[index]]
            while t in first_occupied:
                queued += 1
                t += 1
            end = index + hpc
            if end > npath:
                end = npath
            # The bypass extends as far as contiguous free links allow;
            # advanced links are reserved as the scan passes them (they
            # are traversed this cycle even on a premature stop), so
            # check and reservation share one loop — the model's
            # innermost.
            i = index
            while i < end:
                occupied = occupancy[path[i]]
                if t in occupied:
                    break
                occupied.add(t)
                i += 1
            t += 1  # the bypass segment crosses in one cycle
            if i == end:
                index = end
            else:
                index = i
                # Premature stop: latched at an intermediate router.
                stops += 1
                t += 1  # router traversal + re-arbitration
        self.premature_stops += stops
        self.total_queue_cycles += queued
        if self._event is not None:
            self._event(
                now, "smart_setup",
                src=src, dst=dst, hops=len(path), stops=stops, queued=queued,
            )
        return Traversal(
            arrival=t, hops=len(path), queue_cycles=queued, links=tuple(path)
        )
