"""Analytic NoC latency: T = H*(tr + tw) + sum tc(h) + Ts  (§II-F).

``H`` is hop count, ``tr`` router delay, ``tw`` wire delay, ``tc``
per-hop contention, and ``Ts`` serialisation delay of a wide packet on
narrow links.  Per-design parameter sets reproduce Table I's
qualitative comparison and Fig 11a's latency-vs-hops curves.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class NocParams:
    """Latency parameters of one interconnect design."""

    name: str
    router_cycles: int = 1  # tr
    wire_cycles: int = 1  # tw
    serialization_cycles: int = 0  # Ts
    #: Hops traversable per cycle (1 = store-and-forward mesh;
    #: HPCmax for SMART/NOCSTAR bypass paths).
    hops_per_cycle: int = 1
    #: Fixed cycles to set up the path before data moves (NOCSTAR's
    #: control cycle; SMART's SSR broadcast).
    setup_cycles: int = 0

    def latency(self, hops: int, contention: Sequence[int] = ()) -> int:
        """Message latency over ``hops`` with per-hop contention delays."""
        if hops < 0:
            raise ValueError("hop count cannot be negative")
        if hops == 0:
            return self.serialization_cycles
        if self.hops_per_cycle > 1:
            transit = math.ceil(hops / self.hops_per_cycle)
        else:
            transit = hops * (self.router_cycles + self.wire_cycles)
        return (
            self.setup_cycles
            + transit
            + sum(contention)
            + self.serialization_cycles
        )


#: Multi-hop mesh: 1-cycle router + 1-cycle link per hop.
MESH = NocParams(name="mesh", router_cycles=1, wire_cycles=1)

#: SMART: dynamic bypass up to HPCmax hops/cycle, 1 setup cycle for SSRs.
def smart_params(hpc_max: int = 8) -> NocParams:
    return NocParams(
        name=f"smart-hpc{hpc_max}",
        hops_per_cycle=hpc_max,
        setup_cycles=1,
    )


#: NOCSTAR: latchless circuit-switched path, 1 control cycle to arbitrate.
def nocstar_params(hpc_max: int = 16) -> NocParams:
    return NocParams(
        name=f"nocstar-hpc{hpc_max}",
        hops_per_cycle=hpc_max,
        setup_cycles=1,
    )


#: Bus: single shared medium — one hop, but every transfer serialises.
BUS = NocParams(name="bus", router_cycles=0, wire_cycles=2, serialization_cycles=0)

#: Flattened butterfly, full-width links: express links bring any
#: destination within ~2 hops (one per dimension), each a long link off
#: a high-radix crossbar.
FBFLY_WIDE = NocParams(name="fbfly-wide", router_cycles=1, wire_cycles=1)

#: Flattened butterfly, narrow links: same topology, quarter-width
#: datapath, so each packet pays serialisation.
FBFLY_NARROW = NocParams(
    name="fbfly-narrow", router_cycles=1, wire_cycles=1, serialization_cycles=4
)


def fbfly_hops(mesh_hops: int) -> int:
    """Express links give a flattened butterfly ~2 hops max (1 per dim)."""
    return min(mesh_hops, 2) if mesh_hops else 0
