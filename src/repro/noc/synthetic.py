"""Cycle-accurate synthetic-traffic evaluation of the TLB interconnects.

Reproduces Fig 11(c): uniform-random traffic is injected into a 64-tile
system at a configurable rate; we measure the average message latency
in NOCSTAR versus a multi-hop mesh, and the fraction of NOCSTAR
messages that acquire their full path on the first arbitration attempt
("no contention delay").

NOCSTAR here is simulated cycle-by-cycle with real per-link arbiters —
rotating static priority, all-links-or-nothing grants — rather than the
reservation shortcut the system DES uses, so this module doubles as a
validation reference for :class:`repro.core.nocstar.NocstarInterconnect`.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.link_arbiter import LinkArbiter
from repro.noc.topology import Link, MeshTopology


@dataclass
class _Message:
    birth: int
    src: int
    dst: int
    path: Tuple[Link, ...]
    attempts: int = 0


@dataclass(frozen=True)
class TrafficResult:
    """Aggregate statistics of one synthetic-traffic run."""

    injection_rate: float
    delivered: int
    mean_latency: float
    no_contention_fraction: float
    mean_attempts: float


def _generate_offered_traffic(
    topology: MeshTopology, cycles: int, rate: float, seed: int
) -> List[List[Tuple[int, int]]]:
    """Per-cycle list of (src, dst) injections under Bernoulli arrivals."""
    rng = random.Random(seed)
    offered: List[List[Tuple[int, int]]] = [[] for _ in range(cycles)]
    n = topology.num_tiles
    for cycle in range(cycles):
        for src in range(n):
            if rng.random() < rate:
                dst = rng.randrange(n - 1)
                if dst >= src:
                    dst += 1
                offered[cycle].append((src, dst))
    return offered


def run_nocstar_traffic(
    topology: MeshTopology,
    injection_rate: float,
    cycles: int = 4000,
    hpc_max: int = 16,
    seed: int = 7,
    rotation_cycles: int = 1000,
) -> TrafficResult:
    """Cycle-accurate NOCSTAR under uniform-random injection.

    Each cycle, every source with a pending message sends setup requests
    to all link arbiters on its XY path; a message traverses (in
    ceil(hops/HPCmax) cycles) only if it wins *every* arbitration, else
    it retries next cycle.  Ideal latency is 2 cycles: one setup, one
    traversal.
    """
    offered = _generate_offered_traffic(topology, cycles, injection_rate, seed)
    arbiters: Dict[Link, LinkArbiter] = {}
    busy_until: Dict[Link, int] = {}
    queues: List[List[_Message]] = [[] for _ in range(topology.num_tiles)]
    latencies: List[int] = []
    first_try = 0
    attempts_total = 0

    for cycle in range(cycles):
        for src, dst in offered[cycle]:
            queues[src].append(
                _Message(cycle, src, dst, tuple(topology.xy_path(src, dst)))
            )
        # Heads of line arbitrate this cycle (one outstanding setup/core).
        contenders = [queue[0] for queue in queues if queue]
        requests: Dict[Link, List[int]] = {}
        eligible = []
        for msg in contenders:
            msg.attempts += 1
            if all(busy_until.get(link, -1) <= cycle for link in msg.path):
                eligible.append(msg)
                for link in msg.path:
                    requests.setdefault(link, []).append(msg.src)
        grants: Dict[Link, Optional[int]] = {}
        for link, sources in requests.items():
            arbiter = arbiters.get(link)
            if arbiter is None:
                arbiter = arbiters[link] = LinkArbiter(
                    topology.num_tiles, rotation_cycles
                )
            grants[link] = arbiter.grant(cycle, sources)
        for msg in eligible:
            if all(grants[link] == msg.src for link in msg.path):
                duration = -(-len(msg.path) // hpc_max)
                for link in msg.path:
                    busy_until[link] = cycle + duration
                ready = cycle + 1 + duration
                latencies.append(ready - msg.birth)
                attempts_total += msg.attempts
                if msg.attempts == 1:
                    first_try += 1
                queues[msg.src].remove(msg)

    delivered = len(latencies)
    return TrafficResult(
        injection_rate=injection_rate,
        delivered=delivered,
        mean_latency=sum(latencies) / delivered if delivered else float("inf"),
        no_contention_fraction=first_try / delivered if delivered else 0.0,
        mean_attempts=attempts_total / delivered if delivered else float("inf"),
    )


def run_mesh_traffic(
    topology: MeshTopology,
    injection_rate: float,
    cycles: int = 4000,
    router_cycles: int = 1,
    wire_cycles: int = 1,
    seed: int = 7,
) -> TrafficResult:
    """Multi-hop mesh reference: per-link FIFO queueing, tr+tw per hop."""
    offered = _generate_offered_traffic(topology, cycles, injection_rate, seed)
    per_hop = router_cycles + wire_cycles
    link_free: Dict[Link, int] = {}
    latencies: List[int] = []
    unqueued = 0
    events: List[Tuple[int, int, int, Tuple[Link, ...], int, bool]] = []
    seq = 0
    for cycle, injections in enumerate(offered):
        for src, dst in injections:
            path = tuple(topology.xy_path(src, dst))
            events.append((cycle, seq, cycle, path, 0, True))
            seq += 1
    heapq.heapify(events)
    while events:
        time, _, birth, path, hop, fresh = heapq.heappop(events)
        link = path[hop]
        start = max(time, link_free.get(link, 0))
        queued_here = start > time
        link_free[link] = start + per_hop
        done = start + per_hop
        if hop + 1 < len(path):
            heapq.heappush(
                events, (done, seq, birth, path, hop + 1, fresh and not queued_here)
            )
            seq += 1
        else:
            latencies.append(done - birth)
            if fresh and not queued_here:
                unqueued += 1
    delivered = len(latencies)
    return TrafficResult(
        injection_rate=injection_rate,
        delivered=delivered,
        mean_latency=sum(latencies) / delivered if delivered else float("inf"),
        no_contention_fraction=unqueued / delivered if delivered else 0.0,
        mean_attempts=1.0,
    )
