"""On-chip network models: topology, analytic latency, mesh, SMART, traffic."""

from repro.noc.latency import (
    BUS,
    FBFLY_NARROW,
    FBFLY_WIDE,
    MESH,
    NocParams,
    fbfly_hops,
    nocstar_params,
    smart_params,
)
from repro.noc.bus import BusNetwork
from repro.noc.fbfly import FlattenedButterfly
from repro.noc.mesh import ContendedMesh, ContentionFreeMesh, Traversal
from repro.noc.route_cache import (
    RouteCache,
    reference_mode,
    shared_route_cache,
)
from repro.noc.smart import SmartNetwork
from repro.noc.synthetic import (
    TrafficResult,
    run_mesh_traffic,
    run_nocstar_traffic,
)
from repro.noc.topology import Link, MeshTopology
from repro.noc.tradeoffs import NocEvaluation, evaluate_designs

__all__ = [
    "BUS",
    "FBFLY_NARROW",
    "FBFLY_WIDE",
    "MESH",
    "NocParams",
    "fbfly_hops",
    "nocstar_params",
    "smart_params",
    "BusNetwork",
    "FlattenedButterfly",
    "ContendedMesh",
    "ContentionFreeMesh",
    "Traversal",
    "RouteCache",
    "reference_mode",
    "shared_route_cache",
    "SmartNetwork",
    "TrafficResult",
    "run_mesh_traffic",
    "run_nocstar_traffic",
    "Link",
    "MeshTopology",
    "NocEvaluation",
    "evaluate_designs",
]
