"""Flattened-butterfly interconnect [ISCA'07], simulatable.

Express links fully connect every row and every column: any
destination is at most two hops away (one X-express, one Y-express).
The wide variant moves a whole packet per link-cycle; the narrow
variant quarters the datapath and pays serialisation on every link —
Table I's FBFly-wide / FBFly-narrow rows.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.noc.mesh import Traversal
from repro.noc.topology import MeshTopology

Link = Tuple[int, int]  # (src_tile, dst_tile) express link


class FlattenedButterfly:
    """Row/column express links with per-cycle occupancy."""

    def __init__(
        self,
        topology: MeshTopology,
        narrow: bool = False,
        router_cycles: int = 1,
        wire_cycles: int = 1,
    ) -> None:
        self.topology = topology
        self.narrow = narrow
        #: Narrow links quarter the width: 4 extra cycles of
        #: serialisation per packet (Table I's FBFly-narrow).
        self.serialization_cycles = 4 if narrow else 0
        self.cycles_per_hop = router_cycles + wire_cycles
        self._occupied: Dict[Link, set] = {}
        self.messages = 0
        self.total_hops = 0
        self.total_queue_cycles = 0

    def route(self, src: int, dst: int) -> Tuple[Link, ...]:
        """X-express first, then Y-express: at most two links."""
        sx, sy = self.topology.coords(src)
        dx, dy = self.topology.coords(dst)
        links = []
        here = src
        if sx != dx:
            nxt = self.topology.tile_at(dx, sy)
            links.append((here, nxt))
            here = nxt
        if sy != dy:
            links.append((here, dst))
        return tuple(links)

    def _acquire(self, link: Link, when: int, duration: int) -> int:
        occupied = self._occupied.setdefault(link, set())
        start = when
        while any(start + i in occupied for i in range(duration)):
            start += 1
        occupied.update(range(start, start + duration))
        return start

    def send(self, src: int, dst: int, now: int) -> Traversal:
        self.messages += 1
        links = self.route(src, dst)
        if not links:
            return Traversal(arrival=now, hops=0)
        duration = 1 + self.serialization_cycles  # link cycles per packet
        t = now
        queued = 0
        for link in links:
            t += self.cycles_per_hop - 1  # router stage before the link
            start = self._acquire(link, t, duration)
            queued += start - t
            t = start + duration
        self.total_hops += len(links)
        self.total_queue_cycles += queued
        return Traversal(
            arrival=t, hops=len(links), queue_cycles=queued, links=links
        )
