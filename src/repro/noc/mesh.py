"""Multi-hop mesh network models.

Two flavours:

* :class:`ContentionFreeMesh` — the paper's baseline for the
  distributed / monolithic configurations: "we place enough buffers and
  links in the system to prevent link contention" (§IV), so a message
  deterministically takes ``hops * (tr + tw)`` cycles.
* :class:`ContendedMesh` — per-link wormhole occupancy for studies that
  *do* want mesh queueing (Fig 11c's latency-vs-injection comparison).
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Tuple

from repro.faults.routing import UnreachableError
from repro.noc.topology import Link, MeshTopology
from repro.obs import NULL_SINK


class Traversal(NamedTuple):
    """Outcome of sending one message.

    A NamedTuple rather than a dataclass: one is built per message on
    the simulator's hottest paths, and tuple construction is several
    times cheaper than a frozen dataclass ``__init__``.
    """

    arrival: int
    hops: int
    queue_cycles: int = 0
    links: Tuple[Link, ...] = ()


class ContentionFreeMesh:
    """Deterministic mesh: tr + tw cycles per hop, no queueing."""

    def __init__(
        self,
        topology: MeshTopology,
        router_cycles: int = 1,
        wire_cycles: int = 1,
        sink=NULL_SINK,
        faults=None,
        routes=None,
    ) -> None:
        self.topology = topology
        self.router_cycles = router_cycles
        self.wire_cycles = wire_cycles
        self.cycles_per_hop = router_cycles + wire_cycles
        self.faults = faults  # Optional[FaultInjector]
        self.routes = routes  # Optional[RouteCache]
        self.messages = 0
        self.total_hops = 0
        #: link -> messages carried; populated only when observed.
        self.link_traversals: Dict[Link, int] = {}
        if faults is not None and faults.router.dead:
            # Fault-aware routing subsumes observation: the detour path
            # must be computed anyway, so links are always accounted.
            # Dead links also invalidate the fault-free route cache.
            self.send = self._send_fault_routed  # type: ignore[method-assign]
        elif sink.enabled:
            # Construction-time dispatch, not per-send branching: the
            # unobserved send never pays for XY path computation.
            self.send = self._send_observed  # type: ignore[method-assign]
        elif routes is not None:
            self._hops = routes.hops
            self._latency = routes.mesh_latency(self.cycles_per_hop)
            self.send = self._send_cached  # type: ignore[method-assign]

    def send(self, src: int, dst: int, now: int) -> Traversal:
        hops = self.topology.hops(src, dst)
        self.messages += 1
        self.total_hops += hops
        return Traversal(arrival=now + hops * self.cycles_per_hop, hops=hops)

    def _send_cached(self, src: int, dst: int, now: int) -> Traversal:
        """send() off the precomputed fault-free hop/latency tables."""
        hops = self._hops[src][dst]
        self.messages += 1
        self.total_hops += hops
        return Traversal(arrival=now + self._latency[src][dst], hops=hops)

    def _send_observed(self, src: int, dst: int, now: int) -> Traversal:
        """send() plus per-link accounting; timing is identical (the XY
        path length equals the Manhattan hop count)."""
        routes = self.routes
        if routes is not None:
            path = routes.path(src, dst)
        else:
            path = self.topology.xy_path(src, dst)
        for link in path:
            self.link_traversals[link] = self.link_traversals.get(link, 0) + 1
        self.messages += 1
        self.total_hops += len(path)
        return Traversal(
            arrival=now + len(path) * self.cycles_per_hop,
            hops=len(path),
            links=tuple(path),
        )

    def _send_fault_routed(self, src: int, dst: int, now: int) -> Traversal:
        """send() over the fault-aware route around dead links.

        Detours lengthen the path beyond the Manhattan distance, so the
        hop count (and latency) comes from the routed path itself.
        """
        path = self.faults.router.route(src, dst)
        if path is None:
            raise UnreachableError(
                f"no alive route {src}->{dst}; caller must pre-check "
                "reachability and degrade to a local walk"
            )
        for link in path:
            self.link_traversals[link] = self.link_traversals.get(link, 0) + 1
        self.messages += 1
        self.total_hops += len(path)
        return Traversal(
            arrival=now + len(path) * self.cycles_per_hop,
            hops=len(path),
            links=tuple(path),
        )

    def link_busy_cycles(self) -> Dict[Link, int]:
        """Cycles each link's wire carried a flit (observed runs only)."""
        return {
            link: count * self.wire_cycles
            for link, count in self.link_traversals.items()
        }


class ContendedMesh:
    """Mesh with per-link occupancy: messages queue at busy links.

    Each hop needs its outgoing link for one cycle after the router
    stage; a busy link stalls the message (credit/VC detail abstracted
    into per-link serialisation, which captures first-order queueing).
    """

    def __init__(
        self,
        topology: MeshTopology,
        router_cycles: int = 1,
        wire_cycles: int = 1,
    ) -> None:
        self.topology = topology
        self.router_cycles = router_cycles
        self.wire_cycles = wire_cycles
        self._link_free: Dict[Link, int] = {}
        self.messages = 0
        self.total_queue_cycles = 0
        #: link -> cycles its wire carried flits (utilization numerator).
        self.link_busy: Dict[Link, int] = {}

    def send(self, src: int, dst: int, now: int) -> Traversal:
        path = self.topology.xy_path(src, dst)
        t = now
        queued = 0
        for link in path:
            t += self.router_cycles
            free_at = self._link_free.get(link, 0)
            if free_at > t:
                queued += free_at - t
                t = free_at
            self._link_free[link] = t + self.wire_cycles
            self.link_busy[link] = (
                self.link_busy.get(link, 0) + self.wire_cycles
            )
            t += self.wire_cycles
        self.messages += 1
        self.total_queue_cycles += queued
        return Traversal(
            arrival=t, hops=len(path), queue_cycles=queued, links=tuple(path)
        )

    def link_busy_cycles(self) -> Dict[Link, int]:
        """Cycles each link's wire carried a flit."""
        return dict(self.link_busy)
