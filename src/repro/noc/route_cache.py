"""Precomputed fault-free route tables for the TLB interconnects.

Fault-free, contention-free path properties are pure functions of
``(src, dst, topology)`` — the structure analytical NoC models exploit
(Mandal et al.'s priority-class models, and bufferless GPU-scale
simulators alike).  The discrete-event models in this package
recomputed them on every send: ``xy_path`` walks the grid per message,
``hops`` re-derives coordinates, and NOCSTAR's segment count is a
division that never changes for a pair.  A :class:`RouteCache`
precomputes all of it once per topology:

* ``hops`` — the full N x N Manhattan-distance table, built eagerly;
* derived latency tables (``mesh_latency`` per cycles-per-hop,
  ``nocstar_cycles`` per HPCmax), memoised per parameterisation;
* XY link paths, memoised per (src, dst) on first use — eager path
  tables would cost O(N^2 * diameter) tuples up front, which the large
  scalability sweeps never fully touch.

The cache holds **fault-free** routes only.  Consumers dispatch at
construction time (mirroring the obs/faults pattern): a network built
with dead links routes through its :class:`~repro.faults.routing.
FaultAwareRouter` and never consults the cache, and contended sends
fall through to the live reservation model untouched — the cache
supplies the path and the uncontended duration, never the arbitration
outcome.

``REPRO_REFERENCE_ENGINE=1`` disables the cache (and the engine's
batched fast path, see :mod:`repro.sim.engine`): the reference
configuration recomputes every route live, which is what the
differential harness compares bit-for-bit against the cached fast
path.
"""

from __future__ import annotations

import os
from functools import lru_cache
from typing import Dict, List, Tuple

from repro.noc.topology import Link, MeshTopology

#: Environment switch selecting the unbatched, uncached reference
#: engine.  Read at use time (not import time) so tests can flip it
#: per run; empty and "0" mean "off".
REFERENCE_ENV = "REPRO_REFERENCE_ENGINE"


def reference_mode() -> bool:
    """True when the reference (unbatched, uncached) engine is forced."""
    return os.environ.get(REFERENCE_ENV, "") not in ("", "0")


class RouteCache:
    """Fault-free per-(src, dst) route/latency tables for one topology."""

    def __init__(self, topology: MeshTopology) -> None:
        self.topology = topology
        n = topology.num_tiles
        self.num_tiles = n
        cols = topology.cols
        #: hops[src][dst] — Manhattan distance table (eager: N^2 ints).
        xs = [t % cols for t in range(n)]
        ys = [t // cols for t in range(n)]
        self.hops: List[List[int]] = [
            [abs(xs[s] - xs[d]) + abs(ys[s] - ys[d]) for d in range(n)]
            for s in range(n)
        ]
        self._paths: Dict[Tuple[int, int], Tuple[Link, ...]] = {}
        self._mesh_latency: Dict[int, List[List[int]]] = {}
        self._nocstar_cycles: Dict[int, List[List[int]]] = {}

    def path(self, src: int, dst: int) -> Tuple[Link, ...]:
        """The XY link path ``src -> dst`` (memoised)."""
        key = (src, dst)
        cached = self._paths.get(key)
        if cached is None:
            cached = tuple(self.topology.xy_path(src, dst))
            self._paths[key] = cached
        return cached

    def mesh_latency(self, cycles_per_hop: int) -> List[List[int]]:
        """``hops * cycles_per_hop`` table (the contention-free mesh)."""
        table = self._mesh_latency.get(cycles_per_hop)
        if table is None:
            table = [[h * cycles_per_hop for h in row] for row in self.hops]
            self._mesh_latency[cycles_per_hop] = table
        return table

    def nocstar_cycles(self, hpc_max: int) -> List[List[int]]:
        """Uncontended data-traversal cycles: ``ceil(hops / HPCmax)``."""
        table = self._nocstar_cycles.get(hpc_max)
        if table is None:
            table = [[-(-h // hpc_max) if h else 0 for h in row]
                     for row in self.hops]
            self._nocstar_cycles[hpc_max] = table
        return table


@lru_cache(maxsize=16)
def shared_route_cache(num_tiles: int) -> RouteCache:
    """Process-wide :class:`RouteCache` per tile count.

    The cache is immutable-by-convention (path memoisation only ever
    adds identical entries), so every System of the same size — across
    runs, lineups, and pool workers — shares one instance and one set
    of precomputed tables.
    """
    return RouteCache(MeshTopology(num_tiles))
