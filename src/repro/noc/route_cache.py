"""Precomputed fault-free route tables for the TLB interconnects.

Fault-free, contention-free path properties are pure functions of
``(src, dst, topology)`` — the structure analytical NoC models exploit
(Mandal et al.'s priority-class models, and bufferless GPU-scale
simulators alike).  The discrete-event models in this package
recomputed them on every send: ``xy_path`` walks the grid per message,
``hops`` re-derives coordinates, and NOCSTAR's segment count is a
division that never changes for a pair.  A :class:`RouteCache`
precomputes all of it once per topology.

Storage is sized for mega meshes (1024 tiles = 1M pairs per table):

* ``hops_array`` — the N x N Manhattan-distance table as a compact
  ``int16`` ndarray (2 MiB at 1024 tiles, versus ~36 MiB of nested
  Python int lists), built by broadcasting, not per-pair loops;
* ``mesh_latency_array`` / ``nocstar_cycles_array`` — derived ``int32``
  tables, memoised lazily per parameterisation so forked pool workers
  only ever materialise the cycles-per-hop / HPCmax points they run;
* ``hops`` / ``mesh_latency()`` / ``nocstar_cycles()`` — row-lazy
  Python-int views over those arrays (see :class:`_LazyRows`) for the
  per-event models, which index ``table[src][dst]`` on scalar sends.
  Rows convert to plain lists on first touch, so scalar consumers keep
  C-speed list indexing and native ``int`` arithmetic (no ``np.int64``
  leaking into cycle counts) without ever paying for rows they don't
  visit;
* XY link paths, memoised per (src, dst) on first use — eager path
  tables would cost O(N^2 * diameter) tuples up front, which the large
  scalability sweeps never fully touch.

The cache holds **fault-free** routes only.  Consumers dispatch at
construction time (mirroring the obs/faults pattern): a network built
with dead links routes through its :class:`~repro.faults.routing.
FaultAwareRouter` and never consults the cache, and contended sends
fall through to the live reservation model untouched — the cache
supplies the path and the uncontended duration, never the arbitration
outcome.

``REPRO_REFERENCE_ENGINE=1`` disables the cache (and the engine's
batched fast path, see :mod:`repro.sim.engine`): the reference
configuration recomputes every route live, which is what the
differential harness compares bit-for-bit against the cached fast
path.
"""

from __future__ import annotations

import os
from functools import lru_cache
from typing import Dict, List, Tuple

import numpy as np

from repro.noc.topology import Link, MeshTopology

#: Environment switch selecting the unbatched, uncached reference
#: engine.  Read at use time (not import time) so tests can flip it
#: per run; empty and "0" mean "off".
REFERENCE_ENV = "REPRO_REFERENCE_ENGINE"


def reference_mode() -> bool:
    """True when the reference (unbatched, uncached) engine is forced."""
    return os.environ.get(REFERENCE_ENV, "") not in ("", "0")


class _LazyRows:
    """Row-lazy ``table[src][dst]`` view over a 2-D ndarray.

    ``view[src]`` materialises (and caches) row ``src`` as a plain
    Python list of native ints, so hot per-event loops that bind a row
    once and index it per send keep exact list semantics while the
    backing store stays a compact ndarray shared by every consumer.
    """

    __slots__ = ("_array", "_rows")

    def __init__(self, array: "np.ndarray") -> None:
        self._array = array
        self._rows: Dict[int, List[int]] = {}

    def __getitem__(self, src: int) -> List[int]:
        row = self._rows.get(src)
        if row is None:
            row = self._array[src].tolist()
            self._rows[src] = row
        return row

    def __len__(self) -> int:
        return len(self._array)


class RouteCache:
    """Fault-free per-(src, dst) route/latency tables for one topology."""

    def __init__(self, topology: MeshTopology) -> None:
        self.topology = topology
        n = topology.num_tiles
        self.num_tiles = n
        cols = topology.cols
        # Manhattan distances by broadcasting tile coordinates; int16
        # bounds any mesh whose diameter fits 32767 hops (a 1024-tile
        # 32x32 mesh has diameter 62).
        tiles = np.arange(n, dtype=np.int16)
        xs = tiles % cols
        ys = tiles // cols
        #: hops_array — eager N x N Manhattan table, compact dtype.
        self.hops_array: np.ndarray = (
            np.abs(xs[:, None] - xs[None, :]) + np.abs(ys[:, None] - ys[None, :])
        ).astype(np.int16)
        #: hops[src][dst] — Python-int row view for per-event models.
        self.hops = _LazyRows(self.hops_array)
        self._paths: Dict[Tuple[int, int], Tuple[Link, ...]] = {}
        self._mesh_latency: Dict[int, _LazyRows] = {}
        self._mesh_latency_arrays: Dict[int, np.ndarray] = {}
        self._nocstar_cycles: Dict[int, _LazyRows] = {}
        self._nocstar_cycles_arrays: Dict[int, np.ndarray] = {}

    def path(self, src: int, dst: int) -> Tuple[Link, ...]:
        """The XY link path ``src -> dst`` (memoised)."""
        key = (src, dst)
        cached = self._paths.get(key)
        if cached is None:
            cached = tuple(self.topology.xy_path(src, dst))
            self._paths[key] = cached
        return cached

    def mesh_latency_array(self, cycles_per_hop: int) -> np.ndarray:
        """``hops * cycles_per_hop`` as an int32 ndarray (lazy, memoised)."""
        table = self._mesh_latency_arrays.get(cycles_per_hop)
        if table is None:
            table = self.hops_array.astype(np.int32) * cycles_per_hop
            self._mesh_latency_arrays[cycles_per_hop] = table
        return table

    def mesh_latency(self, cycles_per_hop: int) -> _LazyRows:
        """``hops * cycles_per_hop`` table (the contention-free mesh)."""
        table = self._mesh_latency.get(cycles_per_hop)
        if table is None:
            table = _LazyRows(self.mesh_latency_array(cycles_per_hop))
            self._mesh_latency[cycles_per_hop] = table
        return table

    def nocstar_cycles_array(self, hpc_max: int) -> np.ndarray:
        """``ceil(hops / HPCmax)`` as an int32 ndarray (lazy, memoised)."""
        table = self._nocstar_cycles_arrays.get(hpc_max)
        if table is None:
            table = -(-self.hops_array.astype(np.int32) // hpc_max)
            self._nocstar_cycles_arrays[hpc_max] = table
        return table

    def nocstar_cycles(self, hpc_max: int) -> _LazyRows:
        """Uncontended data-traversal cycles: ``ceil(hops / HPCmax)``."""
        table = self._nocstar_cycles.get(hpc_max)
        if table is None:
            table = _LazyRows(self.nocstar_cycles_array(hpc_max))
            self._nocstar_cycles[hpc_max] = table
        return table


@lru_cache(maxsize=16)
def shared_route_cache(num_tiles: int) -> RouteCache:
    """Process-wide :class:`RouteCache` per tile count.

    The cache is immutable-by-convention (path and row memoisation only
    ever add identical entries), so every System of the same size —
    across runs, lineups, and pool workers — shares one instance and
    one set of precomputed tables.
    """
    return RouteCache(MeshTopology(num_tiles))
