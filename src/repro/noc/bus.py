"""Shared-bus interconnect (Table I's first row), simulatable.

A single shared medium: every transfer is a chip-wide broadcast that
occupies the whole bus, so latency is excellent when idle and
throughput is one message at a time — the paper rejects it for
bandwidth and (broadcast) power, not latency.
"""

from __future__ import annotations

from typing import Dict

from repro.noc.mesh import Traversal
from repro.noc.topology import MeshTopology


class BusNetwork:
    """One arbitration domain; per-cycle occupancy (engine-safe)."""

    def __init__(
        self,
        topology: MeshTopology,
        transfer_cycles: int = 2,
    ) -> None:
        if transfer_cycles < 1:
            raise ValueError("a bus transfer takes at least one cycle")
        self.topology = topology
        self.transfer_cycles = transfer_cycles
        self._busy: Dict[int, bool] = {}
        self.messages = 0
        self.total_hops = 0
        self.total_queue_cycles = 0

    def _free(self, start: int) -> bool:
        return all(
            start + i not in self._busy for i in range(self.transfer_cycles)
        )

    def send(self, src: int, dst: int, now: int) -> Traversal:
        """Acquire the bus at the first free window at/after ``now``."""
        self.messages += 1
        if src == dst:
            return Traversal(arrival=now, hops=0)
        start = now
        while not self._free(start):
            start += 1
        for i in range(self.transfer_cycles):
            self._busy[start + i] = True
        queued = start - now
        self.total_queue_cycles += queued
        self.total_hops += 1  # a bus transfer is "one hop" of full-chip wire
        return Traversal(
            arrival=start + self.transfer_cycles,
            hops=1,
            queue_cycles=queued,
        )

    @property
    def utilisation_window(self) -> int:
        """Number of distinct busy cycles recorded (diagnostics)."""
        return len(self._busy)
