"""Fig 9 — place-and-routed NOCSTAR tile: per-core power and area of the
switch, link arbiters, and L2 TLB slice SRAM.

Paper (28nm TSMC, 2GHz): switch 0.43mW / 0.0022mm^2, 4x arbiters
2.39mW / 0.0038mm^2, SRAM slice 10.91mW / 0.4646mm^2 — the interconnect
is <1% of the tile's SRAM area, and the arbiters are its power hotspot.
"""

from repro.analysis.tables import render_table
from repro.energy import components as comp
from repro.mem import sram

from _common import once, report


def run():
    rows = [
        ["Switch", comp.SWITCH_POWER_MW, comp.SWITCH_AREA_MM2],
        ["4x Arbiters", comp.ARBITERS_POWER_MW, comp.ARBITERS_AREA_MM2],
        ["SRAM TLB", comp.SRAM_SLICE_POWER_MW, comp.SRAM_SLICE_AREA_MM2],
    ]
    nocstar_slice = sram.budget(920)
    rows.append(
        ["SRAM TLB (920e, area-norm)", nocstar_slice.power_mw,
         nocstar_slice.area_mm2]
    )
    return rows


def test_fig9_tile_budget(benchmark):
    rows = once(benchmark, run)
    report(
        "fig09_area_power",
        render_table(
            ["component", "power (mW)", "area (mm^2)"], rows, precision=4
        ),
    )
    switch_area = rows[0][2]
    arbiter_area = rows[1][2]
    sram_area = rows[2][2]
    assert (switch_area + arbiter_area) / sram_area < 0.015
    assert rows[1][1] > rows[0][1]  # arbiters are the power hotspot
    # Area-equivalence (Table II): the 920-entry slice plus the
    # interconnect fits inside a 1024-entry private TLB's area.
    total_nocstar_area = rows[3][2] + switch_area + arbiter_area
    assert total_nocstar_area <= sram_area


def test_area_equivalence_of_table2(benchmark):
    """Table II: 920-entry slices + interconnect fit the 1024-entry
    private budget chip-wide."""
    def check():
        private_tile = sram.budget(1024).area_mm2
        nocstar_tile = (
            sram.budget(920).area_mm2
            + comp.SWITCH_AREA_MM2
            + comp.ARBITERS_AREA_MM2
        )
        return private_tile, nocstar_tile

    private_tile, nocstar_tile = once(benchmark, check)
    assert nocstar_tile <= private_tile
