"""Table I *in vivo*: the distributed shared TLB over every candidate
fabric, under real workload traffic (32 cores).

Table I scores the fabrics on paper properties; this ablation runs
them.  Expected shape: the bus collapses once offered load exceeds its
one-transfer-at-a-time capacity; the narrow flattened butterfly pays
serialisation on every message; the wide flattened butterfly closes
most of the mesh-to-NOCSTAR gap but (per Table I) at 6x the area/power
budget; NOCSTAR wins outright at ~1% of a slice's area.
"""

from repro.analysis.tables import render_table
from repro.sim import configs as cfg
from repro.sim.engine import simulate

from _common import ACCESSES, once, report, workload

CORES = 32
WORKLOAD_SET = ("xsbench", "canneal", "gups")
NOCS = ("mesh", "bus", "fbfly-wide", "fbfly-narrow")


def run():
    table = {}
    for name in WORKLOAD_SET:
        wl = workload(name, CORES, ACCESSES)
        base = simulate(cfg.private(CORES), wl)
        for noc in NOCS:
            result = simulate(cfg.distributed(CORES, noc=noc), wl)
            table[(name, noc)] = base.cycles / result.cycles
        table[(name, "nocstar")] = (
            base.cycles / simulate(cfg.nocstar(CORES), wl).cycles
        )
    return table


def test_distributed_over_every_fabric(benchmark):
    table = once(benchmark, run)
    columns = list(NOCS) + ["nocstar"]
    rows = [
        [name] + [table[(name, noc)] for noc in columns]
        for name in WORKLOAD_SET
    ]
    avg = {
        noc: sum(table[(n, noc)] for n in WORKLOAD_SET) / len(WORKLOAD_SET)
        for noc in columns
    }
    rows.append(["average"] + [avg[noc] for noc in columns])
    report(
        "ablation_interconnects",
        render_table(["workload"] + columns, rows),
    )

    # NOCSTAR beats every conventional fabric.
    for noc in NOCS:
        assert avg["nocstar"] > avg[noc]
    # The bus saturates under 32-core TLB traffic: clearly below the
    # mesh despite its lower idle latency.
    assert avg["bus"] < avg["mesh"]
    # Narrow FBFly's serialisation erases the express-link advantage.
    assert avg["fbfly-narrow"] < avg["fbfly-wide"]
    # Wide FBFly is the best conventional fabric (Table I's latency +
    # bandwidth winner), within a few points of NOCSTAR.
    assert avg["fbfly-wide"] >= avg["mesh"]
    assert avg["nocstar"] - avg["fbfly-wide"] < 0.10
