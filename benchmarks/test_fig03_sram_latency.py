"""Fig 3 — SRAM TLB access latency vs array size (28nm model).

Paper: a 1536-entry array (1x) takes ~9 cycles; 32x takes ~15; the
curve is logarithmic from 0.5x to 64x.
"""

from repro.analysis.tables import render_series
from repro.mem import sram

from _common import once, report

SIZES = (0.5, 1, 2, 4, 8, 16, 32, 64)


def run():
    return [sram.fig3_lookup_cycles(s) for s in SIZES]


def test_fig3_sram_latency(benchmark):
    cycles = once(benchmark, run)
    report(
        "fig03_sram_latency",
        render_series(
            "SRAM lookup cycles vs size (x 1536 entries)",
            [f"{s}x" for s in SIZES],
            cycles,
            precision=1,
        ),
    )
    assert cycles == sorted(cycles)
    assert 8.0 <= cycles[SIZES.index(1)] <= 10.0  # 1x ~ 9 cycles
    assert 14.0 <= cycles[SIZES.index(32)] <= 16.0  # 32x ~ 15 cycles
    assert cycles[-1] - cycles[0] <= 12  # log-like, not linear blow-up
