"""Fig 11(a) — per-message latency in the TLB interconnect vs hop count
for monolithic, distributed, and NOCSTAR (HPCmax 4/8/16).

Paper: the monolithic curve (big SRAM + multi-hop mesh) climbs towards
~40 cycles at 12 hops; distributed (small SRAM + mesh) sits below it;
the NOCSTAR curves stay almost flat at ~10-13 cycles, ordered by
HPCmax.
"""

from repro.analysis.tables import render_table
from repro.mem import sram
from repro.noc import latency as lat

from _common import once, report

HOPS = (0, 1, 2, 4, 6, 8, 10, 12)


def run():
    mono_sram = sram.lookup_cycles(32 * 1024) + 1
    slice_sram = sram.lookup_cycles(1024)
    nocstar_sram = sram.lookup_cycles(920)
    curves = {
        "monolithic": [mono_sram + lat.MESH.latency(h) for h in HOPS],
        "distributed": [slice_sram + lat.MESH.latency(h) for h in HOPS],
    }
    for hpc in (4, 8, 16):
        curves[f"nocstar-hpc{hpc}"] = [
            nocstar_sram + lat.nocstar_params(hpc).latency(h) for h in HOPS
        ]
    return curves


def test_fig11a_latency_vs_hops(benchmark):
    curves = once(benchmark, run)
    rows = [[name] + values for name, values in curves.items()]
    report(
        "fig11a_latency_vs_hops",
        render_table(["design"] + [f"{h} hops" for h in HOPS], rows,
                     precision=0),
    )
    at12 = {name: values[-1] for name, values in curves.items()}
    assert at12["monolithic"] >= 35
    assert at12["monolithic"] > at12["distributed"]
    assert at12["distributed"] > at12["nocstar-hpc4"]
    assert at12["nocstar-hpc4"] > at12["nocstar-hpc8"] >= at12["nocstar-hpc16"]
    assert at12["nocstar-hpc16"] <= 13
    # NOCSTAR is nearly flat: 0 -> 12 hops adds only a few cycles.
    flat = curves["nocstar-hpc16"]
    assert flat[-1] - flat[0] <= 3
