"""Fig 16 — (left) link-acquisition modes: one round-trip acquire vs
two one-way acquires, at several core counts; (right) TLB invalidation
routing policies: leaders per 4 cores, per 8 cores, or one per chip,
against every-core-relays.

Paper: acquiring links separately for each message (2x one-way) beats
holding them for the round trip; invalidation leaders beat the naive
flood, with a mid-sized leader group as the sweet spot.
"""

from dataclasses import replace

from repro.analysis.tables import render_table
from repro.core.config import NocstarConfig, ONE_WAY, ROUND_TRIP
from repro.sim import configs as cfg
from repro.sim.engine import ShootdownTraffic, simulate

from _common import ACCESSES, FULL_SCALE, once, report, workload

WORKLOAD_SET = ("canneal", "graph500", "gups", "xsbench")
CORE_COUNTS = (16, 32, 64) if FULL_SCALE else (16, 32)


def run():
    acquire = {}
    for cores in CORE_COUNTS:
        for name in WORKLOAD_SET:
            wl = workload(name, cores, ACCESSES)
            base = simulate(cfg.private(cores), wl)
            for mode, label in ((ROUND_TRIP, "1x two-way"),
                                (ONE_WAY, "2x one-way")):
                config = cfg.nocstar(cores, config=NocstarConfig(acquire=mode))
                config = replace(config, name=label)
                result = simulate(config, wl)
                acquire[(cores, name, label)] = base.cycles / result.cycles

    invalidation = {}
    # Several concurrent remappers per event: the scenario where the
    # leader choice matters (§III-G's "middle ground" argument).
    shootdown = ShootdownTraffic(period=1500, entries_per_event=8,
                                 initiators=4)
    for cores in CORE_COUNTS:
        for name in WORKLOAD_SET:
            wl = workload(name, cores, ACCESSES)
            base = simulate(cfg.private(cores), wl, shootdown=shootdown)
            for gran, label in ((1, "per-core"), (4, "per-4-core"),
                                (8, "per-8-core"), (cores, f"per-{cores}-core")):
                config = cfg.nocstar(cores, leader_granularity=gran)
                result = simulate(config, wl, shootdown=shootdown)
                invalidation[(cores, name, label)] = (
                    base.cycles / result.cycles
                )
    return acquire, invalidation


def test_fig16_path_setup_and_invalidation(benchmark):
    acquire, invalidation = once(benchmark, run)

    rows = []
    for cores in CORE_COUNTS:
        for label in ("1x two-way", "2x one-way"):
            values = [acquire[(cores, n, label)] for n in WORKLOAD_SET]
            rows.append([f"{cores}-core", label] + values
                        + [sum(values) / len(values)])
    left = render_table(
        ["system", "acquire"] + list(WORKLOAD_SET) + ["avg"], rows
    )

    rows = []
    labels = ["per-core", "per-4-core", "per-8-core"]
    for cores in CORE_COUNTS:
        for label in labels + [f"per-{cores}-core"]:
            values = [invalidation[(cores, n, label)] for n in WORKLOAD_SET]
            rows.append([f"{cores}-core", label] + values
                        + [sum(values) / len(values)])
    right = render_table(
        ["system", "leaders"] + list(WORKLOAD_SET) + ["avg"], rows
    )
    report("fig16_path_setup_and_invalidation", left + "\n\n" + right)

    for cores in CORE_COUNTS:
        one_way = sum(
            acquire[(cores, n, "2x one-way")] for n in WORKLOAD_SET
        )
        round_trip = sum(
            acquire[(cores, n, "1x two-way")] for n in WORKLOAD_SET
        )
        # One-way acquisition never loses to round-trip holds.
        assert one_way >= round_trip - 0.01 * len(WORKLOAD_SET)
        # Leader-based invalidation beats the naive flood.
        flood = sum(
            invalidation[(cores, n, "per-core")] for n in WORKLOAD_SET
        )
        leaders = sum(
            invalidation[(cores, n, "per-8-core")] for n in WORKLOAD_SET
        )
        single = sum(
            invalidation[(cores, n, f"per-{cores}-core")]
            for n in WORKLOAD_SET
        )
        assert leaders >= flood - 0.02 * len(WORKLOAD_SET)
        # The middle ground holds up against the single chip-wide
        # leader when remappers are concurrent.
        assert leaders >= single - 0.02 * len(WORKLOAD_SET)
        # NOCSTAR stays profitable under shootdown traffic.
        assert leaders / len(WORKLOAD_SET) > 1.0
