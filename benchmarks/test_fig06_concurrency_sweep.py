"""Fig 6 — shared L2 concurrency vs L1 TLB size and core count (left),
and per-slice concurrency for distributed TLBs (right).

Paper: smaller L1s raise contention, bigger L1s lower it; contention
barely grows up to 128 cores; and measured per-slice, ~60% of accesses
to a slice see no concurrent access even at high core counts.
"""

from repro.analysis.contention import (
    concurrency_distribution,
    merge_distributions,
    per_slice_distribution,
)
from repro.analysis.tables import render_distribution
from repro.sim import configs as cfg
from repro.sim.engine import simulate

from _common import FULL_SCALE, once, report, workload

WORKLOAD_SET = ("graph500", "canneal", "gups")
BASE_CORES = 32
ACCESSES = 4_000 if not FULL_SCALE else 10_000
SWEEP_CORES = (64, 128) if FULL_SCALE else (64,)


def _bar(config, cores):
    dists = []
    per_slice = []
    for name in WORKLOAD_SET:
        result = simulate(
            config,
            workload(name, cores, ACCESSES),
            record_intervals=True,
        )
        dists.append(concurrency_distribution(result.intervals))
        per_slice.append(per_slice_distribution(result.intervals))
    return merge_distributions(dists), merge_distributions(per_slice)


def run():
    bars = {}
    slice_bars = {}
    bars["baseline"], slice_bars[f"{BASE_CORES} slices"] = _bar(
        cfg.distributed(BASE_CORES), BASE_CORES
    )
    bars["0.5x L1"], _ = _bar(
        cfg.distributed(BASE_CORES, l1_scale=0.5), BASE_CORES
    )
    bars["1.5x L1"], _ = _bar(
        cfg.distributed(BASE_CORES, l1_scale=1.5), BASE_CORES
    )
    for cores in SWEEP_CORES:
        bars[f"{cores} cores"], slice_bars[f"{cores} slices"] = _bar(
            cfg.distributed(cores), cores
        )
    return bars, slice_bars


def test_fig6_concurrency_sweep(benchmark):
    bars, slice_bars = once(benchmark, run)
    text = "\n".join(
        [render_distribution(name, dist) for name, dist in bars.items()]
        + ["-- per-slice --"]
        + [render_distribution(name, dist) for name, dist in slice_bars.items()]
    )
    report("fig06_concurrency_sweep", text)

    # Smaller L1s raise contention; larger L1s lower it.
    isolated = {name: dist["1 acc"] for name, dist in bars.items()}
    assert isolated["0.5x L1"] <= isolated["baseline"]
    assert isolated["1.5x L1"] >= isolated["baseline"]
    # Per-slice contention is far lower than chip-wide: the majority of
    # accesses to a slice see no concurrent access to that slice.
    for name, dist in slice_bars.items():
        assert dist["1 acc"] > 0.5, name
