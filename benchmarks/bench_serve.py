"""Serving-tier load bench: concurrent synthetic clients vs the daemon.

Standalone script (not a pytest bench): starts the ``repro serve``
daemon in-process (:class:`~repro.serve.BackgroundDaemon`, real worker
processes), then unleashes hundreds of synthetic clients — each its own
thread with its own :class:`~repro.serve.ServeClient` — against a small
pool of distinct scenarios, so that duplicate submissions vastly
outnumber distinct work.  It asserts the tentpole's coalescing
contract under load:

* every distinct unit of work executes **exactly once** (the
  ``serve.executions`` counter equals the distinct-unit count, however
  many clients asked for it);
* every client of the same scenario receives the byte-identical
  RunResult payload;
* at least ``MIN_CLIENTS`` concurrent clients are sustained (the
  acceptance floor), all completing within the run.

It reports end-to-end latency percentiles (p50/p95/p99 across clients,
submit→result) and writes the machine-readable ``BENCH_serve.json``
artefact under ``benchmarks/results/`` (override with argv[1]).

    PYTHONPATH=src python benchmarks/bench_serve.py [out.json]

``REPRO_BENCH_FULL=1`` scales the fleet to four times the default.
``make bench-serve-smoke`` runs it as part of ``make verify``.
"""

from __future__ import annotations

import json
import os
import pickle
import sys
import tempfile
import threading
import time

from repro.analysis.tables import render_table
from repro.serve import BackgroundDaemon, ServeClient, ServeConfig
from repro.serve.schema import SubmitRequest

#: The acceptance floor: the daemon must sustain at least this many
#: concurrent clients in one run.
MIN_CLIENTS = 100

#: Fleet size (4x under REPRO_BENCH_FULL=1).
N_CLIENTS = 256
#: Distinct scenarios the fleet draws from; everything else coalesces.
N_DISTINCT = 8
WORKERS = 2
CORES = 4
ACCESSES = 300
TIMEOUT_S = 600.0

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")


def _requests():
    return [
        SubmitRequest(
            workload="gups",
            configs=("private", "nocstar"),
            cores=CORES,
            accesses_per_core=ACCESSES,
            seed=seed,
            client_id=f"bench-{seed}",
        )
        for seed in range(1, N_DISTINCT + 1)
    ]


def _percentile(sorted_values, q):
    if not sorted_values:
        return 0.0
    index = min(
        len(sorted_values) - 1, max(0, round(q * (len(sorted_values) - 1)))
    )
    return sorted_values[index]


def main(argv) -> int:
    clients = N_CLIENTS * (4 if os.environ.get("REPRO_BENCH_FULL") else 1)
    requests = _requests()
    distinct_units = {
        (request.job_id(), name)
        for request in requests
        for name in request.configs
    }

    latencies = [0.0] * clients
    payloads = [None] * clients
    errors = []
    gate = threading.Barrier(clients + 1)

    def run_client(index: int) -> None:
        request = requests[index % len(requests)]
        client = ServeClient(url, timeout=TIMEOUT_S)
        gate.wait()
        start = time.perf_counter()
        try:
            result = client.run(request, timeout=TIMEOUT_S, poll_s=0.02)
            latencies[index] = time.perf_counter() - start
            payloads[index] = pickle.dumps(
                {name: result.results[name] for name in sorted(result.results)}
            )
        except Exception as exc:
            errors.append(f"client {index}: {type(exc).__name__}: {exc}")

    with tempfile.TemporaryDirectory(prefix="bench-serve-cache-") as cache_dir:
        config = ServeConfig(workers=WORKERS, quota=0, cache_dir=cache_dir)
        with BackgroundDaemon(config) as url:
            threads = [
                threading.Thread(target=run_client, args=(i,), daemon=True)
                for i in range(clients)
            ]
            for thread in threads:
                thread.start()
            wall_start = time.perf_counter()
            gate.wait()  # release the whole fleet at once
            for thread in threads:
                thread.join(timeout=TIMEOUT_S)
            wall = time.perf_counter() - wall_start
            alive = sum(1 for t in threads if t.is_alive())
            daemon_counters = ServeClient(url).metrics()["counters"]

    assert not errors, "client failures:\n" + "\n".join(errors[:10])
    assert alive == 0, f"{alive} client(s) still running after {TIMEOUT_S}s"

    executions = daemon_counters["serve.executions"]
    submissions = daemon_counters["serve.submissions"]
    assert submissions == clients, (submissions, clients)
    assert executions == len(distinct_units), (
        f"coalescing broke under load: {executions} executions for "
        f"{len(distinct_units)} distinct unit(s) across {clients} clients"
    )
    assert clients >= MIN_CLIENTS

    # Byte-identity across clients of the same scenario.
    by_request = {}
    for index, blob in enumerate(payloads):
        by_request.setdefault(index % len(requests), set()).add(blob)
    for request_index, blobs in by_request.items():
        assert len(blobs) == 1, (
            f"clients of scenario {request_index} saw "
            f"{len(blobs)} distinct result payloads"
        )

    ordered = sorted(latencies)
    p50 = _percentile(ordered, 0.50)
    p95 = _percentile(ordered, 0.95)
    p99 = _percentile(ordered, 0.99)

    print(
        render_table(
            ["metric", "value"],
            [
                ["clients", clients],
                ["distinct scenarios", len(requests)],
                ["distinct units", len(distinct_units)],
                ["executions", executions],
                ["jobs coalesced", daemon_counters["serve.jobs_coalesced"]],
                ["wall (s)", f"{wall:.3f}"],
                ["p50 latency (s)", f"{p50:.3f}"],
                ["p95 latency (s)", f"{p95:.3f}"],
                ["p99 latency (s)", f"{p99:.3f}"],
            ],
        )
    )

    out = argv[1] if len(argv) > 1 else os.path.join(
        RESULTS_DIR, "BENCH_serve.json"
    )
    payload = {
        "clients": clients,
        "min_clients": MIN_CLIENTS,
        "distinct_scenarios": len(requests),
        "distinct_units": len(distinct_units),
        "executions": executions,
        "submissions": submissions,
        "jobs_coalesced": daemon_counters["serve.jobs_coalesced"],
        "workers": WORKERS,
        "cores": CORES,
        "accesses_per_core": ACCESSES,
        "wall_seconds": wall,
        "p50_seconds": p50,
        "p95_seconds": p95,
        "p99_seconds": p99,
        "coalesced_exactly_once": executions == len(distinct_units),
    }
    directory = os.path.dirname(out)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(out, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
