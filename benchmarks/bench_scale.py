"""Mega-mesh scale bench: 1024-core vectorized vs 64-core batched.

Standalone script (not a pytest bench): times the canonical 64-core
batched scenario (``bench_engine.py``'s anchor: monolithic-smart,
graph500, 4000 accesses/core) against a 1024-core graph500 run under
the vectorized mega-mesh engine, prints both, and writes the
machine-readable ``BENCH_scale.json`` artefact under
``benchmarks/results/`` (override with argv[1]).

    PYTHONPATH=src python benchmarks/bench_scale.py [out.json]

The script is the ROADMAP-item-1 perf guard: the 1024-core run must
complete in no more than the time the 64-core batched run takes
(``MAX_RATIO``), best-of-``REPEATS`` with samples interleaved.  The
mega operating point is work-normalised, not access-normalised: short
per-core streams at 1024 tiles are cold-miss dominated, so 25
accesses/core already drives ~20k page walks — 2.8x the walk count of
the 64-core anchor — through every slice of the mesh.  Because speed
means nothing if the bits drift, the script also asserts the
vectorized engine reproduces the batched engine's bytes on the mega
scenario.  ``make bench-scale-smoke`` runs it as part of ``make
verify``.
"""

from __future__ import annotations

import json
import os
import sys
import time

from repro.analysis.tables import render_table
from repro.exec.cache import canonical_json
from repro.noc.route_cache import REFERENCE_ENV
from repro.sim import configs as cfg
from repro.sim.engine_vec import VECTORIZED_ENV
from repro.sim.scenario import RunUnit
from repro.workloads.registry import get_workload

WORKLOAD = "graph500"
SEED = 3
REPEATS = 3

#: The 64-core anchor — identical to bench_engine.py's batched scenario.
ANCHOR_CONFIG = "monolithic-smart"
ANCHOR_CORES = 64
ANCHOR_ACCESSES = 4_000

#: The mega-mesh operating point (see module docstring for why the
#: per-core depth is short: the point is work- not access-normalised).
MEGA_CONFIG = "distributed-1024"
MEGA_CORES = 1024
MEGA_ACCESSES = 25

#: The perf guard: mega wall-clock must not exceed anchor wall-clock
#: (measured headroom is ~1.4x).
MAX_RATIO = 1.0

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")


def _anchor_unit() -> RunUnit:
    return RunUnit(
        config=cfg.build_config(ANCHOR_CONFIG, ANCHOR_CORES),
        workload=get_workload(WORKLOAD),
        accesses_per_core=ANCHOR_ACCESSES,
        seed=SEED,
    )


def _mega_unit() -> RunUnit:
    return RunUnit(
        config=cfg.build_config(MEGA_CONFIG, MEGA_CORES),
        workload=get_workload(WORKLOAD),
        accesses_per_core=MEGA_ACCESSES,
        seed=SEED,
    )


def _run_once(unit: RunUnit, vectorized_env: str | None):
    """One timed execute with REPRO_VECTORIZED_ENGINE pinned."""
    if vectorized_env is None:
        os.environ.pop(VECTORIZED_ENV, None)
    else:
        os.environ[VECTORIZED_ENV] = vectorized_env
    try:
        start = time.perf_counter()
        result = unit.execute()
        return time.perf_counter() - start, result
    finally:
        os.environ.pop(VECTORIZED_ENV, None)


def main(argv) -> int:
    os.environ.pop(REFERENCE_ENV, None)
    anchor = _anchor_unit()
    mega = _mega_unit()
    anchor.build_workload()  # lru-cached: exclude builds from timing
    mega.build_workload()

    # Identity first: the mega scenario's bytes must not depend on
    # which engine produced them.
    _, mega_batched = _run_once(mega, vectorized_env="0")
    _, mega_vectorized = _run_once(mega, vectorized_env="1")
    assert canonical_json(mega_batched) == canonical_json(mega_vectorized), (
        "vectorized and batched engines disagree on the mega scenario"
    )

    _run_once(anchor, vectorized_env=None)  # warm compile/route caches
    # Interleave the samples so CPU frequency drift hits both scenarios
    # alike; compare best against best.
    anchor_samples = []
    mega_samples = []
    for _ in range(REPEATS):
        seconds, anchor_result = _run_once(anchor, vectorized_env=None)
        anchor_samples.append(seconds)
        seconds, mega_result = _run_once(mega, vectorized_env="1")
        mega_samples.append(seconds)
    anchor_best = min(anchor_samples)
    mega_best = min(mega_samples)
    ratio = mega_best / anchor_best

    anchor_events = (
        anchor_result.stats.l2_hits
        + anchor_result.stats.l2_misses
        + anchor_result.stats.walks
    )
    mega_events = (
        mega_result.stats.l2_hits
        + mega_result.stats.l2_misses
        + mega_result.stats.walks
    )

    print(
        render_table(
            ["scenario", "best (s)", "events", "samples (s)"],
            [
                [f"{ANCHOR_CONFIG} x{ANCHOR_ACCESSES} (batched)",
                 anchor_best, anchor_events,
                 " ".join(f"{s:.3f}" for s in anchor_samples)],
                [f"{MEGA_CONFIG} x{MEGA_ACCESSES} (vectorized)",
                 mega_best, mega_events,
                 " ".join(f"{s:.3f}" for s in mega_samples)],
                ["ratio (mega/anchor)", ratio, "", ""],
            ],
            precision=3,
        )
    )

    assert ratio <= MAX_RATIO, (
        f"1024-core vectorized run took {ratio:.2f}x the 64-core batched "
        f"anchor (perf guard requires <= {MAX_RATIO}x)"
    )

    out = argv[1] if len(argv) > 1 else os.path.join(
        RESULTS_DIR, "BENCH_scale.json"
    )
    payload = {
        "workload": WORKLOAD,
        "seed": SEED,
        "anchor_config": ANCHOR_CONFIG,
        "anchor_cores": ANCHOR_CORES,
        "anchor_accesses_per_core": ANCHOR_ACCESSES,
        "anchor_seconds": anchor_best,
        "anchor_samples": anchor_samples,
        "anchor_events": anchor_events,
        "anchor_cycles": anchor_result.cycles,
        "mega_config": MEGA_CONFIG,
        "mega_cores": MEGA_CORES,
        "mega_accesses_per_core": MEGA_ACCESSES,
        "mega_seconds": mega_best,
        "mega_samples": mega_samples,
        "mega_events": mega_events,
        "mega_cycles": mega_result.cycles,
        "scale_ratio": ratio,
        "max_ratio": MAX_RATIO,
    }
    directory = os.path.dirname(out)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(out, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
