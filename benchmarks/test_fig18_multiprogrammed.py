"""Fig 18 — multiprogrammed combinations of four applications (8
threads each) on 32 cores: overall throughput speedup and the speedup
of the worst-performing application, sorted across combinations.

Paper: over 330 combinations, NOCSTAR always improves aggregate IPC;
monolithic degrades about half the combinations and distributed ~10%;
under NOCSTAR the worst-off application loses at most a few percent in
a small minority of mixes, versus severe (tens of percent) losses under
the other shared organisations.
"""

from repro.analysis.tables import render_table
from repro.workloads.multiprog import combinations_of_four, sample_combinations

from _common import FULL_SCALE, lineup, multiprog_workload, once, report, runner

CORES = 32
ACCESSES = 2_000 if not FULL_SCALE else 4_000
COMBOS = (
    combinations_of_four() if FULL_SCALE else sample_combinations(24, seed=5)
)
CONFIGS = ("monolithic-mesh", "distributed", "nocstar")


def run():
    throughput = {c: [] for c in CONFIGS}
    worst_app = {c: [] for c in CONFIGS}
    run = runner()
    configs = lineup(
        ("private", "monolithic", "distributed", "nocstar"), CORES
    )
    for combo in COMBOS:
        wl = multiprog_workload(tuple(combo), CORES, ACCESSES)
        cmp = run.run_prebuilt(wl, configs)
        for config in CONFIGS:
            result = cmp.results[config]
            throughput[config].append(result.speedup_over(cmp.baseline))
            apps = result.app_speedups_over(cmp.baseline)
            worst_app[config].append(min(apps.values()))
    for config in CONFIGS:
        throughput[config].sort()
        worst_app[config].sort()
    return throughput, worst_app


def test_fig18_multiprogrammed(benchmark):
    throughput, worst_app = once(benchmark, run)
    n = len(COMBOS)

    def stats(values):
        return [values[0], values[n // 2], values[-1],
                100.0 * sum(v < 1.0 for v in values) / n]

    rows = [
        [f"{config} ({metric})"] + stats(data[config])
        for metric, data in (("throughput", throughput),
                             ("worst app", worst_app))
        for config in CONFIGS
    ]
    report(
        "fig18_multiprogrammed",
        render_table(
            ["series", "min", "median", "max", "% degraded"], rows
        )
        + f"\n({n} combinations of 4 apps, 8 threads each)",
    )

    degraded = {
        c: sum(v < 1.0 for v in throughput[c]) / n for c in CONFIGS
    }
    # NOCSTAR (almost) always improves aggregate throughput...
    assert degraded["nocstar"] <= 0.1
    # ...while monolithic degrades a large share of mixes.
    assert degraded["monolithic-mesh"] > degraded["nocstar"]
    assert degraded["monolithic-mesh"] >= 0.3
    # Fairness: NOCSTAR's worst-off app suffers at most mildly, and less
    # often than under the other organisations.
    worst_degraded = {
        c: sum(v < 0.97 for v in worst_app[c]) / n for c in CONFIGS
    }
    assert worst_degraded["nocstar"] <= worst_degraded["distributed"]
    assert worst_degraded["nocstar"] <= worst_degraded["monolithic-mesh"]
    assert min(worst_app["nocstar"]) > 0.85
