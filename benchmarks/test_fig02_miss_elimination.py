"""Fig 2 — percentage of private L2 TLB misses eliminated by a shared
TLB, for 16/32/64-core systems.

Paper: the shared TLB eliminates the majority of private L2 misses
(70-90% in the original shared-TLB study), and the effect strengthens
with core count; poor-locality workloads (canneal, gups, xsbench) gain
most at high core counts.
"""

import pytest

from repro.analysis.tables import render_table
from repro.sim import configs as cfg

from _common import ACCESSES, HEAVY_WORKLOADS, once, report, run_lineup

CORE_COUNTS = (16, 32, 64)


def run():
    rows = []
    elim = {}
    for name in HEAVY_WORKLOADS:
        row = [name]
        for cores in CORE_COUNTS:
            lineup = run_lineup(
                name, cores, [cfg.private(cores), cfg.distributed(cores)]
            )
            pct = lineup.misses_eliminated_pct("distributed")
            elim[(name, cores)] = pct
            row.append(pct)
        rows.append(row)
    averages = ["Avg"] + [
        sum(elim[(n, c)] for n in HEAVY_WORKLOADS) / len(HEAVY_WORKLOADS)
        for c in CORE_COUNTS
    ]
    rows.append(averages)
    return elim, rows


def test_fig2_miss_elimination(benchmark):
    elim, rows = once(benchmark, run)
    headers = ["workload"] + [f"{c}-core (%)" for c in CORE_COUNTS]
    report("fig02_miss_elimination", render_table(headers, rows, precision=1))

    for name in HEAVY_WORKLOADS:
        # The shared TLB removes a large fraction of misses everywhere...
        assert elim[(name, 16)] > 35.0
        # ...and higher core counts eliminate at least as much.
        assert elim[(name, 64)] > elim[(name, 16)]
    avg64 = sum(elim[(n, 64)] for n in HEAVY_WORKLOADS) / len(HEAVY_WORKLOADS)
    assert avg64 > 55.0
