"""Fig 2 — percentage of private L2 TLB misses eliminated by a shared
TLB, for 16/32/64-core systems.

Paper: the shared TLB eliminates the majority of private L2 misses
(70-90% in the original shared-TLB study), and the effect strengthens
with core count; poor-locality workloads (canneal, gups, xsbench) gain
most at high core counts.

The experiment grid is the shared ``fig2`` campaign spec
(``repro.experiments.campaigns``); this bench renders the campaign's
tidy table in the paper's layout and asserts the qualitative shape.
"""

from repro.analysis.tables import render_table

from _common import bench_campaign, once, report


def run():
    return bench_campaign("fig2")


def test_fig2_miss_elimination(benchmark):
    result = once(benchmark, run)
    workloads = result.scale.workloads
    core_counts = result.scale.core_counts
    elim = {
        (row["workload"], row["cores"]): row["eliminated_pct"]
        for row in result.tables["miss_elimination"]
    }
    rows = [
        [name] + [elim[(name, c)] for c in core_counts]
        for name in workloads
    ]
    rows.append(
        ["Avg"] + [result.summary[f"elim_avg.c{c}"] for c in core_counts]
    )
    headers = ["workload"] + [f"{c}-core (%)" for c in core_counts]
    report("fig02_miss_elimination", render_table(headers, rows, precision=1))

    for name in workloads:
        # The shared TLB removes a large fraction of misses everywhere...
        assert elim[(name, 16)] > 35.0
        # ...and higher core counts eliminate at least as much.
        assert elim[(name, 64)] > elim[(name, 16)]
    assert result.summary["elim_avg.c64"] > 55.0
