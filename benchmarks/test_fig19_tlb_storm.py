"""Fig 19 + §V microbenchmarks — pathological stress:

1. *TLB storm*: aggressive context switching (full TLB flushes) plus
   superpage promotion churn (512-entry invalidation bursts) running
   alongside each workload.
2. *Slice hammer*: N-1 threads continuously hitting one victim slice.

Paper: storms cost every organisation 10-20%, monolithic collapses
(down 20-30% versus private), but NOCSTAR keeps a 7-11% average win;
under the slice hammer NOCSTAR still beats private by 3-5% and any
other shared organisation by >= 7% in the worst case... directionally:
NOCSTAR remains the best shared configuration under both stressmarks.
"""

from repro.analysis.tables import render_table
from repro.sim import configs as cfg
from repro.sim.engine import simulate
from repro.workloads.microbench import build_slice_hammer, storm_config_for
from repro.workloads.registry import get_workload

from _common import ACCESSES, FULL_SCALE, once, report, workload

WORKLOAD_SET = ("graph500", "canneal", "gups")
CORE_COUNTS = (16, 32, 64) if FULL_SCALE else (16, 32)
SCHEMES = ("monolithic", "distributed", "nocstar")


def _config(scheme, cores):
    return {
        "monolithic": cfg.monolithic,
        "distributed": cfg.distributed,
        "nocstar": cfg.nocstar,
    }[scheme](cores)


def run():
    storm_results = {}
    for cores in CORE_COUNTS:
        for scheme in SCHEMES:
            alone, stormy = [], []
            for name in WORKLOAD_SET:
                wl = workload(name, cores, ACCESSES)
                gap = get_workload(name).mean_gap
                storm = storm_config_for(ACCESSES, mean_gap=gap)
                base_alone = simulate(cfg.private(cores), wl)
                base_storm = simulate(cfg.private(cores), wl, storm=storm)
                alone.append(
                    base_alone.cycles
                    / simulate(_config(scheme, cores), wl).cycles
                )
                stormy.append(
                    base_storm.cycles
                    / simulate(_config(scheme, cores), wl, storm=storm).cycles
                )
            storm_results[(cores, scheme)] = (
                sum(alone) / len(alone),
                sum(stormy) / len(stormy),
            )

    hammer_results = {}
    cores = CORE_COUNTS[0]
    hammer = build_slice_hammer(cores, accesses_per_core=3_000)
    base = simulate(cfg.private(cores), hammer)
    for scheme in SCHEMES:
        hammer_results[scheme] = (
            base.cycles / simulate(_config(scheme, cores), hammer).cycles
        )
    return storm_results, hammer_results


def test_fig19_storm_and_slice_hammer(benchmark):
    storm_results, hammer_results = once(benchmark, run)
    rows = [
        [f"{cores}-core", scheme, alone, stormy]
        for (cores, scheme), (alone, stormy) in storm_results.items()
    ]
    table = render_table(
        ["system", "config", "alone", "w/ub (storm)"], rows
    )
    hammer_rows = [[scheme, value] for scheme, value in hammer_results.items()]
    table += "\n\nslice-hammer speedups vs private:\n" + render_table(
        ["config", "speedup"], hammer_rows
    )
    report("fig19_tlb_storm", table)

    for cores in CORE_COUNTS:
        noc_alone, noc_storm = storm_results[(cores, "nocstar")]
        mono_alone, mono_storm = storm_results[(cores, "monolithic")]
        # Monolithic collapses under storms (paper: 20-30% below
        # private) and distributed loses ground...
        assert mono_storm < mono_alone - 0.1
        assert storm_results[(cores, "distributed")][1] <= (
            storm_results[(cores, "distributed")][0]
        )
        # ...while NOCSTAR stays the best shared organisation and keeps
        # a clear win over private TLBs.  (In our model NOCSTAR's
        # *relative* speedup even rises under storms — post-flush, one
        # shared walk refills a translation for every core, while the
        # private baseline re-walks per core; see EXPERIMENTS.md.)
        assert noc_storm > storm_results[(cores, "distributed")][1] - 0.01
        assert noc_storm > mono_storm
        assert noc_storm > 1.0
    # Slice hammer: NOCSTAR beats private and the other shared configs.
    assert hammer_results["nocstar"] > 1.0
    assert hammer_results["nocstar"] >= hammer_results["distributed"] - 0.02
    assert hammer_results["nocstar"] >= hammer_results["monolithic"]
