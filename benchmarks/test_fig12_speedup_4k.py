"""Fig 12 — speedups over private L2 TLBs on a 16-core system using
only 4KB pages: monolithic, distributed, NOCSTAR, and the
zero-interconnect-latency ideal.

Paper: NOCSTAR averages 1.13x (max 1.25x) and beats every other
configuration; monolithic *degrades* performance on average; NOCSTAR
comes within ~2% of ideal.

The experiment grid is the shared ``fig12`` campaign spec
(``repro.experiments.campaigns``); this bench renders the campaign's
speedup table in the paper's layout and asserts the qualitative shape.
"""

from repro.analysis.tables import render_table

from _common import bench_campaign, once, report

CONFIG_NAMES = ("monolithic-mesh", "distributed", "nocstar", "ideal")


def run():
    return bench_campaign("fig12")


def test_fig12_speedups_4k_only(benchmark):
    result = once(benchmark, run)
    workloads = result.scale.workloads
    table = {name: {} for name in workloads}
    for row in result.tables["speedups"]:
        table[row["workload"]][row["config"]] = row["speedup"]
    avg = {c: result.summary[f"speedup_avg.{c}"] for c in CONFIG_NAMES}
    rows = [
        [name] + [table[name][c] for c in CONFIG_NAMES]
        for name in workloads
    ]
    rows.append(["average"] + [avg[c] for c in CONFIG_NAMES])
    report(
        "fig12_speedup_4k",
        render_table(["workload"] + list(CONFIG_NAMES), rows),
    )

    assert avg["nocstar"] > 1.05
    assert avg["nocstar"] > avg["distributed"] > avg["monolithic-mesh"]
    assert avg["nocstar"] / avg["ideal"] >= 0.93
    assert result.summary["speedup_max.nocstar"] > 1.1
