"""Fig 12 — speedups over private L2 TLBs on a 16-core system using
only 4KB pages: monolithic, distributed, NOCSTAR, and the
zero-interconnect-latency ideal.

Paper: NOCSTAR averages 1.13x (max 1.25x) and beats every other
configuration; monolithic *degrades* performance on average; NOCSTAR
comes within ~2% of ideal.
"""

from repro.analysis.tables import render_table
from repro.sim import configs as cfg

from _common import HEAVY_WORKLOADS, once, report, run_lineup

CORES = 16
CONFIG_NAMES = ("monolithic-mesh", "distributed", "nocstar", "ideal")


def run():
    table = {}
    for name in HEAVY_WORKLOADS:
        lineup = run_lineup(
            name,
            CORES,
            cfg.paper_lineup(CORES),
            superpages=False,
        )
        table[name] = lineup.speedups()
    return table


def test_fig12_speedups_4k_only(benchmark):
    table = once(benchmark, run)
    rows = [
        [name] + [table[name][c] for c in CONFIG_NAMES]
        for name in HEAVY_WORKLOADS
    ]
    avg = {
        c: sum(table[n][c] for n in HEAVY_WORKLOADS) / len(HEAVY_WORKLOADS)
        for c in CONFIG_NAMES
    }
    rows.append(["average"] + [avg[c] for c in CONFIG_NAMES])
    report(
        "fig12_speedup_4k",
        render_table(["workload"] + list(CONFIG_NAMES), rows),
    )

    assert avg["nocstar"] > 1.05
    assert avg["nocstar"] > avg["distributed"] > avg["monolithic-mesh"]
    assert avg["nocstar"] / avg["ideal"] >= 0.93
    assert max(table[n]["nocstar"] for n in HEAVY_WORKLOADS) > 1.1
