"""Fig 11(c) — average message latency vs injection rate on a 64-node
system with uniform-random synthetic traffic, NOCSTAR vs multi-hop
mesh, plus the fraction of NOCSTAR messages with no contention delay.

Paper: even at injection rate 0.1 (one message per 10 cycles per core —
high for TLB traffic) NOCSTAR's average latency stays within ~3 cycles,
well under the multi-hop mesh.
"""

from repro.analysis.tables import render_table
from repro.noc.synthetic import run_mesh_traffic, run_nocstar_traffic
from repro.noc.topology import MeshTopology

from _common import FULL_SCALE, once, report

RATES = (0.01, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4)
CYCLES = 5000 if FULL_SCALE else 2500


def run():
    topo = MeshTopology(64)
    nocstar = {r: run_nocstar_traffic(topo, r, cycles=CYCLES) for r in RATES}
    mesh = {r: run_mesh_traffic(topo, r, cycles=CYCLES) for r in RATES}
    return nocstar, mesh


def test_fig11c_injection_sweep(benchmark):
    nocstar, mesh = once(benchmark, run)
    rows = [
        [
            rate,
            nocstar[rate].mean_latency,
            mesh[rate].mean_latency,
            100 * nocstar[rate].no_contention_fraction,
        ]
        for rate in RATES
    ]
    report(
        "fig11c_injection_sweep",
        render_table(
            ["inj rate", "NOCSTAR lat", "mesh lat", "% no contention"],
            rows,
            precision=2,
        ),
    )

    # Paper's operating point: <= ~3 cycles at 0.1 injection (already
    # high for TLB traffic — one L1 miss per 10 cycles per core).
    assert nocstar[0.1].mean_latency <= 4.0
    # NOCSTAR under the mesh throughout the TLB-realistic region.  (Past
    # ~0.15 the all-or-nothing circuit-switched fabric saturates earlier
    # than the buffered mesh — see EXPERIMENTS.md.)
    for rate in (0.01, 0.05, 0.1):
        assert nocstar[rate].mean_latency < mesh[rate].mean_latency
    # Latency rises and no-contention fraction falls with load.
    assert nocstar[0.4].mean_latency > nocstar[0.01].mean_latency
    assert (
        nocstar[0.4].no_contention_fraction
        < nocstar[0.01].no_contention_fraction
    )
    assert nocstar[0.01].no_contention_fraction > 0.85
