"""Sweep data-plane bench: trace-store fan-out vs per-worker rebuilds.

Standalone script (not a pytest bench): times the paper's sweep shape —
a 4-configuration lineup over 3 workloads at paper-scale footprints —
through ``Runner(jobs=4)`` twice: **before** (no trace store: every
pool worker rebuilds each multi-million-page trace it is handed) and
**after** (warm :class:`~repro.exec.TraceStore`: workers attach packed
artifacts zero-copy through the page cache).  Prints both, asserts the
data plane is at least ``MIN_SPEEDUP`` times faster, and writes the
machine-readable ``BENCH_sweep.json`` artefact under
``benchmarks/results/`` (override with argv[1]).

    PYTHONPATH=src python benchmarks/bench_sweep.py [out.json]

Because speed means nothing if the bits drift, the script also asserts
the fan-out results are byte-identical to a serial ``jobs=1`` reference
run.  ``make bench-sweep-smoke`` runs it as part of ``make verify``.

The scenario uses ``scaled_footprint(128)`` (multi-million-page working
sets, the paper's 64-core regime) with few accesses per core: the cost
profile
where trace construction — Zipf CDF, footprint permutation, per-core
sampling — dominates a sweep, which is precisely the redundancy the
trace store exists to eliminate.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import time

from repro.analysis.tables import render_table
from repro.exec import Runner, TraceStore
from repro.exec.cache import canonical_json
from repro.sim import configs as cfg
from repro.sim.scenario import Scenario, _build_workload
from repro.workloads import generators
from repro.workloads.registry import get_workload

CORES = 16
ACCESSES = 400
SEED = 5
JOBS = 4
FOOTPRINT_SCALE = 128
CONFIGS = ("private", "distributed", "nocstar", "monolithic")
WORKLOADS = ("graph500", "canneal", "gups")
REPEATS = 3
#: The perf guard: the warm-store fan-out must beat store-less jobs=4
#: dispatch by this factor (measured headroom is ~2.9x).
MIN_SPEEDUP = 2.0

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")


def _scenario() -> Scenario:
    return Scenario(
        configurations=tuple(cfg.build_config(name, CORES) for name in CONFIGS),
        workloads=tuple(
            get_workload(name).scaled_footprint(FOOTPRINT_SCALE)
            for name in WORKLOADS
        ),
        accesses_per_core=ACCESSES,
        seed=SEED,
    )


def _forget_builds() -> None:
    """Drop every in-process build memo before a "before" sample.

    Pool workers are forked from this process; anything resident here
    (built workloads, Zipf CDFs) would be inherited and silently erase
    the rebuild cost the "before" leg exists to measure.
    """
    _build_workload.cache_clear()
    generators._CDF_CACHE.clear()


def _timed_run(runner: Runner, scenario: Scenario):
    start = time.perf_counter()
    results = runner.run(scenario)
    return time.perf_counter() - start, results


def main(argv) -> int:
    scenario = _scenario()
    with tempfile.TemporaryDirectory(prefix="bench-sweep-store-") as store_dir:
        store = TraceStore(store_dir)
        # Warm the store once — the acceptance criterion times the
        # steady state, where artifacts persist across sweeps/sessions.
        for unit in scenario.units():
            store.ensure(unit.build_signature())

        before_runner = Runner(jobs=JOBS)
        after_runner = Runner(jobs=JOBS, trace_store=store)
        # One untimed round to settle pool startup and the page cache.
        _forget_builds()
        before_results = before_runner.run(scenario)
        after_results = after_runner.run(scenario)

        # Interleave the samples so CPU frequency drift hits both
        # paths alike; compare best against best.
        before_samples = []
        after_samples = []
        for _ in range(REPEATS):
            _forget_builds()
            seconds, before_results = _timed_run(before_runner, scenario)
            before_samples.append(seconds)
            seconds, after_results = _timed_run(after_runner, scenario)
            after_samples.append(seconds)
        before_best = min(before_samples)
        after_best = min(after_samples)
        speedup = before_best / after_best

        _forget_builds()
        reference = Runner(jobs=1).run(scenario)

    print(
        render_table(
            ["path", "best (s)", "samples (s)"],
            [
                ["before (rebuild per worker)", before_best,
                 " ".join(f"{s:.3f}" for s in before_samples)],
                ["after (warm trace store)", after_best,
                 " ".join(f"{s:.3f}" for s in after_samples)],
                ["speedup", speedup, ""],
            ],
            precision=3,
        )
    )

    for name in reference:
        assert canonical_json(after_results[name].results) == canonical_json(
            reference[name].results
        ), f"trace-store fan-out drifted from the serial reference on {name}"
        assert canonical_json(before_results[name].results) == canonical_json(
            reference[name].results
        ), f"store-less fan-out drifted from the serial reference on {name}"
    assert speedup >= MIN_SPEEDUP, (
        f"trace-store data plane only {speedup:.2f}x faster than "
        f"per-worker rebuilds (perf guard requires >= {MIN_SPEEDUP}x on "
        f"the jobs={JOBS} {len(CONFIGS)}x{len(WORKLOADS)} sweep)"
    )

    out = argv[1] if len(argv) > 1 else os.path.join(
        RESULTS_DIR, "BENCH_sweep.json"
    )
    payload = {
        "configs": list(CONFIGS),
        "workloads": list(WORKLOADS),
        "footprint_scale": FOOTPRINT_SCALE,
        "cores": CORES,
        "accesses_per_core": ACCESSES,
        "seed": SEED,
        "jobs": JOBS,
        "before_seconds": before_best,
        "before_samples": before_samples,
        "after_seconds": after_best,
        "after_samples": after_samples,
        "speedup": speedup,
        "min_speedup": MIN_SPEEDUP,
    }
    directory = os.path.dirname(out)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(out, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
