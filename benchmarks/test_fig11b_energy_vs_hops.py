"""Fig 11(b) — per-message energy vs hop count, broken into
Link / Switch / Control / SRAM, for (M)onolithic, (D)istributed and
(N)OCSTAR.

Paper: monolithic is dominated by its large SRAM read; NOCSTAR's
circuit-switched datapath makes its per-hop switch energy cheaper than
a buffered router, at the price of a small control premium; overall
M > D > N at every hop count.
"""

from repro.analysis.tables import render_table
from repro.energy.message import message_energy_pj

from _common import once, report

HOPS = (0, 1, 2, 4, 6, 8, 10, 12)
COMPONENTS = ("link", "switch", "control", "sram", "total")


def run():
    table = {}
    for design in ("monolithic", "distributed", "nocstar"):
        table[design] = {
            h: message_energy_pj(design, h, num_cores=32) for h in HOPS
        }
    return table


def test_fig11b_energy_vs_hops(benchmark):
    table = once(benchmark, run)
    rows = []
    for design, by_hops in table.items():
        for component in COMPONENTS:
            rows.append(
                [f"{design[0].upper()}/{component}"]
                + [by_hops[h][component] for h in HOPS]
            )
    report(
        "fig11b_energy_vs_hops",
        render_table(["series"] + [f"{h}h" for h in HOPS], rows, precision=1),
    )

    for h in HOPS:
        assert (
            table["monolithic"][h]["total"]
            > table["distributed"][h]["total"]
            > table["nocstar"][h]["total"]
        )
    # SRAM dominates monolithic even at 12 hops.
    mono12 = table["monolithic"][12]
    assert mono12["sram"] > mono12["link"] + mono12["switch"]
    # NOCSTAR has the only non-zero control term, and a cheaper switch.
    assert table["nocstar"][12]["control"] > 0
    assert table["distributed"][12]["control"] == 0
    assert table["nocstar"][12]["switch"] < table["distributed"][12]["switch"]
