"""Fig 13 — Fig 12's comparison with Linux transparent 2MB superpages
(50-80% of each footprint superpage-backed).

Paper: NOCSTAR's advantage *persists or grows* with superpages —
superpages cut shared-L2 misses, so access time becomes a bigger share
of translation cost, which is exactly what NOCSTAR attacks; xsbench and
gups exceed 1.2x.

The experiment grid is the shared ``fig13`` campaign spec
(``repro.experiments.campaigns``); this bench renders the campaign's
speedup table in the paper's layout and asserts the qualitative shape.
"""

from repro.analysis.tables import render_table

from _common import bench_campaign, once, report

CONFIG_NAMES = ("monolithic-mesh", "distributed", "nocstar", "ideal")


def run():
    return bench_campaign("fig13")


def test_fig13_speedups_with_superpages(benchmark):
    result = once(benchmark, run)
    workloads = result.scale.workloads
    table = {name: {} for name in workloads}
    for row in result.tables["speedups"]:
        table[row["workload"]][row["config"]] = row["speedup"]
    avg = {c: result.summary[f"speedup_avg.{c}"] for c in CONFIG_NAMES}
    rows = [
        [name] + [table[name][c] for c in CONFIG_NAMES]
        for name in workloads
    ]
    rows.append(["average"] + [avg[c] for c in CONFIG_NAMES])
    report(
        "fig13_speedup_superpages",
        render_table(["workload"] + list(CONFIG_NAMES), rows),
    )

    assert avg["nocstar"] > 1.05
    assert avg["nocstar"] > avg["distributed"] > avg["monolithic-mesh"]
    # The stress workloads reach the paper's 1.2x-class gains.
    assert result.summary["speedup_max.nocstar"] > 1.15
    assert avg["nocstar"] / avg["ideal"] >= 0.93
