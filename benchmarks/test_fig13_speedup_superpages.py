"""Fig 13 — Fig 12's comparison with Linux transparent 2MB superpages
(50-80% of each footprint superpage-backed).

Paper: NOCSTAR's advantage *persists or grows* with superpages —
superpages cut shared-L2 misses, so access time becomes a bigger share
of translation cost, which is exactly what NOCSTAR attacks; xsbench and
gups exceed 1.2x.
"""

from repro.analysis.tables import render_table
from repro.sim import configs as cfg

from _common import HEAVY_WORKLOADS, once, report, run_lineup

CORES = 16
CONFIG_NAMES = ("monolithic-mesh", "distributed", "nocstar", "ideal")


def run():
    table = {}
    for name in HEAVY_WORKLOADS:
        lineup = run_lineup(
            name, CORES, cfg.paper_lineup(CORES), superpages=True
        )
        table[name] = lineup.speedups()
        table[name]["_misses"] = lineup.results["nocstar"].stats.l2_misses
    return table


def test_fig13_speedups_with_superpages(benchmark):
    table = once(benchmark, run)
    rows = [
        [name] + [table[name][c] for c in CONFIG_NAMES]
        for name in HEAVY_WORKLOADS
    ]
    avg = {
        c: sum(table[n][c] for n in HEAVY_WORKLOADS) / len(HEAVY_WORKLOADS)
        for c in CONFIG_NAMES
    }
    rows.append(["average"] + [avg[c] for c in CONFIG_NAMES])
    report(
        "fig13_speedup_superpages",
        render_table(["workload"] + list(CONFIG_NAMES), rows),
    )

    assert avg["nocstar"] > 1.05
    assert avg["nocstar"] > avg["distributed"] > avg["monolithic-mesh"]
    # The stress workloads reach the paper's 1.2x-class gains.
    assert max(table[n]["nocstar"] for n in HEAVY_WORKLOADS) > 1.15
    assert avg["nocstar"] / avg["ideal"] >= 0.93
