"""Table I — TLB interconnect design choices.

Paper: bus wins latency/area but not bandwidth/power; mesh wins
bandwidth but not latency/area/power; FBFly-wide wins latency and
bandwidth at extreme area/power; SMART wins latency/bandwidth but keeps
buffered-router area/power; NOCSTAR is good on all four axes.
"""

from repro.analysis.tables import render_table
from repro.noc.tradeoffs import evaluate_designs

from _common import once, report


def run():
    return evaluate_designs(64)


def test_table1_design_choices(benchmark):
    rows = once(benchmark, run)
    table_rows = [
        [
            row.name,
            row.glyphs["latency"],
            row.glyphs["bandwidth"],
            row.glyphs["area"],
            row.glyphs["power"],
            row.latency_cycles,
            row.bandwidth_transfers,
        ]
        for row in rows
    ]
    report(
        "table1_noc_tradeoffs",
        render_table(
            ["NOC", "Latency", "Bandwidth", "Area", "Power",
             "lat (cyc)", "bw (xfers)"],
            table_rows,
            precision=1,
        ),
    )
    glyphs = {row.name: row.glyphs for row in rows}
    assert all(g.startswith("yes") for g in glyphs["nocstar"].values())
    assert glyphs["bus"]["bandwidth"].startswith("no")
    assert glyphs["mesh"]["latency"].startswith("no")
    assert glyphs["fbfly-wide"]["area"] == "no+"
    assert glyphs["smart"]["latency"].startswith("yes")
    assert glyphs["smart"]["power"].startswith("no")
