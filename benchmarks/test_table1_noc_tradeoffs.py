"""Table I — TLB interconnect design choices.

Paper: bus wins latency/area but not bandwidth/power; mesh wins
bandwidth but not latency/area/power; FBFly-wide wins latency and
bandwidth at extreme area/power; SMART wins latency/bandwidth but keeps
buffered-router area/power; NOCSTAR is good on all four axes.

The numbers come from the shared ``table1`` campaign spec
(``repro.experiments.campaigns``, an analytic campaign — no
simulation); this bench renders the campaign's design-choice table and
asserts the paper's glyph pattern.
"""

from repro.analysis.tables import render_table

from _common import bench_campaign, once, report


def run():
    return bench_campaign("table1")


def test_table1_design_choices(benchmark):
    result = once(benchmark, run)
    rows = result.tables["design_choices"]
    table_rows = [
        [
            row["noc"],
            row["latency_glyph"],
            row["bandwidth_glyph"],
            row["area_glyph"],
            row["power_glyph"],
            row["latency_cycles"],
            row["bandwidth_transfers"],
        ]
        for row in rows
    ]
    report(
        "table1_noc_tradeoffs",
        render_table(
            ["NOC", "Latency", "Bandwidth", "Area", "Power",
             "lat (cyc)", "bw (xfers)"],
            table_rows,
            precision=1,
        ),
    )
    glyphs = {
        row["noc"]: {
            "latency": row["latency_glyph"],
            "bandwidth": row["bandwidth_glyph"],
            "area": row["area_glyph"],
            "power": row["power_glyph"],
        }
        for row in rows
    }
    assert all(g.startswith("yes") for g in glyphs["nocstar"].values())
    assert glyphs["bus"]["bandwidth"].startswith("no")
    assert glyphs["mesh"]["latency"].startswith("no")
    assert glyphs["fbfly-wide"]["area"] == "no+"
    assert glyphs["smart"]["latency"].startswith("yes")
    assert glyphs["smart"]["power"].startswith("no")
