"""Fig 14 — (left) min/avg/max speedups at 16/32/64 cores with
transparent superpages; (right) percent of address-translation energy
saved versus private L2 TLBs.

Paper: monolithic's high access time overwhelms its hit rate and
worsens with core count; NOCSTAR consistently outperforms everything;
even monolithic saves ~a third of translation energy, and NOCSTAR saves
up to ~60% at 64 cores (walk elimination + shorter runtime).

The experiment grid is the shared ``fig14`` campaign spec
(``repro.experiments.campaigns``); this bench renders the campaign's
summary metrics in the paper's layout and asserts the qualitative
shape.
"""

from repro.analysis.tables import render_table

from _common import bench_campaign, once, report

CONFIGS = ("monolithic-mesh", "distributed", "nocstar")


def run():
    return bench_campaign("fig14")


def test_fig14_scalability_and_energy(benchmark):
    result = once(benchmark, run)
    core_counts = result.scale.core_counts
    s = result.summary
    rows = []
    for cores in core_counts:
        for config in CONFIGS:
            rows.append(
                [
                    f"{cores}-core",
                    config,
                    s[f"speedup_min.c{cores}.{config}"],
                    s[f"speedup_avg.c{cores}.{config}"],
                    s[f"speedup_max.c{cores}.{config}"],
                    s[f"energy_saved_avg.c{cores}.{config}"],
                ]
            )
    report(
        "fig14_scalability_energy",
        render_table(
            ["system", "config", "min", "avg", "max", "% energy saved"],
            rows,
        ),
    )

    for cores in core_counts:
        mono_avg = s[f"speedup_avg.c{cores}.monolithic-mesh"]
        dist_avg = s[f"speedup_avg.c{cores}.distributed"]
        noc_avg = s[f"speedup_avg.c{cores}.nocstar"]
        assert noc_avg > dist_avg > mono_avg
        assert noc_avg > 1.05
        # Every shared configuration saves translation energy.
        for config in CONFIGS:
            assert s[f"energy_saved_avg.c{cores}.{config}"] > 10.0
        # NOCSTAR saves the most.
        assert (
            s[f"energy_saved_avg.c{cores}.nocstar"]
            >= s[f"energy_saved_avg.c{cores}.monolithic-mesh"]
        )
    # NOCSTAR's advantage grows with core count (bigger shared pool).
    assert s["speedup_avg.c64.nocstar"] >= s["speedup_avg.c16.nocstar"] - 0.02
