"""Fig 14 — (left) min/avg/max speedups at 16/32/64 cores with
transparent superpages; (right) percent of address-translation energy
saved versus private L2 TLBs.

Paper: monolithic's high access time overwhelms its hit rate and
worsens with core count; NOCSTAR consistently outperforms everything;
even monolithic saves ~a third of translation energy, and NOCSTAR saves
up to ~60% at 64 cores (walk elimination + shorter runtime).
"""

from repro.analysis.tables import render_table
from repro.energy.model import percent_energy_saved
from repro.sim import configs as cfg

from _common import HEAVY_WORKLOADS, once, report, run_lineup

CORE_COUNTS = (16, 32, 64)
CONFIGS = ("monolithic-mesh", "distributed", "nocstar")


def run():
    speedups = {}
    energy_saved = {}
    for cores in CORE_COUNTS:
        per_config = {c: [] for c in CONFIGS}
        saved = {c: [] for c in CONFIGS}
        for name in HEAVY_WORKLOADS:
            lineup = run_lineup(
                name,
                cores,
                [
                    cfg.private(cores),
                    cfg.monolithic(cores),
                    cfg.distributed(cores),
                    cfg.nocstar(cores),
                ],
            )
            base_pj = lineup.baseline.total_energy_pj
            for config in CONFIGS:
                per_config[config].append(lineup.speedup(config))
                saved[config].append(
                    percent_energy_saved(
                        base_pj, lineup.results[config].total_energy_pj
                    )
                )
        speedups[cores] = {
            c: (min(v), sum(v) / len(v), max(v))
            for c, v in per_config.items()
        }
        energy_saved[cores] = {
            c: sum(v) / len(v) for c, v in saved.items()
        }
    return speedups, energy_saved


def test_fig14_scalability_and_energy(benchmark):
    speedups, energy_saved = once(benchmark, run)
    rows = []
    for cores in CORE_COUNTS:
        for config in CONFIGS:
            mn, avg, mx = speedups[cores][config]
            rows.append(
                [f"{cores}-core", config, mn, avg, mx,
                 energy_saved[cores][config]]
            )
    report(
        "fig14_scalability_energy",
        render_table(
            ["system", "config", "min", "avg", "max", "% energy saved"],
            rows,
        ),
    )

    for cores in CORE_COUNTS:
        mono_avg = speedups[cores]["monolithic-mesh"][1]
        dist_avg = speedups[cores]["distributed"][1]
        noc_avg = speedups[cores]["nocstar"][1]
        assert noc_avg > dist_avg > mono_avg
        assert noc_avg > 1.05
        # Every shared configuration saves translation energy.
        for config in CONFIGS:
            assert energy_saved[cores][config] > 10.0
        # NOCSTAR saves the most.
        assert (
            energy_saved[cores]["nocstar"]
            >= energy_saved[cores]["monolithic-mesh"]
        )
    # NOCSTAR's advantage grows with core count (bigger shared pool).
    assert speedups[64]["nocstar"][1] >= speedups[16]["nocstar"][1] - 0.02
