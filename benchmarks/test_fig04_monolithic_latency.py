"""Fig 4 — speedup of a monolithic banked shared L2 TLB over private L2
TLBs as its total access latency varies from 9 to 25 cycles (32-core).

Paper: at 25 cycles the shared TLB loses 10-15% despite its higher hit
rate; even the unrealisable 16-cycle (zero-interconnect) case shows
little to no speedup; only the impossible 9-cycle case wins broadly.
"""

from repro.analysis.tables import render_table
from repro.sim import configs as cfg

from _common import HEAVY_WORKLOADS, once, report, run_lineup

LATENCIES = (25, 16, 11, 9)
CORES = 32


def run():
    table = {}
    for name in HEAVY_WORKLOADS:
        lineup = run_lineup(
            name,
            CORES,
            [cfg.private(CORES)]
            + [cfg.monolithic(CORES, fixed_latency=lat) for lat in LATENCIES],
        )
        table[name] = {
            lat: lineup.speedup(f"monolithic-{lat}cc") for lat in LATENCIES
        }
    return table


def test_fig4_monolithic_access_latency(benchmark):
    table = once(benchmark, run)
    headers = ["workload"] + [f"Shared({lat}-cc)" for lat in LATENCIES]
    rows = [
        [name] + [table[name][lat] for lat in LATENCIES]
        for name in HEAVY_WORKLOADS
    ]
    avg = {
        lat: sum(table[n][lat] for n in HEAVY_WORKLOADS) / len(HEAVY_WORKLOADS)
        for lat in LATENCIES
    }
    rows.append(["average"] + [avg[lat] for lat in LATENCIES])
    report("fig04_monolithic_latency", render_table(headers, rows))

    # Monotone: lower access latency, higher speedup, per workload.
    for name in HEAVY_WORKLOADS:
        ordered = [table[name][lat] for lat in LATENCIES]
        assert ordered == sorted(ordered)
    # Access latency costs >= 8 points of speedup between the ideal 9cc
    # and the realistic 25cc (the paper's 10-15% dip; our shared TLB's
    # larger hit-rate benefit shifts the absolute level up, see
    # EXPERIMENTS.md).
    assert avg[9] - avg[25] >= 0.08
    assert min(table[n][25] for n in HEAVY_WORKLOADS) < 1.0
    assert avg[9] > 1.0
