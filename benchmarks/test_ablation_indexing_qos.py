"""Ablations of the shared-TLB extensions:

* **Slice indexing** (§III-A's "optimized indexing mechanisms"): the
  paper's modulo indexing collapses under power-of-two strides — the
  slice-hammer microbenchmark maps *every* access to one slice.  An
  XOR-fold hash spreads the same pattern across all slices and defuses
  the attack, at no cost on well-behaved workloads.
* **QoS way-partitioning** (the paper's stated future work for
  multiprogrammed interference): capping the ways any ASID may occupy
  per set protects a mix's victim applications from a thrashing
  neighbour.
"""

from dataclasses import replace

from repro.analysis.tables import render_table
from repro.sim import configs as cfg
from repro.sim.engine import simulate
from repro.workloads.microbench import build_slice_hammer

from _common import (
    ACCESSES,
    multiprog_workload,
    once,
    report,
    runner,
    workload,
)

CORES = 16


def run():
    # --- Indexing under the slice hammer -----------------------------
    hammer = build_slice_hammer(CORES, accesses_per_core=3_000)
    private_cycles = simulate(cfg.private(CORES), hammer).cycles
    index_rows = []
    for indexing in ("modulo", "xor-fold"):
        config = replace(
            cfg.nocstar(CORES), slice_indexing=indexing, name=indexing
        )
        result = simulate(config, hammer)
        intervals_config = replace(config, name=indexing)
        index_rows.append(
            [indexing, private_cycles / result.cycles]
        )

    # Indexing on a well-behaved workload: should be a wash.
    wl = workload("graph500", CORES, ACCESSES)
    base = simulate(cfg.private(CORES), wl)
    normal_rows = []
    for indexing in ("modulo", "xor-fold"):
        config = replace(
            cfg.nocstar(CORES), slice_indexing=indexing, name=indexing
        )
        normal_rows.append(
            [indexing, base.cycles / simulate(config, wl).cycles]
        )

    # --- QoS partitioning on a hostile mix ----------------------------
    mix = multiprog_workload(
        ("gups", "canneal", "olio", "nutch"), CORES, 3_000
    )
    qos_rows = []
    for quota, label in ((None, "no QoS"), (4, "quota 4"), (2, "quota 2")):
        config = replace(
            cfg.nocstar(CORES), qos_way_quota=quota, name=label
        )
        lineup = runner().run_prebuilt(mix, [cfg.private(CORES), config])
        result = lineup.results[label]
        apps = result.app_speedups_over(lineup.baseline)
        qos_rows.append(
            [label, result.speedup_over(lineup.baseline),
             min(apps.values()), min(apps, key=apps.get)]
        )
    return index_rows, normal_rows, qos_rows


def test_indexing_and_qos_ablations(benchmark):
    index_rows, normal_rows, qos_rows = once(benchmark, run)
    text = "\n\n".join(
        [
            "slice-hammer (strided attack):\n"
            + render_table(["indexing", "speedup vs private"], index_rows),
            "graph500 (well-behaved):\n"
            + render_table(["indexing", "speedup vs private"], normal_rows),
            "hostile 4-app mix (gups aggressor):\n"
            + render_table(
                ["policy", "throughput", "worst app", "victim"], qos_rows
            ),
        ]
    )
    report("ablation_indexing_qos", text)

    hammer = {name: s for name, s in index_rows}
    normal = {name: s for name, s in normal_rows}
    # XOR-fold defuses the strided attack decisively...
    assert hammer["xor-fold"] > hammer["modulo"] * 1.5
    # ...and costs nothing on a normal workload.
    assert abs(normal["xor-fold"] - normal["modulo"]) < 0.04

    qos = {label: (throughput, worst) for label, throughput, worst, _ in qos_rows}
    # Partitioning never breaks aggregate throughput badly and helps
    # (or at least does not hurt) the worst-off application.
    assert qos["quota 4"][0] > qos["no QoS"][0] - 0.05
    assert qos["quota 4"][1] >= qos["no QoS"][1] - 0.02
