"""Table III — sensitivity of the 32-core comparison to TLB
prefetching (+/-1, +/-1-2, +/-1-3), hyperthreading (SMT 1/2/4), and
page-table-walk latency (variable, fixed-10/20/40/80).

Paper: NOCSTAR's advantage survives every variation; prefetching
composes with it (+/-2 most effective); more hyperthreads raise TLB
pressure and shared TLBs gain; low fixed walk latency (10) narrows
everyone's gains (misses barely matter) while 80-cycle walks widen
them, with NOCSTAR ~13% over distributed.
"""

from dataclasses import replace

from repro.analysis.tables import render_table
from repro.sim import configs as cfg
from repro.sim.engine import simulate

from _common import FULL_SCALE, once, report, workload

CORES = 32
WORKLOAD_SET = (
    ("graph500", "canneal", "xsbench", "olio", "gups")
    if FULL_SCALE
    else ("graph500", "xsbench", "olio")
)
ACCESSES = 8_000 if FULL_SCALE else 4_000

ROWS = [
    ("no-pref / SMT1 / variable", {}),
    ("pref +/-1", {"prefetch_distances": (1,)}),
    ("pref +/-1,2", {"prefetch_distances": (1, 2)}),
    ("pref +/-1-3", {"prefetch_distances": (1, 2, 3)}),
    ("SMT 2", {"smt": 2}),
    ("SMT 4", {"smt": 4}),
    ("fixed-10 PTW", {"ptw_fixed": 10}),
    ("fixed-20 PTW", {"ptw_fixed": 20}),
    ("fixed-40 PTW", {"ptw_fixed": 40}),
    ("fixed-80 PTW", {"ptw_fixed": 80}),
]
CONFIGS = ("monolithic", "distributed", "nocstar")


def _build(scheme, cores, overrides):
    if scheme == "private":
        base = cfg.private(cores)
    elif scheme == "monolithic":
        base = cfg.monolithic(cores)
    elif scheme == "distributed":
        base = cfg.distributed(cores)
    else:
        base = cfg.nocstar(cores)
    return replace(base, **overrides)


def run():
    table = {}
    for row_name, options in ROWS:
        smt = options.get("smt", 1)
        overrides = {
            k: v for k, v in options.items() if k != "smt"
        }
        for name in WORKLOAD_SET:
            wl = workload(name, CORES, ACCESSES // smt, True, 11, smt)
            base = simulate(_build("private", CORES, overrides), wl)
            for scheme in CONFIGS:
                result = simulate(_build(scheme, CORES, overrides), wl)
                table[(row_name, scheme, name)] = (
                    base.cycles / result.cycles
                )
    return table


def test_table3_sensitivity(benchmark):
    table = once(benchmark, run)
    rows = []
    summary = {}
    for row_name, _ in ROWS:
        for scheme in CONFIGS:
            values = [
                table[(row_name, scheme, n)] for n in WORKLOAD_SET
            ]
            mn, avg, mx = min(values), sum(values) / len(values), max(values)
            summary[(row_name, scheme)] = avg
            rows.append([row_name, scheme, mn, avg, mx])
    report(
        "table3_sensitivity",
        render_table(["variation", "config", "min", "avg", "max"], rows),
    )

    for row_name, _ in ROWS:
        mono = summary[(row_name, "monolithic")]
        dist = summary[(row_name, "distributed")]
        noc = summary[(row_name, "nocstar")]
        # NOCSTAR on top in every single variation (the paper's point).
        assert noc > dist > mono, row_name
        assert noc > 1.0, row_name
    # Prefetching composes with NOCSTAR (never hurts its advantage much).
    assert (
        summary[("pref +/-1,2", "nocstar")]
        >= summary[("no-pref / SMT1 / variable", "nocstar")] - 0.05
    )
    # Fixed-10 walks narrow the gains; fixed-80 widens them.
    assert (
        summary[("fixed-80 PTW", "nocstar")]
        > summary[("fixed-10 PTW", "nocstar")]
    )
    # SMT raises TLB pressure: NOCSTAR remains profitable and widens
    # its margin over the other shared organisations (our model's
    # absolute SMT speedups sit below the paper's — see EXPERIMENTS.md).
    for smt_row in ("SMT 2", "SMT 4"):
        assert summary[(smt_row, "nocstar")] > 1.0
        assert (
            summary[(smt_row, "nocstar")]
            - summary[(smt_row, "distributed")]
            >= summary[("no-pref / SMT1 / variable", "nocstar")]
            - summary[("no-pref / SMT1 / variable", "distributed")]
            - 0.05
        )
