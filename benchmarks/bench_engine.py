"""Engine fast-path bench: batched drive loop vs the reference loop.

Standalone script (not a pytest bench): times one 64-core simulation
under the batched engine (segment-compiled L1 hits + RouteCache) and
under the ``REPRO_REFERENCE_ENGINE=1`` reference loop, prints both,
and writes the machine-readable ``BENCH_engine.json`` artefact under
``benchmarks/results/`` (override with argv[1]).

    PYTHONPATH=src python benchmarks/bench_engine.py [out.json]

The script is a perf regression gate: it asserts the batched engine is
at least ``MIN_SPEEDUP`` times faster than the reference on the
64-core scenario, and — because speed means nothing if the bits drift
— that both engines produce byte-identical results.  ``make
bench-engine-smoke`` runs it as part of ``make verify``.
"""

from __future__ import annotations

import json
import os
import sys
import time

from repro.exec.cache import canonical_json
from repro.noc.route_cache import REFERENCE_ENV
from repro.analysis.tables import render_table
from repro.sim import configs as cfg
from repro.sim.scenario import RunUnit
from repro.workloads.registry import get_workload

CORES = 64
ACCESSES = 4_000
WORKLOAD = "graph500"
CONFIG = "monolithic-smart"
SEED = 3
REPEATS = 3
#: The perf guard: batched must beat the reference by this factor on
#: the 64-core scenario (measured headroom is ~1.6x).
MIN_SPEEDUP = 1.5

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")


def _unit() -> RunUnit:
    return RunUnit(
        config=cfg.build_config(CONFIG, CORES),
        workload=get_workload(WORKLOAD),
        accesses_per_core=ACCESSES,
        seed=SEED,
    )


def _run_once(reference: bool):
    """One timed execute under the requested engine."""
    if reference:
        os.environ[REFERENCE_ENV] = "1"
    else:
        os.environ.pop(REFERENCE_ENV, None)
    try:
        unit = _unit()
        start = time.perf_counter()
        result = unit.execute()
        return time.perf_counter() - start, result
    finally:
        os.environ.pop(REFERENCE_ENV, None)


def main(argv) -> int:
    _unit().build_workload()  # lru-cached: exclude the build from timing
    _run_once(reference=False)  # warm caches (routes, compiled cores)
    _run_once(reference=True)
    # Interleave the samples so CPU frequency drift hits both engines
    # alike; compare best against best.
    reference_samples = []
    batched_samples = []
    for _ in range(REPEATS):
        seconds, reference_result = _run_once(reference=True)
        reference_samples.append(seconds)
        seconds, batched_result = _run_once(reference=False)
        batched_samples.append(seconds)
    reference_best = min(reference_samples)
    batched_best = min(batched_samples)
    speedup = reference_best / batched_best

    print(
        render_table(
            ["engine", "best (s)", "samples (s)"],
            [
                ["reference", reference_best,
                 " ".join(f"{s:.3f}" for s in reference_samples)],
                ["batched", batched_best,
                 " ".join(f"{s:.3f}" for s in batched_samples)],
                ["speedup", speedup, ""],
            ],
            precision=3,
        )
    )

    assert canonical_json(batched_result) == canonical_json(
        reference_result
    ), "batched and reference engines disagree — fast path is not pure"
    assert speedup >= MIN_SPEEDUP, (
        f"batched engine only {speedup:.2f}x faster than reference "
        f"(perf guard requires >= {MIN_SPEEDUP}x on the "
        f"{CORES}-core {CONFIG}/{WORKLOAD} scenario)"
    )

    out = argv[1] if len(argv) > 1 else os.path.join(
        RESULTS_DIR, "BENCH_engine.json"
    )
    payload = {
        "config": CONFIG,
        "workload": WORKLOAD,
        "cores": CORES,
        "accesses_per_core": ACCESSES,
        "seed": SEED,
        "cycles": batched_result.cycles,
        "batched_seconds": batched_best,
        "batched_samples": batched_samples,
        "reference_seconds": reference_best,
        "reference_samples": reference_samples,
        "speedup": speedup,
        "min_speedup": MIN_SPEEDUP,
    }
    directory = os.path.dirname(out)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(out, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
