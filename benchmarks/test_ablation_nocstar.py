"""Ablations of NOCSTAR's own design choices (beyond the paper's
figures): HPCmax pipelining, area-normalised slice size, and the
OoO-overlap modelling knob.

* **HPCmax** (§III-B3): when the chip doesn't fit in one cycle,
  pipeline latches split the traversal.  Speedup should degrade
  gracefully as HPCmax shrinks — and even HPCmax=2 must stay clearly
  ahead of the multi-hop distributed baseline.
* **Slice size** (Table II): the paper shaves slices to 920 entries to
  pay for the interconnect.  The ablation quantifies what that 10%
  capacity actually costs.
* **Translation overlap**: the model hides a fraction of access latency
  behind OoO execution (DESIGN.md); the paper's config ordering must
  hold across the plausible range of that knob.
"""

from dataclasses import replace

from repro.analysis.tables import render_table
from repro.core.config import NocstarConfig
from repro.sim import configs as cfg
from repro.sim.engine import simulate

from _common import ACCESSES, once, report, workload

CORES = 64
WORKLOAD = "xsbench"


def run():
    wl = workload(WORKLOAD, CORES, ACCESSES)
    base = simulate(cfg.private(CORES), wl)
    dist = simulate(cfg.distributed(CORES), wl)

    hpc_rows = []
    for hpc in (1, 2, 4, 8, 16):
        config = cfg.nocstar(CORES, config=NocstarConfig(hpc_max=hpc))
        result = simulate(replace(config, name=f"hpc{hpc}"), wl)
        hpc_rows.append([hpc, base.cycles / result.cycles])

    size_rows = []
    for entries in (512, 768, 920, 1024):
        config = replace(
            cfg.nocstar(CORES), entries_per_core=entries, name=f"s{entries}"
        )
        result = simulate(config, wl)
        size_rows.append([entries, base.cycles / result.cycles])

    overlap_rows = []
    for overlap in (0.0, 0.45, 0.7):
        speedups = {}
        for scheme, factory in (
            ("monolithic", cfg.monolithic),
            ("distributed", cfg.distributed),
            ("nocstar", cfg.nocstar),
        ):
            b = simulate(
                replace(cfg.private(CORES), translation_overlap=overlap), wl
            )
            r = simulate(
                replace(factory(CORES), translation_overlap=overlap), wl
            )
            speedups[scheme] = b.cycles / r.cycles
        overlap_rows.append(
            [overlap, speedups["monolithic"], speedups["distributed"],
             speedups["nocstar"]]
        )
    dist_speedup = base.cycles / dist.cycles
    return hpc_rows, size_rows, overlap_rows, dist_speedup


def test_nocstar_design_ablations(benchmark):
    hpc_rows, size_rows, overlap_rows, dist_speedup = once(benchmark, run)
    text = "\n\n".join(
        [
            render_table(["HPCmax", "speedup"], hpc_rows),
            render_table(["slice entries", "speedup"], size_rows),
            render_table(
                ["overlap", "monolithic", "distributed", "nocstar"],
                overlap_rows,
            ),
            f"distributed baseline speedup: {dist_speedup:.3f}",
        ]
    )
    report("ablation_nocstar", text)

    # HPCmax: monotone (more reach never hurts) and saturating; even
    # heavily pipelined NOCSTAR beats the multi-hop distributed mesh.
    speedups = [row[1] for row in hpc_rows]
    assert all(b >= a - 0.01 for a, b in zip(speedups, speedups[1:]))
    assert speedups[-1] - speedups[2] < 0.05  # saturates by HPC 4-8
    assert speedups[1] > dist_speedup  # HPCmax=2 still wins

    # Slice size: capacity helps monotonically, but the 920 vs 1024
    # area-normalisation costs only a sliver (the paper's bet).
    sizes = {entries: s for entries, s in size_rows}
    assert sizes[512] <= sizes[1024] + 0.01
    assert sizes[1024] - sizes[920] < 0.03

    # Overlap knob: the paper's ordering is robust across the range.
    for _, mono, dist, noc in overlap_rows:
        assert noc > dist > mono
