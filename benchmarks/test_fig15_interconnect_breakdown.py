"""Fig 15 — teasing apart distribution vs interconnect (32-core):
monolithic over a multi-hop mesh, monolithic over SMART, distributed,
NOCSTAR, NOCSTAR with a contention-free network, and the
zero-interconnect-latency ideal.

Paper: both monolithic variants degrade on average (even SMART can't
save the big SRAM); distributing the slices helps (~+5%); NOCSTAR does
better still, runs within a whisker of its own contention-free variant
(latencies average 1-3 cycles), and lands within 95% of ideal.
"""

from repro.analysis.tables import render_table
from repro.sim import configs as cfg

from _common import HEAVY_WORKLOADS, once, report, run_lineup

CORES = 32
CONFIG_NAMES = (
    "monolithic-mesh",
    "monolithic-smart",
    "distributed",
    "nocstar",
    "nocstar-ideal",
    "ideal",
)


def run():
    table = {}
    retries = {}
    for name in HEAVY_WORKLOADS:
        lineup = run_lineup(
            name,
            CORES,
            [
                cfg.private(CORES),
                cfg.monolithic(CORES),
                cfg.monolithic(CORES, noc="smart"),
                cfg.distributed(CORES),
                cfg.nocstar(CORES),
                cfg.nocstar_ideal(CORES),
                cfg.ideal(CORES),
            ],
        )
        table[name] = lineup.speedups()
        retries[name] = lineup.results["nocstar"].network[
            "mean_setup_retries"
        ]
    return table, retries


def test_fig15_interconnect_breakdown(benchmark):
    table, retries = once(benchmark, run)
    rows = [
        [name] + [table[name][c] for c in CONFIG_NAMES] + [retries[name]]
        for name in HEAVY_WORKLOADS
    ]
    avg = {
        c: sum(table[n][c] for n in HEAVY_WORKLOADS) / len(HEAVY_WORKLOADS)
        for c in CONFIG_NAMES
    }
    rows.append(["average"] + [avg[c] for c in CONFIG_NAMES] + [""])
    report(
        "fig15_interconnect_breakdown",
        render_table(["workload"] + list(CONFIG_NAMES) + ["retries"], rows),
    )

    # Monolithic degrades even with SMART; distribution helps; NOCSTAR
    # does better; contention costs NOCSTAR almost nothing.
    assert avg["monolithic-mesh"] < 1.0
    assert avg["monolithic-smart"] < avg["distributed"] + 0.03
    assert avg["distributed"] < avg["nocstar"]
    assert avg["nocstar"] >= avg["nocstar-ideal"] - 0.02
    assert avg["nocstar"] / avg["ideal"] >= 0.95
    # Fig 15's supporting claim: NOCSTAR latencies are 1-3 cycles,
    # i.e. almost no setup retries on real traffic.
    assert all(r < 1.0 for r in retries.values())
