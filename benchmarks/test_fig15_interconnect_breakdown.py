"""Fig 15 — teasing apart distribution vs interconnect (32-core):
monolithic over a multi-hop mesh, monolithic over SMART, distributed,
NOCSTAR, NOCSTAR with a contention-free network, and the
zero-interconnect-latency ideal.

Paper: both monolithic variants degrade on average (even SMART can't
save the big SRAM); distributing the slices helps (~+5%); NOCSTAR does
better still, runs within a whisker of its own contention-free variant
(latencies average 1-3 cycles), and lands within 95% of ideal.

The experiment grid is the shared ``fig15`` campaign spec
(``repro.experiments.campaigns``); this bench renders the campaign's
speedup + setup-retry tables in the paper's layout and asserts the
qualitative shape.
"""

from repro.analysis.tables import render_table

from _common import bench_campaign, once, report

CONFIG_NAMES = (
    "monolithic-mesh",
    "monolithic-smart",
    "distributed",
    "nocstar",
    "nocstar-ideal",
    "ideal",
)


def run():
    return bench_campaign("fig15")


def test_fig15_interconnect_breakdown(benchmark):
    result = once(benchmark, run)
    workloads = result.scale.workloads
    table = {name: {} for name in workloads}
    for row in result.tables["speedups"]:
        table[row["workload"]][row["config"]] = row["speedup"]
    retries = {
        row["workload"]: row["mean_setup_retries"]
        for row in result.tables["setup_retries"]
    }
    avg = {c: result.summary[f"speedup_avg.{c}"] for c in CONFIG_NAMES}
    rows = [
        [name] + [table[name][c] for c in CONFIG_NAMES] + [retries[name]]
        for name in workloads
    ]
    rows.append(["average"] + [avg[c] for c in CONFIG_NAMES] + [""])
    report(
        "fig15_interconnect_breakdown",
        render_table(["workload"] + list(CONFIG_NAMES) + ["retries"], rows),
    )

    # Monolithic degrades even with SMART; distribution helps; NOCSTAR
    # does better; contention costs NOCSTAR almost nothing.
    assert avg["monolithic-mesh"] < 1.0
    assert avg["monolithic-smart"] < avg["distributed"] + 0.03
    assert avg["distributed"] < avg["nocstar"]
    assert avg["nocstar"] >= avg["nocstar-ideal"] - 0.02
    assert avg["nocstar"] / avg["ideal"] >= 0.95
    # Fig 15's supporting claim: NOCSTAR latencies are 1-3 cycles,
    # i.e. almost no setup retries on real traffic.
    assert result.summary["setup_retries.max"] < 1.0
