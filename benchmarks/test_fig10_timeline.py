"""Fig 10 — timeline of one virtual address translation that misses the
L1 TLB and hits a remote L2 TLB slice in NOCSTAR.

Paper: L1 miss at cycle 0; request path setup cycle 1; single-cycle
traversal cycle 2; slice access cycles 3-12; response path set up
speculatively during the lookup; single-cycle response traversal;
insert at cycle 13.
"""

from repro.analysis.tables import render_table
from repro.sim import configs as cfg
from repro.sim.system import System
from repro.vm.address import PAGE_4K

from _common import once, report


def run():
    timeline = []
    system = System(
        cfg.nocstar(16, translation_overlap=0.0), timeline=timeline
    )
    # Translation homed on the far-corner slice, already resident (hit).
    page = 15
    system.shared_l2.insert_page_number(1, PAGE_4K, page)
    stall = system.l2_transaction(0, 1, PAGE_4K, page, now=0)
    return timeline, stall


def test_fig10_translation_timeline(benchmark):
    timeline, stall = once(benchmark, run)
    rows = [[kind, start, end] for kind, start, end in timeline]
    rows.append(["total (L1-miss stall)", 0, stall])
    report(
        "fig10_timeline",
        render_table(["phase", "start", "end"], rows, precision=0),
    )

    phases = {kind: (start, end) for kind, start, end in timeline}
    request = phases["request-network"]
    lookup = phases["slice-lookup"]
    response = phases["response-network"]
    # Setup + single-cycle traversal: request lands two cycles after the
    # miss (Fig 10's cycles 1 and 2).
    assert request == (0, 2)
    # Slice lookup takes the slice SRAM latency right after arrival.
    assert lookup[0] == 2
    assert lookup[1] - lookup[0] == 9
    # Response path setup is speculative: traversal is a single cycle.
    assert response[1] - response[0] == 1
    # End-to-end: ~12-13 cycles, matching Fig 10's insert at cycle 13.
    assert 11 <= stall <= 14
