"""Shared infrastructure for the paper-reproduction benches.

Every bench regenerates one table or figure of the paper: it runs the
relevant simulations, prints the same rows/series the paper reports,
and asserts the qualitative shape.  Scale is controlled by
``REPRO_BENCH_FULL=1`` (paper-scale runs) versus the default reduced
scale that keeps the full bench suite in the tens of minutes.

Workload builds are cached per (name, cores, accesses, superpages,
seed, smt) so the many configurations of one figure reuse one trace.

Execution goes through ``repro.exec.Runner``: set ``REPRO_BENCH_JOBS=N``
to fan a lineup's simulations over N worker processes, and
``REPRO_BENCH_CACHE=<dir>`` to memoise results in a content-addressed
cache so re-running a bench suite only simulates what changed.
"""

from __future__ import annotations

import os
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exec.runner import Runner
from repro.experiments import get_campaign, run_campaign
from repro.experiments.campaigns import (
    FULL_ACCESSES,
    REDUCED_ACCESSES,
    REDUCED_WORKLOADS,
)
from repro.experiments.campaigns import SEED as CAMPAIGN_SEED
from repro.sim import configs as cfg
from repro.sim.engine import ShootdownTraffic, StormConfig, simulate
from repro.sim.run import Comparison
from repro.workloads.generators import build_multiprogrammed, build_multithreaded
from repro.workloads.registry import WORKLOAD_NAMES, WORKLOADS, get_workload

FULL_SCALE = os.environ.get("REPRO_BENCH_FULL", "") == "1"
#: Worker processes per lineup (1 = serial, the default).
BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1") or "1")
#: Directory of the content-addressed result cache ("" disables).
BENCH_CACHE = os.environ.get("REPRO_BENCH_CACHE", "") or None

#: The campaign scale this bench run reproduces.  The figure benches
#: and `repro experiments run` share one definition of each operating
#: point (repro.experiments.campaigns), so the numbers in
#: EXPERIMENTS.md, the drift-gate pins, and the bench tables can never
#: drift apart.
BENCH_SCALE = "full" if FULL_SCALE else "reduced"

#: Accesses per core for the standard per-workload figures.
ACCESSES = FULL_ACCESSES if FULL_SCALE else REDUCED_ACCESSES
#: Reduced workload roster for the heaviest sweeps.
HEAVY_WORKLOADS = (
    list(WORKLOAD_NAMES) if FULL_SCALE else list(REDUCED_WORKLOADS)
)
SEED = CAMPAIGN_SEED


@lru_cache(maxsize=64)
def workload(
    name: str,
    cores: int,
    accesses: int = ACCESSES,
    superpages: bool = True,
    seed: int = SEED,
    smt: int = 1,
):
    return build_multithreaded(
        get_workload(name),
        cores,
        accesses_per_core=accesses,
        seed=seed,
        superpages=superpages,
        smt=smt,
    )


@lru_cache(maxsize=32)
def multiprog_workload(
    names: Tuple[str, ...],
    cores: int,
    accesses: int,
    seed: int = SEED,
):
    specs = tuple(WORKLOADS[name] for name in names)
    return build_multiprogrammed(
        specs, cores, accesses_per_core=accesses, seed=seed
    )


def runner() -> Runner:
    """A Runner honouring the bench environment knobs."""
    return Runner(jobs=BENCH_JOBS, cache_dir=BENCH_CACHE)


def campaign(name: str):
    """The shared campaign spec for one figure (repro.experiments)."""
    return get_campaign(name)


def bench_campaign(name: str):
    """Run one figure's campaign at the bench scale.

    The figure benches are thin consumers of the campaign specs: the
    grid (workloads x cores x configs x accesses x seed) lives in
    ``repro.experiments.campaigns``, execution honours the bench env
    knobs via :func:`runner`, and the returned
    :class:`~repro.experiments.CampaignRun` carries the tidy tables and
    summary metrics the bench renders and asserts on.
    """
    return run_campaign(name, scale=BENCH_SCALE, runner=runner())


def lineup(names: Sequence[str], cores: int) -> List[cfg.SystemConfig]:
    """Build configurations from the registry (``cfg.register_config``)."""
    return [cfg.build_config(name, cores) for name in names]


def run_lineup(
    name: str,
    cores: int,
    configurations: Sequence[cfg.SystemConfig],
    accesses: int = ACCESSES,
    superpages: bool = True,
    **simulate_kwargs,
) -> Comparison:
    wl = workload(name, cores, accesses, superpages)
    return runner().run_prebuilt(wl, configurations, **simulate_kwargs)


def once(benchmark, fn):
    """Run a whole-experiment function exactly once under
    pytest-benchmark (simulations are far too heavy for repeated
    rounds; the bench's product is the printed table)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def report(name: str, text: str) -> None:
    """Print a bench's paper-style table and persist it under
    ``benchmarks/results/<name>.txt`` so the artefact survives output
    capture."""
    banner = "=" * 72
    print(f"\n{banner}\n{name}\n{banner}\n{text}")
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as fh:
        fh.write(text + "\n")
