"""Fig 17 — page-table walks at the requesting core vs at the remote
core that owns the missing slice.

Paper: remote walks avoid the miss message but pollute the remote
core's caches and can congest its walkers; walking at the requesting
core is slightly better.
"""

from repro.analysis.tables import render_table
from repro.sim import configs as cfg
from repro.sim.engine import simulate

from _common import ACCESSES, FULL_SCALE, once, report, workload

WORKLOAD_SET = ("canneal", "graph500", "gups", "xsbench")
CORE_COUNTS = (16, 32, 64) if FULL_SCALE else (16, 32)


def run():
    table = {}
    for cores in CORE_COUNTS:
        for name in WORKLOAD_SET:
            wl = workload(name, cores, ACCESSES)
            base = simulate(cfg.private(cores), wl)
            for policy in (cfg.PTW_REQUESTER, cfg.PTW_REMOTE):
                result = simulate(
                    cfg.nocstar(cores, ptw_policy=policy), wl
                )
                table[(cores, name, policy)] = base.cycles / result.cycles
    return table


def test_fig17_ptw_placement(benchmark):
    table = once(benchmark, run)
    rows = []
    averages = {}
    for cores in CORE_COUNTS:
        for policy, label in ((cfg.PTW_REQUESTER, "Request"),
                              (cfg.PTW_REMOTE, "Remote")):
            values = [table[(cores, n, policy)] for n in WORKLOAD_SET]
            avg = sum(values) / len(values)
            averages[(cores, policy)] = avg
            rows.append([f"{cores}-core", label] + values + [avg])
    report(
        "fig17_ptw_placement",
        render_table(["system", "walk at"] + list(WORKLOAD_SET) + ["avg"],
                     rows),
    )

    for cores in CORE_COUNTS:
        requester = averages[(cores, cfg.PTW_REQUESTER)]
        remote = averages[(cores, cfg.PTW_REMOTE)]
        # Requesting-core walks win, but only slightly (both stay
        # profitable configurations).
        assert requester >= remote
        assert requester - remote < 0.25
        assert remote > 0.95
