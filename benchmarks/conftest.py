"""Bench-suite fixtures."""

import pytest


@pytest.fixture(autouse=True)
def _announce(request):
    """Print a separator per bench so -s output is readable."""
    yield
