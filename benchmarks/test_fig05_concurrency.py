"""Fig 5 — distribution of concurrent shared L2 TLB accesses (32-core).

Paper: more than 40% of shared L2 accesses occur in isolation, and
another 20-30% overlap with only 2-4 other outstanding accesses —
concurrent accesses are rare, which is the licence for a low-bandwidth,
latency-optimised interconnect.
"""

from repro.analysis.contention import (
    concurrency_distribution,
    merge_distributions,
)
from repro.analysis.tables import render_distribution
from repro.sim import configs as cfg
from repro.sim.engine import simulate

from _common import ACCESSES, HEAVY_WORKLOADS, once, report, workload

CORES = 32


def run():
    distributions = {}
    for name in HEAVY_WORKLOADS:
        result = simulate(
            cfg.distributed(CORES),
            workload(name, CORES, ACCESSES),
            record_intervals=True,
        )
        distributions[name] = concurrency_distribution(result.intervals)
    distributions["average"] = merge_distributions(
        [distributions[n] for n in HEAVY_WORKLOADS]
    )
    return distributions


def test_fig5_concurrent_accesses(benchmark):
    distributions = once(benchmark, run)
    text = "\n".join(
        render_distribution(name, dist)
        for name, dist in distributions.items()
    )
    report("fig05_concurrency", text)

    avg = distributions["average"]
    # Low-concurrency accesses dominate: the 1 acc + 2-4 acc buckets
    # carry the distribution, and deep concurrency is rare.
    assert avg["1 acc"] + avg["2-4 acc"] > 0.55
    # Our calibrated workloads carry higher L1 miss rates than real
    # Haswell, so fewer accesses are fully isolated than the paper's
    # >40% — but deep concurrency stays rare, which is the property the
    # NOCSTAR design rests on (see EXPERIMENTS.md).
    assert avg["1 acc"] > 0.03
    deep = sum(v for k, v in avg.items() if k not in ("1 acc", "2-4 acc", "5-8 acc"))
    assert deep < 0.25
