"""Fault-injection degradation bench: speedup vs fault rate.

Standalone script (not a pytest bench): runs the ``repro.faults``
degradation sweep on the NOCSTAR configuration, prints the curve, and
writes the machine-readable ``BENCH_faults.json`` artefact under
``benchmarks/results/`` (override with argv[1]).

    PYTHONPATH=src python benchmarks/bench_faults.py [out.json]

Scale knobs follow the bench suite: ``REPRO_BENCH_FULL=1`` runs the
paper-scale sweep, ``REPRO_BENCH_JOBS``/``REPRO_BENCH_CACHE`` select
parallelism and result caching.  The script asserts the two properties
the fault subsystem guarantees by construction — the rate-0 point is
exactly the fault-free run, and cycles degrade monotonically with the
(nested-sampled) fault rate — so it doubles as a coarse regression
gate.
"""

from __future__ import annotations

import json
import os
import sys

from _common import FULL_SCALE, runner
from repro.analysis.tables import render_table
from repro.faults.models import ArbiterDrop, FaultSpec, LinkFailure
from repro.sim import configs as cfg
from repro.sim.scenario import Scenario

CORES = 16 if FULL_SCALE else 8
ACCESSES = 12_000 if FULL_SCALE else 3_000
WORKLOAD = "graph500"
SEED = 11
RATES = (0.0, 0.02, 0.05, 0.1, 0.2) if FULL_SCALE else (0.0, 0.05, 0.15)
#: Arbiter drop probability per setup attempt = rate * this factor.
DROP_FACTOR = 0.5

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")


def sweep():
    config = cfg.nocstar(CORES)
    run = runner()
    points = []
    for rate in RATES:
        faults = None
        if rate > 0.0:
            faults = FaultSpec(
                links=LinkFailure(rate=rate),
                arbiter=ArbiterDrop(probability=min(1.0, rate * DROP_FACTOR)),
            )
        scenario = Scenario(
            configurations=config,
            workloads=WORKLOAD,
            accesses_per_core=ACCESSES,
            seed=SEED,
            baseline_name=config.name,
            faults=faults,
        )
        result = run.run_one(scenario).results[config.name]
        points.append(
            {
                "rate": rate,
                "cycles": result.cycles,
                "faults": result.faults or {},
            }
        )
    baseline = points[0]["cycles"]
    for point in points:
        point["speedup"] = baseline / point["cycles"]
    return points


def main(argv) -> int:
    points = sweep()
    rows = [
        [
            f"{p['rate']:g}",
            p["cycles"],
            p["speedup"],
            p["faults"].get("arbiter_drops", 0),
            p["faults"].get("fallback_messages", 0),
            p["faults"].get("degraded_walks", 0),
        ]
        for p in points
    ]
    print(
        render_table(
            ["fault rate", "cycles", "speedup", "drops", "fallbacks",
             "degraded"],
            rows,
            precision=3,
        )
    )

    assert points[0]["rate"] == 0.0 and points[0]["faults"] == {}, (
        "rate-0 point must be the fault-free run"
    )
    cycles = [p["cycles"] for p in points]
    assert cycles == sorted(cycles), (
        f"degradation must be monotone in the fault rate, got {cycles}"
    )

    out = argv[1] if len(argv) > 1 else os.path.join(
        RESULTS_DIR, "BENCH_faults.json"
    )
    payload = {
        "config": "nocstar",
        "workload": WORKLOAD,
        "cores": CORES,
        "accesses_per_core": ACCESSES,
        "seed": SEED,
        "drop_factor": DROP_FACTOR,
        "points": points,
    }
    directory = os.path.dirname(out)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(out, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
