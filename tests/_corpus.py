"""Shared scenario-corpus builders for determinism/differential suites.

Two suites exercise the same kind of byte-identity contract — the fault
determinism tests (serial vs parallel vs cache-replayed execution) and
the engine differential tests (batched fast path vs the
``REPRO_REFERENCE_ENGINE=1`` reference loop).  Both need small, cheap,
*diverse* scenarios; this module is their single source so coverage
decisions (which interconnects, which pathological traffic, which
observability combinations) live in one place.
"""

import json

from repro.core.config import ROUND_TRIP, NocstarConfig
from repro.faults.models import ArbiterDrop, FaultPlan, FaultSpec, LinkFailure
from repro.sim import configs as cfg
from repro.sim.engine import ShootdownTraffic, StormConfig
from repro.sim.scenario import Scenario


def faulty_scenario(**overrides):
    """The fault-determinism suite's canonical lineup scenario."""
    base = dict(
        configurations=(cfg.nocstar(8), cfg.distributed(8)),
        workloads=("gups", "olio"),
        accesses_per_core=400,
        seed=7,
        baseline_name="nocstar",
        metrics=True,
        trace=True,
        faults=FaultSpec(
            links=LinkFailure(rate=0.1),
            arbiter=ArbiterDrop(probability=0.05),
        ),
    )
    base.update(overrides)
    return Scenario(**base)


def canonical_comparisons(comparisons):
    """Byte-stable rendering of every run's observable output."""
    blob = {}
    for workload, comparison in sorted(comparisons.items()):
        for config, result in sorted(comparison.results.items()):
            blob[f"{config}/{workload}"] = {
                "cycles": result.cycles,
                "faults": result.faults,
                "metrics": result.metrics,
                "trace": result.trace,
            }
    return json.dumps(blob, sort_keys=True)


def _single(name, config, workload, **overrides):
    base = dict(
        configurations=(config,),
        workloads=(workload,),
        accesses_per_core=400,
        seed=13,
        baseline_name=config.name,
    )
    base.update(overrides)
    return name, Scenario(**base)


def differential_corpus():
    """``(name, Scenario)`` pairs for batched-vs-reference comparison.

    Spans every interconnect model, faults on/off, metrics/trace on/off,
    the pathological-traffic workloads (context-switch storms and
    shootdown trains, which force the reference drive loop in both
    engines but still cross the route-cache dispatch), and the
    replacement-policy/arbitration axis (arc/twoq L2 slices and the
    priority arbiter must stay byte-identical across engines, job
    counts, and cache replay like everything else).
    """
    pinned_faults = FaultPlan(
        num_tiles=8, failed_links=((0, 1),)
    )
    return [
        _single("private-gups", cfg.private(8), "gups"),
        _single("monolithic-mesh", cfg.monolithic(8), "graph500"),
        _single(
            "monolithic-smart",
            cfg.build_config("monolithic-smart", 8),
            "graph500",
        ),
        _single("distributed-mesh", cfg.distributed(8), "canneal"),
        _single(
            "distributed-bus", cfg.build_config("distributed-bus", 8), "gups"
        ),
        _single(
            "distributed-fbfly-wide",
            cfg.build_config("distributed-fbfly-wide", 8),
            "olio",
        ),
        _single(
            "distributed-fbfly-narrow",
            cfg.build_config("distributed-fbfly-narrow", 8),
            "xsbench",
        ),
        _single("nocstar-one-way", cfg.nocstar(8), "graph500"),
        _single(
            "nocstar-round-trip",
            cfg.nocstar(8, config=NocstarConfig(acquire=ROUND_TRIP)),
            "gups",
        ),
        _single("nocstar-ideal", cfg.build_config("nocstar-ideal", 8), "olio"),
        _single("ideal", cfg.ideal(8), "canneal"),
        _single(
            "nocstar-observed",
            cfg.nocstar(8),
            "graph500",
            metrics=True,
            trace=True,
        ),
        _single(
            "distributed-pinned-fault-observed",
            cfg.distributed(8),
            "gups",
            faults=pinned_faults,
            metrics=True,
        ),
        _single(
            "nocstar-fault-spec",
            cfg.nocstar(8),
            "olio",
            faults=FaultSpec(
                links=LinkFailure(rate=0.1),
                arbiter=ArbiterDrop(probability=0.05),
            ),
        ),
        _single(
            "nocstar-storm",
            cfg.nocstar(8),
            "gups",
            storm=StormConfig(period=4000),
            metrics=True,
            trace=True,
        ),
        _single(
            "distributed-shootdown",
            cfg.distributed(8),
            "olio",
            shootdown=ShootdownTraffic(period=3000, initiators=2),
        ),
        _single(
            "distributed-arc", cfg.build_config("distributed-arc", 8), "gups"
        ),
        _single(
            "nocstar-twoq",
            cfg.build_config("nocstar-twoq", 8),
            "graph500",
            metrics=True,
            trace=True,
        ),
        _single(
            "nocstar-prio", cfg.build_config("nocstar-prio", 8), "olio"
        ),
        _single("private-twoq", cfg.private(8, policy="twoq"), "canneal"),
        _single(
            "monolithic-arc-shootdown",
            cfg.monolithic(8, policy="arc"),
            "xsbench",
            shootdown=ShootdownTraffic(period=3000, initiators=2),
        ),
    ]
