"""QoS way-partitioning (the paper's future-work interference fix)."""

from repro.tlb.set_assoc import SetAssociativeTLB
from repro.vm.address import PAGE_4K


def make(quota=None):
    tlb = SetAssociativeTLB(8, 8)  # one set, 8 ways
    tlb.way_quota = quota
    return tlb


def test_no_quota_allows_monopoly():
    tlb = make()
    for pn in range(8):
        tlb.insert(1, PAGE_4K, pn * 1)  # all same set
    assert sum(1 for k in tlb.iter_keys() if k[0] == 1) == 8


def test_quota_caps_one_asid():
    tlb = make(quota=4)
    for pn in range(16):
        tlb.insert(1, PAGE_4K, pn)
    own = [k for k in tlb.iter_keys() if k[0] == 1]
    assert len(own) == 4


def test_quota_evicts_own_lru_not_victims():
    tlb = make(quota=4)
    for pn in range(4):
        tlb.insert(2, PAGE_4K, 100 + pn)  # the protected tenant
    for pn in range(20):
        tlb.insert(1, PAGE_4K, pn)  # the aggressor
    # The protected ASID keeps all four entries.
    assert all(tlb.probe(2, PAGE_4K, 100 + pn) for pn in range(4))
    # The aggressor holds exactly its quota.
    assert sum(1 for k in tlb.iter_keys() if k[0] == 1) == 4


def test_quota_evicted_key_is_returned():
    tlb = make(quota=2)
    tlb.insert(1, PAGE_4K, 0)
    tlb.insert(1, PAGE_4K, 1)
    evicted = tlb.insert(1, PAGE_4K, 2)
    assert evicted == (1, PAGE_4K, 0)


def test_below_quota_uses_global_lru():
    tlb = make(quota=6)
    for pn in range(4):
        tlb.insert(1, PAGE_4K, pn)
    for pn in range(4):
        tlb.insert(2, PAGE_4K, 100 + pn)
    # Set is full (8); ASID 2 under quota inserts again -> global LRU
    # (ASID 1's oldest) goes.
    tlb.insert(2, PAGE_4K, 104)
    assert not tlb.probe(1, PAGE_4K, 0)


def test_quota_with_system_config():
    from repro.sim import configs as cfg
    from repro.sim.system import System

    system = System(cfg.nocstar(4, qos_way_quota=2))
    assert all(s.way_quota == 2 for s in system.shared_l2.shards)


def test_quota_validation():
    import pytest
    from repro.sim import configs as cfg

    with pytest.raises(ValueError):
        cfg.nocstar(4, qos_way_quota=0)
