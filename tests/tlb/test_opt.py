"""Offline Belady bound: dominance, exactness, and stream invariants."""

from dataclasses import replace

import pytest

from repro.sim import configs as cfg
from repro.tlb.opt import (
    OPT,
    canonical_stream,
    offline_policy_eval,
    pct_of_opt,
    structure_for,
)
from repro.tlb.policies import POLICY_NAMES
from repro.vm.address import PAGE_1G, PAGE_4K
from repro.workloads.generators import build_multithreaded
from repro.workloads.registry import get_workload
from repro.workloads.trace import Workload


def _workload_from_pages(pages, name="hand"):
    """Single-core single-stream 4K workload from a page-number list."""
    records = [(0, 1, PAGE_4K, page) for page in pages]
    return Workload(name=name, traces=[[records]], seed=0, superpages=False)


def _tiny_config(entries=4, ways=4):
    """A 1-core private config: one shard, one set — pure policy play."""
    return replace(cfg.private(1), entries_per_core=entries, l2_ways=ways)


# ---------------------------------------------------------------------------
# canonical stream


def test_canonical_stream_round_robins_cores():
    wl = Workload(
        name="rr",
        traces=[
            [[(0, 1, PAGE_4K, 10), (0, 1, PAGE_4K, 11)]],
            [[(0, 2, PAGE_4K, 20)]],
        ],
        seed=0,
        superpages=False,
    )
    assert canonical_stream(wl) == [
        (0, 1, PAGE_4K, 10),
        (1, 2, PAGE_4K, 20),
        (0, 1, PAGE_4K, 11),
    ]


def test_canonical_stream_merges_smt_streams():
    wl = Workload(
        name="smt",
        traces=[[
            [(0, 1, PAGE_4K, 1), (0, 1, PAGE_4K, 2)],
            [(0, 1, PAGE_4K, 7)],
        ]],
        seed=0,
        superpages=False,
    )
    assert canonical_stream(wl) == [
        (0, 1, PAGE_4K, 1),
        (0, 1, PAGE_4K, 7),
        (0, 1, PAGE_4K, 2),
    ]


# ---------------------------------------------------------------------------
# structure geometry


def test_structure_for_private_is_per_core_shards():
    spec = structure_for(cfg.private(8))
    assert spec.private
    assert spec.num_shards == 8
    assert spec.index_shift == 0
    assert spec.home(3, 1, 12345) == 3


def test_structure_for_distributed_slices():
    config = cfg.distributed(8)
    spec = structure_for(config)
    assert not spec.private
    assert spec.num_shards == 8
    assert spec.index_shift == 3
    assert spec.entries_per_shard == config.entries_per_core


def test_structure_for_monolithic_banks():
    config = cfg.monolithic(8)
    spec = structure_for(config)
    assert not spec.private
    assert spec.num_shards == 4  # banks_for(8)
    assert spec.entries_per_shard == config.entries_per_core * 8 // 4


# ---------------------------------------------------------------------------
# OPT exactness on hand-built traces


def test_opt_equals_lru_on_lru_friendly_sequence():
    """Working set <= ways: every policy, OPT included, is identical."""
    pages = [0, 1, 2, 3] * 10  # cyclic, fits the 4-way set exactly
    results = offline_policy_eval(_workload_from_pages(pages), _tiny_config())
    assert results[OPT].hits == results["lru"].hits
    assert results[OPT].hit_rate == results["lru"].hit_rate
    # 4 cold misses, everything else hits — for all of them.
    for evaluation in results.values():
        assert evaluation.hits == len(pages) - 4
        assert evaluation.accesses == len(pages)


def test_opt_beats_lru_on_cyclic_overflow():
    """The classic ways+1 loop: LRU thrashes to 0%, OPT keeps ways-1."""
    pages = list(range(5)) * 8  # 5-page loop over a 4-way set
    results = offline_policy_eval(_workload_from_pages(pages), _tiny_config())
    assert results["lru"].hits == 0
    assert results[OPT].hits > results["lru"].hits
    assert results[OPT].hit_rate > 0.5


def test_opt_never_installs_1g_records():
    wl = Workload(
        name="huge",
        traces=[[[(0, 1, PAGE_1G, 5), (0, 1, PAGE_1G, 5),
                  (0, 1, PAGE_4K, 9), (0, 1, PAGE_4K, 9)]]],
        seed=0,
        superpages=True,
    )
    results = offline_policy_eval(wl, _tiny_config())
    for evaluation in results.values():
        # The repeated 1G reference misses twice; the 4K one hits once.
        assert evaluation.accesses == 4
        assert evaluation.hits == 1


# ---------------------------------------------------------------------------
# dominance over the corpus


_CONFIG_BUILDERS = ("private", "distributed", "monolithic", "nocstar")
_WORKLOADS = ("graph500", "gups", "olio")


@pytest.mark.parametrize("config_name", _CONFIG_BUILDERS)
@pytest.mark.parametrize("workload_name", _WORKLOADS)
def test_opt_dominates_every_policy(config_name, workload_name):
    """hit-rate(OPT) >= hit-rate(policy), total and per slice."""
    wl = build_multithreaded(
        get_workload(workload_name), 4, accesses_per_core=800, seed=13
    )
    config = replace(cfg.build_config(config_name, 4), entries_per_core=64)
    results = offline_policy_eval(wl, config)
    opt = results[OPT]
    for name in POLICY_NAMES:
        policy = results[name]
        assert policy.accesses == opt.accesses
        assert opt.hits >= policy.hits, (
            f"OPT beaten by {name} on {workload_name}/{config_name}"
        )
        for shard in range(len(opt.slice_hits)):
            assert opt.slice_hits[shard] >= policy.slice_hits[shard], (
                f"OPT beaten by {name} in slice {shard} "
                f"on {workload_name}/{config_name}"
            )
        assert 0.0 <= pct_of_opt(results, name) <= 100.0


def test_pct_of_opt_degenerate_zero_rate():
    """No hits anywhere (single access): pct-of-OPT pins to 100."""
    results = offline_policy_eval(_workload_from_pages([42]), _tiny_config())
    assert results[OPT].hit_rate == 0.0
    for name in POLICY_NAMES:
        assert pct_of_opt(results, name) == 100.0
