"""Per-page-size L1 TLB group."""

from repro.tlb.l1 import L1Tlb, L1TlbConfig
from repro.vm.address import PAGE_1G, PAGE_2M, PAGE_4K


def test_default_geometry_matches_haswell():
    l1 = L1Tlb()
    assert l1.array(PAGE_4K).entries == 64
    assert l1.array(PAGE_2M).entries == 32
    assert l1.array(PAGE_1G).entries == 4


def test_lookup_uses_size_granular_number():
    l1 = L1Tlb()
    l1.insert(1, vpn=512 * 3 + 7, page_size=PAGE_2M)
    # Any 4KB VPN in the same 2MB page hits.
    assert l1.lookup(1, 512 * 3 + 400, PAGE_2M)


def test_sizes_do_not_alias():
    l1 = L1Tlb()
    l1.insert(1, vpn=100, page_size=PAGE_4K)
    assert not l1.lookup(1, 100 * 512, PAGE_2M)


def test_invalidate_targets_one_array():
    l1 = L1Tlb()
    l1.insert(1, 100, PAGE_4K)
    l1.insert(1, 512 * 9, PAGE_2M)
    assert l1.invalidate(1, PAGE_4K, 100)
    assert l1.lookup(1, 512 * 9, PAGE_2M)


def test_flush_empties_all_arrays():
    l1 = L1Tlb()
    l1.insert(1, 1, PAGE_4K)
    l1.insert(1, 512, PAGE_2M)
    assert l1.flush() == 2
    assert not l1.lookup(1, 1, PAGE_4K)


def test_stats_aggregate_across_arrays():
    l1 = L1Tlb()
    l1.lookup(1, 1, PAGE_4K)
    l1.lookup(1, 512, PAGE_2M)
    assert l1.misses == 2
    assert l1.accesses == 2


def test_scaled_half_shrinks_capacity():
    config = L1TlbConfig().scaled(0.5)
    assert config.entries_4k == 32
    assert config.entries_2m == 16
    assert config.entries_4k % config.ways_4k == 0


def test_scaled_150_percent_grows_capacity():
    config = L1TlbConfig().scaled(1.5)
    assert config.entries_4k == 96
    assert config.entries_4k % config.ways_4k == 0


def test_scaled_never_below_one_way():
    config = L1TlbConfig().scaled(0.01)
    assert config.entries_4k >= config.ways_4k
    assert config.entries_1g >= 1


def test_capacity_pressure_evicts():
    l1 = L1Tlb()
    for vpn in range(1000):
        l1.insert(1, vpn, PAGE_4K)
    assert l1.array(PAGE_4K).occupancy <= 64
