"""Policy zoo proofs: byte-match against independent reference oracles.

Three equivalence suites, per the replacement-policy contract:

* refactored ``policy="lru"`` vs the verbatim seed ``set_assoc.py``
  copy (:class:`SeedSetAssociativeTLB`) — random probe/insert/lookup/
  invalidate/flush sequences, including the full-set same-ASID
  way-quota eviction edge case;
* :class:`~repro.tlb.policies.ArcState` vs :class:`ArcOracle` (FAST
  '03 pseudocode on plain lists) — full internal state compared after
  every step, ghosts and the adaptation target ``p`` included;
* :class:`~repro.tlb.policies.TwoQState` vs :class:`TwoQOracle` (VLDB
  '94 pseudocode) — ditto, A1out ghost FIFO included.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.tlb.policies import (
    ArcState,
    LruState,
    TwoQState,
    make_policy,
    POLICY_NAMES,
)
from repro.tlb.set_assoc import SetAssociativeTLB
from repro.vm.address import PAGE_2M, PAGE_4K

from tests.tlb._policy_oracles import (
    ArcOracle,
    SeedSetAssociativeTLB,
    TwoQOracle,
)


# ---------------------------------------------------------------------------
# registry sanity


def test_registry_names_sorted_and_complete():
    assert POLICY_NAMES == ("arc", "lru", "twoq")


def test_make_policy_unknown_name():
    with pytest.raises(KeyError, match="unknown policy"):
        make_policy("belady", 4)


@pytest.mark.parametrize("name", POLICY_NAMES)
def test_make_policy_builds_each(name):
    state = make_policy(name, 4)
    assert state.name == name
    assert len(state) == 0
    assert list(state.members()) == []


# ---------------------------------------------------------------------------
# lru == the seed array, byte for byte

_OPS = st.lists(
    st.tuples(
        st.sampled_from(
            ["lookup", "insert", "probe", "invalidate", "invalidate_asid",
             "flush"]
        ),
        st.integers(min_value=0, max_value=3),      # asid
        st.sampled_from([PAGE_4K, PAGE_2M]),        # page size
        st.integers(min_value=0, max_value=40),     # page number
    ),
    max_size=300,
)


def _drive_pair(new, seed, ops):
    """Replay one op sequence on both arrays, asserting step equality."""
    for op, asid, size, page in ops:
        if op == "lookup":
            assert new.lookup(asid, size, page) == seed.lookup(asid, size, page)
        elif op == "insert":
            assert new.insert(asid, size, page) == seed.insert(asid, size, page)
        elif op == "probe":
            assert new.probe(asid, size, page) == seed.probe(asid, size, page)
        elif op == "invalidate":
            assert new.invalidate(asid, size, page) == seed.invalidate(
                asid, size, page
            )
        elif op == "invalidate_asid":
            assert new.invalidate_asid(asid) == seed.invalidate_asid(asid)
        else:
            assert new.flush() == seed.flush()
        # Byte-identity after every step: order, counters, occupancy.
        assert list(new.iter_keys()) == list(seed.iter_keys())
    assert (new.hits, new.misses, new.insertions, new.evictions) == (
        seed.hits, seed.misses, seed.insertions, seed.evictions
    )
    assert new.occupancy == seed.occupancy
    assert new.accesses == seed.accesses


@settings(max_examples=60)
@given(_OPS)
def test_lru_matches_seed_behaviour(ops):
    _drive_pair(
        SetAssociativeTLB(16, 4, policy="lru"),
        SeedSetAssociativeTLB(16, 4),
        ops,
    )


@settings(max_examples=40)
@given(_OPS)
def test_lru_matches_seed_with_way_quota(ops):
    """QoS quota path, including the full-set same-ASID eviction edge."""
    new = SetAssociativeTLB(8, 4, policy="lru")
    seed = SeedSetAssociativeTLB(8, 4)
    new.way_quota = seed.way_quota = 2
    _drive_pair(new, seed, ops)


def test_lru_full_set_same_asid_quota_edge():
    """All ways held by one ASID at quota: victim is that ASID's LRU."""
    new = SetAssociativeTLB(4, 4, policy="lru")
    seed = SeedSetAssociativeTLB(4, 4)
    new.way_quota = seed.way_quota = 4
    for tlb in (new, seed):
        for page in range(4):
            tlb.insert(7, PAGE_4K, page)
    assert new.insert(7, PAGE_4K, 99) == seed.insert(7, PAGE_4K, 99) == (
        7, PAGE_4K, 0
    )
    assert list(new.iter_keys()) == list(seed.iter_keys())
    assert new.evictions == seed.evictions == 1


def test_lru_state_is_ordered_dict():
    """The engine's batched fast path inlines OrderedDict ops on L1
    sets; LruState must stay a real OrderedDict for that to hold."""
    from collections import OrderedDict

    state = LruState(4)
    assert isinstance(state, OrderedDict)
    assert LruState.touch is OrderedDict.move_to_end


# ---------------------------------------------------------------------------
# arc / twoq == the papers' pseudocode

_KEYS = st.tuples(
    st.integers(min_value=0, max_value=2),
    st.just(PAGE_4K),
    st.integers(min_value=0, max_value=9),
)

_POLICY_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("access"), _KEYS),
        st.tuples(st.just("remove"), _KEYS),
        st.tuples(st.just("purge"), st.integers(min_value=0, max_value=2)),
        st.tuples(st.just("clear"), st.none()),
    ),
    max_size=200,
)


def _oracle_purge_arc(oracle, asid):
    dropped = sum(1 for k in oracle.t1 + oracle.t2 if k[0] == asid)
    for lst in (oracle.t1, oracle.t2, oracle.b1, oracle.b2):
        lst[:] = [k for k in lst if k[0] != asid]
    return dropped


def _oracle_purge_twoq(oracle, asid):
    dropped = sum(1 for k in oracle.a1in + oracle.am if k[0] == asid)
    for lst in (oracle.a1in, oracle.a1out, oracle.am):
        lst[:] = [k for k in lst if k[0] != asid]
    return dropped


def _assert_arc_equal(state, oracle):
    # Full internal byte-identity: residents, both ghost lists, and the
    # adaptation target p (private attributes read on purpose — the
    # proof is that the whole state machine tracks the pseudocode).
    assert list(state._t1) == oracle.t1
    assert list(state._t2) == oracle.t2
    assert list(state._b1) == oracle.b1
    assert list(state._b2) == oracle.b2
    assert state._p == oracle.p
    assert list(state.members()) == oracle.residents()
    assert len(state) == len(oracle.residents())


def _assert_twoq_equal(state, oracle):
    assert list(state._a1in) == oracle.a1in
    assert list(state._a1out) == oracle.a1out
    assert list(state._am) == oracle.am
    assert list(state.members()) == oracle.residents()
    assert len(state) == len(oracle.residents())


def _drive_policy(state, oracle, ops, purge, check):
    for op, arg in ops:
        if op == "access":
            assert (arg in state) == (arg in oracle)
            if arg in state:
                state.touch(arg)
                oracle.hit(arg)
            else:
                assert state.admit(arg) == oracle.insert(arg)
        elif op == "remove":
            assert state.remove(arg) == oracle.remove(arg)
        elif op == "purge":
            assert state.purge_asid(arg) == purge(oracle, arg)
        else:
            state.clear()
            oracle.__init__(oracle.c)
        check(state, oracle)


@pytest.mark.parametrize("ways", [1, 2, 3, 4, 8])
@settings(max_examples=40)
@given(ops=_POLICY_OPS)
def test_arc_matches_fast03_oracle(ways, ops):
    _drive_policy(
        ArcState(ways), ArcOracle(ways), ops, _oracle_purge_arc,
        _assert_arc_equal,
    )


@pytest.mark.parametrize("ways", [1, 2, 3, 4, 8])
@settings(max_examples=40)
@given(ops=_POLICY_OPS)
def test_twoq_matches_vldb94_oracle(ways, ops):
    _drive_policy(
        TwoQState(ways), TwoQOracle(ways), ops, _oracle_purge_twoq,
        _assert_twoq_equal,
    )


# ---------------------------------------------------------------------------
# zoo policies through the production array

@pytest.mark.parametrize("policy", ["arc", "twoq"])
def test_array_respects_policy_capacity(policy):
    tlb = SetAssociativeTLB(8, 4, policy=policy)
    for page in range(32):
        if not tlb.lookup(1, PAGE_4K, page):
            tlb.insert(1, PAGE_4K, page)
    assert tlb.occupancy <= 8
    for cache_set in tlb._sets:
        assert len(cache_set) <= 4


@pytest.mark.parametrize("policy", ["arc", "twoq"])
def test_array_invalidate_asid_drops_ghosts(policy):
    """A shot-down translation must not later count as a ghost hit."""
    tlb = SetAssociativeTLB(4, 4, policy=policy)
    for page in range(6):  # overflow the set so ghosts accumulate
        tlb.insert(1, PAGE_4K, page)
    assert tlb.invalidate_asid(1) >= 1
    assert tlb.occupancy == 0
    state = tlb._sets[0]
    assert len(state) == 0
    # No resident or ghost survives: a fresh admit of a purged key must
    # behave exactly like a cold miss on an empty policy.
    fresh = make_policy(policy, 4)
    assert state.admit((1, PAGE_4K, 0)) == fresh.admit((1, PAGE_4K, 0))


def test_arc_scan_resistance():
    """The motivating behaviour: a scan must not flush the hot set."""
    state = ArcState(4)
    hot = [(1, PAGE_4K, p) for p in range(2)]
    for _ in range(3):  # promote the hot keys into T2
        for key in hot:
            if key in state:
                state.touch(key)
            else:
                state.admit(key)
    for page in range(100, 140):  # one-touch scan
        state.admit((1, PAGE_4K, page))
    assert all(key in state for key in hot)


def test_twoq_scan_resistance():
    state = TwoQState(4)
    hot = (1, PAGE_4K, 0)
    state.admit(hot)
    # Demote to A1out, readmit -> Am (proven hot).
    for page in range(1, 4):
        state.admit((1, PAGE_4K, page))
    state.admit(hot)
    assert hot in state._am
    for page in range(100, 140):  # one-touch scan stays in A1in
        if (1, PAGE_4K, page) not in state:
            state.admit((1, PAGE_4K, page))
    assert hot in state
