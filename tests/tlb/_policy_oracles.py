"""Independent reference implementations the policy zoo is proven against.

Three self-contained oracles, deliberately written with different data
structures than ``repro.tlb.policies`` (plain lists, index 0 = LRU /
FIFO head) so shared bugs are unlikely:

* :class:`SeedSetAssociativeTLB` — a verbatim copy of the repository's
  *pre-refactor* ``set_assoc.py`` (hardcoded-LRU) array.  The
  refactored ``policy="lru"`` array must byte-match it on any operation
  sequence.
* :class:`ArcOracle` — ARC transcribed directly from Megiddo & Modha's
  FAST '03 pseudocode (Fig 4), with the shipped implementation's
  documented conventions (integer ``p`` deltas, not-full ``REPLACE``
  no-op, quota evictions never ghost).
* :class:`TwoQOracle` — full 2Q transcribed from Johnson & Shasha's
  VLDB '94 pseudocode, with ``Kin = max(1, c // 4)``,
  ``Kout = max(1, c // 2)`` and the documented Am-empty fallback.

The oracles expose the TLB's split flow: ``hit(key)`` for a resident
hit, ``insert(key) -> evicted`` for a miss install, plus
``remove``/``residents``.
"""

from collections import OrderedDict
from typing import Iterator, List, Optional, Tuple

Key = Tuple[int, int, int]


class SeedSetAssociativeTLB:
    """The seed repository's LRU array, copied verbatim (renamed only)."""

    def __init__(
        self,
        entries: int,
        ways: int,
        name: str = "tlb",
        index_shift: int = 0,
    ) -> None:
        if entries <= 0 or ways <= 0:
            raise ValueError("entries and ways must be positive")
        if ways > entries:
            ways = entries
        if entries % ways:
            raise ValueError(f"{name}: {entries} entries not divisible by {ways} ways")
        self.name = name
        self.entries = entries
        self.ways = ways
        self.num_sets = entries // ways
        self.index_shift = index_shift
        self._sets = [OrderedDict() for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.evictions = 0
        self.way_quota: Optional[int] = None

    def _set_for(self, page_number: int) -> OrderedDict:
        return self._sets[(page_number >> self.index_shift) % self.num_sets]

    def lookup(self, asid: int, page_size: int, page_number: int) -> bool:
        cache_set = self._set_for(page_number)
        key = (asid, page_size, page_number)
        if key in cache_set:
            cache_set.move_to_end(key)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def probe(self, asid: int, page_size: int, page_number: int) -> bool:
        return (asid, page_size, page_number) in self._set_for(page_number)

    def insert(self, asid: int, page_size: int, page_number: int) -> Optional[Key]:
        cache_set = self._set_for(page_number)
        key = (asid, page_size, page_number)
        evicted = None
        if key not in cache_set:
            quota = self.way_quota
            if quota is not None:
                own = [k for k in cache_set if k[0] == asid]
                if len(own) >= quota:
                    evicted = own[0]
                    del cache_set[evicted]
                    self.evictions += 1
            if evicted is None and len(cache_set) >= self.ways:
                evicted, _ = cache_set.popitem(last=False)
                self.evictions += 1
        cache_set[key] = None
        cache_set.move_to_end(key)
        self.insertions += 1
        return evicted

    def invalidate(self, asid: int, page_size: int, page_number: int) -> bool:
        cache_set = self._set_for(page_number)
        key = (asid, page_size, page_number)
        if key in cache_set:
            del cache_set[key]
            return True
        return False

    def invalidate_asid(self, asid: int) -> int:
        dropped = 0
        for cache_set in self._sets:
            stale = [key for key in cache_set if key[0] == asid]
            for key in stale:
                del cache_set[key]
            dropped += len(stale)
        return dropped

    def flush(self) -> int:
        dropped = self.occupancy
        for cache_set in self._sets:
            cache_set.clear()
        return dropped

    @property
    def occupancy(self) -> int:
        return sum(len(cache_set) for cache_set in self._sets)

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def iter_keys(self) -> Iterator[Key]:
        for cache_set in self._sets:
            yield from cache_set.keys()


class ArcOracle:
    """ARC(c) per Megiddo & Modha FAST '03, Fig 4, on plain lists.

    ``t1``/``t2`` are the resident recency/frequency lists, ``b1``/
    ``b2`` their ghosts; all lists run LRU (index 0) -> MRU.
    """

    def __init__(self, c: int) -> None:
        self.c = c
        self.t1: List[Key] = []
        self.t2: List[Key] = []
        self.b1: List[Key] = []
        self.b2: List[Key] = []
        self.p = 0

    def residents(self) -> List[Key]:
        """Eviction-preference order: T1 (LRU first) then T2."""
        return self.t1 + self.t2

    def __contains__(self, key: Key) -> bool:
        return key in self.t1 or key in self.t2

    def _replace(self, in_b2: bool) -> Optional[Key]:
        # REPLACE(x, p) — plus the convention that nothing is evicted
        # while the cache is not actually full.
        if len(self.t1) + len(self.t2) < self.c:
            return None
        if self.t1 and (
            len(self.t1) > self.p or (in_b2 and len(self.t1) == self.p)
        ):
            victim = self.t1.pop(0)
            self.b1.append(victim)
        elif self.t2:
            victim = self.t2.pop(0)
            self.b2.append(victim)
        else:
            victim = self.t1.pop(0)
            self.b1.append(victim)
        return victim

    def hit(self, key: Key) -> None:
        # Case I: x in T1 u T2 -> move to MRU of T2.
        if key in self.t1:
            self.t1.remove(key)
        else:
            self.t2.remove(key)
        self.t2.append(key)

    def insert(self, key: Key) -> Optional[Key]:
        if key in self.b1:
            # Case II: adapt p upward, replace, promote ghost to T2.
            delta = max(len(self.b2) // len(self.b1), 1)
            self.p = min(self.p + delta, self.c)
            victim = self._replace(False)
            self.b1.remove(key)
            self.t2.append(key)
            return victim
        if key in self.b2:
            # Case III: adapt p downward, replace, promote ghost to T2.
            delta = max(len(self.b1) // len(self.b2), 1)
            self.p = max(self.p - delta, 0)
            victim = self._replace(True)
            self.b2.remove(key)
            self.t2.append(key)
            return victim
        # Case IV: cold miss.
        victim = None
        l1 = len(self.t1) + len(self.b1)
        if l1 == self.c:
            # Case IV-A.
            if len(self.t1) < self.c:
                self.b1.pop(0)
                victim = self._replace(False)
            else:
                victim = self.t1.pop(0)  # no ghosting (documented)
        elif l1 < self.c:
            # Case IV-B.
            total = l1 + len(self.t2) + len(self.b2)
            if total >= self.c:
                if total == 2 * self.c:
                    self.b2.pop(0)
                victim = self._replace(False)
        self.t1.append(key)
        return victim

    def remove(self, key: Key) -> bool:
        for residents in (self.t1, self.t2):
            if key in residents:
                residents.remove(key)
                return True
        for ghosts in (self.b1, self.b2):
            if key in ghosts:
                ghosts.remove(key)
        return False


class TwoQOracle:
    """Full 2Q per Johnson & Shasha VLDB '94, on plain lists.

    ``a1in`` is the probation FIFO, ``a1out`` the ghost FIFO, ``am``
    the hot LRU; all run head (index 0) -> tail.
    """

    def __init__(self, c: int) -> None:
        self.c = c
        self.k_in = max(1, c // 4)
        self.k_out = max(1, c // 2)
        self.a1in: List[Key] = []
        self.a1out: List[Key] = []
        self.am: List[Key] = []

    def residents(self) -> List[Key]:
        """Eviction-preference order: A1in (head first) then Am."""
        return self.a1in + self.am

    def __contains__(self, key: Key) -> bool:
        return key in self.a1in or key in self.am

    def hit(self, key: Key) -> None:
        if key in self.am:
            self.am.remove(key)
            self.am.append(key)
        # A1in hit: do nothing (the paper's correlated-reference rule).

    def _reclaimfor(self) -> Optional[Key]:
        if len(self.a1in) + len(self.am) < self.c:
            return None
        if len(self.a1in) > self.k_in or not self.am:
            victim = self.a1in.pop(0)
            self.a1out.append(victim)
            if len(self.a1out) > self.k_out:
                self.a1out.pop(0)
        else:
            victim = self.am.pop(0)
        return victim

    def insert(self, key: Key) -> Optional[Key]:
        victim = self._reclaimfor()
        if key in self.a1out:
            self.a1out.remove(key)
            self.am.append(key)
        else:
            self.a1in.append(key)
        return victim

    def remove(self, key: Key) -> bool:
        for residents in (self.a1in, self.am):
            if key in residents:
                residents.remove(key)
                return True
        if key in self.a1out:
            self.a1out.remove(key)
        return False
