"""Private per-core L2 TLB."""

from repro.mem import sram
from repro.tlb.l2_private import L2TlbConfig, PrivateL2Tlb
from repro.vm.address import PAGE_1G, PAGE_2M, PAGE_4K


def test_default_is_haswell_1024e_9cc():
    l2 = PrivateL2Tlb()
    assert l2.config.entries == 1024
    assert l2.lookup_cycles == 9


def test_lookup_cycles_follow_sram_model():
    config = L2TlbConfig(entries=4096)
    assert config.lookup_cycles == sram.lookup_cycles(4096)


def test_holds_4k_and_2m_concurrently():
    l2 = PrivateL2Tlb()
    l2.insert(1, 100, PAGE_4K)
    l2.insert(1, 512 * 7, PAGE_2M)
    assert l2.lookup(1, 100, PAGE_4K)
    assert l2.lookup(1, 512 * 7 + 3, PAGE_2M)


def test_1g_pages_bypass_l2():
    l2 = PrivateL2Tlb()
    l2.insert(1, 0, PAGE_1G)
    assert not l2.lookup(1, 0, PAGE_1G)  # never cached, counted as miss
    assert l2.misses == 1


def test_page_number_api_matches_vpn_api():
    l2 = PrivateL2Tlb()
    l2.insert(1, 512 * 5 + 9, PAGE_2M)
    assert l2.lookup_page_number(1, PAGE_2M, 5)


def test_invalidate():
    l2 = PrivateL2Tlb()
    l2.insert(1, 100, PAGE_4K)
    assert l2.invalidate(1, PAGE_4K, 100)
    assert not l2.lookup(1, 100, PAGE_4K)


def test_flush_and_stats():
    l2 = PrivateL2Tlb()
    l2.insert(1, 1, PAGE_4K)
    l2.lookup(1, 1, PAGE_4K)
    l2.lookup(1, 2, PAGE_4K)
    assert l2.hits == 1 and l2.misses == 1 and l2.accesses == 2
    assert l2.flush() == 1
