"""Sequential prefetcher candidate generation."""

import pytest

from repro.tlb.prefetch import SequentialPrefetcher
from repro.vm.address import PAGE_4K


def test_disabled_by_default():
    assert not SequentialPrefetcher().enabled


def test_rejects_nonpositive_distance():
    with pytest.raises(ValueError):
        SequentialPrefetcher(distances=(0,))


def test_plus_minus_one():
    pf = SequentialPrefetcher(distances=(1,))
    candidates = pf.candidates(1, PAGE_4K, 100)
    assert (1, PAGE_4K, 99) in candidates
    assert (1, PAGE_4K, 101) in candidates
    assert len(candidates) == 2


def test_distances_compose():
    pf = SequentialPrefetcher(distances=(1, 2, 3))
    candidates = pf.candidates(1, PAGE_4K, 100)
    assert {pn for _, _, pn in candidates} == {97, 98, 99, 101, 102, 103}


def test_negative_pages_clipped():
    pf = SequentialPrefetcher(distances=(1, 2))
    candidates = pf.candidates(1, PAGE_4K, 1)
    assert all(pn >= 0 for _, _, pn in candidates)
    assert (1, PAGE_4K, 0) in candidates


def test_issued_counter():
    pf = SequentialPrefetcher(distances=(1,))
    pf.candidates(1, PAGE_4K, 10)
    pf.candidates(1, PAGE_4K, 20)
    assert pf.issued == 4


def test_usefulness_tracking():
    pf = SequentialPrefetcher(distances=(1,))
    pf.record_useful()
    assert pf.useful == 1
