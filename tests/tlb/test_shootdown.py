"""Invalidation-leader shootdown planning (§III-G)."""

import pytest

from repro.tlb.shootdown import InvalidationController


def test_rejects_bad_granularity():
    with pytest.raises(ValueError):
        InvalidationController(8, 0)
    with pytest.raises(ValueError):
        InvalidationController(8, 16)


def test_leader_of_groups():
    controller = InvalidationController(16, 4)
    assert controller.leader_of(0) == 0
    assert controller.leader_of(3) == 0
    assert controller.leader_of(4) == 4
    assert controller.leader_of(15) == 12


def test_leaders_list():
    controller = InvalidationController(16, 8)
    assert controller.leaders == [0, 8]


def test_naive_policy_floods_every_core():
    controller = InvalidationController(8, 1)
    plan = controller.plan(initiator=3, home_slices=[5])
    assert len(plan.messages) == 8  # every core relays its own invalidate
    assert all(m.kind == "invalidate" and m.dst == 5 for m in plan.messages)


def test_leader_policy_sends_one_invalidate_per_slice():
    controller = InvalidationController(16, 8)
    plan = controller.plan(initiator=3, home_slices=[5, 9])
    invalidates = [m for m in plan.messages if m.kind == "invalidate"]
    relays = [m for m in plan.messages if m.kind == "relay"]
    assert len(invalidates) == 2
    assert all(m.src == 0 for m in invalidates)  # core 3's leader is 0
    assert relays == [plan.messages[0]]
    assert relays[0].src == 3 and relays[0].dst == 0


def test_initiating_leader_skips_relay():
    controller = InvalidationController(16, 8)
    plan = controller.plan(initiator=8, home_slices=[1])
    assert all(m.kind == "invalidate" for m in plan.messages)
    assert plan.messages[0].src == 8


def test_single_leader_whole_chip():
    controller = InvalidationController(32, 32)
    plan = controller.plan(initiator=17, home_slices=[2])
    kinds = [m.kind for m in plan.messages]
    assert kinds == ["relay", "invalidate"]


def test_every_core_invalidates_l1():
    controller = InvalidationController(8, 4)
    plan = controller.plan(0, [0])
    assert plan.l1_invalidations == 8


def test_message_count_scales_with_policy():
    """Leaders cut message counts dramatically — the Fig 16R effect."""
    naive = InvalidationController(64, 1).plan(0, [7])
    leader = InvalidationController(64, 8).plan(0, [7])
    assert len(naive.messages) == 64
    assert len(leader.messages) <= 2


def test_counters():
    controller = InvalidationController(8, 4)
    controller.plan(1, [0])
    controller.plan(2, [0, 1])
    assert controller.shootdowns == 2
    assert controller.messages_sent >= 3
