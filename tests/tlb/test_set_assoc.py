"""Core TLB array: indexing, LRU, invalidation invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.tlb.set_assoc import SetAssociativeTLB
from repro.vm.address import PAGE_4K


def make(entries=64, ways=4, shift=0):
    return SetAssociativeTLB(entries, ways, index_shift=shift)


def test_rejects_bad_geometry():
    with pytest.raises(ValueError):
        SetAssociativeTLB(0, 4)
    with pytest.raises(ValueError):
        SetAssociativeTLB(10, 4)  # not divisible


def test_tiny_fully_associative_allowed():
    tlb = SetAssociativeTLB(4, 8)  # the 4-entry 1GB L1 TLB case
    assert tlb.ways == 4
    assert tlb.num_sets == 1


def test_miss_then_insert_then_hit():
    tlb = make()
    assert not tlb.lookup(1, PAGE_4K, 100)
    tlb.insert(1, PAGE_4K, 100)
    assert tlb.lookup(1, PAGE_4K, 100)


def test_asid_isolates_translations():
    tlb = make()
    tlb.insert(1, PAGE_4K, 100)
    assert not tlb.lookup(2, PAGE_4K, 100)


def test_page_size_isolates_translations():
    tlb = make()
    tlb.insert(1, PAGE_4K, 100)
    assert not tlb.lookup(1, 2 * 1024 * 1024, 100)


def test_lru_eviction_order():
    tlb = SetAssociativeTLB(2, 2)  # one set of two ways
    tlb.insert(1, PAGE_4K, 0)
    tlb.insert(1, PAGE_4K, 2)
    tlb.lookup(1, PAGE_4K, 0)  # 0 becomes MRU
    evicted = tlb.insert(1, PAGE_4K, 4)
    assert evicted == (1, PAGE_4K, 2)


def test_reinsert_refreshes_lru():
    tlb = SetAssociativeTLB(2, 2)
    tlb.insert(1, PAGE_4K, 0)
    tlb.insert(1, PAGE_4K, 2)
    tlb.insert(1, PAGE_4K, 0)  # refresh, no eviction
    assert tlb.evictions == 0
    tlb.insert(1, PAGE_4K, 4)
    assert not tlb.probe(1, PAGE_4K, 2)


def test_modulo_indexing():
    tlb = make(entries=64, ways=4)  # 16 sets
    tlb.insert(1, PAGE_4K, 5)
    tlb.insert(1, PAGE_4K, 5 + 16)
    # Different pages, same set, both present (2 of 4 ways).
    assert tlb.probe(1, PAGE_4K, 5)
    assert tlb.probe(1, PAGE_4K, 5 + 16)


def test_index_shift_skips_slice_bits():
    tlb = make(entries=64, ways=4, shift=4)
    # Pages 0x10 apart differ only in bits the shift consumes -> same set
    # only if bits above shift match.
    tlb.insert(1, PAGE_4K, 0x100)
    tlb.insert(1, PAGE_4K, 0x101)  # same set under shift=4
    assert tlb.probe(1, PAGE_4K, 0x100)
    assert tlb.probe(1, PAGE_4K, 0x101)


def test_invalidate_present_and_absent():
    tlb = make()
    tlb.insert(1, PAGE_4K, 100)
    assert tlb.invalidate(1, PAGE_4K, 100)
    assert not tlb.invalidate(1, PAGE_4K, 100)
    assert not tlb.probe(1, PAGE_4K, 100)


def test_invalidate_asid_drops_only_that_asid():
    tlb = make()
    tlb.insert(1, PAGE_4K, 100)
    tlb.insert(2, PAGE_4K, 200)
    assert tlb.invalidate_asid(1) == 1
    assert not tlb.probe(1, PAGE_4K, 100)
    assert tlb.probe(2, PAGE_4K, 200)


def test_flush_empties_everything():
    tlb = make()
    for pn in range(10):
        tlb.insert(1, PAGE_4K, pn)
    assert tlb.flush() == 10
    assert tlb.occupancy == 0


def test_probe_does_not_touch_stats_or_lru():
    tlb = SetAssociativeTLB(2, 2)
    tlb.insert(1, PAGE_4K, 0)
    tlb.insert(1, PAGE_4K, 2)
    tlb.probe(1, PAGE_4K, 0)  # must NOT refresh LRU
    tlb.insert(1, PAGE_4K, 4)
    assert not tlb.probe(1, PAGE_4K, 0)  # 0 was LRU despite the probe
    assert tlb.hits == 0 and tlb.misses == 0


def test_occupancy_never_exceeds_capacity():
    tlb = make(entries=16, ways=2)
    for pn in range(1000):
        tlb.insert(1, PAGE_4K, pn)
    assert tlb.occupancy <= 16


def test_reset_stats():
    tlb = make()
    tlb.lookup(1, PAGE_4K, 1)
    tlb.insert(1, PAGE_4K, 1)
    tlb.reset_stats()
    assert tlb.hits == tlb.misses == tlb.insertions == 0


@settings(max_examples=50)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["insert", "lookup", "invalidate"]),
            st.integers(min_value=1, max_value=3),  # asid
            st.integers(min_value=0, max_value=200),  # page number
        ),
        max_size=300,
    )
)
def test_model_equivalence_under_random_ops(ops):
    """The array behaves like a capacity-bounded set: present keys were
    inserted and not since invalidated; occupancy bounded; a hit implies
    presence in the reference model's recently-inserted set."""
    tlb = SetAssociativeTLB(16, 4)
    reference = set()
    for op, asid, pn in ops:
        key = (asid, PAGE_4K, pn)
        if op == "insert":
            tlb.insert(asid, PAGE_4K, pn)
            reference.add(key)
        elif op == "lookup":
            if tlb.lookup(asid, PAGE_4K, pn):
                assert key in reference  # no phantom hits
        else:
            tlb.invalidate(asid, PAGE_4K, pn)
            reference.discard(key)
        assert tlb.occupancy <= 16


@settings(max_examples=30)
@given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=64))
def test_recent_distinct_inserts_within_way_count_always_hit(pages):
    """The most recent insert to any set is always resident (LRU)."""
    tlb = SetAssociativeTLB(64, 4)
    for pn in pages:
        tlb.insert(1, PAGE_4K, pn)
    assert tlb.probe(1, PAGE_4K, pages[-1])


# ---------------------------------------------------------------------------
# probes are side-effect-free for every policy


@pytest.mark.parametrize("policy", ["lru", "arc", "twoq"])
def test_probe_interleave_does_not_perturb_state(policy):
    """translate_only presence checks must not disturb replacement.

    Two arrays see the same lookup/insert sequence; one additionally
    fields a storm of ``probe``/``occupancy``/``iter_keys`` reads
    between every step (the shootdown/QoS observation paths).  End
    state must be identical — a probe that touched recency would make
    invalidation sweeps perturb victim selection.
    """
    quiet = SetAssociativeTLB(16, 4, policy=policy)
    probed = SetAssociativeTLB(16, 4, policy=policy)
    pages = [0, 4, 8, 12, 0, 16, 4, 20, 8, 0, 24, 12, 28, 16, 0, 4]
    for step, pn in enumerate(pages):
        for tlb in (quiet, probed):
            if not tlb.lookup(1, PAGE_4K, pn):
                tlb.insert(1, PAGE_4K, pn)
        # Observation storm on one array only: resident, absent, and
        # other-ASID probes, plus the iteration-based observers.
        probed.probe(1, PAGE_4K, pn)
        probed.probe(1, PAGE_4K, 999 + step)
        probed.probe(2, PAGE_4K, pn)
        assert probed.occupancy == quiet.occupancy
        list(probed.iter_keys())
    assert list(probed.iter_keys()) == list(quiet.iter_keys())
    assert (probed.hits, probed.misses, probed.evictions) == (
        quiet.hits, quiet.misses, quiet.evictions
    )
