"""TlbStats aggregation."""

from repro.tlb.stats import TlbStats


def test_rates_with_no_accesses_are_zero():
    stats = TlbStats()
    assert stats.l1_miss_rate == 0.0
    assert stats.l2_miss_rate == 0.0


def test_miss_rates():
    stats = TlbStats(l1_hits=90, l1_misses=10, l2_hits=8, l2_misses=2)
    assert stats.l1_miss_rate == 0.1
    assert stats.l2_miss_rate == 0.2
    assert stats.l1_accesses == 100
    assert stats.l2_accesses == 10


def test_merge_adds_counters():
    a = TlbStats(l1_hits=10, walks=3, flushes=1)
    b = TlbStats(l1_hits=5, walks=2, prefetches=7)
    a.merge(b)
    assert a.l1_hits == 15
    assert a.walks == 5
    assert a.prefetches == 7
    assert a.flushes == 1


def test_as_dict_round_trip():
    stats = TlbStats(l1_hits=1, l1_misses=1, l2_hits=1, l2_misses=1, walks=1)
    d = stats.as_dict()
    assert d["l1_miss_rate"] == 0.5
    assert d["walks"] == 1


def test_merge_covers_every_dataclass_field():
    # merge() iterates dataclasses.fields, so a newly added counter can
    # never be silently dropped: setting EVERY field to a distinct
    # value and merging must double all of them.
    import dataclasses

    values = {
        f.name: i + 1 for i, f in enumerate(dataclasses.fields(TlbStats))
    }
    a = TlbStats(**values)
    a.merge(TlbStats(**values))
    for name, value in values.items():
        assert getattr(a, name) == 2 * value, f"field {name} not merged"


def test_merge_handles_dict_valued_fields():
    import dataclasses

    @dataclasses.dataclass
    class ExtendedStats(TlbStats):
        per_level: dict = dataclasses.field(default_factory=dict)

    a = ExtendedStats(l1_hits=1, per_level={"l1": 2, "llc": 1})
    b = ExtendedStats(l1_hits=2, per_level={"l1": 3, "dram": 4})
    a.merge(b)
    assert a.l1_hits == 3
    assert a.per_level == {"l1": 5, "llc": 1, "dram": 4}


def test_merge_rejects_unaggregatable_fields():
    import dataclasses

    import pytest

    @dataclasses.dataclass
    class BadStats(TlbStats):
        label: str = "x"

    a = BadStats()
    with pytest.raises(TypeError, match="cannot aggregate"):
        a.merge(BadStats())
