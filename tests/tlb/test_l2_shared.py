"""Shared L2 organisations: banked monolithic and distributed slices."""

import pytest

from repro.mem import sram
from repro.tlb.l2_shared import (
    PREFETCH_CLASS,
    PRIORITY,
    SHOOTDOWN_CLASS,
    WALK_CLASS,
    DistributedSharedTlb,
    MonolithicSharedTlb,
)
from repro.vm.address import PAGE_1G, PAGE_2M, PAGE_4K


def test_distributed_total_capacity():
    tlb = DistributedSharedTlb(16, 1024)
    assert tlb.total_entries == 16 * 1024
    assert tlb.num_shards == 16


def test_home_uses_low_order_bits():
    tlb = DistributedSharedTlb(16, 1024)
    for pn in (0, 1, 15, 16, 31):
        assert tlb.home(pn) == pn % 16


def test_slice_lookup_latency_is_small_array():
    tlb = DistributedSharedTlb(32, 1024)
    assert tlb.lookup_cycles == sram.lookup_cycles(1024)


def test_nocstar_area_normalised_slice():
    tlb = DistributedSharedTlb(16, 920)
    assert tlb.entries_per_shard == 920
    assert tlb.lookup_cycles <= 9


def test_monolithic_latency_follows_total_capacity():
    mono16 = MonolithicSharedTlb(16 * 1024)
    mono64 = MonolithicSharedTlb(64 * 1024, num_banks=8)
    assert mono64.lookup_cycles > mono16.lookup_cycles
    # Fig 4: the 32x structure with zero-latency interconnect ~16cc.
    mono32 = MonolithicSharedTlb(32 * 1024)
    assert 15 <= mono32.lookup_cycles <= 17


def test_banks_for_matches_paper():
    assert MonolithicSharedTlb.banks_for(16) == 4
    assert MonolithicSharedTlb.banks_for(32) == 4
    assert MonolithicSharedTlb.banks_for(64) == 8


def test_insert_and_lookup_route_to_same_shard():
    tlb = DistributedSharedTlb(8, 64, ways=4)
    tlb.insert_page_number(1, PAGE_4K, 100)
    assert tlb.lookup_page_number(1, PAGE_4K, 100)
    assert tlb.shards[100 % 8].occupancy == 1


def test_single_copy_no_replication():
    """The shared structure holds one copy regardless of who inserts."""
    tlb = DistributedSharedTlb(8, 64, ways=4)
    for _ in range(5):
        tlb.insert_page_number(1, PAGE_4K, 100)
    assert sum(s.occupancy for s in tlb.shards) == 1


def test_1g_not_cached():
    tlb = DistributedSharedTlb(8, 64, ways=4)
    assert tlb.insert_page_number(1, PAGE_1G, 0) is None
    assert not tlb.lookup_page_number(1, PAGE_1G, 0)


def test_probe_has_no_side_effects():
    tlb = DistributedSharedTlb(8, 64, ways=4)
    assert not tlb.probe_page_number(1, PAGE_4K, 5)
    assert tlb.misses == 0


def test_invalidate_routes_by_home():
    tlb = DistributedSharedTlb(8, 64, ways=4)
    tlb.insert_page_number(1, PAGE_4K, 42)
    assert tlb.invalidate(1, PAGE_4K, 42)
    assert not tlb.probe_page_number(1, PAGE_4K, 42)


def test_flush():
    tlb = DistributedSharedTlb(4, 64, ways=4)
    for pn in range(20):
        tlb.insert_page_number(1, PAGE_4K, pn)
    assert tlb.flush() == 20


def test_read_port_pipelining():
    """Two ports: three same-cycle accesses -> third slips one cycle."""
    tlb = DistributedSharedTlb(4, 64, ways=4)
    starts = [tlb.reserve_read(0, 100) for _ in range(3)]
    assert sorted(starts) == [100, 100, 101]


def test_write_port_single():
    tlb = DistributedSharedTlb(4, 64, ways=4)
    starts = [tlb.reserve_write(0, 100) for _ in range(2)]
    assert sorted(starts) == [100, 101]


def test_ports_are_per_shard():
    tlb = DistributedSharedTlb(4, 64, ways=4)
    assert tlb.reserve_read(0, 100) == 100
    assert tlb.reserve_read(1, 100) == 100


def test_out_of_order_reservation_allowed():
    """A later call may reserve an earlier free cycle (engine run-ahead)."""
    tlb = DistributedSharedTlb(4, 64, ways=4)
    tlb.reserve_read(0, 500)
    assert tlb.reserve_read(0, 100) == 100


def test_reserve_many_counts_sweep():
    tlb = DistributedSharedTlb(4, 64, ways=4)
    last = tlb.write_ports[0].reserve_many(10, 5)
    assert last == 14  # five back-to-back single-port writes


def test_entries_must_divide():
    with pytest.raises(ValueError):
        MonolithicSharedTlb(1000, num_banks=3)


def test_index_shift_spreads_consecutive_pages():
    """Consecutive page numbers land on different slices AND use
    distinct sets within a slice across strides."""
    tlb = DistributedSharedTlb(4, 64, ways=4)  # 4 slices, 16 sets each
    for pn in range(64):
        tlb.insert_page_number(1, PAGE_4K, pn)
    # 64 consecutive pages = 16 per slice; all should be resident
    # because the index shift avoids piling them into one set.
    assert sum(s.occupancy for s in tlb.shards) == 64


# ---------------------------------------------------------------------------
# priority arbitration (shootdown > walk > prefetch service classes)


def _prio(num_slices=4):
    return DistributedSharedTlb(num_slices, 64, ways=4, arbitration=PRIORITY)


def test_arbitration_mode_validated():
    with pytest.raises(ValueError, match="arbitration"):
        DistributedSharedTlb(4, 64, ways=4, arbitration="lottery")


def test_priority_uncontended_matches_fifo():
    """An uncontended access pays nothing regardless of class."""
    fifo = DistributedSharedTlb(4, 64, ways=4)
    prio = _prio()
    for klass in (SHOOTDOWN_CLASS, WALK_CLASS, PREFETCH_CLASS):
        now = 100 + 10 * klass
        assert prio.reserve_read(0, now, klass) == fifo.reserve_read(0, now, klass) == now


def test_priority_class0_contention_matches_fifo():
    """Shootdown-class traffic arbitrates exactly like historical FIFO."""
    fifo = DistributedSharedTlb(4, 64, ways=4)
    prio = _prio()
    fifo_starts = [fifo.reserve_write(0, 50, SHOOTDOWN_CLASS) for _ in range(3)]
    prio_starts = [prio.reserve_write(0, 50, SHOOTDOWN_CLASS) for _ in range(3)]
    assert fifo_starts == prio_starts == [50, 51, 52]


def test_priority_contended_walk_pays_class_penalty():
    prio = _prio()
    assert prio.reserve_write(0, 100, SHOOTDOWN_CLASS) == 100
    # The walk lost to the shootdown: +1 busy scan, +WALK_CLASS yield.
    assert prio.reserve_write(0, 100, WALK_CLASS) == 101 + WALK_CLASS


def test_priority_contended_prefetch_pays_more_than_walk():
    walk_side = _prio()
    prefetch_side = _prio()
    walk_side.reserve_write(0, 100)
    prefetch_side.reserve_write(0, 100)
    walk = walk_side.reserve_write(0, 100, WALK_CLASS)
    prefetch = prefetch_side.reserve_write(0, 100, PREFETCH_CLASS)
    assert prefetch - walk == PREFETCH_CLASS - WALK_CLASS


def test_priority_penalised_access_reskips_busy_cycles():
    """After yielding, the loser takes the next genuinely free cycle."""
    prio = _prio()
    prio.reserve_write(0, 100)
    prio.reserve_write(0, 102)  # occupies the cycle the penalty lands on
    assert prio.reserve_write(0, 100, WALK_CLASS) == 103


def test_fifo_mode_ignores_class_entirely():
    fifo = DistributedSharedTlb(4, 64, ways=4)
    fifo.reserve_write(0, 100)
    assert fifo.reserve_write(0, 100, PREFETCH_CLASS) == 101


def test_policy_threads_through_to_shards():
    tlb = DistributedSharedTlb(4, 64, ways=4, policy="arc")
    assert tlb.policy == "arc"
    assert all(shard.policy == "arc" for shard in tlb.shards)
    mono = MonolithicSharedTlb(256, num_banks=4, ways=4, policy="twoq")
    assert all(bank.policy == "twoq" for bank in mono.shards)
