"""Fault models and spec -> plan compilation.

ISSUE tentpole: FaultSpec compiles deterministically into a frozen
FaultPlan, rate-selected failures are *nested* across rates (prefixes of
one seeded permutation, the property degradation monotonicity rests
on), and plans canonicalise for the result cache.
"""

import dataclasses

import pytest

from repro.exec.cache import canonical_json
from repro.faults.models import (
    ArbiterDrop,
    FaultPlan,
    FaultSpec,
    LinkFailure,
    SliceFailure,
    WalkerSlowdown,
    derive_seed,
)


def test_derive_seed_is_stable_and_label_sensitive():
    a = derive_seed(42, "faults")
    assert a == derive_seed(42, "faults")  # pure function of (base, label)
    assert a != derive_seed(42, "faults2")
    assert a != derive_seed(43, "faults")
    assert 0 <= a < 1 << 63


def test_compile_is_deterministic():
    spec = FaultSpec(
        links=LinkFailure(rate=0.2),
        arbiter=ArbiterDrop(probability=0.1),
        slices=SliceFailure(rate=0.25),
        walker=WalkerSlowdown(factor=1.5),
    )
    plan_a = spec.compile(16, base_seed=9)
    plan_b = spec.compile(16, base_seed=9)
    assert plan_a == plan_b
    # A different base seed rolls a different concrete failure set.
    plan_c = spec.compile(16, base_seed=10)
    assert (plan_a.failed_links, plan_a.seed) != (
        plan_c.failed_links,
        plan_c.seed,
    )


def test_rate_selected_failures_are_nested_across_rates():
    seed = 77
    previous_links = frozenset()
    previous_slices = frozenset()
    for rate in (0.0, 0.1, 0.2, 0.4, 0.7, 1.0):
        plan = FaultSpec(
            links=LinkFailure(rate=rate), slices=SliceFailure(rate=rate)
        ).compile(16, base_seed=seed)
        links = frozenset(plan.failed_links)
        slices = frozenset(plan.failed_slices)
        assert previous_links <= links
        assert previous_slices <= slices
        previous_links, previous_slices = links, slices
    # rate 1.0 fails everything
    assert previous_slices == frozenset(range(16))


def test_explicit_links_and_slices_are_validated_and_added():
    plan = FaultSpec(
        links=LinkFailure(links=((0, 1),)), slices=SliceFailure(slices=(3,))
    ).compile(16, base_seed=1)
    assert plan.failed_links == ((0, 1),)
    assert plan.failed_slices == (3,)
    with pytest.raises(ValueError):
        FaultSpec(links=LinkFailure(links=((0, 5),))).compile(16, base_seed=1)
    with pytest.raises(ValueError):
        FaultSpec(slices=SliceFailure(slices=(16,))).compile(16, base_seed=1)


def test_model_validation_rejects_out_of_range_values():
    with pytest.raises(ValueError):
        LinkFailure(rate=1.5)
    with pytest.raises(ValueError):
        ArbiterDrop(probability=-0.1)
    with pytest.raises(ValueError):
        SliceFailure(rate=2.0)
    with pytest.raises(ValueError):
        WalkerSlowdown(factor=0.5)
    with pytest.raises(ValueError):
        FaultSpec(setup_timeout=0)
    with pytest.raises(ValueError):
        FaultPlan(num_tiles=16, arbiter_drop_prob=1.5)
    with pytest.raises(ValueError):
        FaultPlan(num_tiles=16, failed_slices=(99,))


def test_empty_plan_detection():
    assert FaultSpec().compile(16, base_seed=5).is_empty
    assert FaultPlan(num_tiles=16).is_empty
    assert not FaultPlan(num_tiles=16, failed_links=((0, 1),)).is_empty
    assert not FaultPlan(num_tiles=16, arbiter_drop_prob=0.1).is_empty
    assert not FaultPlan(num_tiles=16, failed_slices=(2,)).is_empty
    assert not FaultPlan(num_tiles=16, walker_slowdown=2.0).is_empty


def test_scaled_walk_latency_identity_and_ceiling():
    assert FaultPlan(num_tiles=4).scaled_walk_latency(37) == 37
    plan = FaultPlan(num_tiles=4, walker_slowdown=1.5)
    assert plan.scaled_walk_latency(10) == 15
    assert plan.scaled_walk_latency(11) == 17  # 16.5 rounds up


def test_plans_are_frozen_and_canonicalisable():
    plan = FaultSpec(
        links=LinkFailure(rate=0.1), arbiter=ArbiterDrop(probability=0.05)
    ).compile(16, base_seed=3)
    assert dataclasses.is_dataclass(plan)
    with pytest.raises(dataclasses.FrozenInstanceError):
        plan.seed = 0
    # Cache-key participation: both layers canonicalise, and distinct
    # plans produce distinct canonical forms.
    empty = FaultPlan(num_tiles=16)
    assert canonical_json(plan) == canonical_json(
        FaultSpec(
            links=LinkFailure(rate=0.1),
            arbiter=ArbiterDrop(probability=0.05),
        ).compile(16, base_seed=3)
    )
    assert canonical_json(plan) != canonical_json(empty)
    assert canonical_json(FaultSpec()) != canonical_json(None)
