"""The ``repro faults`` degradation sweep and the fault flags on run."""

import json

from repro import cli


def _faults_args(tmp_path, extra=()):
    return [
        "faults",
        "--workload", "olio",
        "--cores", "8",
        "--accesses", "500",
        "--rates", "0,0.1",
        "--no-cache",
        "--out", str(tmp_path / "curve.json"),
        *extra,
    ]


def test_faults_command_writes_the_degradation_curve(tmp_path, capsys):
    assert cli.main(_faults_args(tmp_path)) == 0
    out = capsys.readouterr().out
    assert "fault rate" in out and "degraded" in out
    payload = json.loads((tmp_path / "curve.json").read_text())
    assert payload["config"] == "nocstar"
    rates = [point["rate"] for point in payload["points"]]
    assert rates == [0.0, 0.1]
    # The fault-free anchor: speedup exactly 1, no fault summary.
    assert payload["points"][0]["speedup"] == 1.0
    assert payload["points"][0]["faults"] == {}
    assert payload["points"][1]["faults"]  # the faulty point counted things


def test_faults_command_always_anchors_at_rate_zero(tmp_path):
    # Rates without 0 get the anchor inserted.
    args = _faults_args(tmp_path)
    args[args.index("0,0.1")] = "0.1"
    assert cli.main(args) == 0
    payload = json.loads((tmp_path / "curve.json").read_text())
    assert [p["rate"] for p in payload["points"]] == [0.0, 0.1]


def test_run_prints_a_fault_summary_with_fault_flags(capsys):
    rc = cli.main(
        [
            "run",
            "--workload", "gups",
            "--cores", "8",
            "--accesses", "400",
            "--configs", "nocstar,distributed",
            "--no-cache",
            "--fault-rate", "0.1",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "fault summary" in out


def test_run_without_fault_flags_prints_no_fault_summary(capsys):
    rc = cli.main(
        [
            "run",
            "--workload", "gups",
            "--cores", "8",
            "--accesses", "400",
            "--configs", "nocstar",
            "--no-cache",
        ]
    )
    assert rc == 0
    assert "fault summary" not in capsys.readouterr().out


def test_report_survives_an_absent_obs_file(capsys):
    assert cli.main(["report", "does-not-exist.jsonl"]) == 0
    captured = capsys.readouterr()
    assert "no such obs file" in captured.err
    assert "no metric snapshots or events" in captured.out
