"""End-to-end fault injection through the engine.

The ISSUE's acceptance criteria live here: ``faults=None`` (and an
empty plan) follow the exact seed code path bit-for-bit, degradation is
monotone in the fault rate with the rate-0 point identical to the
fault-free run, and a partitioned slice degrades to page walks instead
of hanging (pinned with the watchdog).
"""

import pytest

from repro.faults.models import (
    ArbiterDrop,
    FaultPlan,
    FaultSpec,
    LinkFailure,
    SliceFailure,
    WalkerSlowdown,
)
from repro.sim import configs as cfg
from repro.sim.engine import WatchdogExpired, simulate
from repro.sim.scenario import Scenario
from repro.workloads.generators import build_multithreaded
from repro.workloads.registry import get_workload

WATCHDOG = 50_000_000  # generous liveness backstop, never a timing bound


def _workload(cores=8, accesses=600, seed=9, name="gups"):
    return build_multithreaded(
        get_workload(name), cores, accesses_per_core=accesses, seed=seed
    )


def test_empty_faults_are_bit_identical_to_the_seed_path():
    config = cfg.nocstar(8)
    workload = _workload()
    plain = simulate(config, workload)
    empty_spec = simulate(config, workload, faults=FaultSpec())
    empty_plan = simulate(config, workload, faults=FaultPlan(num_tiles=8))
    assert plain.faults is None
    assert empty_spec.as_dict() == plain.as_dict()
    assert empty_plan.as_dict() == plain.as_dict()


def test_degradation_is_monotone_and_anchored_at_the_fault_free_run():
    config = cfg.nocstar(8)
    workload = _workload(accesses=800)
    cycles = []
    for rate in (0.0, 0.05, 0.15):
        spec = FaultSpec(
            links=LinkFailure(rate=rate),
            arbiter=ArbiterDrop(probability=rate * 0.5),
        )
        result = simulate(
            config, workload, faults=spec, watchdog_cycles=WATCHDOG
        )
        cycles.append(result.cycles)
        if rate == 0.0:
            assert result.as_dict() == simulate(config, workload).as_dict()
        else:
            assert result.faults is not None
    assert cycles == sorted(cycles), f"not monotone: {cycles}"
    assert cycles[-1] > cycles[0]  # faults actually hurt


def test_partitioned_tile_degrades_to_walks_instead_of_hanging():
    # In the 8-core (2x4) mesh, (4,0) and (4,5) are tile 4's only
    # out-links: killing both partitions every pair (4, *).  Lookups
    # homed remotely from core 4 must degrade to local page walks and
    # the run must still terminate (the watchdog pins liveness).
    config = cfg.nocstar(8)
    plan = FaultPlan(num_tiles=8, failed_links=((4, 0), (4, 5)))
    result = simulate(
        config, _workload(), faults=plan, watchdog_cycles=WATCHDOG
    )
    assert result.faults["degraded_walks"] > 0
    assert result.cycles > 0
    assert result.faults["failed_links"] == 2


def test_dead_slice_degrades_to_walks_on_the_distributed_config():
    config = cfg.distributed(8)
    plan = FaultPlan(num_tiles=8, failed_slices=(2,))
    plain = simulate(config, _workload())
    result = simulate(
        config, _workload(), faults=plan, watchdog_cycles=WATCHDOG
    )
    assert result.faults["degraded_walks"] > 0
    assert result.faults["failed_slices"] == 1
    assert result.cycles >= plain.cycles  # walks are never faster


def test_walker_slowdown_stretches_walks():
    config = cfg.nocstar(8)
    plain = simulate(config, _workload())
    slow = simulate(
        config,
        _workload(),
        faults=FaultSpec(walker=WalkerSlowdown(factor=3.0)),
        watchdog_cycles=WATCHDOG,
    )
    assert slow.faults["walk_slowdown_cycles"] > 0
    assert slow.cycles > plain.cycles


def test_watchdog_trips_on_long_runs():
    config = cfg.nocstar(8)
    workload = _workload(accesses=2000)
    with pytest.raises(WatchdogExpired):
        simulate(config, workload, watchdog_cycles=10)


def test_scenario_form_rejects_a_simulate_level_faults_argument():
    scenario = Scenario(
        configurations=cfg.nocstar(8),
        workloads="gups",
        accesses_per_core=200,
        baseline_name="nocstar",
    )
    with pytest.raises(TypeError):
        simulate(scenario, faults=FaultPlan(num_tiles=8))


def test_scenario_faults_flow_through_the_watchdog_dispatch():
    spec = FaultSpec(links=LinkFailure(rate=0.1))
    scenario = Scenario(
        configurations=cfg.nocstar(8),
        workloads="gups",
        accesses_per_core=400,
        seed=9,
        baseline_name="nocstar",
        faults=spec,
    )
    via_watchdog = simulate(scenario, watchdog_cycles=WATCHDOG)
    via_unit = scenario.units()[0].execute()
    assert via_watchdog.as_dict() == via_unit.as_dict()
    assert via_watchdog.faults is not None
