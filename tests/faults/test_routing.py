"""Property tests for the fault-aware router.

ISSUE satellite: XY + YX escape routing (with the BFS of last resort)
reaches every alive slice for randomly failed link sets, or correctly
reports a partitioned mesh — ``route() is None`` must agree with an
independent reachability oracle, and every returned path must be a
contiguous, alive walk of real mesh links.
"""

import random

from repro.faults.models import FaultSpec, LinkFailure
from repro.faults.routing import FaultAwareRouter
from repro.noc.topology import MeshTopology


def _oracle_reachable(topology, dead, src, dst):
    """Reference BFS over the alive adjacency, independent of the router."""
    alive = {}
    for a, b in topology.all_links():
        if (a, b) not in dead:
            alive.setdefault(a, []).append(b)
    seen = {src}
    frontier = [src]
    while frontier:
        tile = frontier.pop()
        if tile == dst:
            return True
        for neighbor in alive.get(tile, ()):
            if neighbor not in seen:
                seen.add(neighbor)
                frontier.append(neighbor)
    return src == dst


def _assert_path_valid(topology, dead, src, dst, path):
    link_set = set(topology.all_links())
    assert path[0][0] == src and path[-1][1] == dst
    at = src
    for link in path:
        assert link in link_set, f"{link} is not a mesh link"
        assert link not in dead, f"{link} is dead"
        assert link[0] == at, "path is not contiguous"
        at = link[1]
    assert at == dst


def test_route_is_complete_for_random_failure_sets():
    """route() returns a valid path exactly when the oracle says one
    exists, across many random failure sets and all tile pairs."""
    topology = MeshTopology(16)
    all_links = sorted(topology.all_links())
    rng = random.Random(1234)
    for trial in range(25):
        k = rng.randrange(0, len(all_links) // 2)
        dead = frozenset(rng.sample(all_links, k))
        router = FaultAwareRouter(topology, dead)
        for src in range(topology.num_tiles):
            for dst in range(topology.num_tiles):
                path = router.route(src, dst)
                reachable = _oracle_reachable(topology, dead, src, dst)
                if src == dst:
                    assert path == ()
                    continue
                if reachable:
                    assert path is not None, (
                        f"trial {trial}: router missed alive route "
                        f"{src}->{dst} under {sorted(dead)}"
                    )
                    _assert_path_valid(topology, dead, src, dst, path)
                else:
                    assert path is None, (
                        f"trial {trial}: router invented route {src}->{dst}"
                    )


def test_single_link_failure_never_partitions_the_mesh():
    """YX is link-disjoint from XY away from the endpoints, and BFS
    covers the rest: no single dead link can partition a 4x4 mesh."""
    topology = MeshTopology(16)
    for dead_link in topology.all_links():
        router = FaultAwareRouter(topology, (dead_link,))
        assert not router.partitioned
        for src in range(16):
            for dst in range(16):
                path = router.route(src, dst)
                assert path is not None
                assert dead_link not in path


def test_partition_is_reported_not_papered_over():
    # Kill both out-links of tile 0 in a 4x4 mesh (0->1 and 0->4):
    # nothing is reachable *from* 0, but 0 can still be reached.
    topology = MeshTopology(16)
    router = FaultAwareRouter(topology, ((0, 1), (0, 4)))
    assert router.route(0, 15) is None
    assert router.route(15, 0) is not None
    assert not router.reachable_round_trip(15, 0)
    assert router.partitioned
    assert set(router.unreachable_pairs()) == {
        (0, dst) for dst in range(1, 16)
    }


def test_route_prefers_xy_then_yx():
    topology = MeshTopology(16)
    clean = FaultAwareRouter(topology, ())
    src, dst = 0, 15
    assert clean.route(src, dst) == tuple(topology.xy_path(src, dst))
    # Break one XY link: the YX escape route must be chosen.
    xy = tuple(topology.xy_path(src, dst))
    router = FaultAwareRouter(topology, (xy[0],))
    assert router.route(src, dst) == tuple(topology.yx_path(src, dst))


def test_router_is_deterministic_for_a_failure_set():
    topology = MeshTopology(16)
    plan = FaultSpec(links=LinkFailure(rate=0.3)).compile(16, base_seed=21)
    a = FaultAwareRouter(topology, plan.failed_links)
    b = FaultAwareRouter(topology, plan.failed_links)
    for src in range(16):
        for dst in range(16):
            assert a.route(src, dst) == b.route(src, dst)
