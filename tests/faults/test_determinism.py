"""Determinism of faulty runs across execution strategies.

ISSUE satellite (seed-plumbing audit): a faulty scenario must produce
byte-identical results — cycles, stats, metrics, trace, and fault
summaries — across serial (jobs=1), parallel (jobs=4), and
cache-replayed execution, because every stochastic choice flows from
``derive_seed`` sub-seeds consumed in the engine's deterministic order.
"""

from repro.exec.cache import unit_key
from repro.exec.runner import Runner
from repro.faults.models import FaultSpec, LinkFailure
from repro.sim.engine import ENGINE_VERSION

from tests._corpus import canonical_comparisons as _canonical
from tests._corpus import faulty_scenario as _scenario


def test_faulty_runs_are_byte_identical_across_strategies(tmp_path):
    scenario = _scenario()
    serial = Runner(jobs=1, cache_dir=None).run(scenario)
    parallel = Runner(jobs=4, cache_dir=None).run(scenario)
    assert _canonical(serial) == _canonical(parallel)

    cache_dir = str(tmp_path / "cache")
    cold_runner = Runner(jobs=1, cache_dir=cache_dir)
    cold = cold_runner.run(scenario)
    assert cold_runner.stats == {"hits": 0, "misses": 4}
    warm_runner = Runner(jobs=1, cache_dir=cache_dir)
    warm = warm_runner.run(scenario)
    assert warm_runner.stats == {"hits": 4, "misses": 0}
    assert _canonical(serial) == _canonical(cold) == _canonical(warm)

    # The faults actually fired (this is not vacuous determinism).
    for comparison in serial.values():
        for result in comparison.results.values():
            assert result.faults is not None


def test_faulty_and_fault_free_units_never_alias_in_the_cache():
    plain_unit = _scenario(faults=None).units()[0]
    faulty_unit = _scenario().units()[0]
    assert unit_key(plain_unit, ENGINE_VERSION) != unit_key(
        faulty_unit, ENGINE_VERSION
    )
    # Different rates are different keys too (nested plans are not equal).
    other = _scenario(faults=FaultSpec(links=LinkFailure(rate=0.2)))
    assert unit_key(faulty_unit, ENGINE_VERSION) != unit_key(
        other.units()[0], ENGINE_VERSION
    )


def test_spec_compilation_uses_the_unit_seed_sub_stream():
    # Same spec, different scenario seeds: different concrete plans
    # (the compile seed is derive_seed(unit.seed, "faults"), never a
    # global or workload-shared stream).
    plan_a = _scenario(seed=7).units()[0].fault_plan()
    plan_b = _scenario(seed=8).units()[0].fault_plan()
    assert plan_a != plan_b
    assert plan_a == _scenario(seed=7).units()[0].fault_plan()
