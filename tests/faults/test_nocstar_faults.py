"""NOCSTAR resilience: bounded retry, backoff, and buffered-mesh fallback."""

import pytest

from repro.core.nocstar import NocstarInterconnect
from repro.faults.inject import (
    FALLBACK_CYCLES_PER_HOP,
    FALLBACK_INJECTION_CYCLES,
    FaultInjector,
)
from repro.faults.models import FaultPlan
from repro.faults.routing import UnreachableError
from repro.noc.topology import MeshTopology


def _injector(num_tiles=16, **plan_kwargs):
    topology = MeshTopology(num_tiles)
    plan = FaultPlan(num_tiles=num_tiles, **plan_kwargs)
    return topology, FaultInjector(plan, topology)


def test_benign_plan_keeps_the_fault_free_send_path():
    # Slice failures and walker slowdowns never touch the interconnect:
    # the construction-time dispatch must leave the hot path unbound.
    topology, injector = _injector(failed_slices=(3,), walker_slowdown=2.0)
    noc = NocstarInterconnect(topology, faults=injector)
    assert "send" not in noc.__dict__  # class method, not the faulty shim
    plain = NocstarInterconnect(topology)
    for src, dst, now in ((0, 15, 5), (3, 12, 40), (7, 7, 41)):
        assert noc.send(src, dst, now) == plain.send(src, dst, now)


def test_dead_xy_link_falls_back_immediately():
    topology, injector = _injector(failed_links=((1, 2),))
    noc = NocstarInterconnect(topology, faults=injector)
    traversal = noc.send(0, 3, now=10)  # XY path 0>1>2>3 crosses 1>2
    fallback_path = injector.router.route(0, 3)
    assert fallback_path is not None and (1, 2) not in fallback_path
    assert traversal.links == ()  # no circuit held
    assert traversal.hops == len(fallback_path)
    assert traversal.ready == (
        11  # earliest = now + 1 (non-speculative setup)
        + FALLBACK_INJECTION_CYCLES
        + FALLBACK_CYCLES_PER_HOP * len(fallback_path)
    )
    assert injector.fallback_messages == 1
    assert injector.fallback_hops == len(fallback_path)


def test_certain_drops_hit_the_setup_timeout_then_fall_back():
    topology, injector = _injector(
        arbiter_drop_prob=1.0, setup_timeout=16, seed=5
    )
    noc = NocstarInterconnect(topology, faults=injector)
    traversal = noc.send(0, 3, now=0)
    assert injector.arbiter_drops > 0  # backed off through real drops
    assert injector.fallback_messages == 1
    assert traversal.links == ()
    # Gave up no earlier than the deadline, then paid buffered-mesh cost.
    assert traversal.ready >= 1 + 16 + FALLBACK_INJECTION_CYCLES


def test_transient_drops_retry_with_backoff_then_deliver():
    topology, injector = _injector(arbiter_drop_prob=0.5, seed=3)
    noc = NocstarInterconnect(topology, faults=injector)
    plain = NocstarInterconnect(topology)
    dropped = delivered = 0
    for i in range(40):
        now = i * 50
        traversal = noc.send(0, 15, now)
        baseline = plain.send(0, 15, now)
        assert traversal.hops == baseline.hops
        assert traversal.links == baseline.links  # circuit still held
        if traversal.ready == baseline.ready:
            delivered += 1
        else:
            dropped += 1
            assert traversal.ready > baseline.ready  # backoff only adds
    assert delivered > 0 and dropped > 0
    assert injector.arbiter_drops > 0
    assert injector.fallback_messages == 0  # drops resolved within timeout


def test_fallback_to_a_partitioned_destination_raises():
    # Tile 0 loses both out-links: XY is dead and no fallback route
    # exists.  The system pre-checks reachability and degrades, so the
    # interconnect treats this as a protocol bug, loudly.
    topology, injector = _injector(failed_links=((0, 1), (0, 4)))
    noc = NocstarInterconnect(topology, faults=injector)
    with pytest.raises(UnreachableError):
        noc.send(0, 3, now=0)


def test_faulty_send_counts_energy_and_messages_like_the_seed_path():
    topology, injector = _injector(failed_links=((8, 9),))
    noc = NocstarInterconnect(topology, faults=injector)
    # A message whose XY path avoids the dead link follows the normal
    # accounting: one uncontended setup, hops charged once.
    traversal = noc.send(0, 3, now=0)
    assert traversal.setup_retries == 0
    assert noc.messages == 1
    assert noc.uncontended_messages == 1
    assert noc.control_requests == traversal.hops
    assert noc.total_hops == traversal.hops
