"""Differential harness: the batched engine vs the reference engine.

The batched fast path (segment-compiled L1 hits + RouteCache tables)
claims bit-identity with the original drive loop — that claim is what
let ``ENGINE_VERSION`` stay unchanged.  This suite is the proof: every
corpus scenario (all interconnects, faults on/off, observability
on/off, storm/shootdown traffic) must produce byte-identical
``RunResult`` snapshots and trace exports under both engines, across
serial, parallel, and cache-replayed execution.
"""

import pytest

from repro.exec.cache import canonical_json
from repro.exec.runner import Runner
from repro.noc.route_cache import REFERENCE_ENV
from repro.obs import write_obs_jsonl
from repro.sim import engine

from tests._corpus import (
    canonical_comparisons,
    differential_corpus,
    faulty_scenario,
)

CORPUS = differential_corpus()


def _execute(scenario, monkeypatch, reference):
    if reference:
        monkeypatch.setenv(REFERENCE_ENV, "1")
    else:
        monkeypatch.delenv(REFERENCE_ENV, raising=False)
    return scenario.units()[0].execute()


@pytest.mark.parametrize(
    "name,scenario", CORPUS, ids=[name for name, _ in CORPUS]
)
def test_engines_byte_identical(name, scenario, monkeypatch, tmp_path):
    batched = _execute(scenario, monkeypatch, reference=False)
    reference = _execute(scenario, monkeypatch, reference=True)
    assert canonical_json(batched) == canonical_json(reference)
    if scenario.trace:
        # The exported artefact (runs + events) must match byte for
        # byte, not just the in-memory snapshot.
        paths = []
        for tag, result in (("batched", batched), ("reference", reference)):
            path = tmp_path / f"{tag}.jsonl"
            write_obs_jsonl(
                str(path),
                [(result.config_name, result.workload_name, result)],
            )
            paths.append(path)
        assert paths[0].read_bytes() == paths[1].read_bytes()


def test_fast_path_engages_and_reference_env_disables_it(monkeypatch):
    calls = []
    real = engine._drive_batched

    def spy(*args, **kwargs):
        calls.append(1)
        return real(*args, **kwargs)

    monkeypatch.setattr(engine, "_drive_batched", spy)
    _, scenario = CORPUS[0]
    monkeypatch.delenv(REFERENCE_ENV, raising=False)
    scenario.units()[0].execute()
    assert calls, "batched fast path never engaged"

    calls.clear()
    monkeypatch.setenv(REFERENCE_ENV, "1")
    scenario.units()[0].execute()
    assert not calls, "REPRO_REFERENCE_ENGINE=1 must force the reference loop"


def test_storm_and_shootdown_runs_use_the_reference_loop(monkeypatch):
    # External L1 invalidations void the precompiled hit/miss sequence,
    # so these scenarios must take the reference loop even when the
    # fast path is otherwise enabled.
    monkeypatch.delenv(REFERENCE_ENV, raising=False)
    monkeypatch.setattr(
        engine, "_drive_batched",
        lambda *a, **k: pytest.fail("batched path used under storms"),
    )
    by_name = dict(CORPUS)
    by_name["nocstar-storm"].units()[0].execute()
    by_name["distributed-shootdown"].units()[0].execute()


def test_runner_strategies_agree_across_engines(monkeypatch):
    scenario = faulty_scenario()
    monkeypatch.delenv(REFERENCE_ENV, raising=False)
    outputs = [
        canonical_comparisons(Runner(jobs=1, cache_dir=None).run(scenario)),
        canonical_comparisons(Runner(jobs=4, cache_dir=None).run(scenario)),
    ]
    # Pool workers are forked, so they inherit the reference switch.
    monkeypatch.setenv(REFERENCE_ENV, "1")
    outputs.append(
        canonical_comparisons(Runner(jobs=1, cache_dir=None).run(scenario))
    )
    outputs.append(
        canonical_comparisons(Runner(jobs=4, cache_dir=None).run(scenario))
    )
    assert len(set(outputs)) == 1


def test_reference_cache_replays_into_batched_engine(monkeypatch, tmp_path):
    # ENGINE_VERSION deliberately did not change for the fast path, so
    # results cached by the reference engine replay as hits under the
    # batched engine — and they had better be the same bytes.
    scenario = faulty_scenario()
    cache_dir = str(tmp_path / "cache")
    monkeypatch.setenv(REFERENCE_ENV, "1")
    cold = Runner(jobs=1, cache_dir=cache_dir)
    reference = cold.run(scenario)
    assert cold.stats == {"hits": 0, "misses": 4}

    monkeypatch.delenv(REFERENCE_ENV, raising=False)
    warm = Runner(jobs=1, cache_dir=cache_dir)
    replayed = warm.run(scenario)
    assert warm.stats == {"hits": 4, "misses": 0}

    fresh = canonical_comparisons(Runner(jobs=1, cache_dir=None).run(scenario))
    assert (
        canonical_comparisons(reference)
        == canonical_comparisons(replayed)
        == fresh
    )
