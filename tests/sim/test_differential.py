"""Differential harness: the batched engine vs the reference engine.

The batched fast path (segment-compiled L1 hits + RouteCache tables)
claims bit-identity with the original drive loop — that claim is what
let ``ENGINE_VERSION`` stay unchanged.  This suite is the proof: every
corpus scenario (all interconnects, faults on/off, observability
on/off, storm/shootdown traffic) must produce byte-identical
``RunResult`` snapshots and trace exports under both engines, across
serial, parallel, and cache-replayed execution.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exec.cache import canonical_json
from repro.exec.runner import Runner
from repro.noc.mesh import ContentionFreeMesh
from repro.noc.route_cache import REFERENCE_ENV, RouteCache
from repro.noc.topology import MeshTopology
from repro.obs import write_obs_jsonl
from repro.sim import engine
from repro.sim.engine_vec import VECTORIZED_ENV, VECTORIZED_MIN_CORES

from tests._corpus import (
    canonical_comparisons,
    differential_corpus,
    faulty_scenario,
)

CORPUS = differential_corpus()


def _execute(scenario, monkeypatch, reference):
    if reference:
        monkeypatch.setenv(REFERENCE_ENV, "1")
    else:
        monkeypatch.delenv(REFERENCE_ENV, raising=False)
    return scenario.units()[0].execute()


@pytest.mark.parametrize(
    "name,scenario", CORPUS, ids=[name for name, _ in CORPUS]
)
def test_engines_byte_identical(name, scenario, monkeypatch, tmp_path):
    batched = _execute(scenario, monkeypatch, reference=False)
    reference = _execute(scenario, monkeypatch, reference=True)
    assert canonical_json(batched) == canonical_json(reference)
    if scenario.trace:
        # The exported artefact (runs + events) must match byte for
        # byte, not just the in-memory snapshot.
        paths = []
        for tag, result in (("batched", batched), ("reference", reference)):
            path = tmp_path / f"{tag}.jsonl"
            write_obs_jsonl(
                str(path),
                [(result.config_name, result.workload_name, result)],
            )
            paths.append(path)
        assert paths[0].read_bytes() == paths[1].read_bytes()


@pytest.mark.parametrize(
    "name,scenario", CORPUS, ids=[name for name, _ in CORPUS]
)
def test_vectorized_engine_byte_identical(name, scenario, monkeypatch, tmp_path):
    """Forcing the mega-mesh drive loop never changes a single byte.

    Every corpus scenario runs under the default dispatch and with
    ``REPRO_VECTORIZED_ENGINE=1``; storm/shootdown scenarios fall back
    exactly as the batched path does, which this comparison also
    proves (a broken fallback would diverge, not skip).
    """
    monkeypatch.delenv(REFERENCE_ENV, raising=False)
    monkeypatch.delenv(VECTORIZED_ENV, raising=False)
    batched = scenario.units()[0].execute()
    monkeypatch.setenv(VECTORIZED_ENV, "1")
    vectorized = scenario.units()[0].execute()
    assert canonical_json(batched) == canonical_json(vectorized)
    if scenario.trace:
        paths = []
        for tag, result in (("batched", batched), ("vectorized", vectorized)):
            path = tmp_path / f"{tag}.jsonl"
            write_obs_jsonl(
                str(path),
                [(result.config_name, result.workload_name, result)],
            )
            paths.append(path)
        assert paths[0].read_bytes() == paths[1].read_bytes()


def test_fast_path_engages_and_reference_env_disables_it(monkeypatch):
    calls = []
    real = engine._drive_batched

    def spy(*args, **kwargs):
        calls.append(1)
        return real(*args, **kwargs)

    monkeypatch.setattr(engine, "_drive_batched", spy)
    _, scenario = CORPUS[0]
    monkeypatch.delenv(REFERENCE_ENV, raising=False)
    scenario.units()[0].execute()
    assert calls, "batched fast path never engaged"

    calls.clear()
    monkeypatch.setenv(REFERENCE_ENV, "1")
    scenario.units()[0].execute()
    assert not calls, "REPRO_REFERENCE_ENGINE=1 must force the reference loop"


def test_storm_and_shootdown_runs_use_the_reference_loop(monkeypatch):
    # External L1 invalidations void the precompiled hit/miss sequence,
    # so these scenarios must take the reference loop even when the
    # fast path is otherwise enabled.
    monkeypatch.delenv(REFERENCE_ENV, raising=False)
    monkeypatch.setattr(
        engine, "_drive_batched",
        lambda *a, **k: pytest.fail("batched path used under storms"),
    )
    by_name = dict(CORPUS)
    by_name["nocstar-storm"].units()[0].execute()
    by_name["distributed-shootdown"].units()[0].execute()


def test_runner_strategies_agree_across_engines(monkeypatch):
    scenario = faulty_scenario()
    monkeypatch.delenv(REFERENCE_ENV, raising=False)
    outputs = [
        canonical_comparisons(Runner(jobs=1, cache_dir=None).run(scenario)),
        canonical_comparisons(Runner(jobs=4, cache_dir=None).run(scenario)),
    ]
    # Pool workers are forked, so they inherit the reference switch.
    monkeypatch.setenv(REFERENCE_ENV, "1")
    outputs.append(
        canonical_comparisons(Runner(jobs=1, cache_dir=None).run(scenario))
    )
    outputs.append(
        canonical_comparisons(Runner(jobs=4, cache_dir=None).run(scenario))
    )
    assert len(set(outputs)) == 1


def _spy_vectorized(monkeypatch):
    calls = []
    real = engine._drive_vectorized

    def spy(*args, **kwargs):
        calls.append(1)
        return real(*args, **kwargs)

    monkeypatch.setattr(engine, "_drive_vectorized", spy)
    return calls


def _mega_run():
    from repro.sim import configs as cfg
    from repro.workloads.generators import build_multithreaded
    from repro.workloads.registry import get_workload

    workload = build_multithreaded(
        get_workload("gups"), VECTORIZED_MIN_CORES, accesses_per_core=4, seed=1
    )
    return cfg.distributed(VECTORIZED_MIN_CORES), workload


def test_vectorized_dispatch_auto_engages_at_mega_scale(monkeypatch):
    monkeypatch.delenv(REFERENCE_ENV, raising=False)
    monkeypatch.delenv(VECTORIZED_ENV, raising=False)
    calls = _spy_vectorized(monkeypatch)
    config, workload = _mega_run()
    engine.simulate(config, workload)
    assert calls, "vectorized loop must auto-engage at >= 256 cores"

    calls.clear()
    _, scenario = CORPUS[0]  # 8 cores: stays on the batched loop
    scenario.units()[0].execute()
    assert not calls


def test_vectorized_dispatch_env_overrides(monkeypatch):
    monkeypatch.delenv(REFERENCE_ENV, raising=False)
    calls = _spy_vectorized(monkeypatch)

    monkeypatch.setenv(VECTORIZED_ENV, "1")  # force on at small scale
    _, scenario = CORPUS[0]
    scenario.units()[0].execute()
    assert calls, "REPRO_VECTORIZED_ENGINE=1 must force the vectorized loop"

    calls.clear()
    monkeypatch.setenv(VECTORIZED_ENV, "0")  # disable at mega scale
    config, workload = _mega_run()
    engine.simulate(config, workload)
    assert not calls, "REPRO_VECTORIZED_ENGINE=0 must disable the loop"

    calls.clear()
    monkeypatch.setenv(VECTORIZED_ENV, "1")
    monkeypatch.setenv(REFERENCE_ENV, "1")  # reference switch always wins
    scenario.units()[0].execute()
    assert not calls, "REPRO_REFERENCE_ENGINE=1 must win over vectorized"


def test_runner_strategies_agree_with_vectorized_forced(monkeypatch):
    scenario = faulty_scenario()
    monkeypatch.delenv(REFERENCE_ENV, raising=False)
    monkeypatch.delenv(VECTORIZED_ENV, raising=False)
    outputs = [
        canonical_comparisons(Runner(jobs=1, cache_dir=None).run(scenario)),
    ]
    # Pool workers are forked, so they inherit the vectorized switch.
    monkeypatch.setenv(VECTORIZED_ENV, "1")
    outputs.append(
        canonical_comparisons(Runner(jobs=1, cache_dir=None).run(scenario))
    )
    outputs.append(
        canonical_comparisons(Runner(jobs=4, cache_dir=None).run(scenario))
    )
    assert len(set(outputs)) == 1


def test_vectorized_cache_replays_into_batched_engine(monkeypatch, tmp_path):
    # Same contract as the reference-replay test below: ENGINE_VERSION
    # did not change for the vectorized loop, so its cached results are
    # interchangeable with the batched engine's.
    scenario = faulty_scenario()
    cache_dir = str(tmp_path / "cache")
    monkeypatch.delenv(REFERENCE_ENV, raising=False)
    monkeypatch.setenv(VECTORIZED_ENV, "1")
    cold = Runner(jobs=1, cache_dir=cache_dir)
    vectorized = cold.run(scenario)
    assert cold.stats == {"hits": 0, "misses": 4}

    monkeypatch.delenv(VECTORIZED_ENV, raising=False)
    warm = Runner(jobs=1, cache_dir=cache_dir)
    replayed = warm.run(scenario)
    assert warm.stats == {"hits": 4, "misses": 0}

    fresh = canonical_comparisons(Runner(jobs=1, cache_dir=None).run(scenario))
    assert (
        canonical_comparisons(vectorized)
        == canonical_comparisons(replayed)
        == fresh
    )


@settings(max_examples=60, deadline=None)
@given(
    num_tiles=st.integers(min_value=2, max_value=64),
    router_cycles=st.integers(min_value=1, max_value=3),
    wire_cycles=st.integers(min_value=1, max_value=3),
    data=st.data(),
)
def test_vectorized_hop_latency_matches_live_mesh(
    num_tiles, router_cycles, wire_cycles, data
):
    """The int32 latency table the vectorized engine rides equals the
    live contention-free mesh model, route by route."""
    topology = MeshTopology(num_tiles)
    cache = RouteCache(topology)
    src = data.draw(st.integers(0, num_tiles - 1), label="src")
    dst = data.draw(st.integers(0, num_tiles - 1), label="dst")
    mesh = ContentionFreeMesh(topology, router_cycles, wire_cycles)
    table = cache.mesh_latency_array(mesh.cycles_per_hop)
    live = mesh.send(src, dst, now=0)
    assert int(table[src][dst]) == live.arrival
    assert int(cache.hops_array[src][dst]) == live.hops


def test_reference_cache_replays_into_batched_engine(monkeypatch, tmp_path):
    # ENGINE_VERSION deliberately did not change for the fast path, so
    # results cached by the reference engine replay as hits under the
    # batched engine — and they had better be the same bytes.
    scenario = faulty_scenario()
    cache_dir = str(tmp_path / "cache")
    monkeypatch.setenv(REFERENCE_ENV, "1")
    cold = Runner(jobs=1, cache_dir=cache_dir)
    reference = cold.run(scenario)
    assert cold.stats == {"hits": 0, "misses": 4}

    monkeypatch.delenv(REFERENCE_ENV, raising=False)
    warm = Runner(jobs=1, cache_dir=cache_dir)
    replayed = warm.run(scenario)
    assert warm.stats == {"hits": 4, "misses": 0}

    fresh = canonical_comparisons(Runner(jobs=1, cache_dir=None).run(scenario))
    assert (
        canonical_comparisons(reference)
        == canonical_comparisons(replayed)
        == fresh
    )
