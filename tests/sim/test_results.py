"""Result types and speedup arithmetic."""

import pytest

from repro.sim.results import RunResult, geometric_mean
from repro.tlb.stats import TlbStats


def make(cycles, name="x", apps=None):
    return RunResult(
        config_name=name,
        workload_name="w",
        cycles=cycles,
        per_core_cycles=[cycles],
        stats=TlbStats(),
        energy={"total": 100.0},
        app_cycles=apps or {},
    )


def test_speedup_over():
    assert make(50).speedup_over(make(100)) == 2.0


def test_speedup_rejects_empty_run():
    with pytest.raises(ValueError):
        make(0).speedup_over(make(100))


def test_app_speedups():
    base = make(100, apps={"a": 100.0, "b": 200.0})
    fast = make(80, apps={"a": 50.0, "b": 100.0})
    assert fast.app_speedups_over(base) == {"a": 2.0, "b": 2.0}


def test_app_speedups_skips_missing():
    base = make(100, apps={"a": 100.0})
    fast = make(80, apps={"b": 50.0})
    assert fast.app_speedups_over(base) == {}


def test_total_energy():
    assert make(10).total_energy_pj == 100.0


def test_geometric_mean():
    assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
    with pytest.raises(ValueError):
        geometric_mean([])
    with pytest.raises(ValueError):
        geometric_mean([1.0, -1.0])
