"""Cross-configuration consistency invariants.

The same workload must present identical demand to every machine:
configurations may only change *when* things happen, never *what* the
cores ask for.
"""

import pytest

from repro.sim import configs as cfg
from repro.sim.engine import simulate
from repro.workloads.generators import build_multithreaded
from repro.workloads.registry import get_workload

CONFIGS = [
    cfg.private(8),
    cfg.monolithic(8),
    cfg.monolithic(8, noc="smart"),
    cfg.distributed(8),
    cfg.distributed(8, noc="fbfly-wide"),
    cfg.nocstar(8),
    cfg.nocstar_ideal(8),
    cfg.ideal(8),
]


@pytest.fixture(scope="module")
def results():
    wl = build_multithreaded(
        get_workload("redis"), 8, accesses_per_core=2000, seed=17
    )
    return {c.name: simulate(c, wl) for c in CONFIGS}


def test_l1_demand_identical_everywhere(results):
    accesses = {r.stats.l1_accesses for r in results.values()}
    assert len(accesses) == 1


def test_l1_misses_identical_everywhere(results):
    """L1 TLBs are identical structures fed the same stream."""
    misses = {r.stats.l1_misses for r in results.values()}
    assert len(misses) == 1


def test_shared_configs_share_hit_rates(results):
    """All same-capacity shared organisations hold the same content."""
    same_capacity = ["monolithic-mesh", "monolithic-smart", "distributed",
                     "distributed-fbfly-wide", "ideal"]
    misses = {results[name].stats.l2_misses for name in same_capacity}
    assert len(misses) == 1


def test_nocstar_area_normalisation_costs_few_misses(results):
    """The 920-entry slices may miss slightly more than 1024-entry ones,
    never fewer."""
    assert (
        results["nocstar"].stats.l2_misses
        >= results["distributed"].stats.l2_misses
    )
    assert (
        results["nocstar"].stats.l2_misses
        <= results["distributed"].stats.l2_misses * 1.25
    )


def test_walks_match_l2_misses_without_prefetch(results):
    for name, result in results.items():
        assert result.stats.walks == result.stats.l2_misses, name


def test_energy_components_nonnegative(results):
    for name, result in results.items():
        for component, value in result.energy.items():
            assert value >= 0.0, (name, component)
        assert result.energy["total"] == pytest.approx(
            sum(v for k, v in result.energy.items() if k != "total")
        )


def test_per_core_cycles_close_to_total(results):
    """No core finishes absurdly early (work is balanced by design)."""
    for name, result in results.items():
        assert min(result.per_core_cycles) > 0.5 * result.cycles, name
