"""End-to-end behavioural tests: the paper's qualitative claims.

These run small-but-real simulations and assert the *shape* results the
benches reproduce at full scale: configuration ordering, shared-TLB
miss elimination, NOCSTAR's proximity to ideal, contention behaviour,
and the pathological microbenchmarks.
"""

import pytest

from repro.analysis.contention import concurrency_distribution
from repro.sim import configs as cfg
from repro.sim.engine import simulate
from repro.sim.run import compare
from repro.workloads.generators import build_multithreaded
from repro.workloads.microbench import build_slice_hammer, storm_config_for
from repro.workloads.registry import get_workload

CORES = 8
ACCESSES = 4000


@pytest.fixture(scope="module")
def graph500():
    return build_multithreaded(
        get_workload("graph500"), CORES, accesses_per_core=ACCESSES, seed=11
    )


@pytest.fixture(scope="module")
def lineup(graph500):
    return compare(
        graph500,
        [
            cfg.private(CORES),
            cfg.monolithic(CORES),
            cfg.distributed(CORES),
            cfg.nocstar(CORES),
            cfg.nocstar_ideal(CORES),
            cfg.ideal(CORES),
        ],
    )


def test_configuration_ordering(lineup):
    """The paper's headline ordering: monolithic < distributed <
    NOCSTAR <= NOCSTAR(ideal) <= ideal."""
    s = lineup.speedups()
    assert s["monolithic-mesh"] < s["distributed"]
    assert s["distributed"] < s["nocstar"]
    assert s["nocstar"] <= s["nocstar-ideal"] + 0.01
    assert s["nocstar-ideal"] <= s["ideal"] + 0.01


def test_nocstar_beats_private(lineup):
    assert lineup.speedup("nocstar") > 1.0


def test_nocstar_within_95_pct_of_ideal(lineup):
    """§I: NOCSTAR achieves within 95% of zero-interconnect-latency."""
    assert lineup.speedup("nocstar") / lineup.speedup("ideal") >= 0.95


def test_shared_eliminates_majority_of_misses(lineup):
    """Fig 2's direction: the shared TLB removes most private misses."""
    assert lineup.misses_eliminated_pct("distributed") > 28.0


def test_all_shared_configs_have_identical_hit_rates(lineup):
    """Monolithic/distributed hold the same content; only timing differs."""
    mono = lineup.results["monolithic-mesh"].stats
    dist = lineup.results["distributed"].stats
    assert mono.l2_misses == dist.l2_misses


def test_nocstar_mostly_uncontended(lineup):
    network = lineup.results["nocstar"].network
    assert network["no_contention_fraction"] > 0.8
    assert network["mean_setup_retries"] < 1.0


def test_walks_hit_llc_or_beyond(lineup):
    """§V: most page-table walks reach the LLC or memory."""
    levels = lineup.results["private"].walk_levels
    deep = levels["llc"] + levels["dram"]
    shallow = levels["l1"] + levels["l2"]
    assert deep > shallow


def test_shared_saves_translation_energy(lineup):
    """Fig 14 right: shared TLBs eliminate walk energy."""
    private_pj = lineup.results["private"].energy["walk"]
    nocstar_pj = lineup.results["nocstar"].energy["walk"]
    assert nocstar_pj < private_pj


def test_fig4_monotone_in_fixed_latency(graph500):
    """Fig 4: higher shared access latency, lower speedup."""
    cycles = [
        simulate(cfg.monolithic(CORES, fixed_latency=lat), graph500).cycles
        for lat in (9, 11, 16, 25)
    ]
    assert cycles == sorted(cycles)


def test_superpages_reduce_misses():
    spec = get_workload("xsbench")
    thp = build_multithreaded(spec, CORES, accesses_per_core=ACCESSES, seed=4)
    flat = build_multithreaded(
        spec, CORES, accesses_per_core=ACCESSES, seed=4, superpages=False
    )
    r_thp = simulate(cfg.private(CORES), thp)
    r_flat = simulate(cfg.private(CORES), flat)
    assert r_thp.stats.l1_misses < r_flat.stats.l1_misses
    assert r_thp.stats.l2_misses < r_flat.stats.l2_misses


def test_concurrency_mostly_low(graph500):
    """Figs 5/6: concurrent shared-TLB accesses are rare; the large
    majority of accesses overlap with at most a handful of others."""
    result = simulate(cfg.distributed(CORES), graph500, record_intervals=True)
    dist = concurrency_distribution(result.intervals)
    low = dist["1 acc"] + dist["2-4 acc"]
    assert low > 0.7


def test_storm_hurts_but_nocstar_still_wins(graph500):
    storm = storm_config_for(ACCESSES, mean_gap=7.0)
    private = simulate(cfg.private(CORES), graph500, storm=storm)
    nocstar = simulate(cfg.nocstar(CORES), graph500, storm=storm)
    quiet = simulate(cfg.nocstar(CORES), graph500)
    assert nocstar.cycles > quiet.cycles  # storms cost something
    assert private.cycles / nocstar.cycles > 1.0  # Fig 19's takeaway


def test_slice_hammer_nocstar_best_shared():
    """§V microbenchmark 2: under worst-case slice congestion NOCSTAR
    still beats the other shared organisations (measured at 16 cores;
    at very small core counts the contention-free mesh baseline's
    infinite link bandwidth gives distributed an unrealistic edge on
    this adversarial pattern)."""
    cores = 16
    hammer = build_slice_hammer(cores, accesses_per_core=2000)
    results = {
        name: simulate(config, hammer).cycles
        for name, config in [
            ("private", cfg.private(cores)),
            ("nocstar", cfg.nocstar(cores)),
            ("distributed", cfg.distributed(cores)),
            ("monolithic", cfg.monolithic(cores)),
        ]
    }
    # vs the infinite-bandwidth contention-free mesh baseline NOCSTAR
    # is at worst a statistical tie; it clearly beats the rest.
    assert results["nocstar"] <= results["distributed"] * 1.02
    assert results["nocstar"] < results["monolithic"]
    assert results["nocstar"] < results["private"]


def test_larger_l1_reduces_l2_pressure(graph500):
    small = simulate(cfg.nocstar(CORES, l1_scale=0.5), graph500)
    big = simulate(cfg.nocstar(CORES, l1_scale=1.5), graph500)
    assert big.stats.l1_misses < small.stats.l1_misses


def test_fixed_ptw_latency_scales_walk_cost(graph500):
    fast = simulate(cfg.private(CORES, ptw_fixed=10), graph500)
    slow = simulate(cfg.private(CORES, ptw_fixed=80), graph500)
    assert slow.cycles > fast.cycles
    assert fast.walk_levels == {"fixed": fast.stats.walks}
