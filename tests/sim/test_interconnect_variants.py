"""Distributed-over-{bus, fbfly} configurations."""

import pytest

from repro.sim import configs as cfg
from repro.sim.engine import simulate
from repro.sim.system import System
from repro.vm.address import PAGE_4K
from repro.workloads.generators import build_multithreaded
from repro.workloads.registry import get_workload


def test_factory_names():
    assert cfg.distributed(8).name == "distributed"
    assert cfg.distributed(8, noc="bus").name == "distributed-bus"
    assert cfg.distributed(8, noc="fbfly-wide").name == "distributed-fbfly-wide"


def test_factory_rejects_unknown_noc():
    with pytest.raises(ValueError):
        cfg.distributed(8, noc="tokenring")


def test_networks_instantiated():
    from repro.noc.bus import BusNetwork
    from repro.noc.fbfly import FlattenedButterfly

    assert isinstance(System(cfg.distributed(8, noc="bus")).network, BusNetwork)
    fb = System(cfg.distributed(8, noc="fbfly-narrow")).network
    assert isinstance(fb, FlattenedButterfly) and fb.narrow


def test_hit_rates_identical_across_fabrics():
    """The fabric changes timing only, never content."""
    wl = build_multithreaded(
        get_workload("olio"), 8, accesses_per_core=1500, seed=3
    )
    misses = {
        noc: simulate(cfg.distributed(8, noc=noc), wl).stats.l2_misses
        for noc in ("mesh", "bus", "fbfly-wide", "fbfly-narrow")
    }
    assert len(set(misses.values())) == 1


def test_bus_slower_than_mesh_under_load():
    """At 32 cores the one-at-a-time bus saturates under TLB traffic
    (it is fine at small core counts — Table I's scalability point)."""
    wl = build_multithreaded(
        get_workload("gups"), 32, accesses_per_core=2000, seed=3
    )
    bus = simulate(cfg.distributed(32, noc="bus"), wl)
    mesh = simulate(cfg.distributed(32), wl)
    assert bus.cycles > mesh.cycles


def test_static_power_reflects_fabric():
    bus = System(cfg.distributed(8, noc="bus")).static_power_mw()
    mesh = System(cfg.distributed(8)).static_power_mw()
    fbfly = System(cfg.distributed(8, noc="fbfly-wide")).static_power_mw()
    assert bus < mesh < fbfly


def test_shared_transaction_through_fbfly():
    system = System(cfg.distributed(4, noc="fbfly-wide"))
    system.shared_l2.insert_page_number(1, PAGE_4K, 3)
    stall = system.l2_transaction(0, 1, PAGE_4K, 3, now=0)
    assert stall > 0
