"""Run harness: comparisons, suites, summaries."""

import pytest

from repro.sim import configs as cfg
from repro.sim.run import compare, run_suite, summarize_speedups
from repro.workloads.generators import build_multithreaded
from repro.workloads.registry import get_workload


@pytest.fixture(scope="module")
def comparison():
    wl = build_multithreaded(
        get_workload("olio"), 4, accesses_per_core=2000, seed=3
    )
    return compare(wl, [cfg.private(4), cfg.nocstar(4), cfg.ideal(4)])


def test_speedups_exclude_baseline(comparison):
    speedups = comparison.speedups()
    assert set(speedups) == {"nocstar", "ideal"}


def test_baseline_required():
    wl = build_multithreaded(
        get_workload("olio"), 4, accesses_per_core=200, seed=3
    )
    with pytest.raises(ValueError):
        compare(wl, [cfg.nocstar(4)])


def test_misses_eliminated_positive(comparison):
    assert comparison.misses_eliminated_pct("nocstar") > 0


def test_run_suite_subset():
    comparisons = run_suite(
        [cfg.private(4), cfg.nocstar(4)],
        num_cores=4,
        workload_names=["olio", "gups"],
        accesses_per_core=1000,
    )
    assert set(comparisons) == {"olio", "gups"}
    for c in comparisons.values():
        assert c.speedup("nocstar") > 0


def test_summarize_speedups():
    comparisons = run_suite(
        [cfg.private(4), cfg.nocstar(4)],
        num_cores=4,
        workload_names=["olio", "gups", "nutch"],
        accesses_per_core=1000,
    )
    summary = summarize_speedups(comparisons, "nocstar")
    assert summary.minimum <= summary.average <= summary.maximum
