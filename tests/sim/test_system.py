"""System model: translation paths, shootdowns, energy plumbing."""

import pytest

from repro.sim import configs as cfg
from repro.sim.system import System
from repro.vm.address import PAGE_4K


def test_private_hit_costs_visible_lookup():
    system = System(cfg.private(4))
    system.private_l2[0].insert_page_number(1, PAGE_4K, 100)
    stall = system.l2_transaction(0, 1, PAGE_4K, 100, now=0)
    visible = int(9 * (1 - cfg.private(4).translation_overlap))
    assert stall == visible
    assert system.stats.l2_hits == 1


def test_private_miss_walks():
    system = System(cfg.private(4))
    stall = system.l2_transaction(0, 1, PAGE_4K, 100, now=0)
    assert system.stats.l2_misses == 1
    assert system.stats.walks == 1
    assert stall > 9  # lookup + walk
    # Mostly-inclusive: the L2 now holds the translation.
    assert system.private_l2[0].lookup_page_number(1, PAGE_4K, 100)


def test_shared_hit_fills_from_home_slice():
    system = System(cfg.nocstar(4))
    home = system.shared_l2.home(100)
    system.shared_l2.insert_page_number(1, PAGE_4K, 100)
    stall = system.l2_transaction(0, 1, PAGE_4K, 100, now=0)
    assert system.stats.l2_hits == 1
    assert stall >= int(9 * 0.55)


def test_local_slice_access_cheaper_than_remote():
    system = System(cfg.nocstar(4, translation_overlap=0.0))
    local_pn = 0  # home slice = core 0
    remote_pn = 3
    system.shared_l2.insert_page_number(1, PAGE_4K, local_pn)
    system.shared_l2.insert_page_number(1, PAGE_4K, remote_pn)
    local = system.l2_transaction(0, 1, PAGE_4K, local_pn, now=100)
    remote = system.l2_transaction(0, 1, PAGE_4K, remote_pn, now=200)
    assert local < remote


def test_shared_miss_requester_policy_fills_slice():
    system = System(cfg.nocstar(4))
    system.l2_transaction(0, 1, PAGE_4K, 99, now=0)
    assert system.stats.l2_misses == 1
    assert system.shared_l2.probe_page_number(1, PAGE_4K, 99)


def test_remote_walk_charges_pollution_to_home_core():
    config = cfg.nocstar(4, ptw_policy=cfg.PTW_REMOTE)
    system = System(config)
    pn = 3  # homed on core 3
    system.l2_transaction(0, 1, PAGE_4K, pn, now=0)
    assert system.pending_penalty[3] > 0
    assert system.pending_penalty[0] == 0


def test_monolithic_uses_edge_tile_and_ingress():
    no_overlap = dict(translation_overlap=0.0)
    mono = System(cfg.monolithic(16, **no_overlap))
    ideal = System(cfg.ideal(16, **no_overlap))
    mono.shared_l2.insert_page_number(1, PAGE_4K, 5)
    ideal.shared_l2.insert_page_number(1, PAGE_4K, 5)
    assert mono.l2_transaction(0, 1, PAGE_4K, 5, 0) > ideal.l2_transaction(
        0, 1, PAGE_4K, 5, 0
    )


def test_fixed_latency_monolithic():
    system = System(cfg.monolithic(16, fixed_latency=25,
                                   translation_overlap=0.0))
    system.shared_l2.insert_page_number(1, PAGE_4K, 5)
    stall = system.l2_transaction(0, 1, PAGE_4K, 5, now=0)
    assert stall == 25
    assert system.network is None


def test_nocstar_ideal_never_retries():
    system = System(cfg.nocstar_ideal(16))
    for pn in range(50):
        system.shared_l2.insert_page_number(1, PAGE_4K, pn)
        system.l2_transaction(0, 1, PAGE_4K, pn, now=0)
    assert system.network.total_setup_retries == 0


def test_flush_all_tlbs():
    system = System(cfg.nocstar(4))
    system.l2_transaction(0, 1, PAGE_4K, 7, now=0)
    system.l1s[0].insert(1, 7, PAGE_4K)
    system.flush_all_tlbs()
    assert system.stats.flushes == 1
    assert not system.shared_l2.probe_page_number(1, PAGE_4K, 7)
    assert system.l1s[0].accesses == 0 or not system.l1s[0].lookup(
        1, 7, PAGE_4K
    )


def test_shootdown_private_invalidates_everywhere():
    system = System(cfg.private(4))
    for core in range(4):
        system.private_l2[core].insert_page_number(1, PAGE_4K, 55)
    system.apply_shootdown(0, [(1, PAGE_4K, 55)], now=100)
    for core in range(4):
        assert not system.private_l2[core].lookup_page_number(1, PAGE_4K, 55)
        assert system.pending_penalty[core] > 0


def test_shootdown_shared_removes_translation_and_charges_initiator():
    system = System(cfg.nocstar(8))
    system.shared_l2.insert_page_number(1, PAGE_4K, 55)
    system.apply_shootdown(2, [(1, PAGE_4K, 55)], now=100)
    assert not system.shared_l2.probe_page_number(1, PAGE_4K, 55)
    assert system.stats.shootdown_messages >= 1
    assert system.pending_penalty[2] > system.pending_penalty[1]


def test_naive_shootdown_floods():
    flood = System(cfg.nocstar(8, leader_granularity=1))
    lead = System(cfg.nocstar(8, leader_granularity=8))
    flood.apply_shootdown(0, [(1, PAGE_4K, 55)], now=0)
    lead.apply_shootdown(0, [(1, PAGE_4K, 55)], now=0)
    assert flood.stats.shootdown_messages > lead.stats.shootdown_messages


def test_static_power_ordering():
    """Shared organisations carry router/switch overheads; NOCSTAR's
    interconnect overhead is small next to mesh routers."""
    private = System(cfg.private(16)).static_power_mw()
    nocstar = System(cfg.nocstar(16)).static_power_mw()
    dist = System(cfg.distributed(16)).static_power_mw()
    assert nocstar < dist  # 920e slices + mux switches vs routers
    assert private < dist


def test_energy_summary_has_components():
    system = System(cfg.nocstar(4))
    system.l2_transaction(0, 1, PAGE_4K, 9, now=0)
    system.finalize_stats()
    energy = system.energy_summary(cycles=1000)
    assert energy["total"] > 0
    assert energy["walk"] > 0
    assert energy["static"] > 0


def test_timeline_capture():
    timeline = []
    system = System(cfg.nocstar(16), timeline=timeline)
    system.shared_l2.insert_page_number(1, PAGE_4K, 5)
    system.l2_transaction(0, 1, PAGE_4K, 5, now=0)
    kinds = [k for k, _, _ in timeline]
    assert "request-network" in kinds
    assert "slice-lookup" in kinds
    assert "response-network" in kinds


def test_interval_recording():
    system = System(cfg.nocstar(4), record_intervals=True)
    system.l2_transaction(0, 1, PAGE_4K, 5, now=0)
    assert len(system.intervals) == 1
    start, end, home = system.intervals[0]
    assert end > start
    assert home == system.shared_l2.home(5)
