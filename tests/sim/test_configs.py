"""Configuration factories (Table II)."""

import pytest

from repro.core.config import NocstarConfig
from repro.sim import configs as cfg


def test_private_factory():
    config = cfg.private(16)
    assert config.scheme == cfg.PRIVATE
    assert config.entries_per_core == 1024


def test_monolithic_banks_follow_core_count():
    assert cfg.monolithic(32).monolithic_banks == 4
    assert cfg.monolithic(64).monolithic_banks == 8


def test_monolithic_noc_variants():
    assert cfg.monolithic(16).name == "monolithic-mesh"
    assert cfg.monolithic(16, noc="smart").name == "monolithic-smart"
    with pytest.raises(ValueError):
        cfg.monolithic(16, noc="bus")


def test_monolithic_fixed_latency_disables_network():
    config = cfg.monolithic(32, fixed_latency=25)
    assert config.fixed_shared_latency == 25
    assert config.interconnect == cfg.ZERO
    assert config.name == "monolithic-25cc"


def test_nocstar_uses_area_normalised_slices():
    config = cfg.nocstar(16)
    assert config.entries_per_core == 920


def test_nocstar_custom_config_propagates():
    custom = NocstarConfig(hpc_max=4, slice_entries=920)
    config = cfg.nocstar(16, config=custom)
    assert config.nocstar.hpc_max == 4


def test_ideal_and_nocstar_ideal():
    assert cfg.ideal(16).interconnect == cfg.ZERO
    assert cfg.nocstar_ideal(16).nocstar_ideal


def test_paper_lineup_names():
    names = [c.name for c in cfg.paper_lineup(16)]
    assert names == [
        "private", "monolithic-mesh", "distributed", "nocstar", "ideal"
    ]


def test_validation():
    with pytest.raises(ValueError):
        cfg.SystemConfig(name="x", num_cores=0, scheme=cfg.PRIVATE)
    with pytest.raises(ValueError):
        cfg.SystemConfig(name="x", num_cores=4, scheme="hybrid")
    with pytest.raises(ValueError):
        cfg.SystemConfig(
            name="x", num_cores=4, scheme=cfg.PRIVATE, ptw_policy="nowhere"
        )
    with pytest.raises(ValueError):
        cfg.SystemConfig(
            name="x", num_cores=4, scheme=cfg.PRIVATE, translation_overlap=1.0
        )


def test_renamed():
    assert cfg.private(8).renamed("baseline").name == "baseline"
