"""Configuration factories (Table II)."""

import pytest

from repro.core.config import NocstarConfig
from repro.sim import configs as cfg


def test_private_factory():
    config = cfg.private(16)
    assert config.scheme == cfg.PRIVATE
    assert config.entries_per_core == 1024


def test_monolithic_banks_follow_core_count():
    assert cfg.monolithic(32).monolithic_banks == 4
    assert cfg.monolithic(64).monolithic_banks == 8


def test_monolithic_noc_variants():
    assert cfg.monolithic(16).name == "monolithic-mesh"
    assert cfg.monolithic(16, noc="smart").name == "monolithic-smart"
    with pytest.raises(ValueError):
        cfg.monolithic(16, noc="bus")


def test_monolithic_fixed_latency_disables_network():
    config = cfg.monolithic(32, fixed_latency=25)
    assert config.fixed_shared_latency == 25
    assert config.interconnect == cfg.ZERO
    assert config.name == "monolithic-25cc"


def test_nocstar_uses_area_normalised_slices():
    config = cfg.nocstar(16)
    assert config.entries_per_core == 920


def test_nocstar_custom_config_propagates():
    custom = NocstarConfig(hpc_max=4, slice_entries=920)
    config = cfg.nocstar(16, config=custom)
    assert config.nocstar.hpc_max == 4


def test_ideal_and_nocstar_ideal():
    assert cfg.ideal(16).interconnect == cfg.ZERO
    assert cfg.nocstar_ideal(16).nocstar_ideal


def test_paper_lineup_names():
    names = [c.name for c in cfg.paper_lineup(16)]
    assert names == [
        "private", "monolithic-mesh", "distributed", "nocstar", "ideal"
    ]


def test_validation():
    with pytest.raises(ValueError):
        cfg.SystemConfig(name="x", num_cores=0, scheme=cfg.PRIVATE)
    with pytest.raises(ValueError):
        cfg.SystemConfig(name="x", num_cores=4, scheme="hybrid")
    with pytest.raises(ValueError):
        cfg.SystemConfig(
            name="x", num_cores=4, scheme=cfg.PRIVATE, ptw_policy="nowhere"
        )
    with pytest.raises(ValueError):
        cfg.SystemConfig(
            name="x", num_cores=4, scheme=cfg.PRIVATE, translation_overlap=1.0
        )


def test_renamed():
    assert cfg.private(8).renamed("baseline").name == "baseline"


# ---------------------------------------------------------------------------
# replacement policy / arbitration axis


def test_policy_and_arbitration_validated():
    with pytest.raises(ValueError, match="policy"):
        cfg.SystemConfig(
            name="x", num_cores=4, scheme=cfg.PRIVATE, policy="belady"
        )
    with pytest.raises(ValueError, match="arbitration"):
        cfg.SystemConfig(
            name="x", num_cores=4, scheme=cfg.PRIVATE, arbitration="lottery"
        )


def test_policy_defaults_stay_lru_fifo():
    config = cfg.nocstar(8)
    assert config.policy == "lru"
    assert config.arbitration == "fifo"


def test_registered_policy_variants():
    for name, policy, arbitration in [
        ("distributed-arc", "arc", "fifo"),
        ("distributed-twoq", "twoq", "fifo"),
        ("distributed-prio", "lru", "priority"),
        ("nocstar-arc", "arc", "fifo"),
        ("nocstar-twoq", "twoq", "fifo"),
        ("nocstar-prio", "lru", "priority"),
    ]:
        config = cfg.build_config(name, 8)
        assert config.name == name
        assert config.policy == policy
        assert config.arbitration == arbitration


def test_paper_lineup_accepts_policy_override():
    lineup = cfg.paper_lineup(8, policy="arc")
    assert all(config.policy == "arc" for config in lineup)


def test_policy_is_a_cache_key_field():
    """Two units differing only in policy/arbitration never alias."""
    from repro.exec.cache import unit_key
    from repro.sim.scenario import Scenario

    def key_for(config):
        scenario = Scenario(
            configurations=(config,),
            workloads=("gups",),
            accesses_per_core=100,
            baseline_name=config.name,
        )
        return unit_key(scenario.units()[0], "1")

    base = cfg.distributed(8)
    keys = {
        key_for(base),
        key_for(cfg.build_config("distributed-arc", 8).renamed("distributed")),
        key_for(cfg.build_config("distributed-prio", 8).renamed("distributed")),
    }
    assert len(keys) == 3
