"""Engine mechanics: trace consumption, storms, SMT, determinism."""

import pytest

from repro.sim import configs as cfg
from repro.sim.engine import ShootdownTraffic, StormConfig, simulate
from repro.vm.address import PAGE_4K
from repro.workloads.trace import Workload


def tiny_workload(num_cores=2, accesses=50, gap=2, smt=1, stride=1):
    traces = []
    for core in range(num_cores):
        streams = []
        for s in range(smt):
            streams.append(
                [
                    (gap, 1, PAGE_4K, 1000 + core * 7919 + i * stride)
                    for i in range(accesses)
                ]
            )
        traces.append(streams)
    return Workload("tiny", traces, seed=0, superpages=False)


def test_cycles_cover_all_work():
    wl = tiny_workload(accesses=100, gap=3)
    result = simulate(cfg.private(2), wl)
    # Every access costs at least gap+1 cycles.
    assert result.cycles >= 100 * 4
    assert len(result.per_core_cycles) == 2


def test_all_accesses_observed():
    wl = tiny_workload(num_cores=2, accesses=100)
    result = simulate(cfg.private(2), wl)
    assert result.stats.l1_accesses == 200


def test_core_count_mismatch_rejected():
    with pytest.raises(ValueError):
        simulate(cfg.private(4), tiny_workload(num_cores=2))


def test_deterministic():
    wl = tiny_workload(num_cores=4, accesses=200)
    a = simulate(cfg.nocstar(4), wl)
    b = simulate(cfg.nocstar(4), wl)
    assert a.cycles == b.cycles
    assert a.per_core_cycles == b.per_core_cycles


def test_repeated_page_hits_l1():
    wl = tiny_workload(accesses=100, stride=0)  # same page forever
    result = simulate(cfg.private(2), wl)
    assert result.stats.l1_misses == 2  # one compulsory miss per core
    assert result.stats.l1_hits == 198


def test_smt_streams_share_l1():
    wl = tiny_workload(num_cores=1, accesses=50, smt=2)
    result = simulate(cfg.private(1), wl)
    assert result.stats.l1_accesses == 100


def test_storm_flushes_cause_refetches():
    wl = tiny_workload(num_cores=2, accesses=400, stride=0)
    quiet = simulate(cfg.private(2), wl)
    stormy = simulate(
        cfg.private(2), wl, storm=StormConfig(period=300, burst_entries=16)
    )
    assert stormy.stats.flushes >= 1
    assert stormy.stats.l1_misses > quiet.stats.l1_misses
    assert stormy.cycles > quiet.cycles


def test_storm_period_validated():
    with pytest.raises(ValueError):
        StormConfig(period=0)


def test_shootdown_traffic_sends_messages():
    wl = tiny_workload(num_cores=4, accesses=400)
    result = simulate(
        cfg.nocstar(4),
        wl,
        shootdown=ShootdownTraffic(period=200, entries_per_event=4),
    )
    assert result.stats.shootdown_messages > 0


def test_shootdown_period_validated():
    with pytest.raises(ValueError):
        ShootdownTraffic(period=-1)


def test_app_cycles_populated():
    wl = tiny_workload(num_cores=2, accesses=50)
    wl.info["apps"] = {"left": [0], "right": [1]}
    result = simulate(cfg.private(2), wl)
    assert set(result.app_cycles) == {"left", "right"}
    assert result.app_cycles["left"] > 0


def test_quantum_does_not_change_results_much():
    """The run-ahead quantum is a performance knob, not a semantics one:
    total cycles should be nearly identical across quantum choices."""
    wl = tiny_workload(num_cores=4, accesses=300, stride=3)
    a = simulate(cfg.nocstar(4), wl, quantum=64)
    b = simulate(cfg.nocstar(4), wl, quantum=1024)
    assert abs(a.cycles - b.cycles) / max(a.cycles, 1) < 0.05
