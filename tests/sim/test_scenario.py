"""Scenario: the frozen experiment description and its decomposition."""

import pytest

from repro.sim import configs as cfg
from repro.sim.engine import StormConfig, simulate
from repro.sim.run import compare, run_suite
from repro.sim.scenario import Scenario
from repro.workloads.generators import build_multithreaded
from repro.workloads.registry import get_workload


def test_coerces_names_and_single_values():
    scenario = Scenario(configurations=cfg.private(4), workloads="olio")
    assert scenario.configurations == (cfg.private(4),)
    assert scenario.workloads == (get_workload("olio"),)
    assert scenario.workload_names == ("olio",)


def test_accepts_specs_and_iterables():
    spec = get_workload("gups")
    scenario = Scenario(
        configurations=[cfg.private(8), cfg.nocstar(8)],
        workloads=[spec, "olio"],
    )
    assert scenario.num_cores == 8
    assert scenario.workload_names == ("gups", "olio")


def test_unknown_workload_name_rejected():
    with pytest.raises(KeyError, match="hyperloop"):
        Scenario(configurations=cfg.private(4), workloads="hyperloop")


def test_core_count_mismatch_rejected():
    with pytest.raises(ValueError, match="disagree"):
        Scenario(
            configurations=(cfg.private(4), cfg.nocstar(8)),
            workloads="olio",
        )


def test_duplicate_config_names_rejected():
    with pytest.raises(ValueError, match="duplicate"):
        Scenario(
            configurations=(cfg.private(4), cfg.private(4)),
            workloads="olio",
        )


def test_empty_lineup_rejected():
    with pytest.raises(ValueError):
        Scenario(configurations=(), workloads="olio")


def test_units_are_workload_major():
    scenario = Scenario(
        configurations=(cfg.private(4), cfg.nocstar(4)),
        workloads=("olio", "gups"),
        accesses_per_core=500,
        seed=9,
        storm=StormConfig(period=5_000),
    )
    units = scenario.units()
    assert len(units) == 4
    assert [u.workload.name for u in units] == ["olio", "olio", "gups", "gups"]
    assert [u.config.name for u in units] == [
        "private", "nocstar", "private", "nocstar",
    ]
    assert all(u.seed == 9 and u.storm == scenario.storm for u in units)


def test_for_workload_narrows():
    scenario = Scenario(
        configurations=cfg.paper_lineup(4), workloads=("olio", "gups")
    )
    narrowed = scenario.for_workload("gups")
    assert narrowed.workload_names == ("gups",)
    assert narrowed.configurations == scenario.configurations


def test_simulate_accepts_scenario_and_matches_primitive():
    scenario = Scenario(
        configurations=cfg.nocstar(4),
        workloads="olio",
        accesses_per_core=600,
        seed=5,
    )
    via_scenario = simulate(scenario)
    workload = build_multithreaded(
        get_workload("olio"), 4, accesses_per_core=600, seed=5
    )
    via_primitive = simulate(cfg.nocstar(4), workload)
    assert via_scenario == via_primitive


def test_simulate_rejects_lineup_scenarios():
    scenario = Scenario(
        configurations=(cfg.private(4), cfg.nocstar(4)),
        workloads="olio",
        accesses_per_core=200,
    )
    with pytest.raises(ValueError, match="single-config"):
        simulate(scenario)


def test_compare_accepts_scenario():
    scenario = Scenario(
        configurations=(cfg.private(4), cfg.nocstar(4)),
        workloads="olio",
        accesses_per_core=500,
        seed=3,
    )
    comparison = compare(scenario)
    assert set(comparison.results) == {"private", "nocstar"}
    assert comparison.speedup("nocstar") > 0


def test_compare_scenario_plus_configs_is_an_error():
    scenario = Scenario(configurations=cfg.private(4), workloads="olio")
    with pytest.raises(TypeError):
        compare(scenario, [cfg.private(4)])


def test_run_suite_scenario_matches_deprecated_form():
    lineup = (cfg.private(4), cfg.nocstar(4))
    scenario = Scenario(
        configurations=lineup,
        workloads=("olio", "gups"),
        accesses_per_core=400,
        seed=2,
    )
    new_style = run_suite(scenario)
    with pytest.deprecated_call():
        old_style = run_suite(
            lineup,
            num_cores=4,
            workload_names=["olio", "gups"],
            accesses_per_core=400,
            seed=2,
        )
    assert set(new_style) == set(old_style) == {"olio", "gups"}
    for name in new_style:
        assert new_style[name].results == old_style[name].results


def test_run_suite_num_cores_mismatch_rejected():
    scenario = Scenario(
        configurations=cfg.private(4), workloads="olio", accesses_per_core=100
    )
    with pytest.raises(ValueError, match="disagrees"):
        run_suite(scenario, num_cores=8)


def test_deprecated_compare_still_works():
    workload = build_multithreaded(
        get_workload("olio"), 4, accesses_per_core=300, seed=3
    )
    with pytest.deprecated_call():
        comparison = compare(workload, [cfg.private(4), cfg.nocstar(4)])
    assert comparison.speedup("nocstar") > 0
