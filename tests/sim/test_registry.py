"""The named-configuration registry (@register_config)."""

import pytest

from repro.sim import configs as cfg


def test_available_configs_lists_the_lineup():
    names = cfg.available_configs()
    assert {
        "private", "monolithic", "monolithic-smart", "distributed",
        "nocstar", "nocstar-ideal", "ideal",
    } <= set(names)
    assert list(names) == sorted(names)


def test_build_config_builds_by_name():
    config = cfg.build_config("nocstar", 16)
    assert config.name == "nocstar"
    assert config.num_cores == 16
    assert config.entries_per_core == 920


def test_build_config_variant_factories():
    smart = cfg.build_config("monolithic-smart", 16)
    assert smart.scheme == cfg.MONOLITHIC
    assert smart.interconnect == cfg.SMART
    bus = cfg.build_config("distributed-bus", 16)
    assert bus.interconnect == cfg.BUS


def test_build_config_forwards_overrides():
    config = cfg.build_config("private", 8, translation_overlap=0.2)
    assert config.translation_overlap == 0.2


def test_unknown_name_raises_with_known_list():
    with pytest.raises(KeyError, match="known:"):
        cfg.build_config("hyperloop", 16)


def test_duplicate_registration_rejected():
    with pytest.raises(ValueError, match="already registered"):
        cfg.register_config("private", lambda n, **kw: cfg.private(n, **kw))
    # decorator form must reject duplicates too
    with pytest.raises(ValueError, match="already registered"):

        @cfg.register_config("nocstar")
        def clashing(num_cores, **overrides):
            return cfg.nocstar(num_cores, **overrides)


def test_registration_roundtrip_and_registry_isolation():
    name = "test-registry-temp"
    try:
        cfg.register_config(
            name, lambda n, **kw: cfg.private(n, **kw).renamed(name)
        )
        assert name in cfg.available_configs()
        assert cfg.build_config(name, 4).name == name
    finally:
        cfg._CONFIG_REGISTRY.pop(name, None)
    assert name not in cfg.available_configs()
