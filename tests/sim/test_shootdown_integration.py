"""Shootdown machinery end-to-end: sender blocking, leader policies,
storms interacting with the engine."""

from dataclasses import replace

from repro.sim import configs as cfg
from repro.sim.engine import ShootdownTraffic, StormConfig, simulate
from repro.sim.system import System
from repro.vm.address import PAGE_4K
from repro.workloads.generators import build_multithreaded
from repro.workloads.registry import get_workload


def test_invalidate_sender_blocks_on_ack():
    """Every relayed invalidate charges its sender the round-trip —
    the mechanism that makes the naive flood congest (Fig 16R)."""
    system = System(cfg.nocstar(8, leader_granularity=1))
    system.apply_shootdown(0, [(1, PAGE_4K, 55)], now=0)
    blocked = [core for core in range(8) if system.pending_penalty[core] > 0]
    assert len(blocked) == 8  # everyone relayed, everyone waits


def test_leader_policy_blocks_only_leader_and_initiator():
    system = System(cfg.nocstar(8, leader_granularity=8))
    system.apply_shootdown(5, [(1, PAGE_4K, 55)], now=0)
    # Non-participants pay only the fixed IPI cost.
    from repro.sim.system import IPI_CYCLES

    bystanders = [
        core for core in range(8)
        if core not in (0, 5) and system.pending_penalty[core] == IPI_CYCLES
    ]
    assert len(bystanders) == 6
    assert system.pending_penalty[0] > IPI_CYCLES  # the leader worked
    assert system.pending_penalty[5] > IPI_CYCLES  # the initiator waited


def test_flood_costs_more_total_stall_than_leaders():
    entries = [(1, PAGE_4K, pn) for pn in range(16)]
    flood = System(cfg.nocstar(16, leader_granularity=1))
    lead = System(cfg.nocstar(16, leader_granularity=8))
    flood.apply_shootdown(0, entries, now=0)
    lead.apply_shootdown(0, entries, now=0)
    assert sum(flood.pending_penalty) > sum(lead.pending_penalty)


def test_engine_applies_pending_penalty():
    """Penalties accumulated by shootdowns stretch the run."""
    wl = build_multithreaded(
        get_workload("olio"), 4, accesses_per_core=1200, seed=3
    )
    quiet = simulate(cfg.nocstar(4), wl)
    noisy = simulate(
        cfg.nocstar(4), wl,
        shootdown=ShootdownTraffic(period=400, entries_per_event=16),
    )
    assert noisy.cycles > quiet.cycles
    assert noisy.stats.shootdown_messages > 0


def test_storm_flush_affects_shared_and_private():
    wl = build_multithreaded(
        get_workload("olio"), 4, accesses_per_core=1500, seed=3
    )
    storm = StormConfig(period=2000, burst_entries=64)
    for config in (cfg.private(4), cfg.nocstar(4)):
        quiet = simulate(config, wl)
        stormy = simulate(config, wl, storm=storm)
        assert stormy.stats.flushes >= 1
        assert stormy.cycles > quiet.cycles


def test_round_trip_mode_runs_clean():
    """ROUND_TRIP acquisition must hold/release without tripping the
    held-link protocol check, across hits, misses, and prefetches."""
    from repro.core.config import NocstarConfig, ROUND_TRIP

    wl = build_multithreaded(
        get_workload("canneal"), 8, accesses_per_core=1500, seed=5
    )
    config = cfg.nocstar(8, config=NocstarConfig(acquire=ROUND_TRIP))
    config = replace(config, prefetch_distances=(1,))
    result = simulate(config, wl)
    assert result.cycles > 0
    assert result.stats.prefetches > 0


def test_remote_ptw_with_round_trip_mode():
    from repro.core.config import NocstarConfig, ROUND_TRIP

    wl = build_multithreaded(
        get_workload("olio"), 8, accesses_per_core=1200, seed=5
    )
    config = cfg.nocstar(8, config=NocstarConfig(acquire=ROUND_TRIP))
    config = replace(config, ptw_policy=cfg.PTW_REMOTE)
    result = simulate(config, wl)
    assert result.stats.walks > 0
