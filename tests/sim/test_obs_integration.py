"""End-to-end observability: instrumentation wired through the engine.

The overhead contract (ISSUE satellite): a metrics-disabled run must be
*identical* to the seed path — same RunResult fields, ``metrics`` and
``trace`` None — and an observed run must not perturb timing.
"""

from repro.sim import configs as cfg
from repro.sim.engine import ShootdownTraffic, StormConfig, simulate
from repro.sim.scenario import Scenario
from repro.workloads.generators import build_multithreaded
from repro.workloads.registry import get_workload


def _workload(cores=4, accesses=600, seed=3, name="gups"):
    return build_multithreaded(
        get_workload(name), cores, accesses_per_core=accesses, seed=seed
    )


def test_disabled_run_carries_no_observability():
    result = simulate(cfg.nocstar(4), _workload())
    assert result.metrics is None
    assert result.trace is None


def test_observation_does_not_change_the_simulation():
    workload = _workload()
    for config in (cfg.nocstar(4), cfg.private(4), cfg.monolithic(4)):
        plain = simulate(config, workload)
        observed = simulate(config, workload, metrics=True, trace=True)
        assert observed.cycles == plain.cycles
        assert observed.per_core_cycles == plain.per_core_cycles
        assert observed.stats.as_dict() == plain.stats.as_dict()
        assert observed.energy == plain.energy
        assert observed.network == plain.network


def test_snapshot_agrees_with_run_stats():
    result = simulate(cfg.nocstar(4), _workload(), metrics=True, trace=True)
    snap = result.metrics
    counters, gauges = snap["counters"], snap["gauges"]
    histograms = snap["histograms"]
    # One translation-stall observation per L1 miss.
    assert (
        histograms["translation.stall_cycles"]["count"]
        == result.stats.l1_misses
    )
    # Per-slice hit/miss gauges sum to the run totals.
    slice_hits = sum(
        value for name, value in gauges.items()
        if name.startswith("tlb.slice.") and name.endswith(".hits")
    )
    slice_misses = sum(
        value for name, value in gauges.items()
        if name.startswith("tlb.slice.") and name.endswith(".misses")
    )
    assert slice_hits == result.stats.l2_hits
    assert slice_misses == result.stats.l2_misses
    assert counters["tlb.l1.misses"] == result.stats.l1_misses
    # Walk histogram: one observation per walk (incl. prefetch walks).
    assert (
        histograms["walk.latency"]["count"]
        == result.stats.walks + result.stats.prefetches
    )
    assert gauges["run.cycles"] == result.cycles
    # NOCSTAR setup counters surfaced under the noc.* namespace.
    assert counters["noc.messages"] == result.network["messages"]
    # Per-link utilization gauges exist and stay in [0, 1].
    utils = [v for k, v in gauges.items() if k.endswith(".util")]
    assert utils and all(0.0 <= u <= 1.0 for u in utils)
    assert gauges["trace.emitted"] == len(result.trace)
    assert gauges["trace.dropped"] == 0


def test_trace_has_expected_event_kinds():
    result = simulate(cfg.nocstar(4), _workload(), metrics=True, trace=True)
    kinds = {event["kind"] for event in result.trace}
    assert {"l1_lookup", "l2_lookup", "nocstar_setup",
            "walk_begin", "walk_end"} <= kinds
    smart = simulate(
        cfg.monolithic(4, noc=cfg.SMART),
        _workload(),
        metrics=True,
        trace=True,
    )
    assert "smart_setup" in {event["kind"] for event in smart.trace}


def test_storm_and_shootdown_events_traced():
    result = simulate(
        cfg.nocstar(4),
        _workload(),
        storm=StormConfig(period=4_000, burst_entries=32),
        shootdown=ShootdownTraffic(period=3_000),
        metrics=True,
        trace=True,
    )
    kinds = {event["kind"] for event in result.trace}
    assert "storm_flush" in kinds
    assert "shootdown" in kinds


def test_scenario_flags_flow_to_results():
    scenario = Scenario(
        configurations=cfg.nocstar(4),
        workloads="gups",
        accesses_per_core=400,
        seed=3,
        baseline_name="nocstar",
        metrics=True,
        trace=True,
    )
    result = simulate(scenario)
    assert result.metrics is not None
    assert result.trace
    d = result.as_dict()
    assert d["metrics"] == result.metrics
    assert d["trace"] == result.trace


def test_simulate_scenario_accepts_obs_overrides():
    scenario = Scenario(
        configurations=cfg.nocstar(4),
        workloads="gups",
        accesses_per_core=400,
        seed=3,
        baseline_name="nocstar",
    )
    result = simulate(scenario, metrics=True)
    assert result.metrics is not None
    assert result.trace is None
