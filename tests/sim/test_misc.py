"""Odds and ends: serialisation, trace helpers, package metadata."""

import json

import repro
from repro.sim import configs as cfg
from repro.sim.engine import StormConfig, simulate
from repro.vm.address import PAGE_4K
from repro.vm.address_space import Extent, SharedRegion
from repro.workloads.trace import Workload, flatten_streams


def tiny_workload():
    stream = [(2, 1, PAGE_4K, 100 + i) for i in range(60)]
    return Workload("tiny", [[stream], [list(stream)]], seed=0,
                    superpages=False)


def test_version_string():
    assert repro.__version__.count(".") == 2


def test_run_result_round_trips_through_json():
    result = simulate(cfg.nocstar(2), tiny_workload())
    payload = json.dumps(result.as_dict())
    decoded = json.loads(payload)
    assert decoded["config"] == "nocstar"
    assert decoded["cycles"] == result.cycles
    assert decoded["stats"]["walks"] == result.stats.walks


def test_flatten_streams():
    wl = tiny_workload()
    streams = flatten_streams(wl)
    assert len(streams) == 2
    assert all(len(s) == 60 for s in streams)


def test_workload_properties():
    wl = tiny_workload()
    assert wl.num_cores == 2
    assert wl.smt == 1
    assert wl.total_accesses == 120


def test_shared_region_dataclass():
    region = SharedRegion(
        extent=Extent(0, 16, shared=True), mappers=(1, 2, 3)
    )
    assert region.extent.shared
    assert 2 in region.mappers


def test_storm_without_flush_only_invalidates():
    wl = tiny_workload()
    storm = StormConfig(period=100, burst_entries=8, flush=False)
    result = simulate(cfg.nocstar(2), wl, storm=storm)
    assert result.stats.flushes == 0
    assert result.stats.shootdown_messages > 0
