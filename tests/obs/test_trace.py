"""EventTrace: ring buffer, window filtering, JSONL round trip."""

import pytest

from repro.obs import EVENT_KINDS, EventTrace, filter_window


def test_unknown_kind_rejected():
    trace = EventTrace()
    with pytest.raises(ValueError, match="unknown event kind"):
        trace.emit(0, "made_up_kind")


def test_emit_and_order():
    trace = EventTrace(capacity=16)
    trace.emit(5, "walk_begin", core=1)
    trace.emit(9, "walk_end", core=1, latency=4)
    records = trace.to_records()
    assert [r["kind"] for r in records] == ["walk_begin", "walk_end"]
    assert records[0]["cycle"] == 5 and records[1]["latency"] == 4
    assert len(trace) == 2 and trace.emitted == 2 and trace.dropped == 0


def test_ring_keeps_newest_and_counts_drops():
    trace = EventTrace(capacity=4)
    for i in range(10):
        trace.emit(i, "l1_lookup", core=0)
    assert trace.emitted == 10
    assert trace.dropped == 6
    cycles = [r["cycle"] for r in trace.to_records()]
    assert cycles == [6, 7, 8, 9]  # oldest -> newest, last capacity kept


def test_window_filtering():
    trace = EventTrace()
    for i in range(10):
        trace.emit(i, "l2_lookup", core=0, slice=0, hit=True)
    assert [r["cycle"] for r in trace.window(3, 6)] == [3, 4, 5]
    assert [r["cycle"] for r in trace.window(start=8)] == [8, 9]
    assert [r["cycle"] for r in trace.window(end=2)] == [0, 1]
    assert filter_window(trace.to_records(), 9, None)[0]["cycle"] == 9


def test_window_filtering_across_ring_wrap():
    """Window queries must see the re-ordered (oldest-first) view even
    when the ring has wrapped and the physical buffer order differs
    from emission order."""
    trace = EventTrace(capacity=6)
    for i in range(10):  # wraps: buffer holds cycles 4..9, head mid-array
        trace.emit(i, "l1_lookup", core=0)
    assert trace.dropped == 4
    # Bounds straddling the wrap point return contiguous cycles.
    assert [r["cycle"] for r in trace.window(5, 8)] == [5, 6, 7]
    # Unbounded sides clip to what the ring still holds.
    assert [r["cycle"] for r in trace.window(start=7)] == [7, 8, 9]
    assert [r["cycle"] for r in trace.window(end=6)] == [4, 5]
    # Evicted cycles are gone, not silently remapped.
    assert trace.window(0, 4) == []
    # A window over everything equals the full oldest-first view.
    assert trace.window() == trace.to_records()


def test_jsonl_round_trip(tmp_path):
    trace = EventTrace()
    trace.emit(1, "shootdown", initiator=3, entries=2)
    trace.emit(2, "storm_flush", seq=0, entries=512, flush=True)
    path = str(tmp_path / "trace.jsonl")
    assert trace.export_jsonl(path) == 2
    loaded = EventTrace.load_jsonl(path)
    assert loaded == trace.to_records()


def test_event_kinds_is_a_closed_vocabulary():
    trace = EventTrace()
    for kind in EVENT_KINDS:
        trace.emit(0, kind)
    assert len(trace) == len(EVENT_KINDS)
