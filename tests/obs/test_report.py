"""The report renderer and obs JSONL loader."""

from repro.obs import load_obs_records, render_report, write_obs_jsonl
from repro.sim import configs as cfg
from repro.sim.engine import simulate
from repro.workloads.generators import build_multithreaded
from repro.workloads.registry import get_workload


def _observed_result(config_name="nocstar", cores=4, accesses=500):
    workload = build_multithreaded(
        get_workload("gups"), cores, accesses_per_core=accesses, seed=3
    )
    config = cfg.build_config(config_name, cores)
    return simulate(config, workload, metrics=True, trace=True)


def test_report_renders_required_sections():
    result = _observed_result()
    labelled = [("nocstar", "gups", result)]
    from repro.obs.report import event_records_from, run_records_from

    text = render_report(
        run_records_from(labelled), event_records_from(labelled)
    )
    assert "translation latency" in text
    assert "p50" in text and "p95" in text and "p99" in text
    assert "NoC link utilization" in text
    assert "hottest L2 slices" in text
    assert "page-walk latency" in text
    assert "events" in text
    assert "nocstar/gups" in text


def test_report_window_restricts_events():
    result = _observed_result()
    labelled = [("nocstar", "gups", result)]
    from repro.obs.report import event_records_from, run_records_from

    runs = run_records_from(labelled)
    events = event_records_from(labelled)
    narrow = render_report(runs, events, window=(0, 1))
    wide = render_report(runs, events)
    assert narrow != wide


def test_empty_report_has_placeholder():
    text = render_report([], [])
    assert "no metric snapshots or events" in text


def test_obs_jsonl_round_trip(tmp_path):
    result = _observed_result()
    path = str(tmp_path / "obs.jsonl")
    lines = write_obs_jsonl(path, [("nocstar", "gups", result)])
    assert lines == 1 + len(result.trace)
    runs, events = load_obs_records([path])
    assert len(runs) == 1
    assert runs[0]["config"] == "nocstar"
    assert runs[0]["metrics"] == result.metrics
    assert len(events) == len(result.trace)


def test_loader_skips_absent_files_with_a_warning(tmp_path, capsys):
    present = tmp_path / "obs.jsonl"
    present.write_text('{"type": "run", "cycles": 5, "metrics": null}\n')
    runs, events = load_obs_records(
        [str(tmp_path / "missing.jsonl"), str(present)]
    )
    assert len(runs) == 1 and not events
    assert "no such obs file" in capsys.readouterr().err


def test_loader_handles_empty_files(tmp_path):
    path = tmp_path / "empty.jsonl"
    path.write_text("")
    runs, events = load_obs_records([str(path)])
    assert runs == [] and events == []
    assert "no metric snapshots or events" in render_report(runs, events)


def test_loader_skips_malformed_and_non_object_lines(tmp_path, capsys):
    path = tmp_path / "mixed.jsonl"
    path.write_text(
        "\n".join(
            [
                '{"type": "run", "cycles": 9, "metrics": null}',
                "{not json at all",
                '[1, 2, 3]',
                '"just a string"',
                '{"type": "event", "kind": "l1_lookup", "cycle": 4}',
            ]
        )
        + "\n"
    )
    runs, events = load_obs_records([str(path)])
    assert len(runs) == 1 and len(events) == 1
    assert "malformed JSONL line" in capsys.readouterr().err


def test_report_renders_unknown_kinds_and_bad_cycles(tmp_path):
    # Records from a newer schema: an unknown event kind must render,
    # and an event with a non-numeric cycle must be skipped, not crash.
    events = [
        {"kind": "fault_hyperdrive", "cycle": 10},
        {"kind": "fault_hyperdrive", "cycle": 20},
        {"kind": "weird", "cycle": "not-a-number"},
    ]
    text = render_report([], events)
    assert "fault_hyperdrive" in text
    assert "weird" not in text  # unusable timestamp: dropped row


def test_report_renders_fault_counters(tmp_path):
    runs = [
        {
            "config": "nocstar",
            "workload": "gups",
            "cycles": 100,
            "metrics": {
                "counters": {
                    "faults.arbiter_drops": 7,
                    "faults.fallback_messages": 2,
                    "faults.degraded_walks": 1,
                }
            },
        }
    ]
    text = render_report(runs, [])
    assert "fault injection" in text
    assert "nocstar/gups" in text


def test_loader_accepts_runner_telemetry_shape(tmp_path):
    # A telemetry record has no "type" field, but carries cycles +
    # metrics — the loader must classify it as a run record.
    import json

    path = tmp_path / "telemetry.jsonl"
    record = {
        "schema": 2, "config": "nocstar", "workload": "gups",
        "cache": "miss", "cycles": 123, "metrics": {"counters": {}},
    }
    path.write_text(json.dumps(record) + "\n\n")
    runs, events = load_obs_records([str(path)])
    assert len(runs) == 1 and not events
    assert runs[0]["cycles"] == 123
