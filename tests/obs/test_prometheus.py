"""Prometheus text exposition: naming, values, and format grammar."""

import math
import re

from repro.obs import MetricsRegistry
from repro.obs.prometheus import (
    CONTENT_TYPE,
    metric_name,
    render_prometheus,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r'(?:\{le="(?P<le>[^"]*)"\})? (?P<value>\S+)$'
)


def parse_exposition(text):
    """Minimal 0.0.4 text-format parser: ``{metric: (type, samples)}``.

    Enforces the line grammar the serve smoke and scrapers rely on:
    every sample line matches name[{le=...}] value, every sample is
    preceded by a # TYPE declaration for its family, and values parse
    as floats.
    """
    assert text.endswith("\n")
    families = {}
    current = None
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, kind = rest.rsplit(" ", 1)
            assert _NAME_RE.match(name), name
            assert kind in ("counter", "gauge", "histogram"), kind
            assert name not in families, f"duplicate family {name}"
            families[name] = (kind, [])
            current = name
            continue
        match = _SAMPLE_RE.match(line)
        assert match, f"unparseable sample line: {line!r}"
        sample = match.group("name")
        assert current is not None and sample.startswith(current), line
        value = match.group("value")
        float(value) if value not in ("+Inf", "-Inf") else None
        families[current][1].append(
            (sample, match.group("le"), value)
        )
    return families


def test_content_type_is_prometheus_004():
    assert CONTENT_TYPE == "text/plain; version=0.0.4; charset=utf-8"


def test_metric_name_sanitisation():
    assert metric_name("serve.queue_ms") == "serve_queue_ms"
    assert metric_name("noc.link.0>1.util") == "noc_link_0_1_util"
    assert metric_name("9lives") == "_9lives"  # leading digit escaped


def test_counters_gauges_and_histograms_render():
    registry = MetricsRegistry()
    registry.counter("serve.executions").inc(3)
    registry.gauge("serve.queue_depth").set(2)
    histogram = registry.histogram("serve.queue_ms", buckets=(1, 10, 100))
    for value in (0.5, 5, 5, 50, 5000):
        histogram.observe(value)
    text = render_prometheus(registry.snapshot())
    families = parse_exposition(text)

    kind, samples = families["serve_executions_total"]
    assert kind == "counter"
    assert samples == [("serve_executions_total", None, "3")]

    kind, samples = families["serve_queue_depth"]
    assert kind == "gauge"
    assert samples == [("serve_queue_depth", None, "2")]

    kind, samples = families["serve_queue_ms"]
    assert kind == "histogram"
    buckets = [(le, float(v)) for name, le, v in samples
               if name == "serve_queue_ms_bucket"]
    # Cumulative, monotone, closed by +Inf at the full count.
    assert buckets == [("1", 1.0), ("10", 3.0), ("100", 4.0),
                       ("+Inf", 5.0)]
    values = {name: v for name, le, v in samples if le is None}
    assert float(values["serve_queue_ms_count"]) == 5.0
    assert float(values["serve_queue_ms_sum"]) == 5060.5


def test_inf_bucket_synthesised_when_overflow_empty():
    """The snapshot omits empty buckets; the +Inf closer must still
    appear (Prometheus requires it) at the full count."""
    registry = MetricsRegistry()
    registry.histogram("lat", buckets=(1, 10)).observe(0.5)
    text = render_prometheus(registry.snapshot())
    assert 'lat_bucket{le="+Inf"} 1' in text
    families = parse_exposition(text)
    buckets = [s for s in families["lat"][1] if s[0] == "lat_bucket"]
    assert buckets[-1][1] == "+Inf"


def test_prefix_and_empty_snapshot():
    registry = MetricsRegistry()
    registry.counter("jobs").inc(1)
    text = render_prometheus(registry.snapshot(), prefix="repro.")
    assert "# TYPE repro_jobs_total counter" in text
    assert render_prometheus({}) == "\n"


def test_none_values_render_as_nan():
    text = render_prometheus({"gauges": {"warm": None}})
    families = parse_exposition(text)
    ((_, _, value),) = families["warm"][1]
    assert math.isnan(float(value))
