"""Span tracing: contexts, tree analysis, sidecars, and purity."""

import time

import pytest

from repro.exec.cache import unit_key
from repro.obs.spans import (
    SPAN_SCHEMA,
    Span,
    Tracer,
    build_tree,
    coverage,
    load_spans,
    render_tree,
    self_times,
    span_record,
    validate_context,
    write_spans,
)
from repro.sim.configs import nocstar
from repro.sim.engine import ENGINE_VERSION
from repro.sim.scenario import Scenario


# ----------------------------------------------------------------------
# trace contexts

def test_validate_context_accepts_none_and_full():
    assert validate_context(None) is None
    context = {"trace_id": "a" * 16, "parent_id": "b" * 16}
    assert validate_context(context) == context
    assert validate_context({"trace_id": "abc"}) == {"trace_id": "abc"}


@pytest.mark.parametrize(
    "context",
    [
        "not-a-dict",
        {"trace_id": "abc", "span_id": "nope"},  # unknown key
        {"parent_id": "abc"},                     # missing trace_id
        {"trace_id": ""},                         # empty value
        {"trace_id": 123},                        # non-string value
    ],
)
def test_validate_context_rejects_malformed(context):
    with pytest.raises(ValueError):
        validate_context(context)


# ----------------------------------------------------------------------
# spans and tracers

def test_span_context_names_span_as_parent():
    span = Span("client.submit", trace_id="t1")
    assert span.context() == {"trace_id": "t1", "parent_id": span.span_id}


def test_tracer_records_nested_spans():
    tracer = Tracer()
    with tracer.span("outer") as outer:
        with tracer.span("inner", parent=outer, label="x"):
            pass
    assert [r["name"] for r in tracer.records] == ["inner", "outer"]
    inner, outer_rec = tracer.records
    assert inner["parent_id"] == outer_rec["span_id"]
    assert inner["trace_id"] == outer_rec["trace_id"] == tracer.trace_id
    assert inner["attrs"] == {"label": "x"}
    assert all(r["schema"] == SPAN_SCHEMA for r in tracer.records)


def test_tracer_span_marks_error_status():
    tracer = Tracer()
    with pytest.raises(ValueError):
        with tracer.span("doomed"):
            raise ValueError("boom")
    assert tracer.records[0]["status"] == "error: ValueError"


def test_tracer_extend_filters_non_spans():
    tracer = Tracer()
    foreign = [
        span_record(name="server.submit", trace_id=tracer.trace_id,
                    start_s=1.0, end_s=2.0),
        {"type": "run", "cycles": 42},       # not a span
        "garbage",
    ]
    assert tracer.extend(foreign) == 1
    assert tracer.extend(None) == 0
    assert len(tracer.records) == 1


# ----------------------------------------------------------------------
# sidecar I/O

def test_write_load_round_trip_sorted(tmp_path):
    path = str(tmp_path / "spans.jsonl")
    records = [
        span_record(name="late", trace_id="t", start_s=5.0, end_s=6.0),
        span_record(name="early", trace_id="t", start_s=1.0, end_s=2.0),
    ]
    assert write_spans(path, records) == 2
    loaded = load_spans(path)
    assert [r["name"] for r in loaded] == ["early", "late"]


def test_load_spans_tolerates_foreign_lines(tmp_path):
    path = tmp_path / "mixed.jsonl"
    span = span_record(name="s", trace_id="t", start_s=0.0, end_s=1.0)
    import json
    path.write_text(
        json.dumps(span) + "\n"
        + '{"type": "run", "cycles": 1}\n'
        + "not json at all\n"
        + "\n"
    )
    loaded = load_spans(str(path))
    assert len(loaded) == 1 and loaded[0]["name"] == "s"


# ----------------------------------------------------------------------
# tree analysis

def _tree_records():
    root = span_record(name="root", trace_id="t", span_id="r",
                       start_s=0.0, end_s=10.0)
    a = span_record(name="a", trace_id="t", span_id="a", parent_id="r",
                    start_s=1.0, end_s=4.0)
    b = span_record(name="b", trace_id="t", span_id="b", parent_id="r",
                    start_s=3.0, end_s=6.0)  # overlaps a by 1s
    leaf = span_record(name="leaf", trace_id="t", span_id="l",
                       parent_id="a", start_s=1.0, end_s=4.0)
    return [root, a, b, leaf]


def test_build_tree_and_orphan_roots():
    records = _tree_records()
    orphan = span_record(name="orphan", trace_id="t", parent_id="missing",
                         start_s=0.5, end_s=0.6)
    roots, children = build_tree(records + [orphan])
    assert [r["name"] for r in roots] == ["root", "orphan"]
    assert [c["name"] for c in children["r"]] == ["a", "b"]


def test_coverage_identity_with_overlapping_children():
    records = _tree_records()
    _, children = build_tree(records)
    info = coverage(records[0], children)
    # a covers [1,4), b covers [3,6): union is 5s of the 10s root.
    assert info["duration"] == pytest.approx(10.0)
    assert info["child_s"] == pytest.approx(5.0)
    assert info["gap_s"] == pytest.approx(5.0)
    assert info["duration"] == pytest.approx(info["child_s"] + info["gap_s"])


def test_coverage_clips_children_to_parent():
    parent = span_record(name="p", trace_id="t", span_id="p",
                         start_s=2.0, end_s=4.0)
    wide = span_record(name="w", trace_id="t", parent_id="p",
                       start_s=0.0, end_s=10.0)
    _, children = build_tree([parent, wide])
    info = coverage(parent, children)
    assert info["child_s"] == pytest.approx(2.0)
    assert info["gap_s"] == pytest.approx(0.0)


def test_self_times_ranks_by_uncovered_time():
    ranked = self_times(_tree_records())
    names = [record["name"] for _, record in ranked]
    # root has 5s uncovered; leaf fully covers a (0s self).
    assert names[0] == "root"
    assert ranked[0][0] == pytest.approx(5.0)
    by_name = {record["name"]: self_s for self_s, record in ranked}
    assert by_name["a"] == pytest.approx(0.0)
    assert by_name["leaf"] == pytest.approx(3.0)


def test_render_tree_shows_hierarchy_and_critical_path():
    text = render_tree(_tree_records(), top=3)
    assert "span trace — 4 span(s), 1 root(s)" in text
    assert "critical path" in text
    lines = text.splitlines()
    root_line = next(line for line in lines if line.startswith("root"))
    assert "10000.0ms" in root_line
    a_line = next(line for line in lines if line.strip().startswith("a "))
    assert a_line.startswith("  ")  # indented under root


def test_render_tree_empty():
    assert "no span records" in render_tree([])


# ----------------------------------------------------------------------
# purity: span/timestamp data can never reach a cache key

def test_unit_key_has_no_wall_clock_inputs():
    """Tracing is a pure observer: the result-cache key is a function
    of the scenario alone, so two identical units keyed seconds apart
    (with tracing on or off) hit the same cache entry."""
    scenario = Scenario(configurations=(nocstar(4),), workloads=("gups",),
                        accesses_per_core=100, seed=1)
    unit = scenario.units()[0]
    first = unit_key(unit, ENGINE_VERSION)
    time.sleep(0.01)
    assert unit_key(unit, ENGINE_VERSION) == first
