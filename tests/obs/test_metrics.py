"""Metrics primitives: counters, gauges, histograms, sinks."""

import json

import pytest

from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSink,
    NullSink,
    NULL_SINK,
    StreamingQuantile,
)


def test_counter_and_gauge():
    c = Counter()
    c.inc()
    c.inc(4)
    assert c.value == 5
    g = Gauge()
    g.set(3.5)
    assert g.value == 3.5


def test_streaming_quantile_exact_for_short_streams():
    q = StreamingQuantile(max_samples=128)
    for value in range(101):
        q.add(value)
    assert q.percentile(0.0) == 0
    assert q.percentile(0.5) == 50
    assert q.percentile(1.0) == 100
    assert q.percentile(0.95) == pytest.approx(95.0)


def test_streaming_quantile_empty_and_bounds():
    q = StreamingQuantile()
    assert q.percentile(0.5) is None
    with pytest.raises(ValueError):
        q.percentile(1.5)


def test_streaming_quantile_bounded_memory_and_deterministic():
    a = StreamingQuantile(max_samples=64)
    b = StreamingQuantile(max_samples=64)
    for value in range(10_000):
        a.add(value)
        b.add(value)
    assert a.retained <= 64
    assert a.count == 10_000
    # Same stream -> identical estimates (no randomness anywhere).
    for q in (0.5, 0.95, 0.99):
        assert a.percentile(q) == b.percentile(q)
    # The stride-sampled estimate stays in the right ballpark.
    assert 3_000 < a.percentile(0.5) < 7_000


def test_histogram_buckets_and_overflow():
    h = Histogram(buckets=(1, 2, 4, 8))
    for value in (1, 2, 3, 100):
        h.observe(value)
    snap = h.snapshot()
    assert snap["count"] == 4
    assert snap["sum"] == 106
    assert snap["min"] == 1
    assert snap["max"] == 100
    bounds = [bound for bound, _ in snap["buckets"]]
    assert None in bounds  # the overflow bucket got the 100
    assert snap["p50"] is not None


def test_histogram_default_buckets_are_powers_of_two():
    assert DEFAULT_LATENCY_BUCKETS[0] == 1
    assert all(
        b == 2 * a
        for a, b in zip(DEFAULT_LATENCY_BUCKETS, DEFAULT_LATENCY_BUCKETS[1:])
    )


def test_registry_get_or_create_and_snapshot_sorted():
    reg = MetricsRegistry()
    reg.counter("b").inc()
    reg.counter("a").inc(2)
    reg.gauge("g").set(7)
    reg.histogram("h").observe(3)
    assert reg.counter("a") is reg.counter("a")
    snap = reg.snapshot()
    assert list(snap["counters"]) == ["a", "b"]
    assert snap["counters"]["a"] == 2
    assert snap["gauges"]["g"] == 7
    assert snap["histograms"]["h"]["count"] == 1
    json.dumps(snap)  # snapshot must be JSON-serialisable


def test_null_sink_is_free_and_disabled():
    assert NULL_SINK.enabled is False
    assert NULL_SINK.registry is None
    assert NULL_SINK.trace is None
    # All writes are silent no-ops.
    NULL_SINK.count("x")
    NULL_SINK.gauge("x", 1)
    NULL_SINK.observe("x", 1)
    NULL_SINK.event(0, "not-even-validated")


def test_metrics_sink_fans_into_registry():
    sink = MetricsSink()
    assert sink.enabled is True
    sink.count("c", 3)
    sink.gauge("g", 2.0)
    sink.observe("h", 9)
    snap = sink.registry.snapshot()
    assert snap["counters"]["c"] == 3
    assert snap["gauges"]["g"] == 2.0
    assert snap["histograms"]["h"]["count"] == 1


def test_metrics_sink_is_a_null_sink_subtype():
    # Components type against the NullSink interface; the live sink
    # must be substitutable.
    assert isinstance(MetricsSink(), NullSink)
