"""Executor + analytics: determinism, caching, artifacts, telemetry."""

import os
import warnings

import pytest

from repro.exec.runner import Runner
from repro.experiments import (
    CampaignSpec,
    Scale,
    run_campaign,
    write_table_csv,
)
from repro.experiments import analytics
from repro.obs import MetricsRegistry, Tracer

#: A deliberately tiny grid (2 cores x 2 workloads x 2 configs at 300
#: accesses) so the determinism matrix stays test-suite fast.
TINY = CampaignSpec(
    name="tiny-exec",
    title="tiny executor campaign",
    figure="Fig T",
    config_names=("private", "distributed"),
    reducer="fig2",
    scales=(("smoke", Scale(300, ("olio", "gups"), (2, 4))),),
    seed=5,
)


def read_artifacts(directory):
    out = {}
    for name in sorted(os.listdir(directory)):
        if name.endswith((".csv", ".json")):
            with open(os.path.join(directory, name), "rb") as fh:
                out[name] = fh.read()
    return out


def test_run_produces_tables_and_summary():
    run = run_campaign(TINY, scale="smoke")
    assert run.stats["scenarios"] == 2
    assert run.stats["units"] == 2 * 2 * 2  # cores x workloads x configs
    assert len(run.comparisons) == 4
    rows = run.tables["miss_elimination"]
    assert len(rows) == 4
    assert {row["cores"] for row in rows} == {2, 4}
    assert set(run.summary) == {"elim_avg.c2", "elim_avg.c4", "elim_min"}


def test_meta_campaign_refuses_to_run():
    with pytest.raises(ValueError, match="expand"):
        run_campaign("headline", scale="smoke")


def test_artifacts_byte_identical_across_jobs(tmp_path):
    serial = run_campaign(TINY, scale="smoke",
                          runner=Runner(jobs=1, cache_dir=None))
    fanned = run_campaign(TINY, scale="smoke",
                          runner=Runner(jobs=4, cache_dir=None))
    serial.write(str(tmp_path / "serial"), plot=False)
    fanned.write(str(tmp_path / "fanned"), plot=False)
    a = read_artifacts(str(tmp_path / "serial" / TINY.name))
    b = read_artifacts(str(tmp_path / "fanned" / TINY.name))
    assert set(a) == {"miss_elimination.csv", "summary.json"}
    assert a == b


def test_artifacts_byte_identical_on_warm_cache(tmp_path):
    cache = str(tmp_path / "cache")
    cold = run_campaign(TINY, scale="smoke",
                        runner=Runner(jobs=1, cache_dir=cache))
    warm = run_campaign(TINY, scale="smoke",
                        runner=Runner(jobs=1, cache_dir=cache))
    assert cold.stats["cache_misses"] > 0
    assert warm.stats["cache_hits"] == cold.stats["units"]
    assert warm.stats["cache_misses"] == 0
    cold.write(str(tmp_path / "cold"), plot=False)
    warm.write(str(tmp_path / "warm"), plot=False)
    assert read_artifacts(str(tmp_path / "cold" / TINY.name)) == read_artifacts(
        str(tmp_path / "warm" / TINY.name)
    )


def test_telemetry_spans_and_counters():
    tracer = Tracer()
    metrics = MetricsRegistry()
    run_campaign(TINY, scale="smoke", tracer=tracer, metrics=metrics)
    kinds = [record["name"] for record in tracer.records]
    assert "campaign.run" in kinds
    assert kinds.count("campaign.scenario") == 2
    assert metrics.counter("experiments.tiny-exec.scenarios").value == 2
    assert metrics.counter("experiments.tiny-exec.units").value == 8


def test_summary_json_payload(tmp_path):
    run = run_campaign(TINY, scale="smoke")
    run.write(str(tmp_path), plot=False)
    from repro.experiments import read_summary

    payload = read_summary(str(tmp_path), TINY.name)
    assert payload["schema"] == analytics.ARTIFACT_SCHEMA
    assert payload["campaign"] == "tiny-exec"
    assert payload["scale"] == "smoke"
    assert payload["grid_size"] == 8
    assert payload["summary"] == run.summary


def test_csv_writer_rejects_bad_tables(tmp_path):
    with pytest.raises(ValueError, match="empty"):
        write_table_csv(str(tmp_path / "x.csv"), [])
    with pytest.raises(ValueError, match="ragged"):
        write_table_csv(
            str(tmp_path / "y.csv"), [{"a": 1}, {"b": 2}]
        )


def test_plot_degrades_to_csv_only_without_matplotlib(tmp_path, monkeypatch):
    try:
        import matplotlib  # noqa: F401
    except ImportError:
        pass
    else:
        pytest.skip("matplotlib installed; degradation path not reachable")
    run = run_campaign(TINY, scale="smoke")
    monkeypatch.setattr(analytics, "_PLOT_WARNED", False)
    with pytest.warns(UserWarning, match="repro\\[plot\\]"):
        written = run.write(str(tmp_path / "one"), plot=True)
    assert not any(path.endswith(".png") for path in written)
    assert any(path.endswith("summary.json") for path in written)
    # the warning fires once per process, not once per campaign
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        run.write(str(tmp_path / "two"), plot=True)


#: Tiny policy-zoo grid: enough to exercise the offline-OPT reducer
#: without campaign-scale replay cost.
TINY_ZOO = CampaignSpec(
    name="tiny-zoo",
    title="tiny policy-zoo campaign",
    figure="Fig T",
    config_names=("private", "distributed", "distributed-arc"),
    reducer="policy_zoo",
    scales=(("smoke", Scale(300, ("gups",), (4,))),),
    seed=5,
    overrides=(("entries_per_core", 64),),
)


def test_policy_zoo_reducer_reports_pct_of_opt():
    run = run_campaign(TINY_ZOO, scale="smoke")
    rows = run.tables["policy_zoo"]
    assert len(rows) == 3  # one per lineup member
    by_config = {row["config"]: row for row in rows}
    assert by_config["distributed-arc"]["policy"] == "arc"
    assert by_config["distributed"]["arbitration"] == "fifo"
    for row in rows:
        # The Belady bound dominates: never above 100% of OPT, and the
        # offline replay shares the sim's structure geometry.
        assert 0.0 < row["pct_of_opt"] <= 100.0
        assert row["opt_hit_rate"] >= row["offline_hit_rate"]
        assert row["workload"] == "gups"
    assert run.summary["pct_of_opt_min"] <= 100.0
    for name in TINY_ZOO.config_names:
        assert f"pct_of_opt_avg.{name}" in run.summary
        assert f"speedup_avg.{name}" in run.summary
