"""Drift gate: verdicts, pin files, and the update workflow."""

import json

import pytest

from repro.experiments import (
    DEFAULT_RTOL,
    check_drift,
    load_pins,
    pin_path,
    update_pins,
)

SUMMARY = {"speedup_avg.nocstar": 1.137, "speedup_avg.ideal": 1.163}


def statuses(report):
    return {v.metric: v.status for v in report.verdicts}


def test_green_within_tolerance(tmp_path):
    update_pins("figx", "reduced", SUMMARY, pins_dir=str(tmp_path))
    report = check_drift("figx", "reduced", SUMMARY, pins_dir=str(tmp_path))
    assert report.ok and report.gated
    assert set(statuses(report).values()) == {"ok"}
    assert "OK" in report.render()


def test_small_drift_still_green(tmp_path):
    update_pins("figx", "reduced", SUMMARY, pins_dir=str(tmp_path))
    nudged = dict(SUMMARY, **{"speedup_avg.nocstar": 1.137 * 1.02})
    report = check_drift("figx", "reduced", nudged, pins_dir=str(tmp_path))
    assert report.ok


def test_red_beyond_tolerance(tmp_path):
    update_pins("figx", "reduced", SUMMARY, pins_dir=str(tmp_path))
    drifted = dict(SUMMARY, **{"speedup_avg.nocstar": 1.137 * 1.10})
    report = check_drift("figx", "reduced", drifted, pins_dir=str(tmp_path))
    assert not report.ok
    assert statuses(report)["speedup_avg.nocstar"] == "DRIFT"
    assert "FAIL" in report.render()


def test_missing_pinned_metric_fails(tmp_path):
    # A renamed/dropped metric must fail loudly, not un-gate itself.
    update_pins("figx", "reduced", SUMMARY, pins_dir=str(tmp_path))
    partial = {"speedup_avg.nocstar": 1.137}
    report = check_drift("figx", "reduced", partial, pins_dir=str(tmp_path))
    assert not report.ok
    assert statuses(report)["speedup_avg.ideal"] == "missing-metric"


def test_unpinned_metric_warns_but_passes(tmp_path):
    update_pins("figx", "reduced", SUMMARY, pins_dir=str(tmp_path))
    grown = dict(SUMMARY, new_metric=42.0)
    report = check_drift("figx", "reduced", grown, pins_dir=str(tmp_path))
    assert report.ok
    assert statuses(report)["new_metric"] == "no-pin"


def test_no_pin_file_warns_but_passes(tmp_path):
    report = check_drift("figy", "reduced", SUMMARY, pins_dir=str(tmp_path))
    assert report.ok and not report.gated
    assert statuses(report) == {"*": "no-pins"}
    assert "ungated" in report.render()


def test_unpinned_scale_warns_but_passes(tmp_path):
    update_pins("figx", "reduced", SUMMARY, pins_dir=str(tmp_path))
    report = check_drift("figx", "full", SUMMARY, pins_dir=str(tmp_path))
    assert report.ok and not report.gated


def test_update_preserves_custom_rtol_and_other_scales(tmp_path):
    update_pins("figx", "reduced", SUMMARY, rtol=0.10, pins_dir=str(tmp_path))
    update_pins("figx", "smoke", {"m": 1.0}, pins_dir=str(tmp_path))
    # Re-pinning a scale keeps its hand-tuned tolerances...
    update_pins(
        "figx", "reduced", {"speedup_avg.nocstar": 1.2},
        rtol=DEFAULT_RTOL, pins_dir=str(tmp_path),
    )
    payload = load_pins("figx", pins_dir=str(tmp_path))
    reduced = payload["scales"]["reduced"]["metrics"]
    assert reduced["speedup_avg.nocstar"]["rtol"] == 0.10
    assert reduced["speedup_avg.nocstar"]["value"] == 1.2
    # ...drops metrics that vanished from the summary...
    assert "speedup_avg.ideal" not in reduced
    # ...and leaves other scales untouched.
    assert payload["scales"]["smoke"]["metrics"]["m"]["value"] == 1.0


def test_update_rejects_negative_rtol(tmp_path):
    with pytest.raises(ValueError, match="rtol"):
        update_pins("figx", "reduced", SUMMARY, rtol=-0.1,
                    pins_dir=str(tmp_path))


def test_zero_pin_compares_absolutely(tmp_path):
    update_pins("figx", "reduced", {"retries": 0.0}, pins_dir=str(tmp_path))
    ok = check_drift("figx", "reduced", {"retries": 0.01},
                     pins_dir=str(tmp_path))
    assert ok.ok
    bad = check_drift("figx", "reduced", {"retries": 0.5},
                      pins_dir=str(tmp_path))
    assert not bad.ok


def test_pin_file_layout(tmp_path):
    path = update_pins("figx", "reduced", SUMMARY, pins_dir=str(tmp_path))
    assert path == pin_path("figx", pins_dir=str(tmp_path))
    with open(path) as fh:
        payload = json.load(fh)
    assert payload["schema"] == 1
    assert payload["campaign"] == "figx"
    pin = payload["scales"]["reduced"]["metrics"]["speedup_avg.nocstar"]
    assert pin == {"value": 1.137, "rtol": DEFAULT_RTOL}


def test_shipped_pins_cover_smoke_and_reduced():
    # The in-tree pins gate both CI scales of every shipped campaign.
    for campaign in ("fig2", "fig12", "fig13", "fig14", "fig15", "table1",
                     "policy_zoo"):
        payload = load_pins(campaign)
        assert payload is not None, f"no pins shipped for {campaign}"
        assert payload["schema"] == 1
        for scale in ("smoke", "reduced"):
            assert payload["scales"][scale]["metrics"], (
                f"{campaign} has no {scale} pins"
            )
