"""Campaign specs: grid expansion, seeds, and the registry."""

import pytest

from repro.experiments import (
    ANALYTIC,
    META,
    CampaignSpec,
    Scale,
    available_campaigns,
    expand_campaigns,
    get_campaign,
    register_campaign,
)
from repro.experiments.campaigns import REDUCED_WORKLOADS, SEED
from repro.experiments.registry import _ensure_loaded


def tiny_spec(**overrides):
    fields = dict(
        name="tiny",
        title="tiny test campaign",
        figure="Fig T",
        config_names=("private", "distributed"),
        scales=(("smoke", Scale(200, ("olio", "gups"), (4, 8))),),
        seed=7,
    )
    fields.update(overrides)
    return CampaignSpec(**fields)


# ----------------------------------------------------------------------
# grid expansion


def test_grid_is_the_full_product():
    spec = tiny_spec(replicas=2)
    grid = spec.grid("smoke")
    # 2 cores x 2 seeds x 2 workloads
    assert len(grid) == 8
    assert len(set(grid)) == 8
    assert {p.cores for p in grid} == {4, 8}
    assert {p.workload for p in grid} == {"olio", "gups"}
    # x 2 configs in the lineup
    assert spec.grid_size("smoke") == 16


def test_grid_size_of_shipped_campaigns():
    fig2 = get_campaign("fig2")
    # 3 core counts x 1 seed x 5 workloads x 2 configs
    assert fig2.grid_size("reduced") == 30
    assert fig2.scale("reduced").workloads == REDUCED_WORKLOADS
    # analytic campaigns simulate nothing
    assert get_campaign("table1").grid_size("reduced") == 0


def test_seed_derivation_stable_and_collision_free():
    spec = tiny_spec(replicas=4)
    seeds = spec.seeds()
    assert seeds[0] == 7  # base seed first: bench numbers reproduce
    assert len(set(seeds)) == 4
    assert spec.seeds() == seeds  # deterministic
    # a different campaign name derives different replica seeds
    other = tiny_spec(name="tiny2", replicas=4)
    assert other.seeds()[1:] != seeds[1:]


def test_scenarios_expand_one_per_cores_and_seed():
    spec = tiny_spec(replicas=3, superpages=False)
    scenarios = spec.scenarios("smoke")
    assert len(scenarios) == 2 * 3  # core counts x seeds
    first = scenarios[0]
    assert tuple(w.name for w in first.workloads) == ("olio", "gups")
    assert first.accesses_per_core == 200
    assert first.superpages is False
    assert first.baseline_name == "private"
    assert {s.seed for s in scenarios} == set(spec.seeds())


def test_scale_lookup_and_describe():
    spec = tiny_spec()
    assert spec.scale_names == ("smoke",)
    with pytest.raises(KeyError, match="no scale 'paper'"):
        spec.scale("paper")
    described = spec.describe()
    assert described["scales"] == {"smoke": 8}


# ----------------------------------------------------------------------
# validation


def test_validation_rejects_bad_specs():
    with pytest.raises(ValueError, match="baseline"):
        tiny_spec(baseline="nocstar")
    with pytest.raises(ValueError, match="needs scales"):
        tiny_spec(scales=())
    with pytest.raises(ValueError, match="kind"):
        tiny_spec(kind="quantum")
    with pytest.raises(ValueError, match="replicas"):
        tiny_spec(replicas=0)
    with pytest.raises(ValueError, match="duplicate scale"):
        tiny_spec(
            scales=(
                ("smoke", Scale(200, ("olio",), (4,))),
                ("smoke", Scale(400, ("olio",), (4,))),
            )
        )
    with pytest.raises(ValueError, match="members"):
        CampaignSpec(name="m", title="m", figure="-", kind=META)
    with pytest.raises(ValueError, match="workloads"):
        tiny_spec(scales=(("smoke", Scale(0, (), (4,))),))


def test_scale_validation():
    with pytest.raises(ValueError, match="core count"):
        Scale(100, ("olio",), ())
    with pytest.raises(ValueError, match="positive"):
        Scale(100, ("olio",), (0,))


# ----------------------------------------------------------------------
# registry


def test_registry_round_trip():
    spec = tiny_spec(name="tiny-registry-round-trip")
    assert register_campaign(spec) is spec
    try:
        assert get_campaign(spec.name) is spec
        assert spec.name in available_campaigns()
        with pytest.raises(ValueError, match="already registered"):
            register_campaign(tiny_spec(name=spec.name))
    finally:
        from repro.experiments import registry

        registry._REGISTRY.pop(spec.name)


def test_register_campaign_as_factory_decorator():
    @register_campaign
    def _factory():
        return tiny_spec(name="tiny-from-factory")

    try:
        assert get_campaign("tiny-from-factory").title == "tiny test campaign"
    finally:
        from repro.experiments import registry

        registry._REGISTRY.pop("tiny-from-factory")


def test_shipped_registry_contents():
    _ensure_loaded()
    names = available_campaigns()
    for expected in ("fig2", "fig12", "fig13", "fig14", "fig15",
                     "table1", "headline"):
        assert expected in names


def test_headline_meta_expansion():
    specs = expand_campaigns(["headline"])
    assert len(specs) >= 5
    assert all(spec.kind != META for spec in specs)
    assert [s.name for s in specs] == ["fig2", "fig12", "fig14", "fig15",
                                       "table1"]
    # order-preserving dedupe: an explicit member is not run twice
    specs = expand_campaigns(["fig12", "headline"])
    assert [s.name for s in specs].count("fig12") == 1


def test_unknown_campaign_lists_known():
    with pytest.raises(KeyError, match="fig12"):
        get_campaign("fig99")


# ----------------------------------------------------------------------
# lineup overrides (the policy_zoo operating point)


def test_overrides_canonicalised_and_applied():
    spec = tiny_spec(overrides=[["entries_per_core", 256]])
    assert spec.overrides == (("entries_per_core", 256),)
    for config in spec.lineup(4):
        assert config.entries_per_core == 256


def test_overrides_compose_with_pinning_factories():
    """nocstar's factory pins entries_per_core itself; the override
    must replace the field *after* the factory, keeping the name."""
    spec = tiny_spec(config_names=("private", "nocstar"),
                     baseline="private",
                     overrides=(("entries_per_core", 128),))
    lineup = {config.name: config for config in spec.lineup(8)}
    assert lineup["nocstar"].entries_per_core == 128
    assert lineup["private"].entries_per_core == 128


def test_no_overrides_means_factory_defaults():
    spec = tiny_spec()
    assert spec.overrides == ()
    assert spec.lineup(8)[0].entries_per_core == 1024


def test_policy_zoo_spec_contents():
    zoo = get_campaign("policy_zoo")
    assert zoo.reducer == "policy_zoo"
    assert dict(zoo.overrides) == {"entries_per_core": 128}
    assert "distributed-arc" in zoo.config_names
    assert "nocstar-prio" in zoo.config_names
    assert zoo.baseline == "private"
    built = {config.name for config in zoo.lineup(8)}
    assert built == set(zoo.config_names)
