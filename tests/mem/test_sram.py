"""SRAM scaling model (the Fig 3 curve and Fig 9 budgets)."""

import pytest
from hypothesis import given, strategies as st

from repro.mem import sram


def test_base_latency_matches_haswell_private_l2():
    assert sram.lookup_cycles(1024) == 9


def test_32x_structure_is_about_15_cycles():
    """Fig 3: the 32x shared structure takes ~15 cycles."""
    assert 14 <= sram.lookup_cycles(32 * 1024) <= 16


def test_latency_monotone_in_size():
    sizes = [256, 1024, 4096, 16384, 65536]
    latencies = [sram.lookup_cycles(s) for s in sizes]
    assert latencies == sorted(latencies)


def test_nocstar_slice_not_slower_than_private():
    assert sram.lookup_cycles(920) <= sram.lookup_cycles(1024)


def test_lookup_rejects_nonpositive():
    with pytest.raises(ValueError):
        sram.lookup_cycles(0)


def test_fig3_endpoints():
    """Fig 3 spans roughly 7-17 cycles from 0.5x to 64x of 1536 entries."""
    low = sram.fig3_lookup_cycles(0.5)
    high = sram.fig3_lookup_cycles(64)
    assert 6.0 <= low <= 10.0
    assert 14.0 <= high <= 18.0
    assert high - low == pytest.approx(sram.SLOPE * 7)  # 7 doublings


def test_fig3_rejects_nonpositive():
    with pytest.raises(ValueError):
        sram.fig3_lookup_cycles(0)


def test_read_energy_grows_sublinearly():
    """Energy ~ sqrt(capacity): 4x entries -> 2x energy."""
    assert sram.read_energy_pj(4096) == pytest.approx(
        2 * sram.read_energy_pj(1024)
    )


def test_budget_matches_fig9_at_slice_size():
    budget = sram.budget(1024)
    assert budget.power_mw == pytest.approx(sram.SLICE_POWER_MW)
    assert budget.area_mm2 == pytest.approx(sram.SLICE_AREA_MM2)


def test_budget_scales_linearly():
    assert sram.budget(2048).power_mw == pytest.approx(
        2 * sram.budget(1024).power_mw
    )


@given(st.integers(min_value=1, max_value=1 << 22))
def test_lookup_cycles_always_positive(entries):
    assert sram.lookup_cycles(entries) >= 1


@given(st.integers(min_value=64, max_value=1 << 20))
def test_doubling_adds_about_one_cycle(entries):
    """The log-linear fit: one doubling costs ~SLOPE cycles."""
    delta = sram.lookup_cycles(entries * 2) - sram.lookup_cycles(entries)
    assert 0 <= delta <= 2
