"""Data-cache model used for walk latency."""

import pytest

from repro.mem.cache import Cache, CacheHierarchy, CacheLatencies, LINE_BYTES


def test_cache_rejects_bad_geometry():
    with pytest.raises(ValueError):
        Cache("bad", 100, 8)  # not line-divisible


def test_miss_then_fill_then_hit():
    cache = Cache("c", 4096, 4)
    assert not cache.lookup(0x1000, now=0)
    cache.fill(0x1000, now=0)
    assert cache.lookup(0x1000, now=1)
    assert cache.hits == 1 and cache.misses == 1


def test_same_line_shares_entry():
    cache = Cache("c", 4096, 4)
    cache.fill(0x1000, now=0)
    assert cache.lookup(0x1000 + LINE_BYTES - 1, now=1)


def test_lru_eviction_within_set():
    cache = Cache("c", 2 * LINE_BYTES, 2)  # 1 set, 2 ways
    cache.fill(0 * LINE_BYTES, 0)
    cache.fill(1 * LINE_BYTES, 0)
    cache.lookup(0, 1)  # touch line 0 so line 1 is LRU
    cache.fill(2 * LINE_BYTES, 2)
    assert cache.lookup(0, 3)
    assert not cache.lookup(1 * LINE_BYTES, 3)


def test_decay_counts_as_miss():
    cache = Cache("c", 4096, 4, decay_cycles=100)
    cache.fill(0x1000, now=0)
    assert cache.lookup(0x1000, now=50)
    assert not cache.lookup(0x1000, now=500)


def test_hit_refreshes_decay_clock():
    cache = Cache("c", 4096, 4, decay_cycles=100)
    cache.fill(0x1000, now=0)
    cache.lookup(0x1000, now=90)
    assert cache.lookup(0x1000, now=180)  # refreshed at 90


def test_invalidate_all():
    cache = Cache("c", 4096, 4)
    cache.fill(0x1000, 0)
    cache.invalidate_all()
    assert not cache.lookup(0x1000, 1)


def test_hierarchy_first_access_is_dram():
    hierarchy = CacheHierarchy(2)
    level, latency = hierarchy.access(0, 0x5000, now=0)
    assert level == "dram"
    assert latency == CacheLatencies().dram


def test_hierarchy_second_access_hits_l1():
    hierarchy = CacheHierarchy(2)
    hierarchy.access(0, 0x5000, now=0)
    level, latency = hierarchy.access(0, 0x5000, now=1)
    assert level == "l1"
    assert latency == CacheLatencies().l1


def test_hierarchy_llc_is_shared_between_cores():
    hierarchy = CacheHierarchy(2)
    hierarchy.access(0, 0x5000, now=0)  # core 0 brings it into LLC
    level, _ = hierarchy.access(1, 0x5000, now=1)
    assert level == "llc"  # core 1's L1/L2 are cold, LLC shared


def test_hierarchy_private_levels_not_shared():
    hierarchy = CacheHierarchy(2)
    hierarchy.access(0, 0x5000, now=0)
    hierarchy.access(0, 0x5000, now=1)  # now in core 0's L1
    level, _ = hierarchy.access(1, 0x5000, now=2)
    assert level == "llc"


def test_hierarchy_decay_sends_back_to_dram():
    hierarchy = CacheHierarchy(1)
    hierarchy.access(0, 0x5000, now=0)
    level, _ = hierarchy.access(0, 0x5000, now=10_000_000)
    assert level == "dram"
    assert hierarchy.dram_accesses == 2


def test_latency_ordering():
    lat = CacheLatencies()
    assert lat.l1 < lat.l2 < lat.llc < lat.dram
