"""Golden regression pins.

The simulator is deterministic (explicit seeds everywhere, no wall
clock, no hash randomisation in the hot paths), so these exact numbers
must reproduce bit-for-bit.  If a change moves them, it changed
simulated behaviour: re-derive the goldens *deliberately* (run this
file's ``print`` helper) and justify the delta in the commit.
"""

import pytest

from repro.sim import configs as cfg
from repro.sim.engine import simulate
from repro.workloads.generators import build_multithreaded
from repro.workloads.registry import get_workload

GOLDEN = [
    # (config name, total cycles, shared/private L2 misses)
    ("private", 58671, 2124),
    ("monolithic-mesh", 64388, 1569),
    ("distributed", 57034, 1569),
    ("nocstar", 55520, 1569),
    ("ideal", 54440, 1569),
]

FACTORIES = {
    "private": cfg.private,
    "monolithic-mesh": cfg.monolithic,
    "distributed": cfg.distributed,
    "nocstar": cfg.nocstar,
    "ideal": cfg.ideal,
}


@pytest.fixture(scope="module")
def workload():
    return build_multithreaded(
        get_workload("canneal"), 8, accesses_per_core=2500, seed=99
    )


@pytest.mark.parametrize("name,cycles,misses", GOLDEN)
def test_golden(workload, name, cycles, misses):
    result = simulate(FACTORIES[name](8), workload)
    assert result.cycles == cycles
    assert result.stats.l2_misses == misses


# 64-core pins: the scale the batched engine and RouteCache target.
# Derived with the same helper; both engines must reproduce them (the
# differential suite proves batched == reference, these prove neither
# drifts from history).
GOLDEN_64 = [
    ("distributed", 20941, 5067),
    ("monolithic-smart", 21803, 5067),
    ("nocstar", 18656, 5067),
]


@pytest.fixture(scope="module")
def workload_64():
    return build_multithreaded(
        get_workload("graph500"), 64, accesses_per_core=1000, seed=21
    )


@pytest.mark.parametrize("name,cycles,misses", GOLDEN_64)
def test_golden_64_cores(workload_64, name, cycles, misses):
    result = simulate(cfg.build_config(name, 64), workload_64)
    assert result.cycles == cycles
    assert result.stats.l2_misses == misses


# Mega-mesh pins: the 256/512/1024-tile configs the vectorized engine
# targets (ROADMAP item 1), mirroring the 64-core pins.  Per-core depth
# shrinks with scale to keep the suite fast — mega streams are cold-miss
# dominated, so even short traces exercise every slice and the walker.
# Derived with the same helper.
GOLDEN_MEGA = [
    ("distributed-256", 4434, 5177),
    ("nocstar-256", 3926, 5177),
    ("monolithic-smart-256", 10344, 5177),
    ("distributed-512", 3517, 6703),
    ("nocstar-512", 3277, 6703),
    ("monolithic-smart-512", 12744, 6703),
    ("distributed-1024", 2943, 7598),
    ("nocstar-1024", 2462, 7598),
    ("monolithic-smart-1024", 14168, 7598),
]

MEGA_ACCESSES = {256: 25, 512: 15, 1024: 8}


@pytest.fixture(scope="module")
def mega_workloads():
    return {
        cores: build_multithreaded(
            get_workload("graph500"), cores,
            accesses_per_core=accesses, seed=21,
        )
        for cores, accesses in MEGA_ACCESSES.items()
    }


@pytest.mark.parametrize("name,cycles,misses", GOLDEN_MEGA)
def test_golden_mega_mesh(mega_workloads, name, cycles, misses):
    cores = int(name.rsplit("-", 1)[1])
    result = simulate(cfg.build_config(name, cores), mega_workloads[cores])
    assert result.cycles == cycles
    assert result.stats.l2_misses == misses


def test_mega_goldens_cover_every_mega_config():
    registered = {
        n for n in cfg.available_configs() if n.rsplit("-", 1)[-1].isdigit()
    }
    assert registered == {g[0] for g in GOLDEN_MEGA}


# Replacement-policy zoo pins, taken at the area-constrained operating
# point (128 entries/core) where the replacement choice actually moves
# the numbers: campaign-scale canneal fits the stock 1024-entry slices,
# and every policy ties there.  Derived with the same helper.
GOLDEN_POLICY = [
    ("distributed", 60473, 1834),
    ("distributed-arc", 58652, 1747),
    ("distributed-twoq", 60953, 2062),
    ("distributed-prio", 60473, 1834),
    ("nocstar", 59488, 1830),
    ("nocstar-arc", 57533, 1742),
    ("nocstar-twoq", 59635, 2064),
    ("nocstar-prio", 59488, 1830),
]


@pytest.mark.parametrize("name,cycles,misses", GOLDEN_POLICY)
def test_golden_policy_zoo(workload, name, cycles, misses):
    from dataclasses import replace

    config = replace(cfg.build_config(name, 8), entries_per_core=128)
    result = simulate(config, workload)
    assert result.cycles == cycles
    assert result.stats.l2_misses == misses


def test_policy_goldens_are_internally_consistent():
    cycles = {g[0]: g[1] for g in GOLDEN_POLICY}
    # ARC adapts past pure recency on canneal; 2Q's probation FIFO
    # hurts it.  The ordering is part of the pin.
    for base in ("distributed", "nocstar"):
        assert cycles[f"{base}-arc"] < cycles[base] < cycles[f"{base}-twoq"]
        # Priority arbitration is byte-identical to FIFO without port
        # contention (class-0/uncontended identity) — a deliberate pin:
        # if this tie breaks, the arbiter changed demand-path behaviour.
        assert cycles[f"{base}-prio"] == cycles[base]


def test_goldens_are_internally_consistent():
    names = [g[0] for g in GOLDEN]
    cycles = {g[0]: g[1] for g in GOLDEN}
    assert set(names) == set(FACTORIES)
    # The pinned numbers themselves encode the paper's ordering.
    assert (
        cycles["ideal"] < cycles["nocstar"] < cycles["distributed"]
        < cycles["private"] < cycles["monolithic-mesh"]
    )
